#pragma once

#include <memory>

#include "lint/pass.hpp"

namespace rsnsec::lint {

/// Built-in pass factories. Diagnostic-code catalog (codes are stable;
/// wording is not):
///
///   NET001  multi-driver net (two nodes produce the same net name)
///   NET002  combinational loop
///   NET003  dangling or invalid input (bad fanin id, FF without data
///           input, wrong gate arity)
///   NET004  dead logic (combinational gate consumed by nothing and not a
///           declared output or capture source)               [warning]
///   RSN001  scan-path cycle
///   RSN002  dangling connection (scan-out or register input undriven is
///           an error; an undriven mux input is a warning)
///   RSN003  register unreachable from scan-in
///   RSN004  register inaccessible: the access planner finds no mux
///           configuration with a complete scan path through it (covers
///           the cannot-reach-scan-out side)
///   RSN005  dead mux (drives nothing: warning) / degenerate mux reduced
///           to one input (note)
///   SPEC001 trust category out of range
///   SPEC002 empty accepted-category set
///   SPEC003 module rejects its own trust category
///   SPEC004 spec references a module unknown to the network  [warning]
///   SPEC005 malformed spec file (parse error; emitted by the file
///           driver, which maps security::SpecParseError onto it)
///   INV001  transformation introduced a scan-path cycle
///   INV002  transformation lost a scan register
///   INV003  transformation made a register inaccessible
///   INV004  transformed network fails structural validation
///   IO001   input file could not be parsed (unclassified)
///   IO002   attachment references an unknown circuit net
///   IO003   malformed RSN/ICL file (parse error with line number;
///           emitted by the file driver for the strict rsn/icl parsers)
std::unique_ptr<Pass> make_netlist_multi_driver_pass();
std::unique_ptr<Pass> make_netlist_comb_loop_pass();
std::unique_ptr<Pass> make_netlist_dangling_input_pass();
std::unique_ptr<Pass> make_netlist_dead_logic_pass();
std::unique_ptr<Pass> make_rsn_acyclicity_pass();
std::unique_ptr<Pass> make_rsn_connectivity_pass();
std::unique_ptr<Pass> make_rsn_reachability_pass();
std::unique_ptr<Pass> make_rsn_dead_mux_pass();
std::unique_ptr<Pass> make_spec_consistency_pass();
std::unique_ptr<Pass> make_spec_cross_reference_pass();

}  // namespace rsnsec::lint
