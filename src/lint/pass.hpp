#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"
#include "security/spec.hpp"

namespace rsnsec::lint {

/// Everything a lint run may look at. All pointers are optional and
/// non-owning; a pass declares via applicable() which parts it needs.
/// The `*_source` labels prefix diagnostic locations (file paths when
/// linting files, model names when linting in-memory objects).
struct LintInput {
  const netlist::Netlist* circuit = nullptr;
  /// Declared circuit output nodes (from the Verilog port list); sinks
  /// that keep upstream logic alive for the dead-logic check.
  std::vector<netlist::NodeId> circuit_outputs;
  /// Additional live circuit nodes: capture sources referenced by the
  /// scan network observe a net even when no gate consumes it.
  std::vector<netlist::NodeId> circuit_roots;
  std::string circuit_source;

  const rsn::Rsn* network = nullptr;
  std::string network_source;

  const security::SecuritySpec* spec = nullptr;
  /// Module names the spec's module indices refer to (netlist/RSN
  /// modules); enables the cross-reference pass when present.
  const std::vector<std::string>* module_names = nullptr;
  std::string spec_source;
};

/// Collects diagnostics for one pass run; prefixes locations with the
/// relevant source label.
class Sink {
 public:
  explicit Sink(std::vector<Diagnostic>& out) : out_(out) {}

  void report(Diagnostic d) { out_.push_back(std::move(d)); }

  /// Convenience: report(code, severity, source, object, message, hint).
  void add(std::string code, Severity sev, const std::string& source,
           const std::string& object, std::string message,
           std::string fix_hint = {}) {
    Diagnostic d;
    d.code = std::move(code);
    d.severity = sev;
    d.location = source.empty() ? object : source + ": " + object;
    d.message = std::move(message);
    d.fix_hint = std::move(fix_hint);
    out_.push_back(std::move(d));
  }

 private:
  std::vector<Diagnostic>& out_;
};

/// One static check over a LintInput. Passes are stateless and
/// independent: each must terminate and produce meaningful diagnostics on
/// arbitrarily malformed input (in particular on cyclic graphs), because
/// the passes that would normally report the malformation run in the same
/// batch, not before.
class Pass {
 public:
  virtual ~Pass() = default;

  /// Stable pass identifier ("rsn-acyclicity").
  virtual const char* name() const = 0;

  /// One-line human-readable description.
  virtual const char* description() const = 0;

  /// True if the input carries the parts this pass inspects.
  virtual bool applicable(const LintInput& in) const = 0;

  /// Runs the check; appends findings to `sink`.
  virtual void run(const LintInput& in, Sink& sink) const = 0;
};

}  // namespace rsnsec::lint
