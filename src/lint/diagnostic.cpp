#include "lint/diagnostic.hpp"

#include <ostream>

#include "util/strings.hpp"  // the shared json_escape

namespace rsnsec::lint {

using rsnsec::json_escape;

namespace {

struct Counts {
  std::size_t errors = 0, warnings = 0, notes = 0;
};

Counts count(const std::vector<Diagnostic>& diags) {
  Counts c;
  for (const Diagnostic& d : diags) {
    switch (d.severity) {
      case Severity::Error: ++c.errors; break;
      case Severity::Warning: ++c.warnings; break;
      case Severity::Note: ++c.notes; break;
    }
  }
  return c;
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

std::size_t count_at_least(const std::vector<Diagnostic>& diags,
                           Severity floor) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) n += d.severity >= floor;
  return n;
}

void render_text(std::ostream& os, const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    os << severity_name(d.severity) << " " << d.code;
    if (!d.location.empty()) os << " at " << d.location;
    os << ": " << d.message;
    if (!d.fix_hint.empty()) os << " (hint: " << d.fix_hint << ")";
    os << "\n";
  }
  Counts c = count(diags);
  if (diags.empty()) {
    os << "no issues found\n";
  } else {
    os << c.errors << " error(s), " << c.warnings << " warning(s), "
       << c.notes << " note(s)\n";
  }
}

void render_json(std::ostream& os, const std::vector<Diagnostic>& diags) {
  os << "{\"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    os << (i ? ",\n  " : "\n  ");
    os << "{\"code\": \"" << json_escape(d.code) << "\", \"severity\": \""
       << severity_name(d.severity) << "\", \"location\": \""
       << json_escape(d.location) << "\", \"message\": \""
       << json_escape(d.message) << "\", \"fix_hint\": \""
       << json_escape(d.fix_hint) << "\"}";
  }
  Counts c = count(diags);
  os << (diags.empty() ? "]" : "\n]") << ", \"errors\": " << c.errors
     << ", \"warnings\": " << c.warnings << ", \"notes\": " << c.notes
     << "}\n";
}

}  // namespace rsnsec::lint
