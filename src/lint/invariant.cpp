#include "lint/invariant.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

#include "rsn/access.hpp"

namespace rsnsec::lint {

InvariantChecker::InvariantChecker(const rsn::Rsn& before) {
  register_names_.reserve(before.registers().size());
  for (rsn::ElemId r : before.registers())
    register_names_.push_back(before.elem(r).name);
}

std::vector<Diagnostic> InvariantChecker::check(const rsn::Rsn& after) const {
  std::vector<Diagnostic> diags;
  auto add = [&](const char* code, std::string object, std::string message) {
    Diagnostic d;
    d.code = code;
    d.severity = Severity::Error;
    d.location = after.name() + ": " + std::move(object);
    d.message = std::move(message);
    diags.push_back(std::move(d));
  };

  if (!after.is_acyclic()) {
    add("INV001", "network", "transformation introduced a scan-path cycle");
    return diags;  // derived checks are meaningless on a cyclic graph
  }

  std::set<std::string> current;
  for (rsn::ElemId r : after.registers()) current.insert(after.elem(r).name);
  for (const std::string& name : register_names_) {
    if (!current.count(name))
      add("INV002", "register '" + name + "'",
          "scan register present before the transformation is gone");
  }

  rsn::AccessPlanner planner(after);
  for (rsn::ElemId r : after.registers()) {
    if (!planner.plan(r))
      add("INV003", "register '" + after.elem(r).name + "'",
          "transformation left the register without any complete scan "
          "path (inaccessible)");
  }

  // Catch-all: anything validate() rejects that the specific checks above
  // did not already explain (dangling inputs, invalid ids).
  std::string err;
  if (diags.empty() && !after.validate(&err))
    add("INV004", "network", "structural validation failed: " + err);
  return diags;
}

void InvariantChecker::require(const rsn::Rsn& after,
                               const std::string& context) const {
  std::vector<Diagnostic> diags = check(after);
  if (diags.empty()) return;
  std::ostringstream os;
  os << "post-transformation invariant violated after " << context << ":\n";
  render_text(os, diags);
  throw std::logic_error(os.str());
}

}  // namespace rsnsec::lint
