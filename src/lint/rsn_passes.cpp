// RSN structural passes (RSN001-RSN005). The reachability/accessibility
// passes skip cyclic networks: the acyclicity pass reports the cycle as
// the root cause, and path planning over a cyclic graph would only add
// derived noise.

#include <string>
#include <vector>

#include "lint/passes.hpp"
#include "rsn/access.hpp"

namespace rsnsec::lint {

namespace {

using rsn::ElemId;
using rsn::ElemKind;
using rsn::Rsn;

std::string elem_label(const Rsn& net, ElemId id) {
  const rsn::Element& e = net.elem(id);
  switch (e.kind) {
    case ElemKind::ScanIn: return "scan-in port";
    case ElemKind::ScanOut: return "scan-out port";
    case ElemKind::Register: return "register '" + e.name + "'";
    case ElemKind::Mux: return "mux '" + e.name + "'";
  }
  return "element " + std::to_string(id);
}

bool valid_elem(const Rsn& net, ElemId id) {
  return id != rsn::no_elem && id < net.num_elements();
}

class RsnPass : public Pass {
 public:
  bool applicable(const LintInput& in) const override {
    return in.network != nullptr;
  }
};

/// RSN001: cycles in the scan connection graph. The paper's resolution
/// step must keep the network cycle-free (Sec. III-D); a cycle makes
/// active-path and reachability semantics meaningless.
class AcyclicityPass final : public RsnPass {
 public:
  const char* name() const override { return "rsn-acyclicity"; }
  const char* description() const override {
    return "scan connection graph is cycle-free";
  }
  void run(const LintInput& in, Sink& sink) const override {
    const Rsn& net = *in.network;
    enum class Mark : std::uint8_t { Unseen, OnStack, Done };
    std::vector<Mark> marks(net.num_elements(), Mark::Unseen);
    std::vector<std::pair<ElemId, std::size_t>> stack;
    for (ElemId root = 0; root < net.num_elements(); ++root) {
      if (marks[root] != Mark::Unseen) continue;
      marks[root] = Mark::OnStack;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [id, next] = stack.back();
        const rsn::Element& e = net.elem(id);
        if (next < e.inputs.size()) {
          ElemId f = e.inputs[next++];
          if (!valid_elem(net, f)) continue;
          if (marks[f] == Mark::OnStack) {
            // Walk the DFS stack back to f to render the cycle.
            std::string cycle = elem_label(net, f);
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
              cycle += " <- " + elem_label(net, it->first);
              if (it->first == f) break;
            }
            sink.add("RSN001", Severity::Error, in.network_source,
                     elem_label(net, f), "scan-path cycle: " + cycle,
                     "cut one connection of the cycle");
            continue;
          }
          if (marks[f] == Mark::Unseen) {
            marks[f] = Mark::OnStack;
            stack.emplace_back(f, 0);
          }
        } else {
          marks[id] = Mark::Done;
          stack.pop_back();
        }
      }
    }
  }
};

/// RSN002: dangling connections. A register or the scan-out port with an
/// undriven input can never carry data (error); an undriven mux input is
/// representable but selects a broken path (warning). Out-of-range
/// driver ids are always errors.
class ConnectivityPass final : public RsnPass {
 public:
  const char* name() const override { return "rsn-connectivity"; }
  const char* description() const override {
    return "undriven inputs and invalid driver ids";
  }
  void run(const LintInput& in, Sink& sink) const override {
    const Rsn& net = *in.network;
    for (ElemId id = 0; id < net.num_elements(); ++id) {
      const rsn::Element& e = net.elem(id);
      for (std::size_t p = 0; p < e.inputs.size(); ++p) {
        ElemId drv = e.inputs[p];
        if (drv == rsn::no_elem) {
          if (e.kind == ElemKind::Register || e.kind == ElemKind::ScanOut) {
            sink.add("RSN002", Severity::Error, in.network_source,
                     elem_label(net, id), "input is undriven",
                     "connect a driver (scan-in reaches every segment)");
          } else if (e.kind == ElemKind::Mux) {
            sink.add("RSN002", Severity::Warning, in.network_source,
                     elem_label(net, id),
                     "mux input " + std::to_string(p) +
                         " is undriven (selecting it breaks the path)",
                     "connect the input or remove the mux port");
          }
        } else if (drv >= net.num_elements()) {
          sink.add("RSN002", Severity::Error, in.network_source,
                   elem_label(net, id),
                   "input " + std::to_string(p) + " references invalid "
                   "element id " + std::to_string(drv));
        }
      }
    }
  }
};

/// RSN003 + RSN004: every scan register must lie on some scan-in ->
/// scan-out trajectory (RSN003), and the access planner must find a mux
/// configuration that puts it on a complete active path (RSN004). The
/// paper's transformation guarantees both for every register it keeps.
class ReachabilityPass final : public RsnPass {
 public:
  const char* name() const override { return "rsn-reachability"; }
  const char* description() const override {
    return "registers reachable from scan-in and accessible via planning";
  }
  void run(const LintInput& in, Sink& sink) const override {
    const Rsn& net = *in.network;
    for (ElemId id = 0; id < net.num_elements(); ++id) {
      for (ElemId drv : net.elem(id).inputs) {
        // Out-of-range driver ids (reported by RSN002) would corrupt the
        // traversals below, including is_acyclic() itself.
        if (drv != rsn::no_elem && drv >= net.num_elements()) return;
      }
    }
    if (!net.is_acyclic()) return;  // RSN001 reports the root cause
    std::vector<bool> fwd(net.num_elements(), false);
    for (ElemId id : net.reachable_from(net.scan_in())) fwd[id] = true;
    rsn::AccessPlanner planner(net);
    for (ElemId r : net.registers()) {
      if (!fwd[r]) {
        sink.add("RSN003", Severity::Error, in.network_source,
                 elem_label(net, r), "register is unreachable from scan-in",
                 "connect its segment into the network");
        continue;  // planning needs the scan-in side; RSN004 would repeat
      }
      if (!planner.plan(r)) {
        sink.add("RSN004", Severity::Error, in.network_source,
                 elem_label(net, r),
                 "no mux configuration puts the register on a complete "
                 "scan path (inaccessible)",
                 "route the register's fanout toward the scan-out port");
      }
    }
  }
};

/// RSN005: suspicious multiplexers — a mux that drives nothing is dead
/// configuration logic (warning); a mux reduced to a single input is a
/// buffer the rewirer may legitimately leave behind (note).
class DeadMuxPass final : public RsnPass {
 public:
  const char* name() const override { return "rsn-dead-mux"; }
  const char* description() const override {
    return "muxes that drive nothing or degenerated to buffers";
  }
  void run(const LintInput& in, Sink& sink) const override {
    const Rsn& net = *in.network;
    for (ElemId m : net.muxes()) {
      if (net.fanouts(m).empty()) {
        sink.add("RSN005", Severity::Warning, in.network_source,
                 elem_label(net, m), "mux output drives nothing (dead mux)",
                 "remove the mux or route it toward scan-out");
      }
      if (net.elem(m).inputs.size() == 1) {
        sink.add("RSN005", Severity::Note, in.network_source,
                 elem_label(net, m),
                 "mux has a single input (behaves as a buffer)");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_rsn_acyclicity_pass() {
  return std::make_unique<AcyclicityPass>();
}
std::unique_ptr<Pass> make_rsn_connectivity_pass() {
  return std::make_unique<ConnectivityPass>();
}
std::unique_ptr<Pass> make_rsn_reachability_pass() {
  return std::make_unique<ReachabilityPass>();
}
std::unique_ptr<Pass> make_rsn_dead_mux_pass() {
  return std::make_unique<DeadMuxPass>();
}

}  // namespace rsnsec::lint
