// Security-specification passes (SPEC001-SPEC004). SecuritySpec::validate
// rejects some of these with a single error string; the lint passes report
// every offending module individually with stable codes.

#include <string>

#include "lint/passes.hpp"

namespace rsnsec::lint {

namespace {

using netlist::ModuleId;
using security::SecuritySpec;

std::string module_label(const LintInput& in, std::size_t m) {
  if (in.module_names && m < in.module_names->size())
    return "module '" + (*in.module_names)[m] + "'";
  return "module " + std::to_string(m);
}

/// SPEC001-SPEC003: per-module policy consistency. A policy with an
/// out-of-range trust category addresses a category the spec does not
/// define; an empty accepted set (or one rejecting the module's own
/// category) means the module's data may not even stay where it is
/// produced — no RSN transformation can satisfy that.
class SpecConsistencyPass final : public Pass {
 public:
  const char* name() const override { return "spec-consistency"; }
  const char* description() const override {
    return "trust categories in range, accepted sets non-empty and "
           "self-consistent";
  }
  bool applicable(const LintInput& in) const override {
    return in.spec != nullptr;
  }
  void run(const LintInput& in, Sink& sink) const override {
    const SecuritySpec& spec = *in.spec;
    std::size_t cats = spec.num_categories();
    std::uint32_t cat_mask = cats >= 32
                                 ? 0xffffffffu
                                 : ((1u << cats) - 1u);
    for (std::size_t m = 0; m < spec.num_modules(); ++m) {
      const security::ModulePolicy& p =
          spec.policy(static_cast<ModuleId>(m));
      if (p.trust >= cats) {
        sink.add("SPEC001", Severity::Error, in.spec_source,
                 module_label(in, m),
                 "trust category " + std::to_string(p.trust) +
                     " out of range (spec defines " + std::to_string(cats) +
                     " categories)",
                 "raise 'categories' or lower the module's trust");
        continue;  // the accepted-set checks below index by trust
      }
      if ((p.accepted & cat_mask) == 0) {
        sink.add("SPEC002", Severity::Error, in.spec_source,
                 module_label(in, m),
                 "accepted-category set is empty: the module's data may "
                 "flow nowhere, not even within the module",
                 "accept at least the module's own trust category");
      } else if (!(p.accepted & (1u << p.trust))) {
        sink.add("SPEC003", Severity::Error, in.spec_source,
                 module_label(in, m),
                 "module rejects its own trust category " +
                     std::to_string(p.trust),
                 "a module may always see its own data; add category " +
                     std::to_string(p.trust) + " to 'accepts'");
      }
    }
  }
};

/// SPEC004: a spec covering more modules than the network declares is
/// usually a stale or mismatched file (policies beyond the known modules
/// can never apply). Needs module names, so it only runs when a network
/// or circuit accompanies the spec.
class SpecCrossReferencePass final : public Pass {
 public:
  const char* name() const override { return "spec-cross-reference"; }
  const char* description() const override {
    return "spec module indices exist in the network";
  }
  bool applicable(const LintInput& in) const override {
    return in.spec != nullptr && in.module_names != nullptr;
  }
  void run(const LintInput& in, Sink& sink) const override {
    std::size_t known = in.module_names->size();
    for (std::size_t m = known; m < in.spec->num_modules(); ++m) {
      sink.add("SPEC004", Severity::Warning, in.spec_source,
               "module " + std::to_string(m),
               "policy refers to a module the network does not declare "
               "(network has " + std::to_string(known) + " modules)",
               "remove the stale policy or pair the spec with the right "
               "network");
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_spec_consistency_pass() {
  return std::make_unique<SpecConsistencyPass>();
}
std::unique_ptr<Pass> make_spec_cross_reference_pass() {
  return std::make_unique<SpecCrossReferencePass>();
}

}  // namespace rsnsec::lint
