#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rsnsec::lint {

/// Severity of a lint diagnostic.
///
/// `Error` marks a model that is structurally broken or violates an
/// invariant the pipeline relies on (cycles, dangling register inputs,
/// inaccessible registers); `Warning` marks suspicious-but-representable
/// structure (dead logic, undriven mux inputs); `Note` is informational
/// (degenerate single-input muxes the rewirer may legitimately create).
enum class Severity : std::uint8_t { Note, Warning, Error };

/// Lower-case severity mnemonic ("note", "warning", "error").
const char* severity_name(Severity s);

/// One finding of a lint pass.
///
/// `code` is a *stable* identifier (NET001, RSN003, SPEC002, INV001, ...)
/// that tests and downstream tooling match on; message wording may change,
/// codes may not. The full catalog lives in passes.hpp.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::Error;
  /// Where the finding is anchored: "<source>: <object>", e.g.
  /// "net.rsn: mux bypass3 input 1". Sources are file paths when linting
  /// files and model names when linting in-memory objects.
  std::string location;
  std::string message;
  /// Optional actionable suggestion ("connect the port or remove it").
  std::string fix_hint;

  bool operator==(const Diagnostic&) const = default;
};

/// Number of diagnostics at `floor` severity or worse.
std::size_t count_at_least(const std::vector<Diagnostic>& diags,
                           Severity floor);

/// Renders diagnostics as human-readable text, one per line
/// ("error RSN001 at net.rsn: ...: <message> (hint: ...)"), followed by a
/// one-line summary. Prints "no issues found" for an empty list.
void render_text(std::ostream& os, const std::vector<Diagnostic>& diags);

/// Renders diagnostics as a JSON document:
/// {"diagnostics": [{"code": ..., "severity": ..., "location": ...,
///  "message": ..., "fix_hint": ...}], "errors": N, "warnings": N,
///  "notes": N}.
void render_json(std::ostream& os, const std::vector<Diagnostic>& diags);

}  // namespace rsnsec::lint
