#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "rsn/rsn.hpp"

namespace rsnsec::lint {

/// Post-transformation invariant pass (INV001-INV004).
///
/// The paper's resolution step (Sec. III-D) promises that every applied
/// rewire keeps the RSN cycle-free, keeps every scan register in the
/// network, and keeps every register accessible. This checker snapshots
/// the register set of the pre-transformation network and verifies those
/// promises against any later state — SecureFlowTool runs it after every
/// applied change when PipelineOptions::verify_invariants is set, turning
/// silent model corruption into an immediate, located failure.
class InvariantChecker {
 public:
  /// Snapshots the register set of `before` (names, in creation order).
  explicit InvariantChecker(const rsn::Rsn& before);

  /// Checks `after` against the snapshot. Returns all violated
  /// invariants; empty means the transformation state is sound. On a
  /// cyclic network only INV001 is reported (derived checks would be
  /// meaningless noise).
  std::vector<Diagnostic> check(const rsn::Rsn& after) const;

  /// check() + throw std::logic_error with the rendered diagnostics if
  /// any invariant is violated; `context` names the triggering step
  /// (e.g. the applied change's note) in the exception message.
  void require(const rsn::Rsn& after, const std::string& context) const;

 private:
  std::vector<std::string> register_names_;
};

}  // namespace rsnsec::lint
