#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/registry.hpp"
#include "netlist/netlist.hpp"
#include "rsn/io.hpp"
#include "security/spec.hpp"

namespace rsnsec::lint {

/// Models loaded from a set of lint input files, plus any diagnostics
/// produced while loading. A strict parser rejecting a file is itself a
/// lint finding: known failure classes (multi-driven nets, combinational
/// loops, undriven nets) are mapped to their stable NET codes by
/// classify_load_error, everything else becomes IO001.
struct LoadedFiles {
  std::optional<rsn::RsnDocument> doc;
  std::string network_source;

  std::optional<netlist::Netlist> circuit;
  std::vector<netlist::NodeId> circuit_outputs;
  /// Capture-source nodes referenced by the network's attachments (live
  /// roots for the dead-logic pass).
  std::vector<netlist::NodeId> circuit_roots;
  std::string circuit_source;

  std::optional<security::SecuritySpec> spec;
  std::string spec_source;

  std::vector<Diagnostic> diagnostics;
};

/// Maps a loader failure to a stable diagnostic. `path` anchors the
/// location; `what` is the parser's exception message.
Diagnostic classify_load_error(const std::string& path,
                               const std::string& what);

/// Loads lint inputs by file extension: `.rsn` (text RSN), `.icl`
/// (IEEE 1687 ICL subset; `icl_top` selects the top module, empty =
/// auto), `.v` (structural Verilog), `.spec` (security spec). At most
/// one file per kind; a second file of the same kind, or an unknown
/// extension, produces an IO001 diagnostic. Specs are resolved against
/// the network's module names when a network file is also given, so
/// name-based specs lint cleanly.
LoadedFiles load_files(const std::vector<std::string>& paths,
                       const std::string& icl_top = "");

/// load_files + Registry::run over the loaded models; returns load
/// diagnostics followed by pass findings. `jobs` is the pass-level
/// parallelism (0 = auto via RSNSEC_JOBS / hardware concurrency, 1 =
/// sequential); the diagnostic order is identical for any value.
std::vector<Diagnostic> lint_files(const Registry& registry,
                                   const std::vector<std::string>& paths,
                                   const std::string& icl_top = "",
                                   std::size_t jobs = 1);

}  // namespace rsnsec::lint
