// Netlist well-formedness passes (NET001-NET004). Every pass tolerates
// arbitrarily malformed netlists — out-of-range fanins are skipped here
// and reported by the dangling-input pass.

#include <map>
#include <string>
#include <vector>

#include "lint/passes.hpp"

namespace rsnsec::lint {

namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

std::string node_label(const Netlist& nl, NodeId id) {
  const netlist::Node& n = nl.node(id);
  std::string label = std::string(gate_type_name(n.type)) + " node " +
                      std::to_string(id);
  if (!n.name.empty()) label += " ('" + n.name + "')";
  return label;
}

bool valid_fanin(const Netlist& nl, NodeId f) {
  return f != netlist::no_node && f < nl.num_nodes();
}

class NetlistPass : public Pass {
 public:
  bool applicable(const LintInput& in) const override {
    return in.circuit != nullptr;
  }
};

/// NET001: two nodes producing the same (non-empty) net name. The netlist
/// model has single-output nodes, so a "net" exists only through names —
/// but names are exactly what the Verilog writer emits and downstream
/// tools consume, so a duplicate name is a multi-driven net after any
/// round trip.
class MultiDriverPass final : public NetlistPass {
 public:
  const char* name() const override { return "netlist-multi-driver"; }
  const char* description() const override {
    return "nets driven by more than one node";
  }
  void run(const LintInput& in, Sink& sink) const override {
    const Netlist& nl = *in.circuit;
    std::map<std::string, NodeId> first;
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      const std::string& nm = nl.node(id).name;
      if (nm.empty()) continue;
      auto [it, inserted] = first.emplace(nm, id);
      if (!inserted) {
        sink.add("NET001", Severity::Error, in.circuit_source,
                 node_label(nl, id),
                 "net '" + nm + "' is also driven by " +
                     node_label(nl, it->second),
                 "rename one of the nodes or merge the drivers");
      }
    }
  }
};

/// NET002: combinational cycle (DFS over combinational fanin edges; FF
/// and input/constant fanins break the path).
class CombLoopPass final : public NetlistPass {
 public:
  const char* name() const override { return "netlist-comb-loop"; }
  const char* description() const override {
    return "combinational feedback loops";
  }
  void run(const LintInput& in, Sink& sink) const override {
    const Netlist& nl = *in.circuit;
    enum class Mark : std::uint8_t { Unseen, OnStack, Done };
    std::vector<Mark> marks(nl.num_nodes(), Mark::Unseen);
    std::vector<std::pair<NodeId, std::size_t>> stack;
    auto sequential = [&](NodeId id) {
      GateType t = nl.node(id).type;
      return t == GateType::FF || t == GateType::Input ||
             t == GateType::Const0 || t == GateType::Const1;
    };
    for (NodeId root = 0; root < nl.num_nodes(); ++root) {
      if (marks[root] != Mark::Unseen || sequential(root)) continue;
      marks[root] = Mark::OnStack;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [id, next] = stack.back();
        const netlist::Node& n = nl.node(id);
        if (next < n.fanins.size()) {
          NodeId f = n.fanins[next++];
          if (!valid_fanin(nl, f) || sequential(f)) continue;
          if (marks[f] == Mark::OnStack) {
            // Report the cycle once, anchored at the re-entered node.
            sink.add("NET002", Severity::Error, in.circuit_source,
                     node_label(nl, f),
                     "combinational loop through '" + node_label(nl, f) +
                         "' (reached again from " + node_label(nl, id) + ")",
                     "break the loop with a flip-flop");
            continue;
          }
          if (marks[f] == Mark::Unseen) {
            marks[f] = Mark::OnStack;
            stack.emplace_back(f, 0);
          }
        } else {
          marks[id] = Mark::Done;
          stack.pop_back();
        }
      }
    }
  }
};

/// NET003: structural input problems — out-of-range fanin ids, flip-flops
/// without a data input, and fixed-arity gates with the wrong fanin count.
class DanglingInputPass final : public NetlistPass {
 public:
  const char* name() const override { return "netlist-dangling-input"; }
  const char* description() const override {
    return "invalid fanins, unconnected flip-flops, wrong gate arity";
  }
  void run(const LintInput& in, Sink& sink) const override {
    const Netlist& nl = *in.circuit;
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      const netlist::Node& n = nl.node(id);
      for (std::size_t p = 0; p < n.fanins.size(); ++p) {
        if (!valid_fanin(nl, n.fanins[p])) {
          sink.add("NET003", Severity::Error, in.circuit_source,
                   node_label(nl, id),
                   "fanin " + std::to_string(p) + " is dangling",
                   "connect the input or remove the node");
        }
      }
      std::size_t arity = n.fanins.size();
      bool bad_arity = false;
      switch (n.type) {
        case GateType::FF:
          if (arity == 0) {
            sink.add("NET003", Severity::Error, in.circuit_source,
                     node_label(nl, id), "flip-flop has no data input",
                     "call set_ff_input or connect the dff data pin");
          }
          break;
        case GateType::Buf:
        case GateType::Not:
          bad_arity = arity != 1;
          break;
        case GateType::Mux:
          bad_arity = arity != 3;
          break;
        case GateType::And:
        case GateType::Nand:
        case GateType::Or:
        case GateType::Nor:
        case GateType::Xor:
        case GateType::Xnor:
          bad_arity = arity < 2;
          break;
        case GateType::Input:
        case GateType::Const0:
        case GateType::Const1:
          bad_arity = arity != 0;
          break;
      }
      if (bad_arity) {
        sink.add("NET003", Severity::Error, in.circuit_source,
                 node_label(nl, id),
                 "wrong fanin count (" + std::to_string(arity) + ") for " +
                     gate_type_name(n.type));
      }
    }
  }
};

/// NET004: combinational gates whose output nothing consumes. Declared
/// circuit outputs and capture sources of the scan network (passed via
/// circuit_roots) keep logic alive: a net can be observed without being a
/// gate fanin.
class DeadLogicPass final : public NetlistPass {
 public:
  const char* name() const override { return "netlist-dead-logic"; }
  const char* description() const override {
    return "combinational gates consumed by nothing";
  }
  void run(const LintInput& in, Sink& sink) const override {
    const Netlist& nl = *in.circuit;
    std::vector<bool> live(nl.num_nodes(), false);
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      for (NodeId f : nl.node(id).fanins)
        if (valid_fanin(nl, f)) live[f] = true;
    }
    for (NodeId id : in.circuit_outputs)
      if (id < nl.num_nodes()) live[id] = true;
    for (NodeId id : in.circuit_roots)
      if (id < nl.num_nodes()) live[id] = true;
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      GateType t = nl.node(id).type;
      if (t == GateType::FF || t == GateType::Input ||
          t == GateType::Const0 || t == GateType::Const1)
        continue;  // state and ports are sinks/sources, not dead logic
      if (!live[id]) {
        sink.add("NET004", Severity::Warning, in.circuit_source,
                 node_label(nl, id),
                 "gate output is never used (dead logic)",
                 "remove the gate or connect it to an output");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_netlist_multi_driver_pass() {
  return std::make_unique<MultiDriverPass>();
}
std::unique_ptr<Pass> make_netlist_comb_loop_pass() {
  return std::make_unique<CombLoopPass>();
}
std::unique_ptr<Pass> make_netlist_dangling_input_pass() {
  return std::make_unique<DanglingInputPass>();
}
std::unique_ptr<Pass> make_netlist_dead_logic_pass() {
  return std::make_unique<DeadLogicPass>();
}

}  // namespace rsnsec::lint
