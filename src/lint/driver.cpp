#include "lint/driver.hpp"

#include <fstream>
#include <map>

#include "netlist/verilog.hpp"
#include "rsn/icl.hpp"
#include "security/spec_io.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::lint {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

std::ifstream open_input(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  return f;
}

void add_io_error(LoadedFiles& out, const std::string& path,
                  const std::string& message) {
  Diagnostic d;
  d.code = "IO001";
  d.severity = Severity::Error;
  d.location = path;
  d.message = message;
  out.diagnostics.push_back(std::move(d));
}

}  // namespace

Diagnostic classify_load_error(const std::string& path,
                               const std::string& what) {
  Diagnostic d;
  d.severity = Severity::Error;
  d.location = path;
  d.message = what;
  // The strict parsers reject some malformations outright; map their
  // failure classes onto the same stable codes the in-memory passes use,
  // so a fixture triggers one code no matter which layer catches it.
  if (contains(what, "redefined")) {
    d.code = "NET001";
    d.fix_hint = "each net may have exactly one driver";
  } else if (contains(what, "combinational loop") ||
             contains(what, "combinational cycle")) {
    d.code = "NET002";
    d.fix_hint = "break the loop with a flip-flop";
  } else if (contains(what, "undriven")) {
    d.code = "NET003";
    d.fix_hint = "drive the net or remove the reference";
  } else if (contains(what, "trust category out of range") ||
             contains(what, "accepted category out of range")) {
    d.code = "SPEC001";
    d.fix_hint = "raise 'categories' or lower the offending category";
  } else if (contains(what, "accept its own trust category")) {
    d.code = "SPEC003";
    d.fix_hint = "a module may always see its own data; extend 'accepts'";
  } else if (contains(what, "spec parse error")) {
    d.code = "SPEC005";
    d.fix_hint = "fix the malformed line; see the message for its number";
  } else if (contains(what, "rsn parse error") ||
             contains(what, "icl parse error")) {
    d.code = "IO003";
    d.fix_hint = "fix the malformed line; see the message for its number";
  } else {
    d.code = "IO001";
  }
  return d;
}

LoadedFiles load_files(const std::vector<std::string>& paths,
                       const std::string& icl_top) {
  LoadedFiles out;
  std::vector<std::string> spec_paths;
  std::map<std::string, netlist::NodeId> circuit_nets;
  for (const std::string& path : paths) {
    try {
      if (ends_with(path, ".rsn") || ends_with(path, ".icl")) {
        if (out.doc) {
          add_io_error(out, path,
                       "second network file (already loaded '" +
                           out.network_source + "')");
          continue;
        }
        std::ifstream f = open_input(path);
        out.doc = ends_with(path, ".icl") ? rsn::icl::load_icl(f, icl_top)
                                          : rsn::read_rsn(f);
        out.network_source = path;
      } else if (ends_with(path, ".v")) {
        if (out.circuit) {
          add_io_error(out, path,
                       "second circuit file (already loaded '" +
                           out.circuit_source + "')");
          continue;
        }
        std::ifstream f = open_input(path);
        netlist::verilog::ParsedCircuit parsed = netlist::verilog::parse(f);
        out.circuit = std::move(parsed.netlist);
        out.circuit_source = path;
        for (const std::string& o : parsed.outputs) {
          auto it = parsed.nets.find(o);
          if (it != parsed.nets.end()) out.circuit_outputs.push_back(it->second);
        }
        circuit_nets = std::move(parsed.nets);
      } else if (ends_with(path, ".spec")) {
        // Deferred: specs with module *names* need the network's name
        // table, which may be loaded after the spec on the command line.
        spec_paths.push_back(path);
      } else {
        add_io_error(out, path,
                     "unknown file extension (expected .rsn, .icl, .v or "
                     ".spec)");
      }
    } catch (const std::exception& e) {
      out.diagnostics.push_back(classify_load_error(path, e.what()));
    }
  }
  // Attachment resolution (needs both network and circuit, in either
  // command-line order): capture sources become live roots for the
  // dead-logic pass; unknown nets are findings, not hard failures.
  if (out.doc && out.circuit) {
    for (const rsn::Attachment& a : out.doc->attachments) {
      auto it = circuit_nets.find(a.net);
      if (it == circuit_nets.end()) {
        Diagnostic d;
        d.code = "IO002";
        d.severity = Severity::Error;
        d.location = out.network_source + ": register '" +
                     out.doc->network.elem(a.reg).name + "'";
        d.message = std::string(a.is_update ? "update" : "capture") +
                    " attachment references unknown circuit net '" + a.net +
                    "'";
        d.fix_hint = "pair the network with the circuit it was generated for";
        out.diagnostics.push_back(std::move(d));
      } else if (!a.is_update) {
        out.circuit_roots.push_back(it->second);
      }
    }
  }
  for (const std::string& path : spec_paths) {
    if (out.spec) {
      add_io_error(out, path,
                   "second spec file (already loaded '" + out.spec_source +
                       "')");
      continue;
    }
    try {
      std::ifstream f = open_input(path);
      out.spec = security::read_spec(
          f, out.doc ? out.doc->module_names : std::vector<std::string>{});
      out.spec_source = path;
    } catch (const std::exception& e) {
      out.diagnostics.push_back(classify_load_error(path, e.what()));
    }
  }
  return out;
}

std::vector<Diagnostic> lint_files(const Registry& registry,
                                   const std::vector<std::string>& paths,
                                   const std::string& icl_top,
                                   std::size_t jobs) {
  LoadedFiles loaded = load_files(paths, icl_top);
  LintInput input;
  if (loaded.circuit) {
    input.circuit = &*loaded.circuit;
    input.circuit_outputs = loaded.circuit_outputs;
    input.circuit_roots = loaded.circuit_roots;
    input.circuit_source = loaded.circuit_source;
  }
  if (loaded.doc) {
    input.network = &loaded.doc->network;
    input.network_source = loaded.network_source;
    input.module_names = &loaded.doc->module_names;
  }
  if (loaded.spec) {
    input.spec = &*loaded.spec;
    input.spec_source = loaded.spec_source;
  }
  std::vector<Diagnostic> diags = std::move(loaded.diagnostics);
  ThreadPool pool(ThreadPool::resolve_num_threads(jobs));
  std::vector<Diagnostic> found = registry.run(input, &pool);
  diags.insert(diags.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  return diags;
}

}  // namespace rsnsec::lint
