#pragma once

#include <memory>
#include <vector>

#include "lint/pass.hpp"

namespace rsnsec {
class ThreadPool;
}

namespace rsnsec::lint {

/// Ordered collection of lint passes. run() executes every applicable
/// pass over the input and returns the combined findings, ordered by
/// registration order (netlist checks first, then RSN, then spec for the
/// default registry) — diagnostics of one pass stay contiguous so reports
/// group naturally.
class Registry {
 public:
  /// An empty registry (for custom pass sets in tests/tools).
  Registry() = default;

  /// All built-in passes of passes.hpp, in catalog order.
  static Registry with_default_passes();

  void add(std::unique_ptr<Pass> pass);

  const std::vector<std::unique_ptr<Pass>>& passes() const {
    return passes_;
  }

  /// Runs every applicable pass. With a multi-thread `pool`, passes run
  /// concurrently (they only read the shared models) into per-pass
  /// buffers that are concatenated in registration order, so the output
  /// is identical for any thread count.
  std::vector<Diagnostic> run(const LintInput& input,
                              ThreadPool* pool = nullptr) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace rsnsec::lint
