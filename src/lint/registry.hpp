#pragma once

#include <memory>
#include <vector>

#include "lint/pass.hpp"

namespace rsnsec::lint {

/// Ordered collection of lint passes. run() executes every applicable
/// pass over the input and returns the combined findings, ordered by
/// registration order (netlist checks first, then RSN, then spec for the
/// default registry) — diagnostics of one pass stay contiguous so reports
/// group naturally.
class Registry {
 public:
  /// An empty registry (for custom pass sets in tests/tools).
  Registry() = default;

  /// All built-in passes of passes.hpp, in catalog order.
  static Registry with_default_passes();

  void add(std::unique_ptr<Pass> pass);

  const std::vector<std::unique_ptr<Pass>>& passes() const {
    return passes_;
  }

  std::vector<Diagnostic> run(const LintInput& input) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace rsnsec::lint
