#include "lint/registry.hpp"

#include "lint/passes.hpp"

namespace rsnsec::lint {

Registry Registry::with_default_passes() {
  Registry r;
  r.add(make_netlist_multi_driver_pass());
  r.add(make_netlist_comb_loop_pass());
  r.add(make_netlist_dangling_input_pass());
  r.add(make_netlist_dead_logic_pass());
  r.add(make_rsn_acyclicity_pass());
  r.add(make_rsn_connectivity_pass());
  r.add(make_rsn_reachability_pass());
  r.add(make_rsn_dead_mux_pass());
  r.add(make_spec_consistency_pass());
  r.add(make_spec_cross_reference_pass());
  return r;
}

void Registry::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

std::vector<Diagnostic> Registry::run(const LintInput& input) const {
  std::vector<Diagnostic> diags;
  Sink sink(diags);
  for (const auto& pass : passes_) {
    if (pass->applicable(input)) pass->run(input, sink);
  }
  return diags;
}

}  // namespace rsnsec::lint
