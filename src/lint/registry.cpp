#include "lint/registry.hpp"

#include "lint/passes.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::lint {

Registry Registry::with_default_passes() {
  Registry r;
  r.add(make_netlist_multi_driver_pass());
  r.add(make_netlist_comb_loop_pass());
  r.add(make_netlist_dangling_input_pass());
  r.add(make_netlist_dead_logic_pass());
  r.add(make_rsn_acyclicity_pass());
  r.add(make_rsn_connectivity_pass());
  r.add(make_rsn_reachability_pass());
  r.add(make_rsn_dead_mux_pass());
  r.add(make_spec_consistency_pass());
  r.add(make_spec_cross_reference_pass());
  return r;
}

void Registry::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

std::vector<Diagnostic> Registry::run(const LintInput& input,
                                      ThreadPool* pool) const {
  // Per-pass buffers keep each pass's findings contiguous and make the
  // concatenation order (= registration order) independent of how the
  // passes were scheduled across threads.
  std::vector<std::vector<Diagnostic>> per_pass(passes_.size());
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span lint_span(trace, "lint.run");
  auto run_pass = [&](std::size_t p) {
    if (passes_[p]->applicable(input)) {
      obs::Span span(trace,
                     std::string("lint.pass.") + passes_[p]->name());
      Sink sink(per_pass[p]);
      passes_[p]->run(input, sink);
      if (trace != nullptr) {
        trace->counter("lint.passes_run").add(1);
        trace->counter("lint.diagnostics").add(per_pass[p].size());
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for(0, passes_.size(), run_pass, /*grain=*/1);
  } else {
    for (std::size_t p = 0; p < passes_.size(); ++p) run_pass(p);
  }
  std::vector<Diagnostic> diags;
  for (std::vector<Diagnostic>& d : per_pass)
    diags.insert(diags.end(), std::make_move_iterator(d.begin()),
                 std::make_move_iterator(d.end()));
  return diags;
}

}  // namespace rsnsec::lint
