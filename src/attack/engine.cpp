#include "attack/engine.hpp"

#include <algorithm>
#include <sstream>

#include "attack/gf2.hpp"
#include "attack/scansat.hpp"
#include "dep/analyzer.hpp"
#include "flow/certify.hpp"
#include "obs/trace.hpp"
#include "rsn/pathfind.hpp"
#include "security/hybrid.hpp"
#include "util/dep_matrix.hpp"

namespace rsnsec::attack {

bool ScenarioResult::any_recovered() const {
  return std::any_of(outcomes.begin(), outcomes.end(),
                     [](const AttackOutcome& o) { return o.recovered(); });
}

bool ScenarioResult::any_inconclusive() const {
  return std::any_of(outcomes.begin(), outcomes.end(),
                     [](const AttackOutcome& o) {
                       return o.verdict == Verdict::Inconclusive;
                     });
}

bool AttackReport::any_recovered() const {
  return std::any_of(scenarios.begin(), scenarios.end(),
                     [](const ScenarioResult& s) { return s.any_recovered(); });
}

bool AttackReport::any_inconclusive() const {
  return std::any_of(
      scenarios.begin(), scenarios.end(),
      [](const ScenarioResult& s) { return s.any_inconclusive(); });
}

bool AttackReport::soundness_bug() const {
  return std::any_of(scenarios.begin(), scenarios.end(),
                     [](const ScenarioResult& s) {
                       return s.cross.ran && !s.cross.consistent;
                     });
}

namespace {

/// Verdict-vs-static-analysis consistency for one scenario. A recovered
/// secret comes with a replayed witness, so the static side must agree on
/// every layer: the dependency matrix must contain the witness's first hop,
/// token propagation must report a violating pair, and the certifier must
/// refuse to certify. An Inconclusive verdict constrains nothing (that is
/// the point of not laundering Unknown into NotRecovered).
CrossCheck cross_check_scenario(const netlist::Netlist& nl,
                                const rsn::Rsn& network,
                                const benchgen::RedTeamScenario& scenario,
                                const std::vector<AttackOutcome>& outcomes,
                                const AttackOptions& options) {
  obs::Span span(obs::TraceSession::active(), "attack.cross_check");
  CrossCheck cross;
  cross.ran = true;

  dep::DepOptions dopt;
  dopt.seed = options.seed;
  dopt.sat_conflict_limit = options.sat_conflict_limit;
  dopt.num_threads = options.num_threads;
  dep::DependencyAnalyzer deps(nl, network, dopt);
  deps.run();

  security::TokenTable tokens(scenario.spec, scenario.spec.num_modules());
  security::HybridAnalyzer hybrid(nl, network, deps, scenario.spec, tokens);
  cross.violating_pairs = hybrid.count_violating_pairs(network);
  cross.certified = flow::certify(nl, network, scenario.spec).certified();

  for (const dep::CaptureDep& d :
       deps.capture_deps(scenario.carrier_reg, scenario.carrier_ff)) {
    if (d.circuit_ff == scenario.secret_ff && d.kind == DepKind::Path) {
      cross.dep_secret_edge = true;
      break;
    }
  }

  for (const AttackOutcome& o : outcomes) {
    if (!o.recovered()) continue;
    if (!o.differential.leaks) {
      cross.consistent = false;
      cross.notes.push_back(o.method +
                            ": Recovered verdict without a replayed "
                            "differential witness");
    }
    if (cross.violating_pairs == 0) {
      cross.consistent = false;
      cross.notes.push_back(o.method +
                            ": secret recovered but the dependency-matrix "
                            "propagation reports no violating pair");
    }
    if (cross.certified) {
      cross.consistent = false;
      cross.notes.push_back(o.method +
                            ": secret recovered from a network the SAT-free "
                            "certifier certified as secure");
    }
    if (!cross.dep_secret_edge) {
      cross.consistent = false;
      cross.notes.push_back(o.method +
                            ": secret recovered but the capture-dependency "
                            "matrix misses the secret-to-carrier edge");
    }
  }
  if (!cross.consistent) obs::bump("attack.soundness_bugs");
  return cross;
}

}  // namespace

AttackReport run_attacks(const netlist::Netlist& nl, const rsn::Rsn& network,
                         const std::vector<benchgen::RedTeamScenario>& scenarios,
                         const AttackOptions& options) {
  obs::Span span(obs::TraceSession::active(), "attack.run");
  AttackReport report;
  for (const benchgen::RedTeamScenario& scenario : scenarios) {
    ScenarioResult res;
    res.scenario = scenario.name;
    res.kind = scenario.kind;
    {
      obs::Span s(obs::TraceSession::active(), "attack.scansat");
      ScanSatOptions sopt;
      sopt.seed = options.seed;
      sopt.conflict_limit = options.sat_conflict_limit;
      res.outcomes.push_back(scansat_attack(nl, network, scenario, sopt));
    }
    {
      obs::Span s(obs::TraceSession::active(), "attack.gf_flush");
      GfFlushOptions gopt;
      gopt.seed = options.seed;
      gopt.rounds = options.gf_rounds;
      gopt.max_unknowns = options.gf_max_unknowns;
      res.outcomes.push_back(gf_flush_attack(nl, network, scenario, gopt));
    }
    if (options.cross_check)
      res.cross =
          cross_check_scenario(nl, network, scenario, res.outcomes, options);
    report.scenarios.push_back(std::move(res));
  }
  return report;
}

namespace {

/// Generic capture/flush/update schedule moving data from `carrier` toward
/// `victim`: one configuration covering both if it exists, else a carrier
/// flush phase followed by a victim observation phase.
Schedule make_flush_schedule(const rsn::Rsn& network, rsn::ElemId carrier,
                             rsn::ElemId victim, std::size_t rounds,
                             std::size_t max_shift) {
  auto plan = rsn::find_path_through(network, {carrier, victim});
  std::optional<rsn::PathPlan> plan2;
  if (!plan) {
    plan = rsn::find_path_through(network, {carrier});
    plan2 = rsn::find_path_through(network, {victim});
  }
  Schedule sched;
  if (!plan) return sched;
  for (const rsn::MuxSetting& m : plan->settings)
    sched.push_back(ScanOp::set_mux(m.mux, m.sel));
  std::size_t depth = std::min(plan->chain.size(), max_shift);
  for (std::size_t r = 0; r < std::max<std::size_t>(1, rounds); ++r) {
    sched.push_back(ScanOp::capture());
    for (std::size_t t = 0; t < depth; ++t) sched.push_back(ScanOp::shift());
    sched.push_back(ScanOp::update());
    sched.push_back(ScanOp::clock(1));
  }
  if (plan2) {
    for (const rsn::MuxSetting& m : plan2->settings)
      sched.push_back(ScanOp::set_mux(m.mux, m.sel));
    sched.push_back(ScanOp::capture());
    std::size_t d2 = std::min(plan2->chain.size(), max_shift);
    for (std::size_t t = 0; t < d2; ++t) sched.push_back(ScanOp::shift());
  }
  return sched;
}

struct ProbeSecret {
  SecretLoc loc;
  rsn::ElemId carrier = rsn::no_elem;  ///< flush phase start register
  std::string what;
};

}  // namespace

std::optional<std::string> verify_no_leakage(
    const netlist::Netlist& nl, const rsn::Rsn& network,
    const security::SecuritySpec& spec, const ProbeOptions& options,
    ProbeStats* stats) {
  obs::Span span(obs::TraceSession::active(), "attack.verify_no_leakage");
  security::TokenTable tokens(spec, spec.num_modules());

  // Victim registers: owned by a module whose trust category rejects at
  // least one token of the spec.
  std::vector<rsn::ElemId> victims;
  for (rsn::ElemId reg : network.registers()) {
    netlist::ModuleId m = network.elem(reg).module;
    if (m == netlist::no_module) continue;
    if (tokens.bad(spec.policy(m).trust).any()) victims.push_back(reg);
  }
  if (victims.empty()) return std::nullopt;

  // Secret candidates per token-generating source module: the scan state
  // of its registers plus a few of its circuit flip-flops.
  std::vector<ProbeSecret> secrets;
  for (std::size_t m = 0; m < spec.num_modules(); ++m) {
    netlist::ModuleId mod = static_cast<netlist::ModuleId>(m);
    if (tokens.token_of(mod) < 0) continue;  // permissive data: no token
    std::size_t reg_picks = 0;
    for (rsn::ElemId reg : network.registers()) {
      if (network.elem(reg).module != mod || reg_picks >= 2) continue;
      ++reg_picks;
      secrets.push_back({SecretLoc::scan_ff(reg, 0), reg,
                         "scan FF 0 of register " + network.elem(reg).name});
    }
    std::size_t ff_picks = 0;
    rsn::ElemId carrier =
        reg_picks > 0 ? secrets[secrets.size() - reg_picks].carrier
                      : rsn::no_elem;
    for (netlist::NodeId ff : nl.ffs()) {
      if (nl.node(ff).module != mod || ff_picks >= 2) continue;
      ++ff_picks;
      secrets.push_back({SecretLoc::circuit_ff(ff), carrier,
                         "circuit FF " + nl.node(ff).name});
    }
  }

  std::size_t probes = 0;
  for (const ProbeSecret& secret : secrets) {
    for (rsn::ElemId victim : victims) {
      if (probes >= options.max_probes) return std::nullopt;
      rsn::ElemId carrier =
          secret.carrier != rsn::no_elem ? secret.carrier : victim;
      Schedule sched = make_flush_schedule(network, carrier, victim,
                                           options.rounds, options.max_shift);
      if (sched.empty()) continue;
      ++probes;
      if (stats) ++stats->probes;
      obs::bump("attack.probes");
      DifferentialResult diff = differential_replay(
          nl, network, sched, secret.loc, victim, options.seed);
      if (diff.leaks) {
        if (stats) ++stats->leaks;
        std::ostringstream os;
        os << secret.what << " leaks into register "
           << network.elem(victim).name << " (differential at "
           << diff.witness.diff_ops.size() << " schedule ops over "
           << diff.shifts << " shifts)";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

}  // namespace rsnsec::attack
