#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attack/model.hpp"
#include "benchgen/redteam.hpp"
#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"
#include "security/spec.hpp"

namespace rsnsec::attack {

struct AttackOptions {
  std::uint64_t seed = 1;
  /// SAT conflict budget per sensitization query and for the cross-check
  /// dependency analysis.
  std::uint64_t sat_conflict_limit = 100000;
  std::size_t gf_rounds = 3;
  std::size_t gf_max_unknowns = 40;
  /// Cross-check every verdict against the dependency matrix and the
  /// SAT-free certifier (leak recovered => violating pair must exist).
  bool cross_check = true;
  /// Threads for the cross-check dependency analysis (0 = auto).
  std::size_t num_threads = 0;
};

/// Consistency of the attack verdicts with the static analyses. Any
/// inconsistency is a soundness bug in one of the two sides: a recovered
/// leak is a replayed, bit-exact counterexample, so "no violating pair"
/// or a certified network cannot be right at the same time.
struct CrossCheck {
  bool ran = false;
  std::size_t violating_pairs = 0;  ///< dependency-matrix propagation
  bool certified = false;           ///< SAT-free flow certifier verdict
  /// Capture-dependency matrix records the witness's first hop
  /// (secret FF -> carrier scan FF).
  bool dep_secret_edge = false;
  bool consistent = true;
  std::vector<std::string> notes;
};

/// All attack outcomes for one planted scenario.
struct ScenarioResult {
  std::string scenario;
  benchgen::ScenarioKind kind = benchgen::ScenarioKind::PureScanPath;
  std::vector<AttackOutcome> outcomes;
  CrossCheck cross;

  bool any_recovered() const;
  bool any_inconclusive() const;
};

struct AttackReport {
  std::vector<ScenarioResult> scenarios;

  bool any_recovered() const;
  bool any_inconclusive() const;
  /// True if any scenario's verdicts contradict the static analyses.
  bool soundness_bug() const;
};

/// Mounts the ScanSAT and GF-Flush attacks against every scenario and
/// (optionally) cross-checks each verdict against the dependency matrix
/// and `certify` under the scenario's spec.
AttackReport run_attacks(
    const netlist::Netlist& nl, const rsn::Rsn& network,
    const std::vector<benchgen::RedTeamScenario>& scenarios,
    const AttackOptions& options = {});

struct ProbeOptions {
  std::uint64_t seed = 1;
  /// Differential probes (secret-candidate x victim pairs) to run.
  std::size_t max_probes = 12;
  /// Capture/flush/update rounds per probe schedule.
  std::size_t rounds = 2;
  /// Shift-depth cap per round (bounds replay cost on large networks).
  std::size_t max_shift = 512;
};

struct ProbeStats {
  std::size_t probes = 0;
  std::size_t leaks = 0;
};

/// Bounded differential non-leakage probe for secured networks: plants
/// differential secrets into data the spec marks sensitive (scan state
/// and circuit FFs of token-generating modules) and replays generic flush
/// schedules, watching untrusted registers. Returns a description of the
/// first leak found, or nullopt. Sound as a post-`secure` check: any
/// reported leak is a replayed counterexample to the security claim —
/// `secure --verify` treats it as a hard error. Absence of leaks is not a
/// proof (the probe is bounded); the proof side is `certify`.
std::optional<std::string> verify_no_leakage(const netlist::Netlist& nl,
                                             const rsn::Rsn& network,
                                             const security::SecuritySpec& spec,
                                             const ProbeOptions& options = {},
                                             ProbeStats* stats = nullptr);

}  // namespace rsnsec::attack
