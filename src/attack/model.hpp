#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"

namespace rsnsec::attack {

/// One primitive operation of an attack schedule. A schedule is the
/// attacker's complete interaction transcript with the device: test-bus
/// configuration writes (SetMux), primary-input stimuli (SetInput) and the
/// capture/shift/update/functional-clock phases of the scan protocol.
/// Replay is bit-exact through rsn::CsuSimulator, so a schedule that leaks
/// is a concrete counterexample, not a claim.
struct ScanOp {
  enum class Kind : std::uint8_t {
    SetMux,        ///< set a scan multiplexer select (reconfiguration)
    SetInput,      ///< drive a primary input of the circuit
    Capture,       ///< capture phase on the active path
    Shift,         ///< one shift cycle (scan-in `value`, observe scan-out)
    Update,        ///< update phase on the active path
    ClockCircuit,  ///< `cycles` functional clock cycles of the circuit
  };
  Kind kind = Kind::Capture;
  rsn::ElemId mux = rsn::no_elem;           ///< SetMux
  std::size_t sel = 0;                      ///< SetMux
  netlist::NodeId node = netlist::no_node;  ///< SetInput
  std::uint64_t value = 0;                  ///< SetInput / Shift scan-in word
  std::size_t cycles = 1;                   ///< ClockCircuit

  static ScanOp set_mux(rsn::ElemId mux, std::size_t sel);
  static ScanOp set_input(netlist::NodeId node, std::uint64_t value);
  static ScanOp capture();
  static ScanOp shift(std::uint64_t scan_in = 0);
  static ScanOp update();
  static ScanOp clock(std::size_t cycles);
};

using Schedule = std::vector<ScanOp>;

/// Location of a planted (or probed) secret bit: either a circuit
/// flip-flop or the initial state of one scan flip-flop.
struct SecretLoc {
  netlist::NodeId node = netlist::no_node;  ///< circuit FF, or no_node
  rsn::ElemId reg = rsn::no_elem;           ///< scan register, or no_elem
  std::size_t ff = 0;                       ///< scan FF index within reg

  bool is_scan() const { return reg != rsn::no_elem; }
  static SecretLoc circuit_ff(netlist::NodeId node);
  static SecretLoc scan_ff(rsn::ElemId reg, std::size_t ff);
};

/// Deterministic pre-schedule device state: every primary input, circuit
/// flip-flop and scan flip-flop receives a pseudo-random broadcast word
/// (all-zeros or all-ones) drawn from Rng(seed) in creation order. The
/// attacker models know the seed (known-state threat model; only the
/// secret value is unknown), so this function is the shared definition of
/// "the device state" for replay, SAT leaf pinning and GF(2) algebra.
struct SeededState {
  /// Indexed by NodeId; meaningful for inputs and flip-flops, 0 elsewhere.
  std::vector<std::uint64_t> node_value;
  /// scan_value[register creation order][ff index].
  std::vector<std::vector<std::uint64_t>> scan_value;
};
SeededState seed_replay_state(const netlist::Netlist& nl,
                              const rsn::Rsn& network, std::uint64_t seed);

/// Initial state of one replay: the seeded state with explicit overrides
/// applied on top (the secret value, or GF(2) lane superpositions).
struct ReplayInit {
  std::uint64_t seed = 1;
  std::vector<std::pair<netlist::NodeId, std::uint64_t>> node_overrides;
  /// (register, ff, word) overrides of initial scan state.
  std::vector<std::tuple<rsn::ElemId, std::size_t, std::uint64_t>>
      scan_overrides;
};

/// Everything one replay observes. All words are 64-bit packed parallel
/// patterns (the CSU simulator's native width), so one replay evaluates up
/// to 64 lanes of initial-state variations at once.
struct ReplayTrace {
  /// One word per Shift op, in schedule order: the bits leaving scan-out.
  std::vector<std::uint64_t> scan_out;
  /// victim[k][f]: value of victim scan FF f after schedule op k.
  std::vector<std::vector<std::uint64_t>> victim;
};

/// Replays `schedule` on a private copy of `network` coupled to `nl`,
/// starting from the init state, and samples the victim register after
/// every op. Deterministic: equal arguments give bit-identical traces.
ReplayTrace replay_schedule(const netlist::Netlist& nl, rsn::Rsn network,
                            const Schedule& schedule, const ReplayInit& init,
                            rsn::ElemId victim_reg);

/// A replayable leak witness: the schedule plus the differential evidence
/// that the victim register's contents depend on the secret bit.
struct Witness {
  Schedule schedule;
  SecretLoc secret;
  rsn::ElemId victim_reg = rsn::no_elem;
  std::uint64_t seed = 1;
  /// Schedule op indices after which the victim state differed between the
  /// secret=0 and secret=1 replays.
  std::vector<std::size_t> diff_ops;
  bool scan_out_differs = false;
};

struct DifferentialResult {
  bool leaks = false;
  Witness witness;
  std::size_t shifts = 0;
  std::size_t captures = 0;
  std::size_t updates = 0;
};

/// Replays `schedule` twice — secret=0 and secret=1, every other input,
/// circuit and scan bit identical (seeded from `seed`) — and reports
/// whether and where the victim register's contents differ. Any diff is a
/// bit-exact end-to-end leak of the secret into the victim module.
DifferentialResult differential_replay(const netlist::Netlist& nl,
                                       const rsn::Rsn& network,
                                       const Schedule& schedule,
                                       const SecretLoc& secret,
                                       rsn::ElemId victim_reg,
                                       std::uint64_t seed);

/// Attacker-side value estimate for a witnessed leak: replays the witness
/// schedule on the "device" (secret = `device_value`) and matches the
/// victim trace against the secret=0 and secret=1 templates at the
/// differing ops. Returns 0 or 1, or -1 when the device trace matches
/// neither (or both) templates consistently.
int match_secret(const netlist::Netlist& nl, const rsn::Rsn& network,
                 const Witness& witness, bool device_value);

/// Attack verdicts. Inconclusive is load-bearing: a SAT Unknown (conflict
/// budget exhausted) must never be laundered into "attack infeasible" —
/// NotRecovered is reserved for genuinely failed or proven-impossible
/// attacks (see DESIGN.md, Unknown-verdict audit).
enum class Verdict : std::uint8_t { Recovered, NotRecovered, Inconclusive };
const char* verdict_name(Verdict v);

/// Outcome of one attack method on one scenario.
struct AttackOutcome {
  std::string method;    ///< "scansat" | "gf-flush"
  std::string scenario;  ///< scenario name ("pure" | "hybrid")
  Verdict verdict = Verdict::NotRecovered;
  bool recovered_value = false;  ///< the attacker's estimate of the secret
  bool secret_value = false;     ///< ground truth (harness side only)
  DifferentialResult differential;  ///< witness replay evidence
  std::string note;                 ///< failure/limit diagnostics
  std::uint64_t sat_calls = 0;
  double seconds = 0.0;

  bool recovered() const { return verdict == Verdict::Recovered; }
};

}  // namespace rsnsec::attack
