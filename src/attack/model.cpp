#include "attack/model.hpp"

#include "obs/trace.hpp"
#include "rsn/csu_sim.hpp"
#include "util/rng.hpp"

namespace rsnsec::attack {

ScanOp ScanOp::set_mux(rsn::ElemId mux, std::size_t sel) {
  ScanOp op;
  op.kind = Kind::SetMux;
  op.mux = mux;
  op.sel = sel;
  return op;
}

ScanOp ScanOp::set_input(netlist::NodeId node, std::uint64_t value) {
  ScanOp op;
  op.kind = Kind::SetInput;
  op.node = node;
  op.value = value;
  return op;
}

ScanOp ScanOp::capture() {
  ScanOp op;
  op.kind = Kind::Capture;
  return op;
}

ScanOp ScanOp::shift(std::uint64_t scan_in) {
  ScanOp op;
  op.kind = Kind::Shift;
  op.value = scan_in;
  return op;
}

ScanOp ScanOp::update() {
  ScanOp op;
  op.kind = Kind::Update;
  return op;
}

ScanOp ScanOp::clock(std::size_t cycles) {
  ScanOp op;
  op.kind = Kind::ClockCircuit;
  op.cycles = cycles;
  return op;
}

SecretLoc SecretLoc::circuit_ff(netlist::NodeId node) {
  SecretLoc loc;
  loc.node = node;
  return loc;
}

SecretLoc SecretLoc::scan_ff(rsn::ElemId reg, std::size_t ff) {
  SecretLoc loc;
  loc.reg = reg;
  loc.ff = ff;
  return loc;
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Recovered:
      return "recovered";
    case Verdict::NotRecovered:
      return "not-recovered";
    case Verdict::Inconclusive:
      return "inconclusive";
  }
  return "?";
}

SeededState seed_replay_state(const netlist::Netlist& nl,
                              const rsn::Rsn& network, std::uint64_t seed) {
  SeededState s;
  s.node_value.assign(nl.num_nodes(), 0);
  Rng rng(seed);
  auto word = [&rng] { return (rng.next_u32() & 1u) ? ~0ull : 0ull; };
  for (netlist::NodeId in : nl.inputs())
    s.node_value[static_cast<std::size_t>(in)] = word();
  for (netlist::NodeId ff : nl.ffs())
    s.node_value[static_cast<std::size_t>(ff)] = word();
  const auto& regs = network.registers();
  s.scan_value.resize(regs.size());
  for (std::size_t r = 0; r < regs.size(); ++r) {
    s.scan_value[r].resize(network.elem(regs[r]).ffs.size());
    for (std::uint64_t& v : s.scan_value[r]) v = word();
  }
  return s;
}

ReplayTrace replay_schedule(const netlist::Netlist& nl, rsn::Rsn network,
                            const Schedule& schedule, const ReplayInit& init,
                            rsn::ElemId victim_reg) {
  // The simulator holds a reference to our private copy of the network, so
  // SetMux ops below reconfigure exactly this replay.
  rsn::CsuSimulator sim(network, nl);
  SeededState seeded = seed_replay_state(nl, network, init.seed);
  for (netlist::NodeId in : nl.inputs())
    sim.circuit().set_value(in, seeded.node_value[static_cast<std::size_t>(in)]);
  for (netlist::NodeId ff : nl.ffs())
    sim.circuit().set_value(ff, seeded.node_value[static_cast<std::size_t>(ff)]);
  const auto& regs = network.registers();
  for (std::size_t r = 0; r < regs.size(); ++r)
    for (std::size_t f = 0; f < seeded.scan_value[r].size(); ++f)
      sim.set_scan_value(regs[r], f, seeded.scan_value[r][f]);
  for (const auto& [node, v] : init.node_overrides)
    sim.circuit().set_value(node, v);
  for (const auto& [reg, f, v] : init.scan_overrides)
    sim.set_scan_value(reg, f, v);

  ReplayTrace trace;
  const std::size_t victim_ffs = network.elem(victim_reg).ffs.size();
  auto sample = [&] {
    std::vector<std::uint64_t> row(victim_ffs);
    for (std::size_t f = 0; f < victim_ffs; ++f)
      row[f] = sim.scan_value(victim_reg, f);
    trace.victim.push_back(std::move(row));
  };
  for (const ScanOp& op : schedule) {
    switch (op.kind) {
      case ScanOp::Kind::SetMux:
        network.set_mux_select(op.mux, op.sel);
        break;
      case ScanOp::Kind::SetInput:
        sim.circuit().set_value(op.node, op.value);
        break;
      case ScanOp::Kind::Capture:
        sim.capture();
        obs::bump("attack.captures");
        break;
      case ScanOp::Kind::Shift:
        trace.scan_out.push_back(sim.shift(op.value));
        obs::bump("attack.shifts");
        break;
      case ScanOp::Kind::Update:
        sim.update();
        obs::bump("attack.updates");
        break;
      case ScanOp::Kind::ClockCircuit:
        sim.clock_circuit(op.cycles);
        break;
    }
    sample();
  }
  obs::bump("attack.replays");
  return trace;
}

DifferentialResult differential_replay(const netlist::Netlist& nl,
                                       const rsn::Rsn& network,
                                       const Schedule& schedule,
                                       const SecretLoc& secret,
                                       rsn::ElemId victim_reg,
                                       std::uint64_t seed) {
  ReplayInit i0, i1;
  i0.seed = i1.seed = seed;
  if (secret.is_scan()) {
    i0.scan_overrides.push_back({secret.reg, secret.ff, 0});
    i1.scan_overrides.push_back({secret.reg, secret.ff, ~0ull});
  } else {
    i0.node_overrides.push_back({secret.node, 0});
    i1.node_overrides.push_back({secret.node, ~0ull});
  }
  ReplayTrace t0 = replay_schedule(nl, network, schedule, i0, victim_reg);
  ReplayTrace t1 = replay_schedule(nl, network, schedule, i1, victim_reg);

  DifferentialResult res;
  res.witness.schedule = schedule;
  res.witness.secret = secret;
  res.witness.victim_reg = victim_reg;
  res.witness.seed = seed;
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    if (t0.victim[k] != t1.victim[k]) res.witness.diff_ops.push_back(k);
    switch (schedule[k].kind) {
      case ScanOp::Kind::Shift:
        ++res.shifts;
        break;
      case ScanOp::Kind::Capture:
        ++res.captures;
        break;
      case ScanOp::Kind::Update:
        ++res.updates;
        break;
      default:
        break;
    }
  }
  res.witness.scan_out_differs = t0.scan_out != t1.scan_out;
  res.leaks = !res.witness.diff_ops.empty();
  if (res.leaks) obs::bump("attack.leaks");
  return res;
}

int match_secret(const netlist::Netlist& nl, const rsn::Rsn& network,
                 const Witness& witness, bool device_value) {
  auto init_with = [&](std::uint64_t word) {
    ReplayInit init;
    init.seed = witness.seed;
    if (witness.secret.is_scan())
      init.scan_overrides.push_back(
          {witness.secret.reg, witness.secret.ff, word});
    else
      init.node_overrides.push_back({witness.secret.node, word});
    return init;
  };
  ReplayTrace t0 = replay_schedule(nl, network, witness.schedule,
                                   init_with(0), witness.victim_reg);
  ReplayTrace t1 = replay_schedule(nl, network, witness.schedule,
                                   init_with(~0ull), witness.victim_reg);
  ReplayTrace td =
      replay_schedule(nl, network, witness.schedule,
                      init_with(device_value ? ~0ull : 0), witness.victim_reg);
  std::size_t vote0 = 0, vote1 = 0;
  for (std::size_t k : witness.diff_ops) {
    const auto& v0 = t0.victim[k];
    const auto& v1 = t1.victim[k];
    const auto& vd = td.victim[k];
    if (vd == v0 && vd != v1) ++vote0;
    if (vd == v1 && vd != v0) ++vote1;
  }
  if (vote1 > 0 && vote0 == 0) return 1;
  if (vote0 > 0 && vote1 == 0) return 0;
  return -1;
}

}  // namespace rsnsec::attack
