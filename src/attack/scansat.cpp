#include "attack/scansat.hpp"

#include <algorithm>
#include <array>
#include <chrono>

#include "obs/trace.hpp"
#include "rsn/pathfind.hpp"
#include "sat/encode.hpp"

namespace rsnsec::attack {

SensitizeOutcome sensitize_cone(const netlist::Netlist& nl,
                                netlist::NodeId root,
                                netlist::NodeId toggle_leaf,
                                std::uint64_t conflict_limit) {
  SensitizeOutcome out;
  if (root == toggle_leaf) {
    // Degenerate cone: the victim captures the toggle node directly.
    out.result = sat::Result::Sat;
    return out;
  }
  netlist::Cone cone = nl.extract_signal_cone(root);
  if (std::find(cone.leaves.begin(), cone.leaves.end(), toggle_leaf) ==
      cone.leaves.end()) {
    out.result = sat::Result::Unsat;
    return out;
  }

  sat::Solver solver;
  if (conflict_limit) solver.set_conflict_limit(conflict_limit);
  sat::Lit lit_false = sat::mk_lit(solver.new_var());
  solver.add_clause(~lit_false);
  sat::Lit lit_true = ~lit_false;

  // Two cone copies: toggle_leaf fixed to 0/1, every other leaf shared.
  std::vector<sat::Lit> shared(nl.num_nodes(), sat::lit_undef);
  std::array<std::vector<sat::Lit>, 2> copy;
  copy[0].assign(nl.num_nodes(), sat::lit_undef);
  copy[1].assign(nl.num_nodes(), sat::lit_undef);
  for (netlist::NodeId leaf : cone.leaves) {
    const netlist::Node& n = nl.node(leaf);
    std::size_t i = static_cast<std::size_t>(leaf);
    if (leaf == toggle_leaf) {
      copy[0][i] = lit_false;
      copy[1][i] = lit_true;
    } else if (n.type == netlist::GateType::Const0) {
      copy[0][i] = copy[1][i] = lit_false;
    } else if (n.type == netlist::GateType::Const1) {
      copy[0][i] = copy[1][i] = lit_true;
    } else {
      sat::Lit l = sat::mk_lit(solver.new_var());
      shared[i] = l;
      copy[0][i] = copy[1][i] = l;
    }
  }
  for (netlist::NodeId g : cone.gates) {
    const netlist::Node& n = nl.node(g);
    for (std::size_t c = 0; c < 2; ++c) {
      std::vector<sat::Lit> ins;
      ins.reserve(n.fanins.size());
      for (netlist::NodeId f : n.fanins)
        ins.push_back(copy[c][static_cast<std::size_t>(f)]);
      sat::Lit o = sat::mk_lit(solver.new_var());
      switch (n.type) {
        case netlist::GateType::And:
          sat::encode_and(solver, o, ins);
          break;
        case netlist::GateType::Nand:
          sat::encode_and(solver, ~o, ins);
          break;
        case netlist::GateType::Or:
          sat::encode_or(solver, o, ins);
          break;
        case netlist::GateType::Nor:
          sat::encode_or(solver, ~o, ins);
          break;
        case netlist::GateType::Xor:
          sat::encode_xor(solver, o, ins);
          break;
        case netlist::GateType::Xnor:
          sat::encode_xor(solver, ~o, ins);
          break;
        case netlist::GateType::Not:
          sat::encode_eq(solver, o, ~ins[0]);
          break;
        case netlist::GateType::Buf:
          sat::encode_eq(solver, o, ins[0]);
          break;
        case netlist::GateType::Mux:
          sat::encode_mux(solver, o, ins[0], ins[1], ins[2]);
          break;
        default:  // leaf types never appear in cone.gates
          sat::encode_eq(solver, o, lit_false);
          break;
      }
      copy[c][static_cast<std::size_t>(g)] = o;
    }
  }
  sat::Lit diff = sat::mk_lit(solver.new_var());
  std::array<sat::Lit, 2> roots{copy[0][static_cast<std::size_t>(root)],
                                copy[1][static_cast<std::size_t>(root)]};
  sat::encode_xor(solver, diff, roots);
  solver.add_clause(diff);

  out.result = solver.solve();
  if (out.result == sat::Result::Sat) {
    for (netlist::NodeId leaf : cone.leaves) {
      std::size_t i = static_cast<std::size_t>(leaf);
      if (leaf == toggle_leaf || shared[i] == sat::lit_undef) continue;
      bool v = solver.model_value(shared[i]);
      if (nl.node(leaf).type == netlist::GateType::Input)
        out.inputs.push_back({leaf, v});
      else if (nl.node(leaf).type == netlist::GateType::FF)
        out.ff_leaves.push_back({leaf, v});
    }
  }
  return out;
}

namespace {

void finish_with_replay(const netlist::Netlist& nl, const rsn::Rsn& network,
                        const Schedule& schedule,
                        const benchgen::RedTeamScenario& scenario,
                        std::uint64_t seed, AttackOutcome& out) {
  out.differential = differential_replay(
      nl, network, schedule, SecretLoc::circuit_ff(scenario.secret_ff),
      scenario.victim_reg, seed);
  if (!out.differential.leaks) {
    out.verdict = Verdict::NotRecovered;
    out.note = "schedule produced no differential at the victim register";
    return;
  }
  int est = match_secret(nl, network, out.differential.witness,
                         scenario.secret_value);
  if (est < 0) {
    out.verdict = Verdict::NotRecovered;
    out.note = "differential leak present but the secret value could not "
               "be matched against the replay templates";
    return;
  }
  out.recovered_value = est == 1;
  out.verdict = out.recovered_value == scenario.secret_value
                    ? Verdict::Recovered
                    : Verdict::NotRecovered;
  if (out.verdict == Verdict::NotRecovered)
    out.note = "recovered value disagrees with the planted secret";
}

}  // namespace

AttackOutcome scansat_attack(const netlist::Netlist& nl,
                             const rsn::Rsn& network,
                             const benchgen::RedTeamScenario& scenario,
                             const ScanSatOptions& options) {
  auto t0 = std::chrono::steady_clock::now();
  AttackOutcome out;
  out.method = "scansat";
  out.scenario = scenario.name;
  out.secret_value = scenario.secret_value;
  obs::bump("attack.scansat_runs");

  if (scenario.kind == benchgen::ScenarioKind::PureScanPath) {
    auto plan = rsn::find_path_through(
        network, {scenario.carrier_reg, scenario.victim_reg});
    if (!plan) {
      out.verdict = Verdict::NotRecovered;
      out.note = "no single-configuration scan path places the carrier "
                 "upstream of the victim";
    } else {
      std::size_t pa =
          plan->position_of(scenario.carrier_reg, scenario.carrier_ff);
      std::size_t pb = plan->position_of(scenario.victim_reg, 0);
      Schedule sched;
      for (const rsn::MuxSetting& m : plan->settings)
        sched.push_back(ScanOp::set_mux(m.mux, m.sel));
      sched.push_back(ScanOp::capture());
      for (std::size_t t = 0; t < pb - pa; ++t)
        sched.push_back(ScanOp::shift());
      finish_with_replay(nl, network, sched, scenario, options.seed, out);
    }
  } else {
    auto plan1 = rsn::find_path_through(
        network, {scenario.carrier_reg, scenario.staging_reg});
    if (!plan1) {
      out.verdict = Verdict::NotRecovered;
      out.note = "no single-configuration scan path places the carrier "
                 "upstream of the staging register";
    } else {
      // Find a victim capture cone that depends on the staging FF and a
      // primary-input assignment sensitizing it.
      const rsn::Element& victim = network.elem(scenario.victim_reg);
      bool saw_unknown = false;
      std::size_t target_ff = 0;
      SensitizeOutcome sens;
      bool found = false;
      for (std::size_t f = 0; f < victim.ffs.size() && !found; ++f) {
        netlist::NodeId src = victim.ffs[f].capture_src;
        if (src == netlist::no_node) continue;
        ++out.sat_calls;
        SensitizeOutcome r = sensitize_cone(nl, src, scenario.staging_node,
                                            options.conflict_limit);
        if (r.result == sat::Result::Unknown) {
          saw_unknown = true;
          obs::bump("attack.sat_unknown");
        } else if (r.result == sat::Result::Sat) {
          sens = std::move(r);
          target_ff = f;
          found = true;
        }
      }
      if (!found) {
        // An exhausted conflict budget means "undecided", never "attack
        // infeasible" (the Unknown-laundering invariant).
        out.verdict =
            saw_unknown ? Verdict::Inconclusive : Verdict::NotRecovered;
        out.note = saw_unknown
                       ? "SAT conflict budget exhausted while sensitizing "
                         "the victim capture cone; feasibility undecided"
                       : "no victim capture cone is sensitizable from the "
                         "staging flip-flop";
      } else {
        std::size_t pa =
            plan1->position_of(scenario.carrier_reg, scenario.carrier_ff);
        std::size_t pc =
            plan1->position_of(scenario.staging_reg, scenario.staging_ff);
        auto plan2 =
            rsn::find_path_through(network, {scenario.victim_reg});
        Schedule sched;
        for (const rsn::MuxSetting& m : plan1->settings)
          sched.push_back(ScanOp::set_mux(m.mux, m.sel));
        for (const auto& [node, v] : sens.inputs)
          sched.push_back(ScanOp::set_input(node, v ? ~0ull : 0));
        sched.push_back(ScanOp::capture());
        for (std::size_t t = 0; t < pc - pa; ++t)
          sched.push_back(ScanOp::shift());
        sched.push_back(ScanOp::update());
        if (plan2)
          for (const rsn::MuxSetting& m : plan2->settings)
            sched.push_back(ScanOp::set_mux(m.mux, m.sel));
        sched.push_back(ScanOp::capture());
        (void)target_ff;
        finish_with_replay(nl, network, sched, scenario, options.seed, out);
      }
    }
  }
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (out.recovered()) obs::bump("attack.recovered");
  return out;
}

}  // namespace rsnsec::attack
