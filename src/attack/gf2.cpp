#include "attack/gf2.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "obs/trace.hpp"
#include "rsn/pathfind.hpp"
#include "util/rng.hpp"

namespace rsnsec::attack {

AttackOutcome gf_flush_attack(const netlist::Netlist& nl,
                              const rsn::Rsn& network,
                              const benchgen::RedTeamScenario& scenario,
                              const GfFlushOptions& options) {
  auto start = std::chrono::steady_clock::now();
  AttackOutcome out;
  out.method = "gf-flush";
  out.scenario = scenario.name;
  out.secret_value = scenario.secret_value;
  obs::bump("attack.gf_runs");
  auto done = [&start, &out] {
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (out.recovered()) obs::bump("attack.recovered");
    return out;
  };

  // Configuration: prefer one path covering carrier and victim; fall back
  // to a carrier-only flush followed by a victim observation phase.
  auto plan = rsn::find_path_through(
      network, {scenario.carrier_reg, scenario.victim_reg});
  std::optional<rsn::PathPlan> plan2;
  if (!plan) {
    plan = rsn::find_path_through(network, {scenario.carrier_reg});
    plan2 = rsn::find_path_through(network, {scenario.victim_reg});
    if (!plan) {
      out.verdict = Verdict::NotRecovered;
      out.note = "carrier register lies on no single-configuration path";
      return done();
    }
  }
  const std::size_t chain_len = plan->chain.size();
  const std::size_t rounds = std::max<std::size_t>(1, options.rounds);
  Schedule sched;
  for (const rsn::MuxSetting& m : plan->settings)
    sched.push_back(ScanOp::set_mux(m.mux, m.sel));
  for (std::size_t r = 0; r < rounds; ++r) {
    sched.push_back(ScanOp::capture());
    // Partial flush depths give the update phase a chance to commit the
    // moving secret at different chain alignments; the final round is a
    // full flush, so every carrier-to-victim shift distance is sampled.
    std::size_t depth =
        std::max<std::size_t>(1, (chain_len * (r + 1)) / rounds);
    for (std::size_t t = 0; t < depth; ++t)
      sched.push_back(ScanOp::shift());
    sched.push_back(ScanOp::update());
    sched.push_back(ScanOp::clock(1));
  }
  if (plan2) {
    for (const rsn::MuxSetting& m : plan2->settings)
      sched.push_back(ScanOp::set_mux(m.mux, m.sel));
    sched.push_back(ScanOp::capture());
    for (std::size_t t = 0; t < plan2->chain.size(); ++t)
      sched.push_back(ScanOp::shift());
  }

  // GF(2) unknowns: the secret first (lab base value 0), then other
  // circuit FFs in creation order up to the lane budget.
  std::vector<netlist::NodeId> unknowns{scenario.secret_ff};
  const std::size_t cap = std::min<std::size_t>(options.max_unknowns, 55);
  for (netlist::NodeId ff : nl.ffs()) {
    if (ff == scenario.secret_ff) continue;
    if (unknowns.size() >= cap) break;
    unknowns.push_back(ff);
  }
  const std::size_t k = unknowns.size();
  const std::size_t n_subsets = std::min<std::size_t>(8, 63 - k);

  Rng srng(options.seed ^ 0xa02f9eb7c3d15ULL);
  std::vector<std::uint64_t> subset_mask(n_subsets, 0);
  for (std::size_t j = 0; j < n_subsets; ++j)
    for (std::size_t i = 0; i < k; ++i)
      if (srng.chance(0.5)) subset_mask[j] |= 1ull << i;

  // One packed replay: lane 0 = base state, lane 1+i = unit flip of
  // unknown i, lane 1+k+j = base XOR subset j (affineness probes).
  SeededState seeded = seed_replay_state(nl, network, options.seed);
  ReplayInit init;
  init.seed = options.seed;
  for (std::size_t i = 0; i < k; ++i) {
    std::uint64_t base =
        i == 0 ? 0
               : seeded.node_value[static_cast<std::size_t>(unknowns[i])];
    std::uint64_t flips = 1ull << (1 + i);
    for (std::size_t j = 0; j < n_subsets; ++j)
      if ((subset_mask[j] >> i) & 1) flips |= 1ull << (1 + k + j);
    init.node_overrides.push_back({unknowns[i], base ^ flips});
  }
  ReplayTrace trace =
      replay_schedule(nl, network, sched, init, scenario.victim_reg);

  // Device replay: secret at ground truth, everything else at base.
  ReplayInit dev;
  dev.seed = options.seed;
  dev.node_overrides.push_back(
      {scenario.secret_ff, scenario.secret_value ? ~0ull : 0});
  ReplayTrace tdev =
      replay_schedule(nl, network, sched, dev, scenario.victim_reg);

  std::size_t vote[2] = {0, 0};
  std::size_t affine_samples = 0, nonlinear_samples = 0;
  for (std::size_t op = 0; op < trace.victim.size(); ++op) {
    for (std::size_t f = 0; f < trace.victim[op].size(); ++f) {
      std::uint64_t v = trace.victim[op][f];
      std::uint64_t c = v & 1;
      bool a_secret = (((v >> 1) & 1) ^ c) != 0;
      if (!a_secret) continue;
      bool affine = true;
      for (std::size_t j = 0; j < n_subsets && affine; ++j) {
        std::uint64_t pred = c;
        for (std::size_t i = 0; i < k; ++i)
          if ((subset_mask[j] >> i) & 1) pred ^= ((v >> (1 + i)) & 1) ^ c;
        affine = ((v >> (1 + k + j)) & 1) == (pred & 1);
      }
      if (!affine) {
        ++nonlinear_samples;
        continue;
      }
      ++affine_samples;
      // Sample value = c XOR a_secret * secret (others at base in both
      // runs), so one device observation solves for the secret.
      std::uint64_t dev_bit = tdev.victim[op][f] & 1;
      ++vote[(dev_bit ^ c) & 1];
    }
  }

  if (affine_samples == 0) {
    out.verdict = Verdict::NotRecovered;
    out.note = nonlinear_samples > 0
                   ? "victim observations depending on the secret are "
                     "nonlinear over the modeled unknowns"
                   : "no victim observation depends on the secret";
    return done();
  }
  if (vote[0] > 0 && vote[1] > 0) {
    out.verdict = Verdict::NotRecovered;
    out.note = "affine samples disagree on the secret value";
    return done();
  }
  out.recovered_value = vote[1] > 0;
  out.differential = differential_replay(
      nl, network, sched, SecretLoc::circuit_ff(scenario.secret_ff),
      scenario.victim_reg, options.seed);
  if (!out.differential.leaks) {
    out.verdict = Verdict::NotRecovered;
    out.note = "algebraic candidate not confirmed by differential replay";
    return done();
  }
  out.verdict = out.recovered_value == scenario.secret_value
                    ? Verdict::Recovered
                    : Verdict::NotRecovered;
  if (out.verdict == Verdict::NotRecovered)
    out.note = "recovered value disagrees with the planted secret";
  return done();
}

}  // namespace rsnsec::attack
