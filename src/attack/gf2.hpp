#pragma once

#include <cstdint>

#include "attack/model.hpp"
#include "benchgen/redteam.hpp"
#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"

namespace rsnsec::attack {

struct GfFlushOptions {
  std::uint64_t seed = 1;
  /// Capture/flush/update rounds of the probing schedule.
  std::size_t rounds = 3;
  /// Circuit flip-flops treated as GF(2) unknowns (64-bit lane budget:
  /// 1 base lane + one unit lane per unknown + 8 superposition lanes).
  std::size_t max_unknowns = 40;
};

/// GF-Flush-style algebraic attack (Chen et al., adapted to RSNs): runs a
/// flush schedule once with the initial circuit state packed as GF(2)
/// basis lanes (base state, unit flips, random superpositions) and reads
/// every victim observation as an affine form over the unknowns. A sample
/// that is affine (checked on the superposition lanes) with a non-zero
/// secret coefficient recovers the secret from a single device replay.
/// The claimed leak is validated by bit-exact differential replay.
AttackOutcome gf_flush_attack(const netlist::Netlist& nl,
                              const rsn::Rsn& network,
                              const benchgen::RedTeamScenario& scenario,
                              const GfFlushOptions& options = {});

}  // namespace rsnsec::attack
