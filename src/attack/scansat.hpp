#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "attack/model.hpp"
#include "benchgen/redteam.hpp"
#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"
#include "sat/solver.hpp"

namespace rsnsec::attack {

struct ScanSatOptions {
  std::uint64_t seed = 1;
  /// Per-query SAT conflict budget (0 = unlimited). Exhausting it makes
  /// the attack Inconclusive, never NotRecovered.
  std::uint64_t conflict_limit = 100000;
};

/// Result of one cone-sensitization SAT query: can primary inputs be set
/// so that toggling `toggle_leaf` toggles the cone root?
struct SensitizeOutcome {
  sat::Result result = sat::Result::Unsat;
  /// Model values of the cone's primary-input leaves (Sat only).
  std::vector<std::pair<netlist::NodeId, bool>> inputs;
  /// Model values of the cone's non-toggle flip-flop leaves (Sat only);
  /// the sensitization is guaranteed on the device only if these match
  /// the device state, which the bit-exact replay then decides.
  std::vector<std::pair<netlist::NodeId, bool>> ff_leaves;
};

/// Builds a two-copy miter of the signal cone of `root` (copy 0 with
/// `toggle_leaf` = 0, copy 1 with it = 1, all other leaves shared) and
/// asks the SAT solver for an assignment making the copies differ.
/// Exposed (rather than kept private to scansat_attack) so the
/// Unknown-laundering regression test can budget-starve it directly.
SensitizeOutcome sensitize_cone(const netlist::Netlist& nl,
                                netlist::NodeId root,
                                netlist::NodeId toggle_leaf,
                                std::uint64_t conflict_limit);

/// ScanSAT-style attack (Alrahis et al., adapted to RSNs): derives a
/// shift/capture/update schedule from the network structure — and, for
/// hybrid scenarios, a sensitizing primary-input assignment from the SAT
/// solver — that moves the planted secret into the victim register. The
/// claimed leak is validated by bit-exact differential replay.
AttackOutcome scansat_attack(const netlist::Netlist& nl,
                             const rsn::Rsn& network,
                             const benchgen::RedTeamScenario& scenario,
                             const ScanSatOptions& options = {});

}  // namespace rsnsec::attack
