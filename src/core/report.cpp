#include "core/report.hpp"

#include <iomanip>
#include <ostream>

#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace rsnsec {

void RowAccumulator::set_structure(std::size_t registers,
                                   std::size_t scan_ffs, std::size_t muxes) {
  row_.registers = registers;
  row_.scan_ffs = scan_ffs;
  row_.muxes = muxes;
}

void RowAccumulator::add(const PipelineResult& result) {
  ++row_.runs;
  row_.avg_violating_registers +=
      static_cast<double>(result.initial_violating_registers);
  row_.avg_changes_pure += result.pure.applied_changes;
  row_.avg_changes_hybrid += result.hybrid.applied_changes;
  row_.avg_changes_total += result.total_changes();
  row_.t_dependency += result.t_dependency;
  row_.t_pure += result.t_pure;
  row_.t_hybrid += result.t_hybrid;
  row_.t_total += result.t_total;
}

BenchRow RowAccumulator::finish() const {
  BenchRow r = row_;
  if (r.runs > 0) {
    double n = r.runs;
    r.avg_violating_registers /= n;
    r.avg_changes_pure /= n;
    r.avg_changes_hybrid /= n;
    r.avg_changes_total /= n;
    r.t_dependency /= n;
    r.t_pure /= n;
    r.t_hybrid /= n;
    r.t_total /= n;
  }
  return r;
}

void print_table_header(std::ostream& os) {
  os << std::left << std::setw(16) << "Benchmark" << std::right
     << std::setw(7) << "#Reg" << std::setw(9) << "#ScanFF" << std::setw(7)
     << "#Mux" << std::setw(10) << "#RegViol" << std::setw(8) << "pure"
     << std::setw(8) << "hybrid" << std::setw(8) << "total" << std::setw(11)
     << "t_dep[s]" << std::setw(11) << "t_pure[s]" << std::setw(11)
     << "t_hyb[s]" << std::setw(11) << "t_tot[s]" << std::setw(7) << "runs"
     << "\n";
  os << std::string(16 + 7 + 9 + 7 + 10 + 8 + 8 + 8 + 11 * 4 + 7, '-')
     << "\n";
}

void print_table_row(std::ostream& os, const BenchRow& row) {
  os << std::left << std::setw(16) << row.name << std::right << std::setw(7)
     << row.registers << std::setw(9) << row.scan_ffs << std::setw(7)
     << row.muxes << std::fixed << std::setprecision(2) << std::setw(10)
     << row.avg_violating_registers << std::setprecision(1) << std::setw(8)
     << row.avg_changes_pure << std::setw(8) << row.avg_changes_hybrid
     << std::setw(8) << row.avg_changes_total << std::setprecision(3)
     << std::setw(11) << row.t_dependency << std::setw(11) << row.t_pure
     << std::setw(11) << row.t_hybrid << std::setw(11) << row.t_total
     << std::setw(7) << row.runs << "\n";
}

void print_table_summary(std::ostream& os,
                         const std::vector<BenchRow>& rows) {
  double pure = 0.0, total = 0.0;
  int skipped_insecure = 0, skipped_none = 0, runs = 0;
  for (const BenchRow& r : rows) {
    pure += r.avg_changes_pure * r.runs;
    total += r.avg_changes_total * r.runs;
    skipped_insecure += r.skipped_insecure;
    skipped_none += r.skipped_no_violation;
    runs += r.runs;
  }
  os << "\nIncluded runs: " << runs
     << "  (skipped: " << skipped_none
     << " without violations, " << skipped_insecure
     << " with insecure circuit logic)\n";
  if (total > 0.0) {
    os << "Share of changes resolved by the pure stage: " << std::fixed
       << std::setprecision(1) << 100.0 * pure / total
       << "%  (paper reports ~43% on average)\n";
  }
}

void write_json(std::ostream& os, const PipelineResult& r) {
  os << "{\n";
  os << "  \"secured\": " << (r.secured ? "true" : "false") << ",\n";
  os << "  \"insecure_logic\": "
     << (r.static_report.insecure_logic ? "true" : "false") << ",\n";
  os << "  \"intra_segment\": "
     << (r.static_report.intra_segment ? "true" : "false") << ",\n";
  os << "  \"initial_violating_registers\": "
     << r.initial_violating_registers << ",\n";
  os << "  \"dependency\": {\n"
     << "    \"mode\": \""
     << (r.dep_mode == dep::DepMode::Exact ? "exact" : "structural")
     << "\",\n"
     << "    \"ternary_prefilter\": "
     << (r.dep_ternary_prefilter ? "true" : "false") << ",\n"
     << "    \"partition\": \"" << dep::partition_name(r.dep_partition)
     << "\",\n"
     << "    \"regions\": " << r.dep_stats.regions << ",\n"
     << "    \"matrix_bytes\": " << r.dep_stats.matrix_bytes << ",\n"
     << "    \"tiles_nonzero\": " << r.dep_stats.tiles_nonzero << ",\n"
     << "    \"tiles_spilled\": " << r.dep_stats.tiles_spilled << ",\n"
     << "    \"circuit_ffs\": " << r.dep_stats.circuit_ffs << ",\n"
     << "    \"internal_ffs\": " << r.dep_stats.internal_ffs << ",\n"
     << "    \"deps_before_bridging\": " << r.dep_stats.deps_before_bridging
     << ",\n"
     << "    \"deps_after_bridging\": " << r.dep_stats.deps_after_bridging
     << ",\n"
     << "    \"sat_calls\": " << r.dep_stats.sat_calls << ",\n"
     << "    \"sat_unknown\": " << r.dep_stats.sat_unknown << ",\n"
     << "    \"sim_resolved\": " << r.dep_stats.sim_resolved << ",\n"
     << "    \"ternary_resolved\": " << r.dep_stats.ternary_resolved
     << ",\n"
     << "    \"solver\": {\n"
     << "      \"solves\": " << r.dep_stats.solver_solves << ",\n"
     << "      \"conflicts\": " << r.dep_stats.solver_conflicts << ",\n"
     << "      \"decisions\": " << r.dep_stats.solver_decisions << ",\n"
     << "      \"propagations\": " << r.dep_stats.solver_propagations
     << ",\n"
     << "      \"restarts\": " << r.dep_stats.solver_restarts << ",\n"
     << "      \"learned\": " << r.dep_stats.solver_learned << ",\n"
     << "      \"lbd_protected\": " << r.dep_stats.lbd_protected << ",\n"
     << "      \"inprocessing_rounds\": "
     << r.dep_stats.inprocessing_rounds << ",\n"
     << "      \"cores_reused\": " << r.dep_stats.cores_reused << ",\n"
     << "      \"rotation_witnesses\": " << r.dep_stats.rotation_witnesses
     << ",\n"
     << "      \"shared_clauses\": " << r.dep_stats.shared_clauses << "\n"
     << "    },\n"
     << "    \"threads\": " << r.dep_stats.threads_used << ",\n"
     << "    \"phase_seconds\": {\"one_cycle\": " << r.dep_stats.t_one_cycle
     << ", \"bridge\": " << r.dep_stats.t_bridge
     << ", \"closure\": " << r.dep_stats.t_closure << "}\n"
     << "  },\n";
  os << "  \"changes\": {\n"
     << "    \"pure\": " << r.pure.applied_changes << ",\n"
     << "    \"hybrid\": " << r.hybrid.applied_changes << ",\n"
     << "    \"total\": " << r.total_changes() << ",\n"
     << "    \"log\": [\n";
  for (std::size_t i = 0; i < r.changes.size(); ++i) {
    const security::AppliedChange& c = r.changes[i];
    os << "      {\"note\": \"" << json_escape(c.note)
       << "\", \"rewire_operations\": " << c.rewire_operations << "}"
       << (i + 1 < r.changes.size() ? "," : "") << "\n";
  }
  os << "    ]\n  },\n";
  os << "  \"attack\": {\"checked\": "
     << (r.attack_checked ? "true" : "false")
     << ", \"probes\": " << r.attack_probes << ", \"leaks\": 0},\n";
  os << "  \"runtime_seconds\": {\"dependency\": " << r.t_dependency
     << ", \"pure\": " << r.t_pure << ", \"hybrid\": " << r.t_hybrid
     << ", \"total\": " << r.t_total << "}";
  // When a trace session is active its counter/span rollup rides along in
  // the report, so `--metrics --json` needs no second output file.
  if (obs::TraceSession* trace = obs::TraceSession::active()) {
    os << ",\n  \"observability\": ";
    trace->write_summary_json(os, "  ");
    os << "\n";
  } else {
    os << "\n";
  }
  os << "}\n";
}

void write_analyze_json(std::ostream& os, const AnalyzeReport& r) {
  os << "{\"insecure_logic\": " << (r.insecure_logic ? "true" : "false")
     << ", \"intra_segment\": " << (r.intra_segment ? "true" : "false")
     << ", \"pure_violating_pairs\": " << r.pure_violating_pairs
     << ", \"hybrid_violating_pairs\": " << r.hybrid_violating_pairs
     << ", \"violating_registers\": " << r.violating_registers
     << ", \"dep_mode\": \""
     << (r.dep_mode == dep::DepMode::Exact ? "exact" : "structural")
     << "\", \"dep_ternary_prefilter\": "
     << (r.dep_ternary_prefilter ? "true" : "false")
     << ", \"dep_ternary_resolved\": " << r.dep_stats.ternary_resolved
     << ", \"dep_partition\": \"" << dep::partition_name(r.dep_partition)
     << "\", \"dep_tiled\": " << (r.dep_tiled ? "true" : "false")
     << ", \"dep_regions\": " << r.dep_stats.regions
     << ", \"dep_matrix_bytes\": " << r.dep_stats.matrix_bytes
     << ", \"dep_tiles_nonzero\": " << r.dep_stats.tiles_nonzero
     << ", \"dep_tiles_spilled\": " << r.dep_stats.tiles_spilled << "}";
}

void write_csv(std::ostream& os, const std::vector<BenchRow>& rows) {
  os << "benchmark,registers,scan_ffs,muxes,violating_registers,"
        "changes_pure,changes_hybrid,changes_total,t_dependency,t_pure,"
        "t_hybrid,t_total,runs,skipped_insecure,skipped_no_violation\n";
  for (const BenchRow& r : rows) {
    os << r.name << "," << r.registers << "," << r.scan_ffs << ","
       << r.muxes << "," << r.avg_violating_registers << ","
       << r.avg_changes_pure << "," << r.avg_changes_hybrid << ","
       << r.avg_changes_total << "," << r.t_dependency << "," << r.t_pure
       << "," << r.t_hybrid << "," << r.t_total << "," << r.runs << ","
       << r.skipped_insecure << "," << r.skipped_no_violation << "\n";
  }
}

}  // namespace rsnsec
