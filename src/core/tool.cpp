#include "core/tool.hpp"

#include <sstream>
#include <stdexcept>

#include "attack/engine.hpp"
#include "flow/certify.hpp"
#include "lint/invariant.hpp"
#include "obs/trace.hpp"
#include "store/dep_cache.hpp"

namespace rsnsec {

SecureFlowTool::SecureFlowTool(const netlist::Netlist& circuit,
                               rsn::Rsn& network,
                               const security::SecuritySpec& spec,
                               PipelineOptions options)
    : circuit_(circuit),
      network_(network),
      spec_(spec),
      options_(options) {}

PipelineResult SecureFlowTool::run() {
  PipelineResult result;
  result.dep_mode = options_.dep.mode;
  result.dep_ternary_prefilter = options_.dep.ternary_prefilter;
  result.dep_partition = options_.dep.partition;
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span total(trace, "pipeline");

  std::string err;
  if (!spec_.validate(&err))
    throw std::invalid_argument("invalid security specification: " + err);
  if (!network_.validate(&err))
    throw std::invalid_argument("invalid scan network: " + err);
  if (!circuit_.validate(&err))
    throw std::invalid_argument("invalid circuit: " + err);

  // Phase 1: data-flow analysis over the circuit logic (Sec. III-A).
  // Computed once, without RSN-internal connections, and reused across
  // every rewiring of the resolution loop.
  dep::DependencyAnalyzer deps(circuit_, network_, options_.dep);
  {
    obs::Span span(trace, "pipeline.dependency");
    store::run_with_store(options_.store, deps);
    result.dep_stats = deps.stats();
    result.t_dependency = span.seconds();
  }

  security::TokenTable tokens(spec_, spec_.num_modules());
  security::HybridAnalyzer hybrid(circuit_, network_, deps, spec_, tokens);

  // Phase 2: insecure circuit logic (Sec. III-B). Such violations exist
  // even without scan infrastructure; they require a circuit redesign.
  result.static_report = hybrid.check_static();
  if (!result.static_report.clean()) {
    result.t_total = total.seconds();
    return result;  // secured stays false; network untouched
  }

  // Table I column 5: registers with a violation before the method runs.
  result.initial_violating_registers =
      hybrid.count_violating_registers(network_);

  // Debug/verify mode: check the Sec. III-D invariants (cycle-free,
  // every register kept and accessible) after every applied change, not
  // just at the end — a corrupted intermediate state is caught at the
  // rewire that introduced it.
  lint::InvariantChecker invariants(network_);
  security::ChangeCallback on_change;
  if (options_.verify_invariants) {
    on_change = [&invariants](const rsn::Rsn& net,
                              const security::AppliedChange& change) {
      invariants.require(net, "'" + change.note + "'");
    };
  }

  // Phase 3: pure scan paths (method of [17]).
  if (options_.run_pure) {
    obs::Span span(trace, "pipeline.pure");
    security::PureScanAnalyzer pure(spec_, tokens);
    result.pure =
        pure.detect_and_resolve(network_, &result.changes,
                                options_.resolution, on_change,
                                options_.resolve);
    result.t_pure = span.seconds();
  }

  // Phase 4: hybrid scan paths (Sec. III-C / III-D).
  if (options_.run_hybrid) {
    obs::Span span(trace, "pipeline.hybrid");
    result.hybrid =
        hybrid.detect_and_resolve(network_, &result.changes,
                                  options_.resolution, on_change,
                                  options_.resolve);
    result.t_hybrid = span.seconds();
  }

  if (options_.verify_invariants)
    invariants.require(network_, "the full pipeline");
  if (!network_.validate(&err))
    throw std::logic_error("transformed network failed validation: " + err);

  // Defense-in-depth: independent re-verification with the SAT-free
  // certifier. Its fixpoint over-approximates the pipeline's analysis,
  // so an error-level finding here on a network the phases above left
  // "secure" means the pipeline itself is broken — fail loudly.
  if (options_.verify_certify) {
    obs::Span span(trace, "pipeline.certify");
    flow::CertifyResult cert = flow::certify(circuit_, network_, spec_);
    if (!cert.certified()) {
      std::ostringstream os;
      lint::render_text(os, cert.diagnostics);
      throw std::logic_error(
          "secured network failed independent certification:\n" + os.str());
    }
  }
  // Adversarial counterpart of the certifier: replay a bounded battery of
  // differential attack schedules against the secured network. Any leak
  // is a concrete counterexample to the security claim, not a heuristic
  // finding, so it is a hard error like a failed certification.
  if (options_.verify_attack) {
    obs::Span span(trace, "pipeline.attack_probe");
    attack::ProbeStats probe_stats;
    std::optional<std::string> leak = attack::verify_no_leakage(
        circuit_, network_, spec_, {}, &probe_stats);
    result.attack_checked = true;
    result.attack_probes = probe_stats.probes;
    if (leak) {
      throw std::logic_error(
          "secured network leaks under differential attack probe: " + *leak);
    }
  }
  result.secured = true;
  result.t_total = total.seconds();
  return result;
}

}  // namespace rsnsec
