#pragma once

#include <vector>

#include "dep/analyzer.hpp"
#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"
#include "security/hybrid.hpp"
#include "security/pure.hpp"
#include "security/spec.hpp"

namespace rsnsec {

namespace store {
class ArtifactStore;
}

/// Options of the end-to-end pipeline.
struct PipelineOptions {
  dep::DepOptions dep;
  /// Optional artifact store (content-addressed cache, src/store). When
  /// set, the dependency analysis is served from the store if a result
  /// for (circuit, RSN, dep options) was published before — bit-identical
  /// to recomputation — and published after a fresh computation. Not
  /// owned; must outlive the pipeline run. nullptr = always recompute.
  store::ArtifactStore* store = nullptr;
  /// Run the pure-path method of [17] first (Fig. 2). Disable to measure
  /// what the hybrid stage alone must do.
  bool run_pure = true;
  /// Run the hybrid-path stage (the paper's contribution).
  bool run_hybrid = true;
  /// Repair-candidate selection strategy (see bench/ablation_resolution).
  security::ResolutionPolicy resolution =
      security::ResolutionPolicy::BestGlobal;
  /// Resolution-engine execution options: incremental delta-maintained
  /// violation state (default) vs. from-scratch recomputation
  /// (`--no-incremental`), and the trial-evaluation thread count. Both
  /// engines produce bit-identical results.
  security::ResolveOptions resolve;
  /// Debug/verify mode: run the lint post-transformation invariant pass
  /// (src/lint/invariant.hpp) after every applied RSN change and once on
  /// the final network. A violated invariant (cycle introduced, register
  /// lost or inaccessible) throws std::logic_error with the rendered
  /// diagnostics instead of silently corrupting the model. Costs one
  /// access-planning sweep per change.
  bool verify_invariants = false;
  /// Defense-in-depth: after a successful transformation, re-verify the
  /// final network with the independent SAT-free certifier (src/flow,
  /// `rsnsec certify`). The certifier over-approximates the pipeline's
  /// own analysis, so a violating pair it finds on a network the pipeline
  /// claims secure means the pipeline (or its dependency analysis) has a
  /// bug — std::logic_error with the CERT diagnostics is thrown.
  bool verify_certify = false;
  /// Adversarial counterpart of verify_certify: after a successful
  /// transformation, run the bounded differential attack probe battery
  /// (attack::verify_no_leakage) against the secured network. Every
  /// reported leak is a bit-exact replayed counterexample, so a hit on a
  /// network the pipeline claims secure is a pipeline bug —
  /// std::logic_error is thrown. Bounded: a clean probe run is evidence,
  /// not proof (that side is verify_certify).
  bool verify_attack = false;
};

/// Result of one pipeline run (one row of Table I).
struct PipelineResult {
  /// True if the network was transformed into a (data-flow) secure RSN.
  /// False if the circuit logic itself is insecure (Sec. III-B) or an
  /// intra-segment flow blocks RSN-level resolution (see DESIGN.md) — in
  /// those cases the RSN was left untouched.
  bool secured = false;
  security::StaticReport static_report;

  /// Registers with at least one violating flip-flop before the method
  /// was applied (Table I, column 5).
  std::size_t initial_violating_registers = 0;

  /// Echo of the analysis configuration that produced dep_stats, so
  /// reports and benchmark artifacts are self-describing.
  dep::DepMode dep_mode = dep::DepMode::Exact;
  bool dep_ternary_prefilter = true;
  dep::PartitionMode dep_partition = dep::PartitionMode::Auto;

  dep::DepStats dep_stats;
  security::PureStats pure;
  security::HybridStats hybrid;
  std::vector<security::AppliedChange> changes;

  /// Post-secure differential attack probes (verify_attack only).
  bool attack_checked = false;
  std::size_t attack_probes = 0;

  /// Phase runtimes in seconds (Table I, last four columns).
  double t_dependency = 0.0;
  double t_pure = 0.0;
  double t_hybrid = 0.0;
  double t_total = 0.0;

  int total_changes() const {
    return pure.applied_changes + hybrid.applied_changes;
  }
};

/// End-to-end implementation of the proposed method (Fig. 2):
///
///   1. data-flow analysis over the circuit logic (Sec. III-A): SAT-based
///      1-cycle dependencies, bridging of internal flip-flops, multi-cycle
///      closure;
///   2. detection of insecure circuit logic (Sec. III-B) — if the circuit
///      itself violates the specification, no RSN transformation can fix
///      it and the pipeline stops;
///   3. detection and resolution of violations over pure scan paths
///      (method of [17]);
///   4. detection and resolution of violations over hybrid scan paths
///      (Sec. III-C / III-D).
///
/// On success the given RSN has been structurally transformed into a
/// (data-flow) secure RSN that still contains every scan register.
class SecureFlowTool {
 public:
  /// The tool keeps references: `network` is transformed in place.
  SecureFlowTool(const netlist::Netlist& circuit, rsn::Rsn& network,
                 const security::SecuritySpec& spec,
                 PipelineOptions options = {});

  /// Runs the pipeline; returns per-phase statistics and timings.
  PipelineResult run();

 private:
  const netlist::Netlist& circuit_;
  rsn::Rsn& network_;
  const security::SecuritySpec& spec_;
  PipelineOptions options_;
};

}  // namespace rsnsec
