#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/tool.hpp"

namespace rsnsec {

/// One aggregated row of the Table I reproduction: averages over all
/// (circuit, specification) runs of one benchmark, as the paper averages
/// over 10 circuits x 16 specifications.
struct BenchRow {
  std::string name;
  std::size_t registers = 0;
  std::size_t scan_ffs = 0;
  std::size_t muxes = 0;
  double avg_violating_registers = 0.0;
  double avg_changes_pure = 0.0;
  double avg_changes_hybrid = 0.0;
  double avg_changes_total = 0.0;
  double t_dependency = 0.0;
  double t_pure = 0.0;
  double t_hybrid = 0.0;
  double t_total = 0.0;
  int runs = 0;                 ///< runs included in the averages
  int skipped_insecure = 0;     ///< specs rejected: insecure circuit logic
  int skipped_no_violation = 0; ///< specs rejected: nothing to resolve
};

/// Accumulates PipelineResults into a BenchRow (averaging on finish).
class RowAccumulator {
 public:
  explicit RowAccumulator(std::string name) { row_.name = std::move(name); }

  /// Records the structural counts (taken from the original network).
  void set_structure(std::size_t registers, std::size_t scan_ffs,
                     std::size_t muxes);

  /// Adds one secured run to the averages.
  void add(const PipelineResult& result);

  void add_skipped_insecure() { ++row_.skipped_insecure; }
  void add_skipped_no_violation() { ++row_.skipped_no_violation; }

  /// Finalizes and returns the averaged row.
  BenchRow finish() const;

 private:
  BenchRow row_;
};

/// Prints the Table I header / one row in the paper's column layout.
void print_table_header(std::ostream& os);
void print_table_row(std::ostream& os, const BenchRow& row);

/// Prints aggregate statistics over all rows: the share of changes
/// resolved by the pure stage (the paper reports 43% on average) and the
/// spec rejection counts.
void print_table_summary(std::ostream& os, const std::vector<BenchRow>& rows);

/// Writes one pipeline result as a JSON object (machine-readable audit
/// record: phase timings, statistics, and the full change log).
void write_json(std::ostream& os, const PipelineResult& result);

/// Deterministic summary of one `analyze` run: counts and modes only, no
/// timings. Shared by the CLI's `analyze --json` output and the serve
/// daemon's analyze replies — one emitter is what makes a request through
/// the daemon byte-identical to a one-shot CLI run of the same design.
struct AnalyzeReport {
  bool insecure_logic = false;
  bool intra_segment = false;
  std::size_t pure_violating_pairs = 0;
  std::size_t hybrid_violating_pairs = 0;
  std::size_t violating_registers = 0;
  dep::DepMode dep_mode = dep::DepMode::Exact;
  bool dep_ternary_prefilter = true;
  dep::PartitionMode dep_partition = dep::PartitionMode::Auto;
  bool dep_tiled = false;
  dep::DepStats dep_stats;
};

/// Writes the analyze summary as a single-line JSON object, no trailing
/// newline (the CLI appends one; the daemon embeds it in a reply frame).
void write_analyze_json(std::ostream& os, const AnalyzeReport& r);

/// Writes benchmark rows as CSV (header + one line per row), for
/// spreadsheet/plotting consumption.
void write_csv(std::ostream& os, const std::vector<BenchRow>& rows);

}  // namespace rsnsec
