#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"
#include "security/spec.hpp"

namespace rsnsec::flow {

/// Edge families enabled for one taint propagation, mirroring the three
/// scopes of HybridAnalyzer (circuit-only / static / full) so certify's
/// findings classify the same way the pipeline's checks do.
enum class TaintTier : std::uint8_t {
  /// Circuit next-state edges only; only circuit nodes are seeded. A
  /// violation here is reachable through the functional logic alone and
  /// cannot be removed by rewiring the RSN (Sec. III-B).
  CircuitOnly,
  /// + intra-register shift order, capture cones, update connections.
  /// Scan-infrastructure-independent: valid for every RSN wiring.
  Static,
  /// + inter-register RSN edges of the concrete network under test.
  Full
};

struct TaintOptions {
  /// Drop capture/next-state edges the pair-ternary evaluator proves
  /// non-functional (flow::TernaryEvaluator). Keeps the fixpoint a sound
  /// over-approximation of the SAT-exact closure while discharging the
  /// planted reconvergences that a purely structural analysis cannot see
  /// through; with this off the fixpoint over-approximates even the
  /// StructuralOnly closure (the soundness ladder flow_tests assert).
  bool ternary_refine = true;
};

/// Size/precision counters of one TaintAnalyzer construction.
struct TaintStats {
  std::size_t scan_nodes = 0;
  std::size_t circuit_nodes = 0;
  std::size_t internal_ffs = 0;  ///< transit-only (not seeded, not victims)
  std::size_t circuit_edges = 0;
  std::size_t capture_edges = 0;
  std::size_t update_edges = 0;
  std::size_t shift_edges = 0;
  std::size_t rsn_edges = 0;
  /// Capture/next-state edges removed by the ternary refinement (0 with
  /// TaintOptions::ternary_refine off).
  std::size_t ternary_discharged = 0;
};

/// Structural taint fixpoint over the netlist + RSN graph — the abstract
/// interpreter behind `rsnsec certify`.
///
/// Deliberately an *independent* re-implementation of the flow model:
/// it shares no code with DependencyAnalyzer or HybridAnalyzer (no SAT,
/// no simulation, no dependency matrices) so that a bug in the pipeline's
/// machinery cannot silently hide in its own re-verification. Everything
/// is derived directly from the netlist and the RSN:
///  - per-FF structural edges from each flip-flop's next-state cone and
///    each scan FF's capture cone (optionally refined by the pair-ternary
///    evaluator, which proves a slice of them non-functional);
///  - intra-register shift order, update connections, and inter-register
///    reachability over mux-only RSN chains (visited-set BFS — complete,
///    unlike the resolution engine's per-register chain cap);
///  - token propagation to a fixed point, per TaintTier.
///
/// Soundness: every edge the SAT-exact analysis can justify is present
/// (structural superset), internal flip-flops stay in the graph as
/// transit nodes (bridging composes paths; keeping the nodes preserves
/// the same reachability), and the ternary refinement only removes edges
/// it *proves* carry no data. Hence the fixpoint over-approximates the
/// pipeline's propagation: any violating pair the pipeline can detect is
/// also detected here.
class TaintAnalyzer {
 public:
  TaintAnalyzer(const netlist::Netlist& nl, const rsn::Rsn& network,
                const security::SecuritySpec& spec,
                const security::TokenTable& tokens, TaintOptions options = {});

  /// Token fixpoint over the edge families of `tier`, one TokenSet per
  /// node (layout: [scan FFs by register, flattened][circuit FFs]).
  std::vector<security::TokenSet> propagate(TaintTier tier) const;

  std::size_t num_nodes() const { return owner_module_.size(); }
  std::size_t scan_node(rsn::ElemId reg, std::size_t ff) const {
    return scan_base_[static_cast<std::size_t>(reg)] + ff;
  }
  std::size_t num_circuit_ffs() const { return ff_nodes_.size(); }
  netlist::NodeId circuit_ff(std::size_t i) const { return ff_nodes_[i]; }
  /// Node index of circuit FF `i` (inverse of the circuit slice of the
  /// node layout; flow_tests use it to align taint nodes with
  /// DependencyAnalyzer's circuit indices).
  std::size_t circuit_node(std::size_t i) const { return circuit_base_ + i; }
  /// True if circuit FF i is not directly connected to the RSN (neither
  /// an update target nor a capture-cone leaf). Internal FFs are transit
  /// nodes: never seeded and never counted as violation victims,
  /// mirroring the pipeline's bridged relation.
  bool is_internal(std::size_t i) const { return internal_[i]; }
  /// True if `node` can hold a violating token (annotated module, and not
  /// an internal circuit FF).
  bool is_victim(std::size_t node) const;
  netlist::ModuleId owner_module(std::size_t node) const {
    return owner_module_[node];
  }
  /// Human-readable node label for diagnostics.
  std::string node_name(std::size_t node) const;

  /// Reachability over the circuit edge family alone: entry (i, j) true
  /// if circuit FF j is reachable from circuit FF i over one or more
  /// next-state edges (through internal transit FFs included). This is
  /// what flow_tests compare against DependencyAnalyzer's closure
  /// matrices to check the soundness ladder.
  std::vector<std::vector<bool>> circuit_reachability() const;

  const TaintStats& stats() const { return stats_; }
  const TaintOptions& options() const { return options_; }

 private:
  void build_nodes(const rsn::Rsn& network);
  void build_edges(const rsn::Rsn& network);

  const netlist::Netlist& nl_;
  const security::SecuritySpec& spec_;
  const security::TokenTable& tokens_;
  TaintOptions options_;

  std::vector<netlist::NodeId> ff_nodes_;
  std::vector<std::size_t> ff_index_;  // NodeId -> dense circuit index
  std::vector<bool> internal_;

  // Node layout: [scan FFs by register, flattened][circuit FFs].
  std::vector<std::size_t> scan_base_;  // ElemId -> first node index
  std::vector<rsn::ElemId> node_reg_;   // scan node -> register
  std::vector<std::size_t> node_ff_;    // scan node -> ff index
  std::size_t circuit_base_ = 0;
  std::vector<netlist::ModuleId> owner_module_;  // per node
  std::vector<int> seed_token_;                  // per node, -1 = none

  // Adjacency per edge family (node -> successor nodes).
  std::vector<std::vector<std::size_t>> circuit_succ_;
  std::vector<std::vector<std::size_t>> static_succ_;  // shift/capture/update
  std::vector<std::vector<std::size_t>> rsn_succ_;

  TaintStats stats_;
};

}  // namespace rsnsec::flow
