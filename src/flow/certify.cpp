#include "flow/certify.hpp"

#include <string>

#include "flow/taint.hpp"
#include "obs/trace.hpp"

namespace rsnsec::flow {

using security::TokenSet;

namespace {

std::string module_label(const netlist::Netlist& nl, netlist::ModuleId m) {
  if (m >= 0 && static_cast<std::size_t>(m) < nl.num_modules())
    return "module '" + nl.module_name(m) + "'";
  return "module " + std::to_string(m);
}

struct CodeInfo {
  const char* code;
  const char* what;
  const char* hint;
};

constexpr CodeInfo kCodes[3] = {
    {"CERT001", "certified insecure circuit logic",
     "the flow is in the functional logic alone; redesign the circuit or "
     "relax the specification"},
    {"CERT002", "certified intra-segment flow",
     "the flow stays inside one register's capture/shift/update; redesign "
     "the register, RSN rewiring cannot remove it"},
    {"CERT003", "certified data-flow violation over the scan network",
     "run `rsnsec secure`; on a freshly secured design this indicates a "
     "pipeline bug"},
};

}  // namespace

CertifyResult certify(const netlist::Netlist& nl, const rsn::Rsn& network,
                      const security::SecuritySpec& spec,
                      const CertifyOptions& options) {
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span span(trace, "flow.certify");

  CertifyResult result;
  security::TokenTable tokens(spec, spec.num_modules());
  TaintOptions taint_options;
  taint_options.ternary_refine = options.ternary_refine;
  TaintAnalyzer taint(nl, network, spec, tokens, taint_options);

  const TaintStats& ts = taint.stats();
  result.stats.nodes = taint.num_nodes();
  result.stats.edges = ts.circuit_edges + ts.capture_edges + ts.update_edges +
                       ts.shift_edges + ts.rsn_edges;
  result.stats.ternary_discharged = ts.ternary_discharged;

  // The three propagations are nested (circ's edge set is a subset of
  // static's, static's of full's), so every pair found under full
  // classifies into exactly one tier: the innermost that exhibits it.
  std::vector<TokenSet> circ = taint.propagate(TaintTier::CircuitOnly);
  std::vector<TokenSet> stat = taint.propagate(TaintTier::Static);
  std::vector<TokenSet> full = taint.propagate(TaintTier::Full);

  std::size_t emitted[3] = {0, 0, 0};
  std::size_t suppressed[3] = {0, 0, 0};
  for (std::size_t n = 0; n < full.size(); ++n) {
    if (!taint.is_victim(n)) continue;
    const netlist::ModuleId owner = taint.owner_module(n);
    const security::TrustCategory t = spec.policy(owner).trust;
    const TokenSet& bad = tokens.bad(t);
    for (std::size_t k = 0; k < tokens.num_tokens(); ++k) {
      if (!bad.test(k) || !full[n].test(k)) continue;
      ++result.stats.violating_pairs;
      const int cls = circ[n].test(k) ? 0 : stat[n].test(k) ? 1 : 2;
      if (emitted[cls] >= options.max_findings_per_code) {
        ++suppressed[cls];
        continue;
      }
      ++emitted[cls];
      lint::Diagnostic d;
      d.code = kCodes[cls].code;
      d.severity = lint::Severity::Error;
      d.location = "certify: " + taint.node_name(n);
      d.message = std::string(kCodes[cls].what) + ": confidential token " +
                  std::to_string(k) + " reaches " + taint.node_name(n) +
                  " of " + module_label(nl, owner) + " (trust category " +
                  std::to_string(t) + ")";
      d.fix_hint = kCodes[cls].hint;
      result.diagnostics.push_back(std::move(d));
    }
  }
  for (int cls = 0; cls < 3; ++cls) {
    if (suppressed[cls] == 0) continue;
    lint::Diagnostic d;
    d.code = kCodes[cls].code;
    d.severity = lint::Severity::Note;
    d.location = "certify";
    d.message = "and " + std::to_string(suppressed[cls]) + " more " +
                kCodes[cls].code + " finding(s) suppressed (cap " +
                std::to_string(options.max_findings_per_code) + " per code)";
    result.diagnostics.push_back(std::move(d));
  }
  if (options.ternary_refine) {
    lint::Diagnostic d;
    d.code = "CERT004";
    d.severity = lint::Severity::Note;
    d.location = "certify";
    d.message = "ternary refinement proved " +
                std::to_string(ts.ternary_discharged) +
                " structural edge(s) non-functional (fixpoint over " +
                std::to_string(result.stats.edges) + " edges, " +
                std::to_string(result.stats.nodes) + " nodes)";
    result.diagnostics.push_back(std::move(d));
  }

  if (trace != nullptr)
    trace->counter("flow.violating_pairs").add(result.stats.violating_pairs);
  return result;
}

namespace {

class CertifyPass final : public lint::Pass {
 public:
  explicit CertifyPass(CertifyOptions options) : options_(options) {}

  const char* name() const override { return "flow-certify"; }
  const char* description() const override {
    return "independent SAT-free certification of the secured design "
           "against its security spec (CERT001-CERT004)";
  }
  bool applicable(const lint::LintInput& in) const override {
    return in.circuit != nullptr && in.network != nullptr &&
           in.spec != nullptr;
  }
  void run(const lint::LintInput& in, lint::Sink& sink) const override {
    CertifyResult result = certify(*in.circuit, *in.network, *in.spec,
                                   options_);
    for (lint::Diagnostic& d : result.diagnostics) {
      if (!in.network_source.empty())
        d.location = in.network_source + ": " + d.location;
      sink.report(std::move(d));
    }
  }

 private:
  CertifyOptions options_;
};

}  // namespace

std::unique_ptr<lint::Pass> make_certify_pass(CertifyOptions options) {
  return std::make_unique<CertifyPass>(options);
}

}  // namespace rsnsec::flow
