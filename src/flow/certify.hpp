#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/pass.hpp"
#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"
#include "security/spec.hpp"

namespace rsnsec::flow {

/// Certify diagnostic codes (stable; the CERT family of the lint
/// catalog, reported by `rsnsec certify` and `secure --verify`):
///
///   CERT001  error  certified insecure circuit logic: confidential data
///                   reaches an untrusted flip-flop through the circuit's
///                   functional logic alone; no RSN rewiring can fix it.
///   CERT002  error  certified intra-segment flow: confidential data
///                   reaches an untrusted sink through one register's own
///                   capture/shift/update flow.
///   CERT003  error  certified data-flow violation over the scan network:
///                   confidential data reaches an untrusted flip-flop over
///                   a path using the RSN's inter-register connections —
///                   the class `secure` claims to have eliminated.
///   CERT004  note   ternary-refinement summary: how many structural
///                   edges the pair-ternary evaluator proved
///                   non-functional and excluded from the fixpoint.
///
/// The certifier is a sound over-approximation (see TaintAnalyzer): a
/// clean report proves the absence of every flow the pipeline's exact
/// analysis models; a CERT001-003 finding on a design the pipeline
/// accepted means the pipeline has a bug (which is why secure --verify
/// treats it as a hard error), or that the over-approximation was too
/// coarse for this design (inspect the finding; with --no-ternary the
/// approximation is coarser still).
struct CertifyOptions {
  /// See TaintOptions::ternary_refine.
  bool ternary_refine = true;
  /// Cap per diagnostic code; a final note reports anything truncated.
  std::size_t max_findings_per_code = 16;
};

struct CertifyStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t ternary_discharged = 0;
  std::size_t violating_pairs = 0;  ///< under the full propagation
};

struct CertifyResult {
  std::vector<lint::Diagnostic> diagnostics;
  CertifyStats stats;

  /// True if no error-severity finding was produced (CERT004 notes do
  /// not affect certification).
  bool certified() const {
    return lint::count_at_least(diagnostics, lint::Severity::Error) == 0;
  }
};

/// Independently re-verifies `network` against `spec`: runs the taint
/// fixpoint at all three tiers and classifies every violating
/// (node, token) pair into CERT001/002/003. SAT-free and sound: a
/// certified() result over-approximates the pipeline's own checks.
CertifyResult certify(const netlist::Netlist& nl, const rsn::Rsn& network,
                      const security::SecuritySpec& spec,
                      const CertifyOptions& options = {});

/// The certifier as a lint pass ("flow-certify", applicable when circuit,
/// network and spec are all present). Not part of
/// Registry::with_default_passes(): certification findings are security
/// verdicts, not well-formedness diagnostics, and only make sense on a
/// design that claims to be secure — `rsnsec certify` and
/// `secure --verify` add it explicitly.
std::unique_ptr<lint::Pass> make_certify_pass(CertifyOptions options = {});

}  // namespace rsnsec::flow
