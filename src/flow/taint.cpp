#include "flow/taint.hpp"

#include <algorithm>

#include "flow/ternary.hpp"
#include "obs/trace.hpp"
#include "rsn/access.hpp"

namespace rsnsec::flow {

using netlist::Cone;
using netlist::NodeId;
using rsn::ElemId;
using rsn::ElemKind;
using security::TokenSet;

TaintAnalyzer::TaintAnalyzer(const netlist::Netlist& nl,
                             const rsn::Rsn& network,
                             const security::SecuritySpec& spec,
                             const security::TokenTable& tokens,
                             TaintOptions options)
    : nl_(nl), spec_(spec), tokens_(tokens), options_(options) {
  build_nodes(network);
  build_edges(network);
  if (obs::TraceSession* trace = obs::TraceSession::active()) {
    trace->counter("flow.nodes").add(owner_module_.size());
    trace->counter("flow.edges").add(stats_.circuit_edges +
                                     stats_.capture_edges +
                                     stats_.update_edges + stats_.shift_edges +
                                     stats_.rsn_edges);
    trace->counter("flow.ternary_discharged").add(stats_.ternary_discharged);
  }
}

void TaintAnalyzer::build_nodes(const rsn::Rsn& network) {
  ff_nodes_ = nl_.ffs();
  ff_index_.assign(nl_.num_nodes(), 0);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i)
    ff_index_[static_cast<std::size_t>(ff_nodes_[i])] = i;

  scan_base_.assign(network.num_elements(), 0);
  std::size_t next = 0;
  for (ElemId r : network.registers()) {
    scan_base_[static_cast<std::size_t>(r)] = next;
    const rsn::Element& e = network.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      node_reg_.push_back(r);
      node_ff_.push_back(f);
      owner_module_.push_back(e.module);
      ++next;
    }
  }
  circuit_base_ = next;
  stats_.scan_nodes = next;
  stats_.circuit_nodes = ff_nodes_.size();
  for (NodeId ff : ff_nodes_) owner_module_.push_back(nl_.node(ff).module);

  // A circuit FF is internal iff the RSN touches it neither as an update
  // target nor as a capture-cone leaf. Classified structurally (ternary
  // refinement never changes the node set, only the edges), exactly like
  // the pipeline's bridging.
  std::vector<bool> connected(nl_.num_nodes(), false);
  for (ElemId r : network.registers()) {
    for (const rsn::ScanFF& sf : network.elem(r).ffs) {
      if (sf.update_dst != netlist::no_node) connected[sf.update_dst] = true;
      if (sf.capture_src != netlist::no_node) {
        Cone cone = nl_.extract_signal_cone(sf.capture_src);
        for (NodeId leaf : cone.leaves)
          if (nl_.is_ff(leaf)) connected[leaf] = true;
      }
    }
  }
  internal_.assign(ff_nodes_.size(), false);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
    internal_[i] = !connected[static_cast<std::size_t>(ff_nodes_[i])];
    if (internal_[i]) ++stats_.internal_ffs;
  }

  seed_token_.assign(owner_module_.size(), -1);
  for (std::size_t n = 0; n < owner_module_.size(); ++n) {
    if (n >= circuit_base_ && internal_[n - circuit_base_]) continue;
    seed_token_[n] = tokens_.token_of(owner_module_[n]);
  }
}

void TaintAnalyzer::build_edges(const rsn::Rsn& network) {
  circuit_succ_.assign(owner_module_.size(), {});
  static_succ_.assign(owner_module_.size(), {});
  rsn_succ_.assign(owner_module_.size(), {});

  TernaryEvaluator ternary(nl_);
  auto edge_live = [&](const Cone& cone, std::size_t leaf_idx) {
    if (!options_.ternary_refine) return true;
    if (ternary.proves_independent(cone, leaf_idx)) {
      ++stats_.ternary_discharged;
      return false;
    }
    return true;
  };

  // Circuit next-state edges: FF leaf of j's next-state cone -> j. Every
  // structural connection is an edge (minus what the ternary refinement
  // proves dead); no simulation, no SAT, no bridging — internal FFs stay
  // as transit nodes, which preserves the composed reachability bridging
  // would produce.
  for (std::size_t j = 0; j < ff_nodes_.size(); ++j) {
    Cone cone = nl_.extract_next_state_cone(ff_nodes_[j]);
    for (std::size_t l = 0; l < cone.leaves.size(); ++l) {
      NodeId leaf = cone.leaves[l];
      if (!nl_.is_ff(leaf) || !edge_live(cone, l)) continue;
      circuit_succ_[circuit_base_ + ff_index_[static_cast<std::size_t>(leaf)]]
          .push_back(circuit_base_ + j);
      ++stats_.circuit_edges;
    }
  }

  for (ElemId r : network.registers()) {
    const rsn::Element& e = network.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      const std::size_t node = scan_node(r, f);
      // Shift order: data only moves toward scan-out.
      if (f + 1 < e.ffs.size()) {
        static_succ_[node].push_back(scan_node(r, f + 1));
        ++stats_.shift_edges;
      }
      // Capture cone: circuit FF leaf -> scan FF.
      if (e.ffs[f].capture_src != netlist::no_node) {
        Cone cone = nl_.extract_signal_cone(e.ffs[f].capture_src);
        for (std::size_t l = 0; l < cone.leaves.size(); ++l) {
          NodeId leaf = cone.leaves[l];
          if (!nl_.is_ff(leaf) || !edge_live(cone, l)) continue;
          static_succ_[circuit_base_ +
                       ff_index_[static_cast<std::size_t>(leaf)]]
              .push_back(node);
          ++stats_.capture_edges;
        }
      }
      // Update connection into the circuit.
      if (e.ffs[f].update_dst != netlist::no_node) {
        static_succ_[node].push_back(
            circuit_base_ +
            ff_index_[static_cast<std::size_t>(e.ffs[f].update_dst)]);
        ++stats_.update_edges;
      }
    }
  }

  // Inter-register RSN edges: registers reachable over mux-only chains.
  // Visited-set BFS per source register — complete (terminates on cyclic
  // mux structures and misses nothing), where the resolution engine's
  // chain DFS caps at 256 chains because it must also enumerate the
  // concrete connections of every chain. Certify only needs reachability.
  rsn::FanoutIndex fanout(network);
  std::vector<bool> seen(network.num_elements(), false);
  for (ElemId r : network.registers()) {
    const rsn::Element& re = network.elem(r);
    if (re.ffs.empty()) continue;
    std::vector<ElemId> queue{r};
    std::fill(seen.begin(), seen.end(), false);
    seen[static_cast<std::size_t>(r)] = true;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      for (auto [to, port] : fanout.of(queue[qi])) {
        (void)port;
        if (seen[static_cast<std::size_t>(to)]) continue;
        seen[static_cast<std::size_t>(to)] = true;
        const rsn::Element& te = network.elem(to);
        if (te.kind == ElemKind::Register) {
          if (!te.ffs.empty()) {
            rsn_succ_[scan_node(r, re.ffs.size() - 1)].push_back(
                scan_node(to, 0));
            ++stats_.rsn_edges;
          }
        } else if (te.kind == ElemKind::Mux) {
          queue.push_back(to);
        }
        // Scan-out: data leaves the chip; nothing downstream.
      }
    }
  }
}

std::vector<TokenSet> TaintAnalyzer::propagate(TaintTier tier) const {
  const bool circuit_only = tier == TaintTier::CircuitOnly;
  std::vector<TokenSet> state(owner_module_.size());
  std::vector<std::size_t> worklist;
  std::vector<bool> queued(owner_module_.size(), false);
  for (std::size_t n = 0; n < owner_module_.size(); ++n) {
    if (circuit_only && n < circuit_base_) continue;
    if (seed_token_[n] >= 0) {
      state[n].set(static_cast<std::size_t>(seed_token_[n]));
      worklist.push_back(n);
      queued[n] = true;
    }
  }
  auto relax = [&](std::size_t from, std::size_t to) {
    if (state[to].merge(state[from]) && !queued[to]) {
      queued[to] = true;
      worklist.push_back(to);
    }
  };
  while (!worklist.empty()) {
    std::size_t n = worklist.back();
    worklist.pop_back();
    queued[n] = false;
    for (std::size_t s : circuit_succ_[n]) relax(n, s);
    if (circuit_only) continue;
    for (std::size_t s : static_succ_[n]) relax(n, s);
    if (tier == TaintTier::Full)
      for (std::size_t s : rsn_succ_[n]) relax(n, s);
  }
  return state;
}

bool TaintAnalyzer::is_victim(std::size_t node) const {
  if (owner_module_[node] < 0) return false;  // unannotated: transit only
  if (node >= circuit_base_ && internal_[node - circuit_base_]) return false;
  return true;
}

std::string TaintAnalyzer::node_name(std::size_t node) const {
  if (node < circuit_base_) {
    return "scan:" + std::to_string(node_reg_[node]) + "[" +
           std::to_string(node_ff_[node]) + "]";
  }
  NodeId ff = ff_nodes_[node - circuit_base_];
  const std::string& n = nl_.node(ff).name;
  return "ff:" + (n.empty() ? std::to_string(ff) : n);
}

std::vector<std::vector<bool>> TaintAnalyzer::circuit_reachability() const {
  const std::size_t n = ff_nodes_.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  std::vector<std::size_t> queue;
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<bool>& row = reach[src];
    queue.clear();
    // Seed with the direct successors (not src itself): entry (i, j)
    // means "reachable over >= 1 edge", matching the closure matrices.
    for (std::size_t s : circuit_succ_[circuit_base_ + src]) {
      if (!row[s - circuit_base_]) {
        row[s - circuit_base_] = true;
        queue.push_back(s - circuit_base_);
      }
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      for (std::size_t s : circuit_succ_[circuit_base_ + queue[qi]]) {
        if (!row[s - circuit_base_]) {
          row[s - circuit_base_] = true;
          queue.push_back(s - circuit_base_);
        }
      }
    }
  }
  return reach;
}

}  // namespace rsnsec::flow
