#include "flow/ternary.hpp"

#include <algorithm>

namespace rsnsec::flow {

using netlist::Cone;
using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// Image of the pair sets `a` and `b` under a binary boolean function,
/// assuming independence (full product of the two sets). Sound: the true
/// correlated pair set is a subset of the product.
template <typename F>
PairSet combine(PairSet a, PairSet b, F op) {
  PairSet r = 0;
  for (int i = 0; i < 4; ++i) {
    if (((a >> i) & 1) == 0) continue;
    for (int j = 0; j < 4; ++j) {
      if (((b >> j) & 1) == 0) continue;
      const int v0 = op((i >> 1) & 1, (j >> 1) & 1);
      const int v1 = op(i & 1, j & 1);
      r |= static_cast<PairSet>(1u << (v0 * 2 + v1));
    }
  }
  return r;
}

/// Complement of every pair in the set: (v0, v1) -> (!v0, !v1), i.e. the
/// 4-bit mask reversed.
PairSet invert(PairSet v) {
  return static_cast<PairSet>(((v & 0b0001) << 3) | ((v & 0b0010) << 1) |
                              ((v & 0b0100) >> 1) | ((v & 0b1000) >> 3));
}

int op_and(int a, int b) { return a & b; }
int op_or(int a, int b) { return a | b; }
int op_xor(int a, int b) { return a ^ b; }

}  // namespace

TernaryEvaluator::TernaryEvaluator(const Netlist& nl)
    : nl_(nl), val_(nl.num_nodes(), pair_top) {}

PairSet TernaryEvaluator::eval_gate(NodeId gate) {
  const netlist::Node& n = nl_.node(gate);
  const std::vector<NodeId>& fanins = n.fanins;
  switch (n.type) {
    case GateType::Buf:
      return fanins.empty() ? pair_top : val_[fanins[0]];
    case GateType::Not:
      return fanins.empty() ? pair_top : invert(val_[fanins[0]]);
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      if (fanins.empty()) return pair_top;
      // Idempotence: a fanin wired in twice contributes once; folding it
      // twice under the independence assumption would lose exactly the
      // correlation that makes AND(x, x) = x.
      dedup_.clear();
      for (NodeId f : fanins) {
        if (std::find(dedup_.begin(), dedup_.end(), f) == dedup_.end())
          dedup_.push_back(f);
      }
      const bool is_and = n.type == GateType::And || n.type == GateType::Nand;
      PairSet acc = val_[dedup_[0]];
      for (std::size_t i = 1; i < dedup_.size(); ++i)
        acc = combine(acc, val_[dedup_[i]], is_and ? op_and : op_or);
      const bool negate = n.type == GateType::Nand || n.type == GateType::Nor;
      return negate ? invert(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      // Parity cancellation: a fanin wired in an even number of times
      // contributes nothing (XOR(x, x) = 0) — this is the Fig. 5 XOR
      // reconvergence the structural analysis cannot see through.
      dedup_.clear();
      for (NodeId f : fanins) {
        auto it = std::find(dedup_.begin(), dedup_.end(), f);
        if (it == dedup_.end())
          dedup_.push_back(f);
        else
          dedup_.erase(it);
      }
      PairSet acc = pair_00;  // XOR of zero operands
      for (NodeId f : dedup_) acc = combine(acc, val_[f], op_xor);
      return n.type == GateType::Xnor ? invert(acc) : acc;
    }
    case GateType::Mux: {
      if (fanins.size() != 3) return pair_top;
      const PairSet s = val_[fanins[0]];
      // Both data inputs on the same node: the select cannot matter —
      // the output *is* that node, whatever the (possibly differing)
      // select evaluates to. Enumerating the product instead would pick
      // in0 and in1 independently and manufacture a spurious difference.
      if (fanins[1] == fanins[2]) return val_[fanins[1]];
      const PairSet a = val_[fanins[1]];
      const PairSet b = val_[fanins[2]];
      PairSet r = 0;
      for (int i = 0; i < 4; ++i) {
        if (((s >> i) & 1) == 0) continue;
        for (int j = 0; j < 4; ++j) {
          if (((a >> j) & 1) == 0) continue;
          for (int k = 0; k < 4; ++k) {
            if (((b >> k) & 1) == 0) continue;
            const int v0 = ((i >> 1) & 1) ? ((k >> 1) & 1) : ((j >> 1) & 1);
            const int v1 = (i & 1) ? (k & 1) : (j & 1);
            r |= static_cast<PairSet>(1u << (v0 * 2 + v1));
          }
        }
      }
      return r;
    }
    default:
      // Leaves (Input/Const/FF) never appear in Cone::gates; anything
      // unexpected degrades to "no information", which is sound.
      return pair_top;
  }
}

bool TernaryEvaluator::proves_independent(const Cone& cone,
                                          std::size_t leaf_idx) {
  for (NodeId leaf : cone.leaves) {
    const GateType t = nl_.node(leaf).type;
    if (t == GateType::Const0)
      val_[leaf] = pair_00;
    else if (t == GateType::Const1)
      val_[leaf] = pair_11;
    else
      val_[leaf] = pair_equal;
  }
  val_[cone.leaves[leaf_idx]] = pair_diff;
  for (NodeId g : cone.gates) val_[g] = eval_gate(g);
  // A degenerate cone (root is itself the tested leaf) keeps pair_diff
  // at the root and is correctly reported as not-proven.
  return pair_proves_equal(val_[cone.root]);
}

}  // namespace rsnsec::flow
