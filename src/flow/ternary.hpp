#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace rsnsec::flow {

/// Abstract value of the pair-ternary domain: a set of (v0, v1) value
/// pairs, where v0 is a signal's value in an evaluation with the leaf
/// under test at 0 and v1 its value in the *same* evaluation with only
/// that leaf flipped to 1. The set is encoded as a 4-bit mask with bit
/// (v0*2 + v1) marking pair (v0, v1) as possible.
///
/// This is the classic 0/1/X constant propagation refined to track the
/// two evaluations jointly: a plain ternary domain would assign X to the
/// leaf under test and lose it immediately, while the pair encoding keeps
/// "differs between the evaluations" (the D of D-calculus) as the exact
/// pair {(0,1)} and can cancel it through reconvergences — XOR(x, x)
/// evaluates to {(0,0)}, MUX(x, a, a) to the value set of a.
using PairSet = std::uint8_t;

constexpr PairSet pair_00 = 0b0001;  ///< {(0,0)}: constant 0
constexpr PairSet pair_11 = 0b1000;  ///< {(1,1)}: constant 1
/// Unknown but identical in both evaluations (every leaf that is not the
/// one under test: its value is free, but it does not change when the
/// tested leaf flips).
constexpr PairSet pair_equal = pair_00 | pair_11;
/// The leaf under test itself: 0 in the base evaluation, 1 in the
/// flipped one.
constexpr PairSet pair_diff = 0b0010;
/// No information (any pair possible).
constexpr PairSet pair_top = 0b1111;

/// True if `v` proves the signal never differs between the two
/// evaluations (v contains only equal pairs).
constexpr bool pair_proves_equal(PairSet v) {
  return (v & ~pair_equal) == 0;
}

/// SAT-free proof engine for "the cone root does not functionally depend
/// on one of its leaves", by abstract interpretation of the cone under
/// the pair-ternary domain (one forward evaluation per queried leaf,
/// linear in the cone size).
///
/// Soundness: every gate transfer function computes a superset of the
/// concretely reachable pairs — n-ary gates fold pairwise under an
/// independence assumption (a superset of the correlated truth), repeated
/// identical fanins are deduplicated exactly (AND/OR idempotence, XOR
/// parity cancellation, MUX with both data inputs on the same node), and
/// MUX enumerates the full product of its three fanin sets. If the root's
/// set contains only equal pairs, *no* assignment of the other leaves
/// lets the tested leaf's value propagate — exactly what an UNSAT answer
/// of netlist::ConeDependenceChecker certifies — so a proof here can
/// replace a SAT query without changing any result (DepMode::Exact
/// matrices stay bit-identical; see DepOptions::ternary_prefilter).
/// Failure to prove carries no information: the query falls through to
/// simulation/SAT.
class TernaryEvaluator {
 public:
  explicit TernaryEvaluator(const netlist::Netlist& nl);

  /// True if the pair-ternary evaluation proves that the value of
  /// `cone.root` is independent of `cone.leaves[leaf_idx]` (a
  /// provably-non-functional, "only structural" connection).
  bool proves_independent(const netlist::Cone& cone, std::size_t leaf_idx);

 private:
  PairSet eval_gate(netlist::NodeId gate);

  const netlist::Netlist& nl_;
  std::vector<PairSet> val_;             // NodeId -> abstract value
  std::vector<netlist::NodeId> dedup_;   // per-gate distinct-fanin scratch
};

}  // namespace rsnsec::flow
