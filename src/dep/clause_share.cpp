#include "dep/clause_share.hpp"

#include <unordered_map>

namespace rsnsec::dep {

using netlist::Cone;
using netlist::NodeId;

CanonicalCone cone_canonical(const netlist::Netlist& nl, const Cone& cone) {
  CanonicalCone canon;
  const std::size_t num_leaves = cone.leaves.size();

  // Own leaf index of every leaf node, and gate codes (L + gate position,
  // matching the exact signature's local coordinates).
  std::unordered_map<NodeId, std::uint32_t> leaf_idx;
  leaf_idx.reserve(num_leaves);
  for (std::size_t i = 0; i < num_leaves; ++i)
    leaf_idx.emplace(cone.leaves[i], static_cast<std::uint32_t>(i));
  std::unordered_map<NodeId, std::uint32_t> gate_code;
  gate_code.reserve(cone.gates.size());
  for (std::size_t g = 0; g < cone.gates.size(); ++g)
    gate_code.emplace(cone.gates[g],
                      static_cast<std::uint32_t>(num_leaves + g));

  // Canonical leaf numbering: first occurrence in the gate fanin
  // traversal, then the root if it is a leaf, then the rest in original
  // order.
  constexpr std::uint32_t kUnassigned = 0xffffffffu;
  canon.leaf_to_canon.assign(num_leaves, kUnassigned);
  std::uint32_t next = 0;
  auto visit_leaf = [&](NodeId id) {
    auto it = leaf_idx.find(id);
    if (it == leaf_idx.end()) return;
    if (canon.leaf_to_canon[it->second] == kUnassigned)
      canon.leaf_to_canon[it->second] = next++;
  };
  for (NodeId g : cone.gates) {
    for (NodeId f : nl.node(g).fanins) visit_leaf(f);
  }
  if (cone.root != netlist::no_node) visit_leaf(cone.root);
  for (std::size_t i = 0; i < num_leaves; ++i) {
    if (canon.leaf_to_canon[i] == kUnassigned)
      canon.leaf_to_canon[i] = next++;
  }

  // Encode the structure in canonical coordinates: leaf count, leaf node
  // types in canonical order, gates (type, fanin count, fanin codes) in
  // topological order, root code. This mirrors the exact signature with
  // leaf codes renumbered, so equal encodings imply identical two-copy
  // CNFs modulo the per-leaf variable-triple permutation.
  canon.data.reserve(2 + num_leaves + 2 * cone.gates.size() + 8);
  canon.data.push_back(static_cast<std::uint32_t>(num_leaves));
  // Leaf kind in canonical coordinates. FF and Input leaves collapse to
  // one code: the two-copy CNF gives every non-constant leaf the same
  // variable triple and equality clauses regardless of node type, so a
  // cone fed by primary inputs builds the same solver instance as a
  // same-shaped cone fed by flip-flops and may share its clauses. Only
  // the constants stay distinct — they pin unit clauses into the CNF.
  // (The *exact* signature must keep FF and Input apart because it also
  // reuses verdicts, and only FF leaves are ever queried.)
  auto leaf_kind = [&](NodeId id) -> std::uint32_t {
    switch (nl.node(id).type) {
      case netlist::GateType::Const0: return 1;
      case netlist::GateType::Const1: return 2;
      default: return 0;  // FF or Input: same CNF shape
    }
  };
  std::vector<std::uint32_t> type_of_canon(num_leaves, 0);
  for (std::size_t i = 0; i < num_leaves; ++i) {
    type_of_canon[canon.leaf_to_canon[i]] = leaf_kind(cone.leaves[i]);
  }
  canon.data.insert(canon.data.end(), type_of_canon.begin(),
                    type_of_canon.end());
  auto canon_code = [&](NodeId id) -> std::uint32_t {
    auto lit = leaf_idx.find(id);
    if (lit != leaf_idx.end()) return canon.leaf_to_canon[lit->second];
    auto git = gate_code.find(id);
    return git == gate_code.end() ? kUnassigned : git->second;
  };
  canon.data.push_back(static_cast<std::uint32_t>(cone.gates.size()));
  for (NodeId g : cone.gates) {
    const netlist::Node& n = nl.node(g);
    canon.data.push_back(static_cast<std::uint32_t>(n.type));
    canon.data.push_back(static_cast<std::uint32_t>(n.fanins.size()));
    for (NodeId f : n.fanins) canon.data.push_back(canon_code(f));
  }
  canon.data.push_back(cone.root == netlist::no_node ? 0xfffffffeu
                                                     : canon_code(cone.root));

  std::uint64_t h = 0x452821e638d01377ULL;  // distinct basis from the
                                            // exact signature's
  for (std::uint32_t w : canon.data) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  canon.hash = h;
  return canon;
}

}  // namespace rsnsec::dep
