#include "dep/analyzer.hpp"

#include <cassert>

#include "netlist/cone_check.hpp"
#include "netlist/sim.hpp"

namespace rsnsec::dep {

using netlist::Cone;
using netlist::GateType;
using netlist::NodeId;

DependencyAnalyzer::DependencyAnalyzer(const netlist::Netlist& nl,
                                       const rsn::Rsn& network,
                                       DepOptions options)
    : nl_(nl), rsn_(network), options_(options), rng_(options.seed) {}

void DependencyAnalyzer::build_index() {
  ff_nodes_ = nl_.ffs();
  ff_index_.assign(nl_.num_nodes(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i)
    ff_index_[ff_nodes_[i]] = i;
  stats_.circuit_ffs = ff_nodes_.size();

  reg_slot_.assign(rsn_.num_elements(), static_cast<std::size_t>(-1));
  capture_deps_.clear();
  capture_deps_.reserve(rsn_.registers().size());
  for (rsn::ElemId r : rsn_.registers()) {
    reg_slot_[r] = capture_deps_.size();
    capture_deps_.emplace_back(rsn_.elem(r).ffs.size());
  }
}

void DependencyAnalyzer::classify_internal() {
  // A circuit flip-flop is "directly connected to the RSN" if it is an
  // update target of some scan FF or a leaf of some scan FF's capture
  // cone; every other flip-flop is internal (IF1/IF2 in Fig. 1) and gets
  // bridged out of the relation.
  std::vector<bool> connected(nl_.num_nodes(), false);
  for (rsn::ElemId r : rsn_.registers()) {
    for (const rsn::ScanFF& sf : rsn_.elem(r).ffs) {
      if (sf.update_dst != netlist::no_node) connected[sf.update_dst] = true;
      if (sf.capture_src != netlist::no_node) {
        Cone cone = nl_.extract_signal_cone(sf.capture_src);
        for (NodeId leaf : cone.leaves) {
          if (nl_.is_ff(leaf)) connected[leaf] = true;
        }
      }
    }
  }
  internal_.assign(ff_nodes_.size(), false);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
    internal_[i] = !connected[ff_nodes_[i]];
    if (internal_[i]) ++stats_.internal_ffs;
  }
}

std::vector<CaptureDep> DependencyAnalyzer::cone_deps(const Cone& cone) {
  std::vector<CaptureDep> out;

  // Special case: the cone start is itself a leaf (direct FF-to-FF wire);
  // extract_cone then reports that single leaf.
  std::vector<std::size_t> ff_leaves;
  for (std::size_t i = 0; i < cone.leaves.size(); ++i) {
    if (nl_.is_ff(cone.leaves[i])) ff_leaves.push_back(i);
  }
  if (ff_leaves.empty()) return out;

  if (options_.mode == DepMode::StructuralOnly) {
    // Over-approximation of Sec. IV-C: every structural connection is
    // treated as if data could propagate.
    for (std::size_t i : ff_leaves)
      out.push_back({cone.leaves[i], DepKind::Path});
    return out;
  }

  // Random-simulation prefilter: a propagation witness under 64 parallel
  // patterns proves functional dependence without any SAT call.
  std::vector<bool> decided(cone.leaves.size(), false);
  std::vector<std::uint64_t> base(cone.leaves.size());
  std::vector<std::uint64_t> scratch;
  std::size_t undecided = ff_leaves.size();
  for (int round = 0; round < options_.sim_rounds && undecided > 0; ++round) {
    for (std::size_t i = 0; i < cone.leaves.size(); ++i) {
      GateType t = nl_.node(cone.leaves[i]).type;
      if (t == GateType::Const0)
        base[i] = 0;
      else if (t == GateType::Const1)
        base[i] = ~0ULL;
      else
        base[i] = rng_.next_u64();
    }
    std::uint64_t f0 = netlist::eval_cone(nl_, cone, base, scratch);
    for (std::size_t i : ff_leaves) {
      if (decided[i]) continue;
      std::uint64_t saved = base[i];
      base[i] = ~saved;
      std::uint64_t f1 = netlist::eval_cone(nl_, cone, base, scratch);
      base[i] = saved;
      if (f0 != f1) {
        decided[i] = true;
        --undecided;
        ++stats_.sim_resolved;
        out.push_back({cone.leaves[i], DepKind::Path});
      }
    }
  }

  if (undecided > 0) {
    // Exact SAT check for the leaves simulation could not witness.
    netlist::ConeDependenceChecker checker(nl_, cone);
    for (std::size_t i : ff_leaves) {
      if (decided[i]) continue;
      ++stats_.sat_calls;
      if (checker.depends_on(i)) {
        ++stats_.sat_functional;
        out.push_back({cone.leaves[i], DepKind::Path});
      } else {
        ++stats_.sat_structural;
        out.push_back({cone.leaves[i], DepKind::Structural});
      }
    }
  }
  return out;
}

void DependencyAnalyzer::compute_one_cycle() {
  one_cycle_ = DepMatrix(ff_nodes_.size());
  for (std::size_t j = 0; j < ff_nodes_.size(); ++j) {
    Cone cone = nl_.extract_next_state_cone(ff_nodes_[j]);
    for (const CaptureDep& d : cone_deps(cone)) {
      one_cycle_.upgrade(circuit_index(d.circuit_ff), j, d.kind);
    }
  }
  // Capture-cone dependencies of every scan flip-flop.
  for (rsn::ElemId r : rsn_.registers()) {
    const rsn::Element& e = rsn_.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      if (e.ffs[f].capture_src != netlist::no_node) {
        Cone cone = nl_.extract_signal_cone(e.ffs[f].capture_src);
        capture_deps_[reg_slot_[r]][f] = cone_deps(cone);
      }
    }
  }

  stats_.deps_before_bridging = one_cycle_.count_nonzero();
  std::vector<bool> denoted(ff_nodes_.size(), false);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
    for (std::size_t j : one_cycle_.successors(i)) {
      denoted[i] = true;
      denoted[j] = true;
    }
  }
  for (bool d : denoted) stats_.denoted_ffs_before += d ? 1u : 0u;
}

void DependencyAnalyzer::bridge_internal() {
  closure_ = one_cycle_;
  if (!options_.bridge_internal) {
    stats_.deps_after_bridging = stats_.deps_before_bridging;
    stats_.denoted_ffs_after = stats_.denoted_ffs_before;
    return;
  }
  // Iteratively bridge every internal flip-flop v: compose each incoming
  // dependency (v on p) with each outgoing one (s on v) into (s on p),
  // then remove v from the relation (Fig. 3). Only-structural hops make
  // the composed dependency only-structural unless a path-dependent pair
  // is already known.
  for (std::size_t v = 0; v < ff_nodes_.size(); ++v) {
    if (!internal_[v]) continue;
    std::vector<std::size_t> preds = closure_.predecessors(v);
    std::vector<std::size_t> succs = closure_.successors(v);
    for (std::size_t p : preds) {
      if (p == v) continue;
      DepKind in = closure_.get(p, v);
      for (std::size_t s : succs) {
        if (s == v || s == p) continue;
        closure_.upgrade(p, s, compose_dep(in, closure_.get(v, s)));
      }
    }
    closure_.clear_node(v);
  }
  stats_.deps_after_bridging = closure_.count_nonzero();
  std::vector<bool> denoted(ff_nodes_.size(), false);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
    for (std::size_t j : closure_.successors(i)) {
      denoted[i] = true;
      denoted[j] = true;
    }
  }
  for (bool d : denoted) stats_.denoted_ffs_after += d ? 1u : 0u;
}

void DependencyAnalyzer::compute_closure() {
  if (options_.max_cycles > 0) {
    // Iterative k-cycle computation ([18]); after bridging the relation
    // contains no internal nodes, so no active mask is needed.
    closure_.bounded_closure(options_.max_cycles);
  } else {
    std::vector<bool> active(ff_nodes_.size());
    for (std::size_t i = 0; i < ff_nodes_.size(); ++i)
      active[i] = !options_.bridge_internal || !internal_[i];
    closure_.transitive_closure(&active);
  }
  stats_.closure_deps = closure_.count_nonzero();
  stats_.closure_path_deps = closure_.count_path();
}

void DependencyAnalyzer::run() {
  build_index();
  classify_internal();
  compute_one_cycle();
  bridge_internal();
  compute_closure();
}

const std::vector<CaptureDep>& DependencyAnalyzer::capture_deps(
    rsn::ElemId reg, std::size_t ff) const {
  return capture_deps_[reg_slot_[reg]][ff];
}

}  // namespace rsnsec::dep
