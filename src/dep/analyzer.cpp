#include "dep/analyzer.hpp"

#include <cassert>

#include "netlist/cone_check.hpp"
#include "netlist/sim.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::dep {

using netlist::Cone;
using netlist::GateType;
using netlist::NodeId;

namespace {

/// Seed of the private RNG stream of cone `idx` (splitmix64 finalizer).
/// Hashing (seed, cone index) instead of sharing one sequential stream
/// makes every cone's patterns independent of scheduling, which is what
/// guarantees bit-identical results for any thread count.
std::uint64_t cone_seed(std::uint64_t seed, std::uint64_t idx) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (idx + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

DependencyAnalyzer::DependencyAnalyzer(const netlist::Netlist& nl,
                                       const rsn::Rsn& network,
                                       DepOptions options)
    : nl_(nl), rsn_(network), options_(options) {}

void DependencyAnalyzer::build_index() {
  ff_nodes_ = nl_.ffs();
  ff_index_.assign(nl_.num_nodes(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i)
    ff_index_[ff_nodes_[i]] = i;
  stats_.circuit_ffs = ff_nodes_.size();

  reg_slot_.assign(rsn_.num_elements(), static_cast<std::size_t>(-1));
  capture_deps_.clear();
  capture_deps_.reserve(rsn_.registers().size());
  for (rsn::ElemId r : rsn_.registers()) {
    reg_slot_[r] = capture_deps_.size();
    capture_deps_.emplace_back(rsn_.elem(r).ffs.size());
  }
}

void DependencyAnalyzer::extract_capture_cones() {
  // One extraction per scan FF, reused by classify_internal (which needs
  // only the leaves) and compute_one_cycle (which classifies the full
  // cone) — previously the same cone was extracted twice.
  capture_cones_.clear();
  capture_cones_.resize(capture_deps_.size());
  struct Task {
    std::size_t slot, ff;
    NodeId src;
  };
  std::vector<Task> tasks;
  for (rsn::ElemId r : rsn_.registers()) {
    std::size_t slot = reg_slot_[r];
    const rsn::Element& e = rsn_.elem(r);
    capture_cones_[slot].resize(e.ffs.size());
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      if (e.ffs[f].capture_src != netlist::no_node)
        tasks.push_back({slot, f, e.ffs[f].capture_src});
    }
  }
  pool_->parallel_for(
      0, tasks.size(),
      [&](std::size_t t) {
        capture_cones_[tasks[t].slot][tasks[t].ff] =
            nl_.extract_signal_cone(tasks[t].src);
      },
      /*grain=*/1);
}

void DependencyAnalyzer::classify_internal() {
  // A circuit flip-flop is "directly connected to the RSN" if it is an
  // update target of some scan FF or a leaf of some scan FF's capture
  // cone; every other flip-flop is internal (IF1/IF2 in Fig. 1) and gets
  // bridged out of the relation.
  std::vector<bool> connected(nl_.num_nodes(), false);
  for (rsn::ElemId r : rsn_.registers()) {
    const rsn::Element& e = rsn_.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      const rsn::ScanFF& sf = e.ffs[f];
      if (sf.update_dst != netlist::no_node) connected[sf.update_dst] = true;
      if (sf.capture_src != netlist::no_node) {
        const Cone& cone = capture_cones_[reg_slot_[r]][f];
        for (NodeId leaf : cone.leaves) {
          if (nl_.is_ff(leaf)) connected[leaf] = true;
        }
      }
    }
  }
  internal_.assign(ff_nodes_.size(), false);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
    internal_[i] = !connected[ff_nodes_[i]];
    if (internal_[i]) ++stats_.internal_ffs;
  }
}

std::vector<CaptureDep> DependencyAnalyzer::cone_deps(const Cone& cone,
                                                      Rng& rng,
                                                      DepStats& stats) const {
  std::vector<CaptureDep> out;

  // Special case: the cone start is itself a leaf (direct FF-to-FF wire);
  // extract_cone then reports that single leaf.
  std::vector<std::size_t> ff_leaves;
  for (std::size_t i = 0; i < cone.leaves.size(); ++i) {
    if (nl_.is_ff(cone.leaves[i])) ff_leaves.push_back(i);
  }
  if (ff_leaves.empty()) return out;

  if (options_.mode == DepMode::StructuralOnly) {
    // Over-approximation of Sec. IV-C: every structural connection is
    // treated as if data could propagate.
    for (std::size_t i : ff_leaves)
      out.push_back({cone.leaves[i], DepKind::Path});
    return out;
  }

  // Random-simulation prefilter: a propagation witness under 64 parallel
  // patterns proves functional dependence without any SAT call. All
  // buffers are local, so concurrent cone classifications share nothing.
  std::vector<bool> decided(cone.leaves.size(), false);
  std::vector<std::uint64_t> base(cone.leaves.size());
  std::vector<std::uint64_t> scratch;
  std::size_t undecided = ff_leaves.size();
  for (int round = 0; round < options_.sim_rounds && undecided > 0; ++round) {
    for (std::size_t i = 0; i < cone.leaves.size(); ++i) {
      GateType t = nl_.node(cone.leaves[i]).type;
      if (t == GateType::Const0)
        base[i] = 0;
      else if (t == GateType::Const1)
        base[i] = ~0ULL;
      else
        base[i] = rng.next_u64();
    }
    std::uint64_t f0 = netlist::eval_cone(nl_, cone, base, scratch);
    for (std::size_t i : ff_leaves) {
      if (decided[i]) continue;
      std::uint64_t saved = base[i];
      base[i] = ~saved;
      std::uint64_t f1 = netlist::eval_cone(nl_, cone, base, scratch);
      base[i] = saved;
      if (f0 != f1) {
        decided[i] = true;
        --undecided;
        ++stats.sim_resolved;
        out.push_back({cone.leaves[i], DepKind::Path});
      }
    }
  }

  if (undecided > 0) {
    // Exact SAT check for the leaves simulation could not witness. The
    // checker (and its solver) is task-local: SAT state is never shared
    // between threads.
    netlist::ConeDependenceChecker checker(nl_, cone,
                                           options_.sat_conflict_limit);
    for (std::size_t i : ff_leaves) {
      if (decided[i]) continue;
      ++stats.sat_calls;
      switch (checker.query(i)) {
        case sat::Result::Sat:
          ++stats.sat_functional;
          out.push_back({cone.leaves[i], DepKind::Path});
          break;
        case sat::Result::Unsat:
          ++stats.sat_structural;
          out.push_back({cone.leaves[i], DepKind::Structural});
          break;
        case sat::Result::Unknown:
          // Conflict budget exhausted: sound over-approximation — treat
          // the dependency as functional (a missed real flow would be
          // unsound for security; a false Path only costs precision).
          ++stats.sat_unknown;
          out.push_back({cone.leaves[i], DepKind::Path});
          break;
      }
    }
  }
  return out;
}

void DependencyAnalyzer::compute_one_cycle() {
  one_cycle_ = DepMatrix(ff_nodes_.size());

  // Fan out one task per cone: first every circuit flip-flop's next-state
  // cone, then every scan FF's capture cone (cached by
  // extract_capture_cones). Task index doubles as the cone's RNG-stream
  // index, so the patterns a cone sees are scheduling-independent.
  struct CaptureTask {
    std::size_t slot, ff;
  };
  std::vector<CaptureTask> capture_tasks;
  for (rsn::ElemId r : rsn_.registers()) {
    const rsn::Element& e = rsn_.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      if (e.ffs[f].capture_src != netlist::no_node)
        capture_tasks.push_back({reg_slot_[r], f});
    }
  }
  const std::size_t nff = ff_nodes_.size();
  const std::size_t ntasks = nff + capture_tasks.size();
  std::vector<std::vector<CaptureDep>> results(ntasks);
  std::vector<DepStats> local(ntasks);

  pool_->parallel_for(
      0, ntasks,
      [&](std::size_t t) {
        Rng rng(cone_seed(options_.seed, t));
        if (t < nff) {
          Cone cone = nl_.extract_next_state_cone(ff_nodes_[t]);
          results[t] = cone_deps(cone, rng, local[t]);
        } else {
          const CaptureTask& ct = capture_tasks[t - nff];
          results[t] = cone_deps(capture_cones_[ct.slot][ct.ff], rng,
                                 local[t]);
        }
      },
      /*grain=*/1);

  // Deterministic reduction: apply results and counters in task order.
  for (std::size_t j = 0; j < nff; ++j) {
    for (const CaptureDep& d : results[j])
      one_cycle_.upgrade(circuit_index(d.circuit_ff), j, d.kind);
  }
  for (std::size_t t = 0; t < capture_tasks.size(); ++t) {
    const CaptureTask& ct = capture_tasks[t];
    capture_deps_[ct.slot][ct.ff] = std::move(results[nff + t]);
  }
  for (const DepStats& s : local) {
    stats_.sim_resolved += s.sim_resolved;
    stats_.sat_calls += s.sat_calls;
    stats_.sat_functional += s.sat_functional;
    stats_.sat_structural += s.sat_structural;
    stats_.sat_unknown += s.sat_unknown;
  }

  stats_.deps_before_bridging = one_cycle_.count_nonzero();
  std::vector<bool> denoted(ff_nodes_.size(), false);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
    for (std::size_t j : one_cycle_.successors(i)) {
      denoted[i] = true;
      denoted[j] = true;
    }
  }
  for (bool d : denoted) stats_.denoted_ffs_before += d ? 1u : 0u;
}

void DependencyAnalyzer::bridge_internal() {
  closure_ = one_cycle_;
  if (!options_.bridge_internal) {
    stats_.deps_after_bridging = stats_.deps_before_bridging;
    stats_.denoted_ffs_after = stats_.denoted_ffs_before;
    return;
  }
  // Iteratively bridge every internal flip-flop v: compose each incoming
  // dependency (v on p) with each outgoing one (s on v) into (s on p),
  // then remove v from the relation (Fig. 3). Only-structural hops make
  // the composed dependency only-structural unless a path-dependent pair
  // is already known. Inherently sequential: each elimination rewrites
  // the relation the next one reads.
  for (std::size_t v = 0; v < ff_nodes_.size(); ++v) {
    if (!internal_[v]) continue;
    std::vector<std::size_t> preds = closure_.predecessors(v);
    std::vector<std::size_t> succs = closure_.successors(v);
    for (std::size_t p : preds) {
      if (p == v) continue;
      DepKind in = closure_.get(p, v);
      for (std::size_t s : succs) {
        if (s == v || s == p) continue;
        closure_.upgrade(p, s, compose_dep(in, closure_.get(v, s)));
      }
    }
    closure_.clear_node(v);
  }
  stats_.deps_after_bridging = closure_.count_nonzero();
  std::vector<bool> denoted(ff_nodes_.size(), false);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
    for (std::size_t j : closure_.successors(i)) {
      denoted[i] = true;
      denoted[j] = true;
    }
  }
  for (bool d : denoted) stats_.denoted_ffs_after += d ? 1u : 0u;
}

void DependencyAnalyzer::compute_closure() {
  if (options_.max_cycles > 0) {
    // Iterative k-cycle computation ([18]); after bridging the relation
    // contains no internal nodes, so no active mask is needed.
    closure_.bounded_closure(options_.max_cycles, pool_);
  } else {
    std::vector<bool> active(ff_nodes_.size());
    for (std::size_t i = 0; i < ff_nodes_.size(); ++i)
      active[i] = !options_.bridge_internal || !internal_[i];
    closure_.transitive_closure(&active, pool_);
  }
  stats_.closure_deps = closure_.count_nonzero();
  stats_.closure_path_deps = closure_.count_path();
}

void DependencyAnalyzer::run() {
  ThreadPool pool(ThreadPool::resolve_num_threads(options_.num_threads));
  pool_ = &pool;
  stats_.threads_used = pool.num_threads();

  // Each phase is one trace span; Span::seconds() feeds the same DepStats
  // wall-clock fields the old per-phase stopwatches filled, so the
  // BENCH_dep.json schema and existing consumers are unchanged.
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span analysis_span(trace, "dep.analysis");
  {
    obs::Span span(trace, "dep.setup");
    build_index();
    extract_capture_cones();
    classify_internal();
  }
  {
    obs::Span span(trace, "dep.one_cycle");
    compute_one_cycle();
    stats_.t_one_cycle = span.seconds();
  }
  {
    obs::Span span(trace, "dep.bridge");
    bridge_internal();
    stats_.t_bridge = span.seconds();
  }
  {
    obs::Span span(trace, "dep.closure");
    compute_closure();
    stats_.t_closure = span.seconds();
  }
  if (trace != nullptr) {
    trace->counter("dep.runs").add(1);
    trace->counter("dep.sim_resolved").add(stats_.sim_resolved);
    trace->counter("dep.sat_calls").add(stats_.sat_calls);
    trace->counter("dep.sat_unknown").add(stats_.sat_unknown);
    trace->counter("dep.deps_after_bridging")
        .add(stats_.deps_after_bridging);
    trace->counter("dep.closure_deps").add(stats_.closure_deps);
  }
  pool_ = nullptr;
}

const std::vector<CaptureDep>& DependencyAnalyzer::capture_deps(
    rsn::ElemId reg, std::size_t ff) const {
  return capture_deps_[reg_slot_[reg]][ff];
}

}  // namespace rsnsec::dep
