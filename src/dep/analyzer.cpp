#include "dep/analyzer.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_map>
#include <utility>

#include "dep/clause_share.hpp"
#include "flow/ternary.hpp"
#include "netlist/cone_check.hpp"
#include "netlist/sim.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::dep {

using netlist::Cone;
using netlist::GateType;
using netlist::NodeId;

namespace {

/// Seed of the private RNG stream of a cone (splitmix64 finalizer over
/// (seed, cone signature hash)). Hashing instead of sharing one sequential
/// stream makes every cone's patterns independent of scheduling (bit-
/// identical results for any thread count); hashing the *signature* rather
/// than the task index additionally gives isomorphic cones identical
/// pattern streams, so one cone's sim/SAT verdicts are valid verbatim for
/// every cone of the same shape — the basis of the cone cache.
/// Size/LBD caps on clauses exchanged between isomorphic cones: short,
/// low-LBD clauses transfer the most propagation power per byte.
constexpr std::size_t kShareMaxClauseSize = 8;
constexpr std::uint32_t kShareMaxLbd = 4;

/// PartitionMode::Auto switches to the tiled matrices at this many circuit
/// flip-flops: below it the dense planes fit comfortably in cache and the
/// dense kernels win; above it the n^2/8 plane bytes start to dominate the
/// analysis footprint (4096 FFs = 4 MiB of planes, growing quadratically).
constexpr std::size_t kAutoPartitionFfs = 4096;
/// Region sizing of the deterministic partition: close a region once it
/// holds kRegionTargetFfs flip-flops, or earlier at a module boundary once
/// it holds at least kRegionMinFfs (so per-module instruments — the
/// dependency-local unit of MBIST/BASTION designs — keep their internal
/// flip-flops inside one region's diagonal block).
constexpr std::size_t kRegionTargetFfs = 1024;
constexpr std::size_t kRegionMinFfs = 256;

std::uint64_t cone_seed(std::uint64_t seed, std::uint64_t sig_hash) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (sig_hash + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Canonical structural signature of a combinational cone. Two cones with
/// equal signatures are isomorphic in every way cone_deps can observe:
/// same leaf count and per-leaf node types (FF vs. input vs. constant —
/// which fixes the ff_leaves set, the constant-pinning of the sim
/// prefilter, and ConeDependenceChecker's constant handling), same gates
/// in the same topological order with the same types, and same fanin
/// wiring in cone-local coordinates (leaf i -> code i, gate g -> code
/// L + g). eval_cone and the two-copy CNF encoding read exactly this
/// structure, so equal signatures imply identical simulation values and
/// an identical CNF modulo variable names — hence identical verdicts,
/// including Unknown outcomes under the same conflict limit.
struct ConeSignature {
  std::vector<std::uint32_t> data;
  std::uint64_t hash = 0;

  friend bool operator==(const ConeSignature& a, const ConeSignature& b) {
    return a.hash == b.hash && a.data == b.data;
  }
};

ConeSignature cone_signature(const netlist::Netlist& nl, const Cone& cone) {
  ConeSignature sig;
  const std::size_t nl_leaves = cone.leaves.size();
  sig.data.reserve(2 + nl_leaves + 2 * cone.gates.size() + 8);
  // Cone-local code of a node: leaves first, then gates (matching the
  // variable-allocation order of the CNF encoding and the evaluation
  // order of eval_cone).
  std::unordered_map<NodeId, std::uint32_t> codes;
  codes.reserve(nl_leaves + cone.gates.size());
  for (std::size_t i = 0; i < nl_leaves; ++i)
    codes.emplace(cone.leaves[i], static_cast<std::uint32_t>(i));
  for (std::size_t g = 0; g < cone.gates.size(); ++g)
    codes.emplace(cone.gates[g], static_cast<std::uint32_t>(nl_leaves + g));
  auto local_code = [&](NodeId id) -> std::uint32_t {
    auto it = codes.find(id);
    return it == codes.end() ? 0xffffffffu : it->second;
  };
  sig.data.push_back(static_cast<std::uint32_t>(nl_leaves));
  for (NodeId leaf : cone.leaves)
    sig.data.push_back(static_cast<std::uint32_t>(nl.node(leaf).type));
  sig.data.push_back(static_cast<std::uint32_t>(cone.gates.size()));
  for (NodeId g : cone.gates) {
    const netlist::Node& n = nl.node(g);
    sig.data.push_back(static_cast<std::uint32_t>(n.type));
    sig.data.push_back(static_cast<std::uint32_t>(n.fanins.size()));
    for (NodeId f : n.fanins) sig.data.push_back(local_code(f));
  }
  sig.data.push_back(cone.root == netlist::no_node ? 0xfffffffeu
                                                   : local_code(cone.root));
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // fractional digits of pi
  for (std::uint32_t w : sig.data) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  sig.hash = h;
  return sig;
}

}  // namespace

DependencyAnalyzer::DependencyAnalyzer(const netlist::Netlist& nl,
                                       const rsn::Rsn& network,
                                       DepOptions options)
    : nl_(nl), rsn_(network), options_(options) {
  // Representation choice is a pure function of options and circuit, so
  // run() and restore() agree on it and cache keys can include it.
  tiled_ = options_.partition == PartitionMode::Tiled ||
           (options_.partition == PartitionMode::Auto &&
            nl_.ffs().size() >= kAutoPartitionFfs);
}

void DependencyAnalyzer::build_index() {
  ff_nodes_ = nl_.ffs();
  ff_index_.assign(nl_.num_nodes(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i)
    ff_index_[ff_nodes_[i]] = i;
  stats_.circuit_ffs = ff_nodes_.size();

  reg_slot_.assign(rsn_.num_elements(), static_cast<std::size_t>(-1));
  capture_deps_.clear();
  capture_deps_.reserve(rsn_.registers().size());
  for (rsn::ElemId r : rsn_.registers()) {
    reg_slot_[r] = capture_deps_.size();
    capture_deps_.emplace_back(rsn_.elem(r).ffs.size());
  }
  partition_regions();
}

void DependencyAnalyzer::partition_regions() {
  region_first_block_.clear();
  stats_.regions = 0;
  if (!tiled_) return;
  const std::size_t nb = (ff_nodes_.size() + 63) / 64;
  region_first_block_.push_back(0);
  if (nb == 0) return;
  // Walk the dense index space in 64-wide blocks (regions are 64-aligned
  // so every intra-region dependency lives in a diagonal-block tile of
  // the partition). A block belongs to the module of its first flip-flop;
  // a region closes at the size target, or earlier at a module boundary
  // once it is big enough to be worth bridging locally. Deterministic:
  // depends only on the circuit's FF order and module tags.
  auto block_module = [&](std::size_t b) {
    return nl_.node(ff_nodes_[b * 64]).module;
  };
  for (std::size_t b = 1; b < nb; ++b) {
    const std::size_t region_ffs = (b - region_first_block_.back()) * 64;
    if (region_ffs >= kRegionTargetFfs ||
        (block_module(b) != block_module(b - 1) &&
         region_ffs >= kRegionMinFfs)) {
      region_first_block_.push_back(b);
    }
  }
  region_first_block_.push_back(nb);  // sentinel
  stats_.regions = region_first_block_.size() - 1;
}

void DependencyAnalyzer::refresh_matrix_stats() {
  if (tiled_) {
    stats_.matrix_bytes =
        one_cycle_tiled_.memory_bytes() + closure_tiled_.memory_bytes();
    stats_.tiles_nonzero =
        one_cycle_tiled_.tiles_nonzero() + closure_tiled_.tiles_nonzero();
    stats_.tiles_spilled =
        one_cycle_tiled_.tiles_spilled() + closure_tiled_.tiles_spilled();
  } else {
    stats_.matrix_bytes = one_cycle_.memory_bytes() + closure_.memory_bytes();
    stats_.tiles_nonzero = 0;
    stats_.tiles_spilled = 0;
  }
}

std::vector<std::size_t> DependencyAnalyzer::closure_path_successors(
    std::size_t i) const {
  if (tiled_) return closure_tiled_.path_successors(i);
  std::vector<std::size_t> out;
  for (std::size_t j : closure_.successors(i)) {
    if (closure_.get(i, j) == DepKind::Path) out.push_back(j);
  }
  return out;
}

void DependencyAnalyzer::extract_capture_cones() {
  // One extraction per scan FF, reused by classify_internal (which needs
  // only the leaves) and compute_one_cycle (which classifies the full
  // cone) — previously the same cone was extracted twice.
  capture_cones_.clear();
  capture_cones_.resize(capture_deps_.size());
  struct Task {
    std::size_t slot, ff;
    NodeId src;
  };
  std::vector<Task> tasks;
  for (rsn::ElemId r : rsn_.registers()) {
    std::size_t slot = reg_slot_[r];
    const rsn::Element& e = rsn_.elem(r);
    capture_cones_[slot].resize(e.ffs.size());
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      if (e.ffs[f].capture_src != netlist::no_node)
        tasks.push_back({slot, f, e.ffs[f].capture_src});
    }
  }
  pool_->parallel_for(
      0, tasks.size(),
      [&](std::size_t t) {
        capture_cones_[tasks[t].slot][tasks[t].ff] =
            nl_.extract_signal_cone(tasks[t].src);
      },
      /*grain=*/1);
}

void DependencyAnalyzer::classify_internal() {
  // A circuit flip-flop is "directly connected to the RSN" if it is an
  // update target of some scan FF or a leaf of some scan FF's capture
  // cone; every other flip-flop is internal (IF1/IF2 in Fig. 1) and gets
  // bridged out of the relation.
  std::vector<bool> connected(nl_.num_nodes(), false);
  for (rsn::ElemId r : rsn_.registers()) {
    const rsn::Element& e = rsn_.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      const rsn::ScanFF& sf = e.ffs[f];
      if (sf.update_dst != netlist::no_node) connected[sf.update_dst] = true;
      if (sf.capture_src != netlist::no_node) {
        const Cone& cone = capture_cones_[reg_slot_[r]][f];
        for (NodeId leaf : cone.leaves) {
          if (nl_.is_ff(leaf)) connected[leaf] = true;
        }
      }
    }
  }
  internal_.assign(ff_nodes_.size(), false);
  for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
    internal_[i] = !connected[ff_nodes_[i]];
    if (internal_[i]) ++stats_.internal_ffs;
  }
}

std::vector<DependencyAnalyzer::LeafDep> DependencyAnalyzer::cone_deps(
    const Cone& cone, Rng& rng, DepStats& stats,
    const ShareInfo* share) const {
  std::vector<LeafDep> out;

  // Special case: the cone start is itself a leaf (direct FF-to-FF wire);
  // extract_cone then reports that single leaf.
  std::vector<std::size_t> ff_leaves;
  for (std::size_t i = 0; i < cone.leaves.size(); ++i) {
    if (nl_.is_ff(cone.leaves[i])) ff_leaves.push_back(i);
  }
  if (ff_leaves.empty()) return out;

  if (options_.mode == DepMode::StructuralOnly) {
    // Over-approximation of Sec. IV-C: every structural connection is
    // treated as if data could propagate.
    for (std::size_t i : ff_leaves) out.push_back({i, DepKind::Path});
    return out;
  }

  // Random-simulation prefilter: a propagation witness under 256
  // parallel patterns (a 4x64-bit SIMD pattern block per leaf) proves
  // functional dependence without any SAT call. All buffers are local,
  // so concurrent cone classifications share nothing. Determinism
  // contract: every leaf draws its four lanes in lane order from the
  // cone's private stream, so verdicts are schedule-independent.
  std::vector<bool> decided(cone.leaves.size(), false);
  std::vector<netlist::Word256> base(cone.leaves.size());
  std::vector<netlist::Word256> scratch;
  std::size_t undecided = ff_leaves.size();
  for (int round = 0; round < options_.sim_rounds && undecided > 0; ++round) {
    for (std::size_t i = 0; i < cone.leaves.size(); ++i) {
      GateType t = nl_.node(cone.leaves[i]).type;
      if (t == GateType::Const0) {
        base[i] = netlist::Word256::zero();
      } else if (t == GateType::Const1) {
        base[i] = netlist::Word256::broadcast(true);
      } else {
        for (std::uint64_t& lane : base[i].lane) lane = rng.next_u64();
      }
    }
    netlist::Word256 f0 = netlist::eval_cone(nl_, cone, base, scratch);
    for (std::size_t i : ff_leaves) {
      if (decided[i]) continue;
      netlist::Word256 saved = base[i];
      for (int lane = 0; lane < 4; ++lane)
        base[i].lane[lane] = ~saved.lane[lane];
      netlist::Word256 f1 = netlist::eval_cone(nl_, cone, base, scratch);
      base[i] = saved;
      if ((f0 ^ f1).any()) {
        decided[i] = true;
        --undecided;
        ++stats.sim_resolved;
        out.push_back({i, DepKind::Path});
      }
    }
  }

  if (undecided > 0 && options_.ternary_prefilter) {
    // Pair-ternary triage: prove leaves only-structural by abstract
    // evaluation of the cone. Each proof is exactly an UNSAT certificate,
    // so it removes the SAT query without changing its classification.
    // Evaluator state is task-local, like the sim buffers above.
    flow::TernaryEvaluator ternary(nl_);
    for (std::size_t i : ff_leaves) {
      if (decided[i]) continue;
      if (ternary.proves_independent(cone, i)) {
        decided[i] = true;
        --undecided;
        ++stats.ternary_resolved;
        out.push_back({i, DepKind::Structural});
      }
    }
  }

  if (undecided > 0) {
    // Exact SAT check for the leaves simulation could not witness. The
    // checker (and its solver) is task-local: SAT state is never shared
    // between threads; clause sharing passes immutable clause vectors
    // between the two scheduling waves, never live solvers.
    netlist::ConeCheckOptions copts;
    copts.conflict_limit = options_.sat_conflict_limit;
    copts.incremental = options_.sat_incremental;
    netlist::ConeDependenceChecker checker(nl_, cone, copts);
    if (share != nullptr && share->import != nullptr) {
      stats.shared_clauses +=
          checker.import_clauses(*share->import, *share->leaf_to_canon);
    }
    for (std::size_t i : ff_leaves) {
      if (decided[i]) continue;
      ++stats.sat_calls;
      switch (checker.query(i)) {
        case sat::Result::Sat:
          ++stats.sat_functional;
          out.push_back({i, DepKind::Path});
          break;
        case sat::Result::Unsat:
          ++stats.sat_structural;
          out.push_back({i, DepKind::Structural});
          break;
        case sat::Result::Unknown:
          // Conflict budget exhausted: sound over-approximation — treat
          // the dependency as functional (a missed real flow would be
          // unsound for security; a false Path only costs precision).
          ++stats.sat_unknown;
          out.push_back({i, DepKind::Path});
          break;
      }
    }
    if (share != nullptr && share->export_to != nullptr) {
      *share->export_to = checker.export_clauses(
          *share->leaf_to_canon, kShareMaxClauseSize, kShareMaxLbd);
    }
    // Solver work counters; the caller aggregates them once per
    // isomorphism-group representative (not per cache member).
    const sat::SolverStats& ss = checker.solver_stats();
    stats.solver_solves += checker.solver_solves();
    stats.solver_conflicts += ss.conflicts;
    stats.solver_decisions += ss.decisions;
    stats.solver_propagations += ss.propagations;
    stats.solver_restarts += ss.restarts;
    stats.solver_learned += ss.learned_clauses;
    stats.lbd_protected += ss.lbd_protected;
    stats.inprocessing_rounds += ss.inprocessing_rounds;
    stats.cores_reused += checker.cores_reused();
    stats.rotation_witnesses += checker.rotation_witnesses();
  }
  return out;
}

void DependencyAnalyzer::compute_one_cycle() {
  if (tiled_) {
    one_cycle_tiled_ = TiledDepMatrix(ff_nodes_.size());
    if (options_.spill_backend != nullptr && options_.tile_spill_budget > 0) {
      one_cycle_tiled_.set_spill(options_.spill_backend,
                                 options_.tile_spill_budget);
    }
  } else {
    one_cycle_ = DepMatrix(ff_nodes_.size());
  }

  // One task per cone: first every circuit flip-flop's next-state cone,
  // then every scan FF's capture cone (cached by extract_capture_cones).
  struct CaptureTask {
    std::size_t slot, ff;
  };
  std::vector<CaptureTask> capture_tasks;
  for (rsn::ElemId r : rsn_.registers()) {
    const rsn::Element& e = rsn_.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      if (e.ffs[f].capture_src != netlist::no_node)
        capture_tasks.push_back({reg_slot_[r], f});
    }
  }
  const std::size_t nff = ff_nodes_.size();
  const std::size_t ntasks = nff + capture_tasks.size();

  // Phase 1 (parallel): materialize every task's cone and its canonical
  // signature. Next-state cones were previously extracted inside the
  // classification task; grouping needs them up front.
  std::vector<Cone> ns_cones(nff);
  std::vector<ConeSignature> sigs(ntasks);
  auto task_cone = [&](std::size_t t) -> const Cone& {
    if (t < nff) return ns_cones[t];
    const CaptureTask& ct = capture_tasks[t - nff];
    return capture_cones_[ct.slot][ct.ff];
  };
  pool_->parallel_for(
      0, ntasks,
      [&](std::size_t t) {
        if (t < nff) ns_cones[t] = nl_.extract_next_state_cone(ff_nodes_[t]);
        sigs[t] = cone_signature(nl_, task_cone(t));
      },
      /*grain=*/1);

  // Phase 2 (sequential): group isomorphic cones. The representative of a
  // group is its lowest task index; membership is decided by full
  // signature equality — the 64-bit hash only buckets, so a hash
  // collision can never make two different cones share verdicts. With the
  // cache off every task is its own group, which runs the identical code
  // path below (same RNG streams, same verdicts) minus the sharing.
  std::vector<std::size_t> group_of(ntasks);
  std::vector<std::size_t> reps;
  if (options_.cone_cache) {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    buckets.reserve(ntasks);
    for (std::size_t t = 0; t < ntasks; ++t) {
      std::vector<std::size_t>& bucket = buckets[sigs[t].hash];
      std::size_t g = static_cast<std::size_t>(-1);
      for (std::size_t cand : bucket) {
        if (sigs[reps[cand]] == sigs[t]) {
          g = cand;
          break;
        }
      }
      if (g == static_cast<std::size_t>(-1)) {
        g = reps.size();
        reps.push_back(t);
        bucket.push_back(g);
      }
      group_of[t] = g;
    }
  } else {
    reps.resize(ntasks);
    for (std::size_t t = 0; t < ntasks; ++t) {
      reps[t] = t;
      group_of[t] = t;
    }
  }

  // Phase 3 (parallel): classify one representative per group. The RNG
  // stream is a pure function of (seed, signature), so a representative's
  // verdicts are bit for bit what classifying any member would produce.
  //
  // With clause sharing on, classification runs in two deterministic
  // waves: representatives whose cones are isomorphic modulo a leaf
  // permutation (equal canonical forms, dep/clause_share.hpp) form share
  // groups; wave 1 classifies each share-group leader (lowest
  // representative index) and every singleton, leaders of multi-member
  // groups exporting their learned clauses; wave 2 classifies the
  // remaining members with the leader's clauses imported through their
  // own leaf permutation. Which clauses flow where depends only on the
  // cones, never on the schedule, and imported clauses are all implied by
  // the receiving CNF — verdicts are unchanged, only solver work shrinks.
  std::vector<std::vector<LeafDep>> group_results(reps.size());
  std::vector<DepStats> group_stats(reps.size());
  const bool sharing = options_.cone_cache && options_.share_clauses &&
                       options_.sat_incremental &&
                       options_.mode == DepMode::Exact;
  if (!sharing) {
    pool_->parallel_for(
        0, reps.size(),
        [&](std::size_t g) {
          Rng rng(cone_seed(options_.seed, sigs[reps[g]].hash));
          group_results[g] =
              cone_deps(task_cone(reps[g]), rng, group_stats[g]);
        },
        /*grain=*/1);
  } else {
    std::vector<CanonicalCone> canon(reps.size());
    pool_->parallel_for(
        0, reps.size(),
        [&](std::size_t g) {
          canon[g] = cone_canonical(nl_, task_cone(reps[g]));
        },
        /*grain=*/1);
    // Sequential: group representatives by canonical-form equality (the
    // hash only buckets; a collision can never alias two different
    // cones into one share group).
    std::vector<std::vector<std::size_t>> share_groups;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> cbuckets;
    cbuckets.reserve(reps.size());
    for (std::size_t g = 0; g < reps.size(); ++g) {
      std::vector<std::size_t>& bucket = cbuckets[canon[g].hash];
      std::size_t sg = static_cast<std::size_t>(-1);
      for (std::size_t cand : bucket) {
        if (canon[share_groups[cand][0]] == canon[g]) {
          sg = cand;
          break;
        }
      }
      if (sg == static_cast<std::size_t>(-1)) {
        sg = share_groups.size();
        share_groups.emplace_back();
        bucket.push_back(sg);
      }
      share_groups[sg].push_back(g);
    }
    // Wave 1: leaders and singletons.
    std::vector<std::vector<sat::Clause>> exported(share_groups.size());
    pool_->parallel_for(
        0, share_groups.size(),
        [&](std::size_t sg) {
          std::size_t g = share_groups[sg][0];
          ShareInfo share;
          share.leaf_to_canon = &canon[g].leaf_to_canon;
          if (share_groups[sg].size() > 1) share.export_to = &exported[sg];
          Rng rng(cone_seed(options_.seed, sigs[reps[g]].hash));
          group_results[g] =
              cone_deps(task_cone(reps[g]), rng, group_stats[g], &share);
        },
        /*grain=*/1);
    // Wave 2: followers import the leader's clauses.
    std::vector<std::pair<std::size_t, std::size_t>> followers;
    for (std::size_t sg = 0; sg < share_groups.size(); ++sg) {
      for (std::size_t m = 1; m < share_groups[sg].size(); ++m)
        followers.emplace_back(sg, share_groups[sg][m]);
    }
    pool_->parallel_for(
        0, followers.size(),
        [&](std::size_t i) {
          auto [sg, g] = followers[i];
          ShareInfo share;
          share.leaf_to_canon = &canon[g].leaf_to_canon;
          share.import = &exported[sg];
          Rng rng(cone_seed(options_.seed, sigs[reps[g]].hash));
          group_results[g] =
              cone_deps(task_cone(reps[g]), rng, group_stats[g], &share);
        },
        /*grain=*/1);
  }

  // Phase 4 (sequential): distribute verdicts (translating cone-local
  // leaf indices back to each member's own leaves) and counters in task
  // order. Counters are replicated per member — the cache saves work, not
  // logical results — so every DepStats field matches a cache-off run.
  for (std::size_t t = 0; t < ntasks; ++t) {
    const std::size_t g = group_of[t];
    const Cone& cone = task_cone(t);
    if (t < nff) {
      for (const LeafDep& d : group_results[g]) {
        const std::size_t src = circuit_index(cone.leaves[d.leaf_idx]);
        if (tiled_) {
          one_cycle_tiled_.upgrade(src, t, d.kind);
        } else {
          one_cycle_.upgrade(src, t, d.kind);
        }
      }
    } else {
      const CaptureTask& ct = capture_tasks[t - nff];
      std::vector<CaptureDep>& deps = capture_deps_[ct.slot][ct.ff];
      deps.clear();
      deps.reserve(group_results[g].size());
      for (const LeafDep& d : group_results[g])
        deps.push_back({cone.leaves[d.leaf_idx], d.kind});
    }
    const DepStats& s = group_stats[g];
    stats_.sim_resolved += s.sim_resolved;
    stats_.ternary_resolved += s.ternary_resolved;
    stats_.sat_calls += s.sat_calls;
    stats_.sat_functional += s.sat_functional;
    stats_.sat_structural += s.sat_structural;
    stats_.sat_unknown += s.sat_unknown;
    if (t != reps[g]) ++stats_.cone_cache_hits;
  }

  // Solver work counters are aggregated once per representative: they
  // report *actual* solver effort, so replicating them per cache member
  // (like the logical classification counters above) would be a lie.
  for (const DepStats& s : group_stats) {
    stats_.solver_solves += s.solver_solves;
    stats_.solver_conflicts += s.solver_conflicts;
    stats_.solver_decisions += s.solver_decisions;
    stats_.solver_propagations += s.solver_propagations;
    stats_.solver_restarts += s.solver_restarts;
    stats_.solver_learned += s.solver_learned;
    stats_.lbd_protected += s.lbd_protected;
    stats_.inprocessing_rounds += s.inprocessing_rounds;
    stats_.cores_reused += s.cores_reused;
    stats_.rotation_witnesses += s.rotation_witnesses;
    stats_.shared_clauses += s.shared_clauses;
  }

  std::vector<bool> denoted(ff_nodes_.size(), false);
  if (tiled_) {
    stats_.deps_before_bridging = one_cycle_tiled_.count_nonzero();
    one_cycle_tiled_.mark_endpoints(denoted);
  } else {
    stats_.deps_before_bridging = one_cycle_.count_nonzero();
    for (std::size_t i = 0; i < ff_nodes_.size(); ++i) {
      for (std::size_t j : one_cycle_.successors(i)) {
        denoted[i] = true;
        denoted[j] = true;
      }
    }
  }
  for (bool d : denoted) stats_.denoted_ffs_before += d ? 1u : 0u;
}

void DependencyAnalyzer::bridge_internal() {
  const std::size_t n = ff_nodes_.size();
  if (tiled_) {
    closure_tiled_ = one_cycle_tiled_;  // deep copy, detached from spill
    if (options_.spill_backend != nullptr && options_.tile_spill_budget > 0) {
      closure_tiled_.set_spill(options_.spill_backend,
                               options_.tile_spill_budget);
    }
  } else {
    closure_ = one_cycle_;
  }
  if (!options_.bridge_internal) {
    stats_.deps_after_bridging = stats_.deps_before_bridging;
    stats_.denoted_ffs_after = stats_.denoted_ffs_before;
    return;
  }
  // Iteratively bridge every internal flip-flop v: compose each incoming
  // dependency (v on p) with each outgoing one (s on v) into (s on p),
  // then remove v from the relation (Fig. 3). Only-structural hops make
  // the composed dependency only-structural unless a path-dependent pair
  // is already known. Elimination of a *set* of nodes is order-
  // independent (each order yields the same bridged relation), which both
  // representations exploit below.
  if (!tiled_) {
    // Dense: sequential word-parallel eliminations — the predecessors()/
    // successors() index vectors this loop used to allocate per internal
    // flip-flop dominated the bridging phase on large circuits.
    for (std::size_t v = 0; v < n; ++v) {
      if (internal_[v]) closure_.eliminate(v);
    }
  } else {
    // Partitioned: an internal flip-flop whose every dependency stays
    // inside its region can be bridged on a small dense matrix lifted
    // from the region's diagonal tiles — regions are independent, so
    // they run in parallel, and the dense eliminate kernel beats the
    // tiled one on a region-sized matrix. Only internals with at least
    // one inter-region edge ("cross") must be eliminated on the global
    // tiled matrix, sequentially. Order-independence of elimination
    // makes the reordering (locals per region, then crosses) produce
    // exactly the dense oracle's relation.
    const std::size_t nb = closure_tiled_.num_blocks();
    std::vector<std::size_t> region_of(nb);
    const std::size_t num_regions =
        region_first_block_.empty() ? 0 : region_first_block_.size() - 1;
    for (std::size_t r = 0; r < num_regions; ++r) {
      for (std::size_t b = region_first_block_[r];
           b < region_first_block_[r + 1]; ++b)
        region_of[b] = r;
    }
    // An endpoint of any inter-region edge is cross. Sweeping tiles (not
    // entries) keeps this O(nonzero tiles): row indices come from
    // non-zero S rows, column indices from the OR of the S rows.
    std::vector<bool> cross(n, false);
    closure_tiled_.for_each_tile([&](std::size_t rb, std::size_t cb,
                                     const TiledDepMatrix::Tile& t) {
      if (region_of[rb] == region_of[cb]) return;
      std::uint64_t colmask = 0;
      for (std::size_t r = 0; r < 64; ++r) {
        if (t.s[r] == 0) continue;
        cross[rb * 64 + r] = true;
        colmask |= t.s[r];
      }
      while (colmask != 0) {
        const int c = __builtin_ctzll(colmask);
        colmask &= colmask - 1;
        cross[cb * 64 + static_cast<std::size_t>(c)] = true;
      }
    });
    auto bridge_region = [&](std::size_t reg) {
      const std::size_t b0 = region_first_block_[reg];
      const std::size_t b1 = region_first_block_[reg + 1];
      const std::size_t base = b0 * 64;
      const std::size_t m = std::min(n, b1 * 64) - base;
      bool any_local = false;
      for (std::size_t v = base; v < base + m && !any_local; ++v)
        any_local = internal_[v] && !cross[v];
      if (!any_local) return;
      // Lift the region's diagonal block (the only tiles a local
      // internal's edges can touch) into a dense m-by-m matrix. Regions
      // are 64-aligned, so tile words copy straight into plane words.
      const std::size_t wpr = (m + 63) / 64;
      std::vector<std::uint64_t> s(m * wpr, 0);
      std::vector<std::uint64_t> p(m * wpr, 0);
      for (std::size_t rb = b0; rb < b1; ++rb) {
        const std::size_t rbase = (rb - b0) * 64;
        const std::size_t rows = std::min<std::size_t>(64, m - rbase);
        for (std::size_t cb = b0; cb < b1; ++cb) {
          const TiledDepMatrix::Tile* t = closure_tiled_.tile_at(rb, cb);
          if (t == nullptr) continue;
          for (std::size_t r = 0; r < rows; ++r) {
            s[(rbase + r) * wpr + (cb - b0)] = t->s[r];
            p[(rbase + r) * wpr + (cb - b0)] = t->p[r];
          }
        }
      }
      DepMatrix local;
      const bool ok = DepMatrix::from_planes(m, std::move(s), std::move(p),
                                             &local);
      assert(ok);
      (void)ok;
      for (std::size_t v = base; v < base + m; ++v) {
        if (internal_[v] && !cross[v]) local.eliminate(v - base);
      }
      // Write the bridged diagonal block back tile by tile.
      const std::vector<std::uint64_t>& ls = local.plane_s();
      const std::vector<std::uint64_t>& lp = local.plane_p();
      for (std::size_t rb = b0; rb < b1; ++rb) {
        const std::size_t rbase = (rb - b0) * 64;
        const std::size_t rows = std::min<std::size_t>(64, m - rbase);
        for (std::size_t cb = b0; cb < b1; ++cb) {
          TiledDepMatrix::Tile t{};
          for (std::size_t r = 0; r < rows; ++r) {
            t.s[r] = ls[(rbase + r) * wpr + (cb - b0)];
            t.p[r] = lp[(rbase + r) * wpr + (cb - b0)];
          }
          closure_tiled_.assign_tile(rb, cb, t);
        }
      }
    };
    // Each region touches only its own row blocks, so regions are
    // parallel-safe — except in spill mode, where fault-in mutates the
    // matrix-wide eviction state (kernels are sequential there anyway).
    ThreadPool* pool =
        options_.spill_backend != nullptr && options_.tile_spill_budget > 0
            ? nullptr
            : pool_;
    if (pool != nullptr) {
      pool->parallel_for(0, num_regions, bridge_region, /*grain=*/1);
    } else {
      for (std::size_t reg = 0; reg < num_regions; ++reg) bridge_region(reg);
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (internal_[v] && cross[v]) closure_tiled_.eliminate(v);
    }
  }
  std::vector<bool> denoted(n, false);
  if (tiled_) {
    stats_.deps_after_bridging = closure_tiled_.count_nonzero();
    closure_tiled_.mark_endpoints(denoted);
  } else {
    stats_.deps_after_bridging = closure_.count_nonzero();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j : closure_.successors(i)) {
        denoted[i] = true;
        denoted[j] = true;
      }
    }
  }
  for (bool d : denoted) stats_.denoted_ffs_after += d ? 1u : 0u;
}

void DependencyAnalyzer::compute_closure() {
  if (options_.max_cycles > 0) {
    // Iterative k-cycle computation ([18]); after bridging the relation
    // contains no internal nodes, so no active mask is needed.
    if (tiled_) {
      closure_tiled_.bounded_closure(options_.max_cycles, pool_);
    } else {
      closure_.bounded_closure(options_.max_cycles, pool_);
    }
  } else {
    std::vector<bool> active(ff_nodes_.size());
    for (std::size_t i = 0; i < ff_nodes_.size(); ++i)
      active[i] = !options_.bridge_internal || !internal_[i];
    if (tiled_) {
      closure_tiled_.transitive_closure(&active, pool_);
    } else {
      closure_.transitive_closure(&active, pool_);
    }
  }
  if (tiled_) {
    stats_.closure_deps = closure_tiled_.count_nonzero();
    stats_.closure_path_deps = closure_tiled_.count_path();
  } else {
    stats_.closure_deps = closure_.count_nonzero();
    stats_.closure_path_deps = closure_.count_path();
  }
}

void DependencyAnalyzer::run() {
  // A caller-provided pool (DepOptions::pool) is used as-is — the serve
  // scheduler shares one pool across concurrent analyses; otherwise a
  // private pool spans this run.
  std::optional<ThreadPool> owned_pool;
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool.emplace(ThreadPool::resolve_num_threads(options_.num_threads));
    pool_ = &*owned_pool;
  }
  stats_.threads_used = pool_->num_threads();

  // Each phase is one trace span; Span::seconds() feeds the same DepStats
  // wall-clock fields the old per-phase stopwatches filled, so the
  // BENCH_dep.json schema and existing consumers are unchanged.
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span analysis_span(trace, "dep.analysis");
  {
    obs::Span span(trace, "dep.setup");
    build_index();
    extract_capture_cones();
    classify_internal();
  }
  {
    obs::Span span(trace, "dep.one_cycle");
    compute_one_cycle();
    stats_.t_one_cycle = span.seconds();
  }
  {
    obs::Span span(trace, "dep.bridge");
    bridge_internal();
    stats_.t_bridge = span.seconds();
  }
  {
    obs::Span span(trace, "dep.closure");
    compute_closure();
    stats_.t_closure = span.seconds();
  }
  refresh_matrix_stats();
  if (trace != nullptr) {
    trace->counter("dep.runs").add(1);
    trace->counter("dep.sim_resolved").add(stats_.sim_resolved);
    trace->counter("dep.ternary_resolved").add(stats_.ternary_resolved);
    trace->counter("dep.sat_calls").add(stats_.sat_calls);
    trace->counter("dep.sat_unknown").add(stats_.sat_unknown);
    trace->counter("dep.cone_cache_hits").add(stats_.cone_cache_hits);
    trace->counter("dep.solver_solves").add(stats_.solver_solves);
    trace->counter("dep.cores_reused").add(stats_.cores_reused);
    trace->counter("dep.rotation_witnesses").add(stats_.rotation_witnesses);
    trace->counter("dep.shared_clauses").add(stats_.shared_clauses);
    trace->counter("dep.deps_after_bridging")
        .add(stats_.deps_after_bridging);
    trace->counter("dep.closure_deps").add(stats_.closure_deps);
    trace->counter("dep.regions").add(stats_.regions);
    trace->counter("dep.matrix_bytes").add(stats_.matrix_bytes);
    trace->counter("dep.tiles_nonzero").add(stats_.tiles_nonzero);
    trace->counter("dep.tiles_spilled").add(stats_.tiles_spilled);
  }
  pool_ = nullptr;
}

const std::vector<CaptureDep>& DependencyAnalyzer::capture_deps(
    rsn::ElemId reg, std::size_t ff) const {
  return capture_deps_[reg_slot_[reg]][ff];
}

DependencyAnalyzer::AnalysisSnapshot DependencyAnalyzer::snapshot() const {
  AnalysisSnapshot snap;
  snap.internal = internal_;
  snap.tiled = tiled_;
  if (tiled_) {
    // The copies fault every spilled tile in and detach from the backend:
    // a snapshot is self-contained by definition.
    snap.one_cycle_tiled = one_cycle_tiled_;
    snap.closure_tiled = closure_tiled_;
  } else {
    snap.one_cycle = one_cycle_;
    snap.closure = closure_;
  }
  snap.capture_deps = capture_deps_;
  snap.stats = stats_;
  return snap;
}

bool DependencyAnalyzer::restore(AnalysisSnapshot snap, std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  build_index();
  const std::size_t n = ff_nodes_.size();
  if (snap.tiled != tiled_)
    return fail("snapshot matrix representation does not match the analyzer");
  if (snap.internal.size() != n)
    return fail("internal-FF vector does not match the circuit");
  if (tiled_ ? (snap.one_cycle_tiled.size() != n ||
                snap.closure_tiled.size() != n)
             : (snap.one_cycle.size() != n || snap.closure.size() != n))
    return fail("matrix dimension does not match the circuit");
  if (snap.stats.circuit_ffs != n)
    return fail("stats do not match the circuit");
  if (snap.capture_deps.size() != capture_deps_.size())
    return fail("capture dependencies do not match the RSN registers");
  for (rsn::ElemId r : rsn_.registers()) {
    const std::size_t slot = reg_slot_[r];
    if (snap.capture_deps[slot].size() != rsn_.elem(r).ffs.size())
      return fail("capture dependencies do not match a register's scan FFs");
    for (const std::vector<CaptureDep>& deps : snap.capture_deps[slot]) {
      for (const CaptureDep& d : deps) {
        if (static_cast<std::size_t>(d.circuit_ff) >= nl_.num_nodes() ||
            !nl_.is_ff(d.circuit_ff))
          return fail("capture dependency references a non-FF node");
      }
    }
  }
  internal_ = std::move(snap.internal);
  if (tiled_) {
    one_cycle_tiled_ = std::move(snap.one_cycle_tiled);
    closure_tiled_ = std::move(snap.closure_tiled);
  } else {
    one_cycle_ = std::move(snap.one_cycle);
    closure_ = std::move(snap.closure);
  }
  capture_deps_ = std::move(snap.capture_deps);
  // regions was recomputed by build_index above (a pure function of the
  // circuit); the snapshot's copy is the same value, but prefer the live
  // one so a hand-edited blob cannot desynchronize stats from the
  // partition actually in effect.
  const std::size_t regions = stats_.regions;
  stats_ = snap.stats;
  stats_.regions = regions;
  stats_.t_one_cycle = 0.0;
  stats_.t_bridge = 0.0;
  stats_.t_closure = 0.0;
  stats_.threads_used = 0;
  // Footprint counters reflect the restored (fully resident, unspilled)
  // matrices, not the producing run's.
  refresh_matrix_stats();
  return true;
}

}  // namespace rsnsec::dep
