#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace rsnsec::dep {

/// Leaf-permutation-invariant canonical form of a combinational cone,
/// used to decide which cones may exchange learned SAT clauses.
///
/// The exact cone signature (dep/analyzer.cpp) distinguishes cones whose
/// leaves arrive in a different order even when the logic is identical,
/// and cones whose leaves differ in node type (FF vs. primary input) —
/// both necessary for verdict reuse, which is positional and applies
/// only to FF leaves. Clause sharing is weaker: it only needs the
/// two-copy CNFs to be identical *modulo a permutation of the per-leaf
/// variable triples*, which holds whenever the canonical forms are
/// equal. The canonical form therefore collapses FF and Input leaves to
/// one kind (the CNF treats them identically; only constants pin unit
/// clauses), making it strictly coarser than the exact signature: two
/// cones in different exact groups — and hence with independent solver
/// instances — can still exchange learned clauses. `leaf_to_canon` is
/// the permutation (own leaf index → canonical leaf index);
/// ConeDependenceChecker translates clauses through it on export and
/// import.
struct CanonicalCone {
  /// Canonical structure encoding; equality (not hash equality) is the
  /// sharing criterion.
  std::vector<std::uint32_t> data;
  std::uint64_t hash = 0;
  /// Permutation: own leaf index → canonical leaf index.
  std::vector<std::uint32_t> leaf_to_canon;

  friend bool operator==(const CanonicalCone& a, const CanonicalCone& b) {
    return a.hash == b.hash && a.data == b.data;
  }
};

/// Computes the canonical form of `cone`. Canonical leaf numbering is by
/// first occurrence in the gate fanin traversal (gates in topological
/// order, fanins in order), then the root if it is itself a leaf, then
/// any remaining leaves in original order — a deterministic rule that
/// maps isomorphic cones with permuted leaf lists to equal encodings.
CanonicalCone cone_canonical(const netlist::Netlist& nl,
                             const netlist::Cone& cone);

}  // namespace rsnsec::dep
