#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "netlist/netlist.hpp"
#include "rsn/rsn.hpp"
#include "sat/literal.hpp"
#include "util/dep_matrix.hpp"
#include "util/rng.hpp"
#include "util/tiled_matrix.hpp"

namespace rsnsec {
class ThreadPool;
}

namespace rsnsec::dep {

/// How 1-cycle dependencies are classified (Sec. III-A / Sec. IV-C).
enum class DepMode : std::uint8_t {
  /// SAT-exact: distinguish functional (path) from only-structural
  /// dependencies, with a random-simulation prefilter (method of [18]).
  Exact,
  /// Over-approximate path-dependency by structural dependency: every
  /// structural connection is treated as if data could propagate. Fast
  /// (no SAT), but introduces false-positive violations (Sec. IV-C).
  StructuralOnly
};

/// Matrix representation / partitioning strategy of the analysis.
enum class PartitionMode : std::uint8_t {
  /// Dense below kAutoPartitionFfs circuit flip-flops, tiled above —
  /// small repro runs keep the exhaustively-tested dense kernels, large
  /// runs get the block-sparse memory footprint. Both produce the same
  /// bits, so the switch is purely a space/time trade.
  Auto = 0,
  /// Force the dense whole-design matrices (the oracle configuration).
  Dense = 1,
  /// Force the tiled matrices + region-partitioned bridging.
  Tiled = 2,
};

/// CLI/report spelling of a PartitionMode (the strings `--partition`
/// accepts).
inline const char* partition_name(PartitionMode m) {
  switch (m) {
    case PartitionMode::Dense:
      return "dense";
    case PartitionMode::Tiled:
      return "tiled";
    default:
      return "auto";
  }
}

/// Options of the dependency analysis.
struct DepOptions {
  DepMode mode = DepMode::Exact;
  /// Bridge internal flip-flops out of the relation (Sec. III-A.2). The
  /// multi-cycle closure is cubic in the number of participating
  /// flip-flops, so bridging is what makes large circuits feasible.
  bool bridge_internal = true;
  /// Rounds of 256-pattern random simulation per cone before SAT (each
  /// round evaluates a 4x64-bit SIMD pattern block per leaf).
  int sim_rounds = 4;
  /// After the simulation prefilter, try to *prove* the remaining
  /// undecided leaves only-structural with the pair-ternary abstract
  /// evaluator (flow::TernaryEvaluator) before falling back to SAT. A
  /// proof replaces a query whose answer it already determines, so the
  /// resulting matrices are bit-identical with the prefilter off; only
  /// the sat_* / ternary_resolved counters shift. No effect in
  /// DepMode::StructuralOnly (no queries to remove).
  bool ternary_prefilter = true;
  /// Per-query SAT conflict limit; on Unknown the dependency is
  /// conservatively classified as functional (sound for security).
  std::uint64_t sat_conflict_limit = 200000;
  /// Incremental SAT queries inside a cone: verdict caching, Unsat-core
  /// reuse across leaves, model rotation and periodic solver
  /// inprocessing (see ConeCheckOptions). Matrices and classification
  /// counters are identical with this off; with a finite
  /// sat_conflict_limit the incremental path can only be strictly more
  /// precise (fewer sat_unknown), never less.
  bool sat_incremental = true;
  /// Share learned SAT clauses between isomorphic-modulo-leaf-permutation
  /// cones (translated through the canonical leaf permutation, see
  /// dep/clause_share.hpp). Only active in DepMode::Exact with
  /// sat_incremental and cone_cache on. Affects solver work counters
  /// only, never verdicts.
  bool share_clauses = true;
  /// Bound on the number of clock cycles the multi-cycle dependency may
  /// span (0 = unbounded fixpoint, the paper's setting). A bound
  /// under-approximates the attacker (who can wait arbitrarily many
  /// cycles) but is useful for "within k cycles" what-if studies, as the
  /// iterative computation of [18] supports. Note that with bridging
  /// enabled a bridged hop may itself span several cycles, so the bound
  /// is in bridged hops.
  std::size_t max_cycles = 0;
  /// Seed for the simulation prefilter patterns. Every cone draws its
  /// patterns from a private stream seeded as hash(seed, cone signature),
  /// so the analysis result is bit-identical for any num_threads — and,
  /// because isomorphic cones share a signature, identical with and
  /// without the cone cache.
  std::uint64_t seed = 1;
  /// Memoize cone classifications by structural signature: replicated
  /// modules (MBIST arrays, BASTION instruments) produce many isomorphic
  /// capture/next-state cones, and one sim+SAT classification serves all
  /// of them. Results (matrices and all stats counters except
  /// cone_cache_hits) are bit-identical with the cache disabled.
  bool cone_cache = true;
  /// Worker threads for the cone fan-out and the closure's row blocks.
  /// 0 = auto: the RSNSEC_JOBS environment variable if set, else
  /// std::thread::hardware_concurrency(). Any value yields bit-identical
  /// results (see ThreadPool and the per-cone RNG streams). Ignored when
  /// `pool` is set.
  std::size_t num_threads = 0;
  /// External thread pool (not owned; must outlive run()). When set, the
  /// analysis runs its parallel phases on it instead of constructing a
  /// private pool. Execution knob like num_threads: results are
  /// bit-identical, so it is excluded from cache keys. The serve
  /// scheduler uses this to share one pool across concurrent requests.
  ThreadPool* pool = nullptr;
  /// Matrix representation: dense oracle, tiled, or size-based Auto.
  /// Bit-identical either way (pinned by the partitioned-oracle tests);
  /// participates in the cache key only because the snapshot payload
  /// format differs.
  PartitionMode partition = PartitionMode::Auto;
  /// Resident-byte budget per tiled matrix before tiles spill to
  /// `spill_backend` (0 = keep everything resident). Execution knob:
  /// results and every DepStats counter except the footprint pair
  /// tiles_spilled / matrix_bytes (resident bytes shrink with the budget)
  /// are identical for any budget, so it is not part of cache keys.
  std::uint64_t tile_spill_budget = 0;
  /// Out-of-core destination for spilled tiles (not owned; must outlive
  /// the analyzer). Typically a store::ArtifactSpillBackend. Ignored
  /// unless the effective partition mode is tiled and the budget is > 0.
  TileSpillBackend* spill_backend = nullptr;
};

/// Instrumentation counters of one analysis run.
struct DepStats {
  std::size_t circuit_ffs = 0;
  std::size_t internal_ffs = 0;          ///< bridged out (Sec. III-A.2)
  std::size_t denoted_ffs_before = 0;    ///< FFs with >= 1 dependency, pre-bridge
  std::size_t denoted_ffs_after = 0;
  std::size_t deps_before_bridging = 0;  ///< denoted 1-cycle dependencies
  std::size_t deps_after_bridging = 0;
  std::size_t closure_deps = 0;          ///< multi-cycle dependencies
  std::size_t closure_path_deps = 0;
  std::uint64_t sim_resolved = 0;  ///< functional deps proven by simulation
  /// Only-structural deps proven by the pair-ternary evaluator (each one
  /// is a SAT query avoided; 0 when DepOptions::ternary_prefilter is off).
  std::uint64_t ternary_resolved = 0;
  std::uint64_t sat_calls = 0;
  std::uint64_t sat_functional = 0;
  std::uint64_t sat_structural = 0;
  /// Queries that exhausted DepOptions::sat_conflict_limit; each is
  /// conservatively classified as a functional (Path) dependency.
  std::uint64_t sat_unknown = 0;
  /// Cones whose classification was reused from an isomorphic cone (0
  /// when DepOptions::cone_cache is off). All other counters report the
  /// logical work — a cache hit replicates the representative's sim/SAT
  /// counters — so they match a cache-off run bit for bit.
  std::uint64_t cone_cache_hits = 0;
  /// Solver work counters. Unlike the classification counters above,
  /// these measure *actual* work: they are aggregated once per
  /// isomorphism-group representative, not replicated per cache member,
  /// so they shrink as the cone cache and the incremental machinery bite.
  std::uint64_t solver_solves = 0;    ///< solver solve() calls issued
  std::uint64_t solver_conflicts = 0;
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_restarts = 0;
  std::uint64_t solver_learned = 0;
  std::uint64_t lbd_protected = 0;       ///< glue clauses (LBD <= 2) learned
  std::uint64_t inprocessing_rounds = 0;
  std::uint64_t cores_reused = 0;        ///< leaves discharged by Unsat cores
  std::uint64_t rotation_witnesses = 0;  ///< leaves discharged by rotation
  std::uint64_t shared_clauses = 0;      ///< clauses imported from iso cones
  /// Regions of the deterministic partition (0 in dense mode). A pure
  /// function of the circuit — independent of num_threads — so it is part
  /// of the logical result and cached in snapshots.
  std::size_t regions = 0;
  /// Resident heap bytes of the one-cycle + closure matrices (dense plane
  /// bytes in dense mode). Representation-dependent by design: this is
  /// the footprint the tiled mode exists to shrink.
  std::uint64_t matrix_bytes = 0;
  std::uint64_t tiles_nonzero = 0;  ///< denoted 64x64 tiles (0 when dense)
  std::uint64_t tiles_spilled = 0;  ///< cumulative spill evictions this run
  std::size_t threads_used = 0;  ///< resolved parallelism of the run
  /// Per-phase wall-clock seconds (cone classification incl. the
  /// simulation prefilter and SAT, internal-FF bridging, multi-cycle
  /// closure); t_one_cycle also covers the capture-cone classification.
  double t_one_cycle = 0.0;
  double t_bridge = 0.0;
  double t_closure = 0.0;
};

/// A 1-cycle dependency of a scan flip-flop on a circuit flip-flop,
/// established by the scan FF's capture cone.
struct CaptureDep {
  netlist::NodeId circuit_ff;
  DepKind kind;
};

/// Data-flow dependency analysis over the circuit logic (Sec. III-A).
///
/// Computes, for the circuit underlying an RSN:
///  - the 1-cycle dependency of every circuit flip-flop on every other
///    (functional vs. only-structural, SAT-exact in DepMode::Exact);
///  - the 1-cycle dependencies of each scan flip-flop on circuit flip-flops
///    through its capture cone;
///  - the bridged relation with all internal flip-flops (those not directly
///    connected to the RSN, i.e. neither a capture-cone leaf nor an update
///    target) composed out;
///  - the multi-cycle closure of the circuit relation.
///
/// Deliberately computed *without* RSN-internal connections: the security
/// resolution rewires the RSN repeatedly, and this relation stays valid
/// across all rewirings (see the end of Sec. III-A).
class DependencyAnalyzer {
 public:
  DependencyAnalyzer(const netlist::Netlist& nl, const rsn::Rsn& network,
                     DepOptions options = {});

  /// Runs the full analysis pipeline.
  void run();

  /// True if this analysis uses the tiled matrices (explicit
  /// PartitionMode::Tiled, or Auto at >= kAutoPartitionFfs circuit FFs).
  /// Decided at construction — it depends only on options and circuit.
  bool tiled() const { return tiled_; }

  /// Multi-cycle circuit-internal dependency closure (after bridging).
  /// Entry (i, j): dependency of circuit FF j on circuit FF i, indices via
  /// circuit_index(). Dense representation only — throws std::logic_error
  /// in tiled mode; representation-agnostic callers use closure_at() /
  /// closure_path_successors().
  const DepMatrix& circuit_closure() const {
    if (tiled_) throw std::logic_error("dense closure unavailable: tiled");
    return closure_;
  }

  /// 1-cycle circuit relation before bridging (kept for tests/ablation).
  /// Dense representation only, like circuit_closure().
  const DepMatrix& one_cycle() const {
    if (tiled_) throw std::logic_error("dense one-cycle unavailable: tiled");
    return one_cycle_;
  }

  /// Tiled counterparts (valid only in tiled mode).
  const TiledDepMatrix& circuit_closure_tiled() const {
    if (!tiled_) throw std::logic_error("tiled closure unavailable: dense");
    return closure_tiled_;
  }
  const TiledDepMatrix& one_cycle_tiled() const {
    if (!tiled_) throw std::logic_error("tiled one-cycle unavailable: dense");
    return one_cycle_tiled_;
  }

  /// Closure entry (i, j) by dense index, representation-agnostic.
  DepKind closure_at(std::size_t i, std::size_t j) const {
    return tiled_ ? closure_tiled_.get(i, j) : closure_.get(i, j);
  }

  /// Dense indices j with a Path closure dependency of FF j on FF i,
  /// ascending; representation-agnostic (the hybrid security engine's
  /// access path, so it never materializes a dense matrix at scale).
  std::vector<std::size_t> closure_path_successors(std::size_t i) const;

  /// Dense index of a circuit flip-flop node.
  std::size_t circuit_index(netlist::NodeId ff) const {
    return ff_index_[static_cast<std::size_t>(ff)];
  }

  /// Circuit flip-flop node at dense index i.
  netlist::NodeId circuit_ff(std::size_t i) const { return ff_nodes_[i]; }

  /// Number of circuit flip-flops in the relation.
  std::size_t num_circuit_ffs() const { return ff_nodes_.size(); }

  /// True if the circuit FF at dense index i is internal (bridged out).
  bool is_internal(std::size_t i) const { return internal_[i]; }

  /// Capture dependencies of scan FF `ff` of register `reg`.
  const std::vector<CaptureDep>& capture_deps(rsn::ElemId reg,
                                              std::size_t ff) const;

  /// Multi-cycle dependency of circuit FF `to` on circuit FF `from`.
  DepKind circuit_dep(netlist::NodeId from, netlist::NodeId to) const {
    return closure_at(circuit_index(from), circuit_index(to));
  }

  const DepStats& stats() const { return stats_; }
  const DepOptions& options() const { return options_; }

  /// The analysis inputs. Exposed so the artifact store can derive the
  /// content-addressed cache key from an analyzer without re-threading
  /// circuit and network through every call site.
  const netlist::Netlist& circuit() const { return nl_; }
  const rsn::Rsn& network() const { return rsn_; }

  /// Complete result state of a finished run(), in a form that can be
  /// serialized and replayed into a fresh analyzer of the same inputs
  /// (src/store caches these across processes). The dense FF index is
  /// not part of the snapshot — it is a cheap pure function of the
  /// circuit and recomputed on restore.
  struct AnalysisSnapshot {
    std::vector<bool> internal;
    /// Exactly one representation is populated, selected by `tiled` (the
    /// snapshot preserves the producing run's representation; restore()
    /// rejects a representation mismatch rather than converting, since
    /// the mismatch means the cache key discipline broke).
    bool tiled = false;
    DepMatrix one_cycle;
    DepMatrix closure;
    TiledDepMatrix one_cycle_tiled;
    TiledDepMatrix closure_tiled;
    std::vector<std::vector<std::vector<CaptureDep>>> capture_deps;
    DepStats stats;
  };

  /// Captures the result state. Valid only after run() (or a successful
  /// restore()).
  AnalysisSnapshot snapshot() const;

  /// Replays a snapshot into this analyzer as if run() had produced it.
  /// Validates every shape against the analyzer's own circuit and RSN
  /// (matrix dimensions, register/scan-FF layout, capture-dependency
  /// node ids); on mismatch returns false, fills `error`, and leaves the
  /// analyzer unusable for queries (callers fall back to run()). The
  /// wall-clock fields of the restored stats are zeroed and threads_used
  /// is 0 — "served from the store" does no analysis work.
  bool restore(AnalysisSnapshot snap, std::string* error = nullptr);

 private:
  const netlist::Netlist& nl_;
  const rsn::Rsn& rsn_;
  DepOptions options_;

  std::vector<netlist::NodeId> ff_nodes_;
  std::vector<std::size_t> ff_index_;  // NodeId -> dense index
  std::vector<bool> internal_;
  /// Representation flag + both matrix pairs; only the pair selected by
  /// tiled_ is ever populated (the other stays at dimension 0).
  bool tiled_ = false;
  DepMatrix one_cycle_;
  DepMatrix closure_;
  TiledDepMatrix one_cycle_tiled_;
  TiledDepMatrix closure_tiled_;
  /// Deterministic region partition (tiled mode): region r covers dense
  /// indices [region_first_block_[r] * 64, region_first_block_[r+1] * 64);
  /// the last entry is the sentinel num_blocks. 64-aligned so a region's
  /// intra-region dependencies live entirely in diagonal-block tiles.
  std::vector<std::size_t> region_first_block_;
  // capture_deps_[register slot][ff index]
  std::vector<std::vector<std::vector<CaptureDep>>> capture_deps_;
  // Capture cones, extracted once per scan FF (classify_internal needs
  // the leaves, compute_one_cycle the full cone); same indexing.
  std::vector<std::vector<netlist::Cone>> capture_cones_;
  std::vector<std::size_t> reg_slot_;
  DepStats stats_;
  /// Live only during run(); loops run inline when it is null.
  ThreadPool* pool_ = nullptr;

  /// Dependency of the cone root on cone.leaves[leaf_idx], positionally:
  /// isomorphic cones (equal signatures) share these verdicts, each cone
  /// translating leaf_idx back to its own leaf node.
  struct LeafDep {
    std::size_t leaf_idx;
    DepKind kind;
  };

  /// Clause-sharing hookup of one cone_deps call. `leaf_to_canon` is the
  /// cone's canonical leaf permutation (dep/clause_share.hpp); `import`
  /// holds clauses (in canonical numbering) from an isomorphic cone's
  /// checker to install before querying; `export_to`, when non-null, is
  /// filled with this checker's learned clauses after querying.
  struct ShareInfo {
    const std::vector<std::uint32_t>* leaf_to_canon = nullptr;
    const std::vector<sat::Clause>* import = nullptr;
    std::vector<sat::Clause>* export_to = nullptr;
  };

  void build_index();
  /// Splits the dense index range into contiguous, 64-aligned regions
  /// along module boundaries (tiled mode). Pure function of the circuit —
  /// independent of num_threads — so partitioned results are reproducible.
  void partition_regions();
  /// Recomputes the representation-dependent footprint stats (regions,
  /// matrix_bytes, tiles_nonzero, tiles_spilled) from the live matrices.
  void refresh_matrix_stats();
  void extract_capture_cones();
  void classify_internal();
  /// Classifies the dependencies of the cone root on the cone's flip-flop
  /// leaves (functional vs. only-structural). Thread-safe: draws patterns
  /// from the caller-provided RNG stream and accumulates the sim/SAT
  /// counters into `stats` (a per-task instance when run in parallel).
  std::vector<LeafDep> cone_deps(const netlist::Cone& cone, Rng& rng,
                                 DepStats& stats,
                                 const ShareInfo* share = nullptr) const;
  void compute_one_cycle();
  void bridge_internal();
  void compute_closure();
};

}  // namespace rsnsec::dep
