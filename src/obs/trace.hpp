#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rsnsec::obs {

class TraceSession;

/// Cheap copyable reference to an open span, used to attribute work that
/// crosses a thread boundary (a pool task parents to the span that was
/// open at the fan-out site, not to whatever runs on the worker).
struct SpanHandle {
  TraceSession* session = nullptr;
  std::uint64_t id = 0;
};

/// Named monotonic counter. add() is one relaxed atomic increment, so
/// counters may be bumped freely from concurrent pool tasks; because
/// addition commutes, totals are identical for any thread count as long
/// as the instrumented work itself is deterministic.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Named histogram over power-of-two buckets (bucket 0 holds value 0,
/// bucket b >= 1 holds [2^(b-1), 2^b)). Thread-safe like Counter.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  void record(std::uint64_t v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// One completed span, as recorded by the session.
struct SpanEvent {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint32_t tid = 0;     ///< session-local dense thread id
  double start_us = 0.0;     ///< relative to session start
  double dur_us = 0.0;
};

/// Collects spans, counters and histograms for one tool invocation and
/// renders them as a chrome://tracing / Perfetto-loadable trace.json, a
/// JSON summary (merged into the report), or a text summary (--metrics).
///
/// Exactly one session is usually installed process-wide via
/// set_active(); every instrumentation site does
///
///   if (obs::TraceSession* t = obs::TraceSession::active()) { ... }
///
/// so the disabled-mode overhead is a single atomic load and branch.
/// All mutating members are thread-safe: events append under a mutex
/// (one lock per completed span), counters/histograms are atomics, and
/// the name registries hand out pointers that stay valid for the session
/// lifetime (deque storage, never reallocated).
class TraceSession {
 public:
  TraceSession();

  /// Process-wide ambient session (nullptr = tracing disabled).
  static TraceSession* active();
  static void set_active(TraceSession* session);

  /// Named counter/histogram; creates it on first use. The returned
  /// reference is stable for the session lifetime — hot paths may cache
  /// the pointer.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Microseconds since session start (steady clock).
  double now_us() const;

  /// Dense id of the calling thread, assigned on first use; pairs with
  /// the thread name set via set_current_thread_name().
  std::uint32_t current_thread_id();

  /// Allocates a fresh span id (used by Span).
  std::uint64_t next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends one completed span (used by Span::close).
  void record_span(SpanEvent event);

  /// Snapshot of all completed spans so far.
  std::vector<SpanEvent> events() const;
  std::size_t num_events() const;

  /// Sink 1: chrome://tracing "Trace Event Format" JSON — complete ("X")
  /// events per span, metadata thread names, and one counter ("C")
  /// sample per counter at the end of the session. Loadable in Perfetto
  /// (ui.perfetto.dev) and chrome://tracing.
  void write_chrome_trace(std::ostream& os) const;

  /// Sink 2: compact JSON summary object ({"counters": ..., "spans":
  /// ..., "histograms": ...}); `indent` prefixes every emitted line so
  /// the object can be embedded in an enclosing document.
  void write_summary_json(std::ostream& os,
                          const std::string& indent = "") const;

  /// Sink 2b: human-readable summary (the --metrics flag).
  void write_summary_text(std::ostream& os) const;

 private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point t0_;
  std::uint64_t generation_ = 0;  ///< process-unique, keys the tid cache
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint32_t> next_tid_{0};

  mutable std::mutex mutex_;  // guards events_ and thread_names_
  std::vector<SpanEvent> events_;
  std::vector<std::string> thread_names_;  // indexed by dense tid

  mutable std::mutex registry_mutex_;  // guards the name -> slot maps
  std::deque<Counter> counters_;       // deque: stable addresses
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*, std::less<>> counter_by_name_;
  std::map<std::string, Histogram*, std::less<>> histogram_by_name_;
};

/// RAII trace span. Always captures a start timestamp (one steady-clock
/// read), so seconds() feeds wall-clock stats (DepStats, PipelineResult)
/// whether or not a session is recording; name copy, id assignment and
/// the close-time event record happen only when `session` is non-null.
///
/// Parent attribution: an explicit SpanHandle wins; otherwise the
/// innermost span open on this thread; otherwise the ambient task parent
/// installed by ScopedTaskParent (how ThreadPool tasks attribute to the
/// span that was open at the fan-out site). Spans must be closed on the
/// thread that opened them, innermost first (normal RAII nesting).
class Span {
 public:
  Span() = default;
  explicit Span(TraceSession* session, std::string_view name);
  Span(TraceSession* session, std::string_view name, SpanHandle parent);
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span and records it; idempotent.
  void close();

  /// Seconds since the span opened (valid whether recording or not).
  double seconds() const;

  /// Handle for cross-thread parent attribution ({nullptr, 0} when the
  /// span is not recording).
  SpanHandle handle() const { return {session_, id_}; }

 private:
  friend SpanHandle current_context();

  std::chrono::steady_clock::time_point start_;
  TraceSession* session_ = nullptr;
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_us_ = 0.0;
  Span* prev_ = nullptr;  // enclosing span on this thread
};

/// The context new spans on this thread would parent to: the innermost
/// open span, else the ambient task parent. ThreadPool captures this at
/// fan-out and re-installs it on the executing thread.
SpanHandle current_context();

/// Bumps counter `name` on the ambient session, if one is installed.
/// Convenience for cold paths that do not cache the Counter pointer.
inline void bump(std::string_view name, std::uint64_t n = 1) {
  if (TraceSession* t = TraceSession::active()) t->counter(name).add(n);
}

/// Installs `parent` as this thread's ambient span parent for the
/// lifetime of the object (restores the previous one on destruction).
class ScopedTaskParent {
 public:
  explicit ScopedTaskParent(SpanHandle parent);
  ~ScopedTaskParent();

  ScopedTaskParent(const ScopedTaskParent&) = delete;
  ScopedTaskParent& operator=(const ScopedTaskParent&) = delete;

 private:
  SpanHandle saved_;
};

/// Names the calling thread for trace output ("pool-worker-3"). Cheap;
/// may be called before any session exists.
void set_current_thread_name(std::string_view name);

}  // namespace rsnsec::obs
