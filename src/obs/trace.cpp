#include "obs/trace.hpp"

#include <bit>
#include <cstring>
#include <iomanip>
#include <ostream>

#include "util/strings.hpp"  // json_escape (header-only, no link dep)

namespace rsnsec::obs {

namespace {

std::atomic<TraceSession*> g_active{nullptr};

// Per-thread span context. `t_current` is the innermost open span on
// this thread; `t_task_parent` the ambient parent a pool task inherited
// from its fan-out site. Plain thread_locals: no cross-thread access.
thread_local Span* t_current = nullptr;
thread_local SpanHandle t_task_parent;

// Per-thread display name and per-(thread, session) dense-id cache. The
// cache is keyed on a session generation, not the address — a later
// session allocated at a freed session's address must not see stale ids.
std::atomic<std::uint64_t> g_session_generation{0};
thread_local char t_thread_name[64] = {0};
thread_local std::uint64_t t_tid_generation = 0;
thread_local std::uint32_t t_tid = 0;

}  // namespace

void Histogram::record(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
  std::size_t b = v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

TraceSession::TraceSession()
    : t0_(Clock::now()),
      generation_(
          g_session_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

TraceSession* TraceSession::active() {
  return g_active.load(std::memory_order_acquire);
}

void TraceSession::set_active(TraceSession* session) {
  g_active.store(session, std::memory_order_release);
}

Counter& TraceSession::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = counter_by_name_.find(name);
  if (it != counter_by_name_.end()) return *it->second;
  counters_.emplace_back(std::string(name));
  Counter* c = &counters_.back();
  counter_by_name_.emplace(c->name(), c);
  return *c;
}

Histogram& TraceSession::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = histogram_by_name_.find(name);
  if (it != histogram_by_name_.end()) return *it->second;
  histograms_.emplace_back(std::string(name));
  Histogram* h = &histograms_.back();
  histogram_by_name_.emplace(h->name(), h);
  return *h;
}

double TraceSession::now_us() const {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0_)
      .count();
}

std::uint32_t TraceSession::current_thread_id() {
  if (t_tid_generation == generation_) return t_tid;
  std::uint32_t tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  t_tid_generation = generation_;
  t_tid = tid;
  std::lock_guard<std::mutex> lock(mutex_);
  if (thread_names_.size() <= tid) thread_names_.resize(tid + 1);
  thread_names_[tid] = t_thread_name[0] != '\0'
                           ? std::string(t_thread_name)
                           : (tid == 0 ? "main" : "thread-" +
                                                      std::to_string(tid));
  return tid;
}

void TraceSession::record_span(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceSession::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::lock_guard<std::mutex> reg_lock(registry_mutex_);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    os << (first ? "\n" : ",\n");
    first = false;
    return os;
  };
  for (std::size_t tid = 0; tid < thread_names_.size(); ++tid) {
    sep() << " {\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
          << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
          << json_escape(thread_names_[tid]) << "\"}}";
  }
  std::ostream::fmtflags flags = os.flags();
  os << std::fixed << std::setprecision(3);
  for (const SpanEvent& e : events_) {
    sep() << " {\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
          << ", \"name\": \"" << json_escape(e.name)
          << "\", \"ts\": " << e.start_us << ", \"dur\": " << e.dur_us
          << ", \"args\": {\"id\": " << e.id << ", \"parent\": " << e.parent
          << "}}";
  }
  const double end_us = now_us();
  for (const Counter& c : counters_) {
    sep() << " {\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"name\": \""
          << json_escape(c.name()) << "\", \"ts\": " << end_us
          << ", \"args\": {\"value\": " << c.value() << "}}";
  }
  os.flags(flags);
  os << (first ? "]}" : "\n]}") << "\n";
}

void TraceSession::write_summary_json(std::ostream& os,
                                      const std::string& indent) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::lock_guard<std::mutex> reg_lock(registry_mutex_);
  os << "{\n";
  os << indent << "  \"counters\": {";
  bool first = true;
  for (const Counter& c : counters_) {
    os << (first ? "\n" : ",\n") << indent << "    \""
       << json_escape(c.name()) << "\": " << c.value();
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "},\n";
  os << indent << "  \"histograms\": {";
  first = true;
  for (const Histogram& h : histograms_) {
    os << (first ? "\n" : ",\n") << indent << "    \""
       << json_escape(h.name()) << "\": {\"count\": " << h.count()
       << ", \"sum\": " << h.sum() << ", \"max\": " << h.max() << "}";
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "},\n";
  // Per-name span rollup in first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::pair<std::uint64_t, double>, std::less<>>
      rollup;
  for (const SpanEvent& e : events_) {
    auto [it, inserted] = rollup.try_emplace(e.name, 0, 0.0);
    if (inserted) order.push_back(e.name);
    ++it->second.first;
    it->second.second += e.dur_us;
  }
  os << indent << "  \"spans\": {";
  first = true;
  std::ostream::fmtflags flags = os.flags();
  os << std::fixed << std::setprecision(6);
  for (const std::string& name : order) {
    const auto& [count, total_us] = rollup.find(name)->second;
    os << (first ? "\n" : ",\n") << indent << "    \"" << json_escape(name)
       << "\": {\"count\": " << count
       << ", \"total_seconds\": " << total_us / 1e6 << "}";
    first = false;
  }
  os.flags(flags);
  os << (first ? "" : "\n" + indent + "  ") << "}\n";
  os << indent << "}";
}

void TraceSession::write_summary_text(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::lock_guard<std::mutex> reg_lock(registry_mutex_);
  os << "== metrics ==\n";
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const Counter& c : counters_)
      os << "  " << std::left << std::setw(36) << c.name() << std::right
         << std::setw(12) << c.value() << "\n";
  }
  if (!histograms_.empty()) {
    os << "histograms (count / mean / max):\n";
    for (const Histogram& h : histograms_) {
      double mean = h.count() ? static_cast<double>(h.sum()) /
                                    static_cast<double>(h.count())
                              : 0.0;
      os << "  " << std::left << std::setw(36) << h.name() << std::right
         << std::setw(12) << h.count() << std::fixed << std::setprecision(1)
         << std::setw(12) << mean << std::setw(12) << h.max() << "\n";
      os.unsetf(std::ios::fixed);
    }
  }
  std::vector<std::string> order;
  std::map<std::string, std::pair<std::uint64_t, double>, std::less<>>
      rollup;
  for (const SpanEvent& e : events_) {
    auto [it, inserted] = rollup.try_emplace(e.name, 0, 0.0);
    if (inserted) order.push_back(e.name);
    ++it->second.first;
    it->second.second += e.dur_us;
  }
  if (!order.empty()) {
    os << "spans (count / total seconds):\n";
    for (const std::string& name : order) {
      const auto& [count, total_us] = rollup.find(name)->second;
      os << "  " << std::left << std::setw(36) << name << std::right
         << std::setw(12) << count << std::fixed << std::setprecision(4)
         << std::setw(12) << total_us / 1e6 << "\n";
      os.unsetf(std::ios::fixed);
    }
  }
}

Span::Span(TraceSession* session, std::string_view name)
    : Span(session, name, SpanHandle{}) {}

Span::Span(TraceSession* session, std::string_view name, SpanHandle parent)
    : start_(std::chrono::steady_clock::now()) {
  if (session == nullptr) return;
  session_ = session;
  name_.assign(name);
  id_ = session->next_span_id();
  if (parent.session == session && parent.id != 0) {
    parent_ = parent.id;
  } else if (t_current != nullptr && t_current->session_ == session) {
    parent_ = t_current->id_;
  } else if (t_task_parent.session == session) {
    parent_ = t_task_parent.id;
  }
  start_us_ = session->now_us();
  prev_ = t_current;
  t_current = this;
}

void Span::close() {
  if (session_ == nullptr) return;
  TraceSession* session = session_;
  session_ = nullptr;
  t_current = prev_;
  SpanEvent e;
  e.name = std::move(name_);
  e.id = id_;
  e.parent = parent_;
  e.tid = session->current_thread_id();
  e.start_us = start_us_;
  e.dur_us = session->now_us() - start_us_;
  session->record_span(std::move(e));
}

double Span::seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

SpanHandle current_context() {
  if (t_current != nullptr) return {t_current->session_, t_current->id_};
  return t_task_parent;
}

ScopedTaskParent::ScopedTaskParent(SpanHandle parent)
    : saved_(t_task_parent) {
  t_task_parent = parent;
}

ScopedTaskParent::~ScopedTaskParent() { t_task_parent = saved_; }

void set_current_thread_name(std::string_view name) {
  std::size_t n = name.size() < sizeof(t_thread_name) - 1
                      ? name.size()
                      : sizeof(t_thread_name) - 1;
  std::memcpy(t_thread_name, name.data(), n);
  t_thread_name[n] = '\0';
}

}  // namespace rsnsec::obs
