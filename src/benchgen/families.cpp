#include "benchgen/families.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rsnsec::benchgen {

using rsn::ElemId;
using rsn::Rsn;
using rsn::RsnDocument;

const std::vector<BenchmarkProfile>& bastion_profiles() {
  // Published structural counts: Table I, columns 2-4.
  static const std::vector<BenchmarkProfile> profiles = {
      {"BasicSCB", 21, 176, 10, Topology::ChainBypass, 3, 0.0},
      {"Mingle", 22, 270, 13, Topology::ChainBypass, 3, 0.0},
      {"TreeFlat", 24, 101, 24, Topology::SibTree, 8, 0.0},
      {"TreeFlatEx", 122, 5194, 59, Topology::SibTree, 8, 0.0},
      {"TreeBalanced", 90, 5581, 46, Topology::SibTree, 2, 0.0},
      {"TreeUnbalanced", 63, 41887, 28, Topology::SibTree, 2, 0.9},
      {"q12710", 50, 26185, 27, Topology::SocWrapper, 27, 0.0},
      {"t512505", 287, 77005, 159, Topology::SocWrapper, 159, 0.0},
      {"p22810", 524, 30098, 270, Topology::SocWrapper, 270, 0.0},
      {"a586710", 64, 41667, 32, Topology::SocWrapper, 32, 0.0},
      {"p34392", 197, 23196, 96, Topology::SocWrapper, 96, 0.0},
      {"p93791", 1185, 98611, 596, Topology::SocWrapper, 596, 0.0},
      {"FlexScan", 8485, 8485, 4243, Topology::SerialMux, 2, 0.0},
  };
  return profiles;
}

const BenchmarkProfile& bastion_profile(const std::string& name) {
  for (const BenchmarkProfile& p : bastion_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown BASTION benchmark: " + name);
}

namespace {

/// Ceiling on any generated dimension or element count. Far above the
/// 10^6-FF scale target, but low enough that products of checked
/// dimensions stay exact in std::size_t and in the double math of the
/// scale factors (< 2^53).
constexpr std::size_t kMaxDimension = std::size_t{1} << 40;

std::size_t checked_mul(std::size_t a, std::size_t b) {
  std::size_t r = 0;
  if (__builtin_mul_overflow(a, b, &r) || r > kMaxDimension)
    throw std::overflow_error("benchmark dimension product overflows");
  return r;
}

std::size_t checked_add(std::size_t a, std::size_t b) {
  std::size_t r = 0;
  if (__builtin_add_overflow(a, b, &r) || r > kMaxDimension)
    throw std::overflow_error("benchmark dimension sum overflows");
  return r;
}

std::size_t scaled(std::size_t value, double scale, std::size_t minimum) {
  const double v = static_cast<double>(value) * scale;
  if (!(v >= 0.0) || v > static_cast<double>(kMaxDimension))
    throw std::overflow_error("scaled benchmark dimension overflows");
  return std::max(static_cast<std::size_t>(std::llround(v)), minimum);
}

/// Splits `total_ffs` flip-flops over `n_regs` registers, each >= 1, with
/// mild random jitter so register widths are not uniform.
std::vector<std::size_t> distribute_widths(std::size_t n_regs,
                                           std::size_t total_ffs, Rng& rng) {
  assert(n_regs > 0);
  total_ffs = std::max(total_ffs, n_regs);
  std::vector<std::size_t> widths(n_regs, 1);
  std::size_t rest = total_ffs - n_regs;
  // Spread the remainder in random-sized lumps. below64 delegates to the
  // 32-bit path for small bounds, so historical streams are unchanged.
  while (rest > 0) {
    auto i = static_cast<std::size_t>(rng.below64(n_regs));
    std::size_t lump =
        1 + static_cast<std::size_t>(rng.below64(
                std::max<std::size_t>(1, rest / n_regs + 1)));
    lump = std::min(lump, rest);
    widths[i] += lump;
    rest -= lump;
  }
  return widths;
}

struct ChainBuilder {
  Rsn& net;
  const std::vector<std::size_t>& widths;
  std::size_t next_reg = 0;
  std::size_t regs_per_module;
  std::vector<std::string>& module_names;
  std::string prefix;

  ElemId add_next_register() {
    std::size_t idx = next_reg++;
    auto module = static_cast<netlist::ModuleId>(idx / regs_per_module);
    while (static_cast<std::size_t>(module) >= module_names.size()) {
      module_names.push_back(prefix + "_mod" +
                             std::to_string(module_names.size()));
    }
    return net.add_register(prefix + "_r" + std::to_string(idx),
                            widths[idx], module);
  }
};

/// Emits `count` registers as a serial chain starting after `input`;
/// returns the output element of the chain.
ElemId emit_chain(ChainBuilder& b, ElemId input, std::size_t count) {
  ElemId cur = input;
  for (std::size_t i = 0; i < count; ++i) {
    ElemId r = b.add_next_register();
    b.net.connect(cur, r, 0);
    cur = r;
  }
  return cur;
}

/// Recursive SIB-tree subnet: splits `count` registers over up to `fan`
/// children; each child subnet is wrapped with a bypass mux while the mux
/// budget lasts. Returns the output element.
ElemId emit_tree(ChainBuilder& b, ElemId input, std::size_t count,
                 std::size_t fan, double skew, std::size_t& mux_budget,
                 std::size_t& mux_counter) {
  if (count == 0) return input;
  if (count <= 2 || mux_budget == 0 || fan < 2) {
    return emit_chain(b, input, count);
  }
  // Partition: with skew, the first child receives most registers.
  std::vector<std::size_t> parts;
  std::size_t remaining = count;
  for (std::size_t c = 0; c < fan && remaining > 0; ++c) {
    std::size_t share;
    if (c + 1 == fan) {
      share = remaining;
    } else if (skew > 0.0) {
      share = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(static_cast<double>(remaining) * skew)));
    } else {
      share = std::max<std::size_t>(1, remaining / (fan - c));
    }
    share = std::min(share, remaining);
    parts.push_back(share);
    remaining -= share;
  }
  ElemId cur = input;
  for (std::size_t part : parts) {
    if (mux_budget > 0) {
      --mux_budget;
      ElemId sub_out =
          emit_tree(b, cur, part, fan, skew, mux_budget, mux_counter);
      ElemId m = b.net.add_mux(b.prefix + "_sib" +
                                   std::to_string(mux_counter++),
                               2);
      b.net.connect(cur, m, 0);      // bypass
      b.net.connect(sub_out, m, 1);  // through the subnetwork
      cur = m;
    } else {
      cur = emit_chain(b, cur, part);
    }
  }
  return cur;
}

}  // namespace

rsn::RsnDocument generate_bastion(const BenchmarkProfile& profile,
                                  double scale, Rng& rng) {
  RsnDocument doc;
  doc.network = Rsn(profile.name);
  Rsn& net = doc.network;

  std::size_t n_regs = scaled(profile.registers, scale, 3);
  std::size_t n_ffs = scaled(profile.scan_ffs, scale, n_regs);
  std::size_t n_muxes = scaled(profile.muxes, scale, 1);
  std::vector<std::size_t> widths;

  switch (profile.topology) {
    case Topology::ChainBypass: {
      widths = distribute_widths(n_regs, n_ffs, rng);
      ChainBuilder b{net, widths, 0,
                     std::max<std::size_t>(1, (n_regs + 5) / 6),
                     doc.module_names, profile.name};
      // Serial chain; the first n_muxes registers get a bypass mux.
      ElemId cur = net.scan_in();
      for (std::size_t i = 0; i < n_regs; ++i) {
        ElemId r = b.add_next_register();
        net.connect(cur, r, 0);
        if (i < n_muxes) {
          ElemId m =
              net.add_mux(profile.name + "_byp" + std::to_string(i), 2);
          net.connect(cur, m, 0);
          net.connect(r, m, 1);
          cur = m;
        } else {
          cur = r;
        }
      }
      net.connect(cur, net.scan_out(), 0);
      break;
    }
    case Topology::SibTree: {
      widths = distribute_widths(n_regs, n_ffs, rng);
      ChainBuilder b{net, widths, 0,
                     std::max<std::size_t>(1, (n_regs + 7) / 8),
                     doc.module_names, profile.name};
      std::size_t mux_budget = n_muxes;
      std::size_t mux_counter = 0;
      ElemId out = emit_tree(b, net.scan_in(), n_regs, profile.fan,
                             profile.skew, mux_budget, mux_counter);
      net.connect(out, net.scan_out(), 0);
      break;
    }
    case Topology::SocWrapper: {
      widths = distribute_widths(n_regs, n_ffs, rng);
      std::size_t cores = std::min(n_muxes, n_regs);
      cores = std::max<std::size_t>(cores, 1);
      ElemId cur = net.scan_in();
      std::size_t reg_idx = 0;
      for (std::size_t c = 0; c < cores; ++c) {
        doc.module_names.push_back(profile.name + "_core" +
                                   std::to_string(c));
        auto module = static_cast<netlist::ModuleId>(c);
        // Registers of this core: an even share of the remainder.
        std::size_t share =
            std::max<std::size_t>(1, (n_regs - reg_idx) / (cores - c));
        ElemId chain = cur;
        for (std::size_t k = 0; k < share && reg_idx < n_regs; ++k) {
          ElemId r = net.add_register(
              profile.name + "_c" + std::to_string(c) + "_r" +
                  std::to_string(k),
              widths[reg_idx++], module);
          net.connect(chain, r, 0);
          chain = r;
        }
        ElemId m = net.add_mux(profile.name + "_wsib" + std::to_string(c), 2);
        net.connect(cur, m, 0);    // bypass the core
        net.connect(chain, m, 1);  // through the core's wrapper chain
        cur = m;
      }
      net.connect(cur, net.scan_out(), 0);
      break;
    }
    case Topology::SerialMux: {
      // FlexScan: 1-FF registers; every second register is bypassable;
      // every register is its own module.
      ElemId cur = net.scan_in();
      for (std::size_t i = 0; i < n_regs; ++i) {
        doc.module_names.push_back(profile.name + "_mod" +
                                   std::to_string(i));
        ElemId r =
            net.add_register(profile.name + "_r" + std::to_string(i), 1,
                             static_cast<netlist::ModuleId>(i));
        net.connect(cur, r, 0);
        if (i % 2 == 1) {
          ElemId m =
              net.add_mux(profile.name + "_m" + std::to_string(i / 2), 2);
          net.connect(cur, m, 0);
          net.connect(r, m, 1);
          cur = m;
        } else {
          cur = r;
        }
      }
      net.connect(cur, net.scan_out(), 0);
      break;
    }
  }
  return doc;
}

const std::vector<std::array<std::size_t, 3>>& mbist_configs() {
  static const std::vector<std::array<std::size_t, 3>> configs = {
      {1, 5, 5},   {1, 5, 20},  {1, 20, 20},  {2, 5, 5},   {2, 5, 20},
      {2, 20, 20}, {5, 5, 5},   {5, 20, 20},  {20, 20, 20},
  };
  return configs;
}

rsn::RsnDocument generate_mbist(std::size_t n, std::size_t m, std::size_t o,
                                double scale) {
  // Dimensions scale with the cube root so total size tracks `scale`.
  if (scale != 1.0) {
    double f = std::cbrt(scale);
    n = scaled(n, f, 1);
    m = scaled(m, f, 1);
    o = scaled(o, f, 1);
  }
  RsnDocument doc;
  std::string name = "MBIST_" + std::to_string(n) + "_" + std::to_string(m) +
                     "_" + std::to_string(o);
  doc.network = Rsn(name);
  Rsn& net = doc.network;

  // Published structural totals (regression over Table I):
  //   registers = 2 + n*(11 + m*(5 + 3o))
  //   scan FFs  = 5 + n*(3 + m*(43 + 13o))
  // Structure: 2 chip registers, 11 per core, 5 per controller plus 3 per
  // memory; every register is 1 FF wide except the memory data registers,
  // which absorb the remaining FF budget.
  // Checked arithmetic: a pathological (n, m, o) — e.g. from a hostile
  // CLI invocation — must be rejected, not silently wrapped into a tiny
  // (or enormous) circuit.
  const std::size_t total_regs = checked_add(
      2, checked_mul(n, checked_add(11, checked_mul(
                                            m, checked_add(5, checked_mul(
                                                                  3, o))))));
  const std::size_t total_ffs = checked_add(
      5, checked_mul(n, checked_add(3, checked_mul(
                                           m, checked_add(43, checked_mul(
                                                                  13, o))))));
  const std::size_t n_mdata = checked_mul(checked_mul(n, m), o);
  const std::size_t extra = total_ffs - total_regs;
  const std::size_t per_mdata = extra / n_mdata;
  const std::size_t mdata_rem = extra % n_mdata;
  std::size_t mdata_idx = 0;
  auto mdata_width = [&]() {
    std::size_t w = 1 + per_mdata + (mdata_idx < mdata_rem ? 1 : 0);
    ++mdata_idx;
    return w;
  };

  doc.module_names.push_back("chip");
  const netlist::ModuleId chip_mod = 0;

  // Chip level: two 1-FF configuration registers.
  ElemId cur = net.scan_in();
  for (const char* rn : {"chip_cfg", "chip_status"}) {
    ElemId r = net.add_register(rn, 1, chip_mod);
    net.connect(cur, r, 0);
    cur = r;
  }

  for (std::size_t ci = 0; ci < n; ++ci) {
    std::string core_name = "core" + std::to_string(ci);
    doc.module_names.push_back(core_name);
    auto core_mod =
        static_cast<netlist::ModuleId>(doc.module_names.size() - 1);
    ElemId core_entry = cur;

    // Core-level configuration/diagnosis chain: 11 registers, with
    // bypass muxes over pairs of them (4 in the first core, 2 in later
    // cores — matches the published totals, muxes = n*(2m+5) - 2(n-1)).
    std::size_t core_bypasses = (ci == 0) ? 4 : 2;
    ElemId chain = cur;
    for (std::size_t k = 0; k < 11; ++k) {
      ElemId seg_entry = chain;
      ElemId r = net.add_register(core_name + "_cfg" + std::to_string(k), 1,
                                  core_mod);
      net.connect(chain, r, 0);
      chain = r;
      if (k % 2 == 1 && core_bypasses > 0) {
        --core_bypasses;
        ElemId b = net.add_mux(
            core_name + "_cfgbyp" + std::to_string(k / 2), 2);
        net.connect(seg_entry, b, 0);
        net.connect(r, b, 1);
        chain = b;
      }
    }

    for (std::size_t ki = 0; ki < m; ++ki) {
      std::string ctrl_name = core_name + "_ctrl" + std::to_string(ki);
      doc.module_names.push_back(ctrl_name);
      auto ctrl_mod =
          static_cast<netlist::ModuleId>(doc.module_names.size() - 1);
      ElemId ctrl_entry = chain;

      // Controller-level registers: 5 (instruction, status, address,
      // repeat count, bit mask).
      for (const char* rn : {"_instr", "_status", "_addr", "_count",
                             "_mask"}) {
        ElemId r = net.add_register(ctrl_name + rn, 1, ctrl_mod);
        net.connect(chain, r, 0);
        chain = r;
      }
      ElemId ctrl_regs_end = chain;

      // Memory-interface registers: 3 per memory, the data register wide.
      for (std::size_t oi = 0; oi < o; ++oi) {
        std::string mem = ctrl_name + "_mem" + std::to_string(oi);
        ElemId mcfg = net.add_register(mem + "_cfg", 1, ctrl_mod);
        net.connect(chain, mcfg, 0);
        ElemId mdata =
            net.add_register(mem + "_data", mdata_width(), ctrl_mod);
        net.connect(mcfg, mdata, 0);
        ElemId mres = net.add_register(mem + "_result", 1, ctrl_mod);
        net.connect(mdata, mres, 0);
        chain = mres;
      }
      // Mode mux: short diagnosis path (controller registers only) vs.
      // the full memory-interface chain.
      ElemId mode = net.add_mux(ctrl_name + "_mode", 2);
      net.connect(ctrl_regs_end, mode, 0);
      net.connect(chain, mode, 1);
      // Controller include/exclude mux ("each MBIST controller can also
      // be included or excluded from the scan path through the core").
      ElemId msel = net.add_mux(ctrl_name + "_sib", 2);
      net.connect(ctrl_entry, msel, 0);
      net.connect(mode, msel, 1);
      chain = msel;
    }
    // Core include/exclude mux.
    ElemId csel = net.add_mux(core_name + "_sib", 2);
    net.connect(core_entry, csel, 0);
    net.connect(chain, csel, 1);
    cur = csel;
  }
  net.connect(cur, net.scan_out(), 0);
  return doc;
}

}  // namespace rsnsec::benchgen
