#pragma once

#include "netlist/netlist.hpp"
#include "rsn/io.hpp"
#include "security/spec.hpp"

namespace rsnsec::benchgen {

/// The paper's running example (Fig. 1): a 5-register, 14-scan-FF RSN with
/// two scan muxes over a circuit with a crypto module (confidential F2),
/// an untrusted module (F7) and two internal flip-flops IF1/IF2 whose
/// dependency on F6 is cancelled by an XOR reconvergence (Fig. 5).
///
/// Threats encoded exactly as in Sec. II-C:
///  - pure path: F2 -capture-> SF2 -shift-> ... -> SF7 -update-> F7;
///  - hybrid path: F2 -capture-> SF2 -shift-> SF5 -update-> F5 -circuit->
///    IF1 -> IF2 -> F7.
struct RunningExample {
  rsn::RsnDocument doc;
  netlist::Netlist circuit;
  security::SecuritySpec spec;

  // Module ids.
  netlist::ModuleId crypto = 0, mod_a = 1, mod_b = 2, untrusted = 3,
                    mod_c = 4;

  // Scan registers R1..R5 (R1 = crypto's [SF1,SF2], R3 = [SF5,SF6],
  // R4 = untrusted's [SF7,SF8]).
  rsn::ElemId r1{}, r2{}, r3{}, r4{}, r5{};
  rsn::ElemId mux1{}, mux2{};

  // Named circuit flip-flops.
  netlist::NodeId f1{}, f2{}, f3{}, f4{}, f5{}, f6{}, f7{}, f8{}, f9{},
      f10{}, if1{}, if2{};
};

/// Builds the running example. The returned object is self-contained and
/// deterministic.
RunningExample make_running_example();

}  // namespace rsnsec::benchgen
