#include "benchgen/specgen.hpp"

#include <algorithm>

namespace rsnsec::benchgen {

security::SecuritySpec random_spec(std::size_t num_modules,
                                   const SpecOptions& options, Rng& rng) {
  security::SecuritySpec spec(num_modules, options.categories);
  const std::uint32_t all =
      options.categories >= 32 ? 0xffffffffu
                               : ((1u << options.categories) - 1u);
  const double p_sensitive =
      num_modules == 0
          ? 0.0
          : std::min(options.sensitive_module_prob,
                     options.expected_sensitive_modules /
                         static_cast<double>(num_modules));
  const auto top =
      static_cast<security::TrustCategory>(options.categories - 1);
  for (std::size_t m = 0; m < num_modules; ++m) {
    security::TrustCategory trust = top;
    if (options.categories > 1 && rng.chance(options.low_trust_prob)) {
      trust = static_cast<security::TrustCategory>(
          rng.below(static_cast<std::uint32_t>(options.categories - 1)));
    }
    std::uint32_t accepted = all;
    if (rng.chance(p_sensitive)) {
      // Sensitive data: always accepts its own category and the top
      // category; rejects lower categories with restrict_prob.
      accepted = (1u << trust) | (1u << top);
      for (std::size_t c = 0; c + 1 < options.categories; ++c) {
        if (c == trust) continue;
        if (!rng.chance(options.restrict_prob)) accepted |= 1u << c;
      }
    }
    spec.set_policy(static_cast<netlist::ModuleId>(m), trust, accepted);
  }
  return spec;
}

}  // namespace rsnsec::benchgen
