#include "benchgen/redteam.hpp"

#include <algorithm>
#include <initializer_list>
#include <stdexcept>

#include "benchgen/circuit.hpp"
#include "benchgen/families.hpp"
#include "rsn/pathfind.hpp"

namespace rsnsec::benchgen {

const char* scenario_kind_name(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::PureScanPath:
      return "pure";
    case ScenarioKind::HybridPath:
      return "hybrid";
  }
  return "?";
}

namespace {

security::SecuritySpec make_redteam_spec(std::size_t num_modules,
                                         netlist::ModuleId carrier,
                                         netlist::ModuleId victim) {
  security::SecuritySpec spec(num_modules, 2);
  for (std::size_t m = 0; m < num_modules; ++m)
    spec.set_policy(static_cast<netlist::ModuleId>(m), 1, 0b11u);
  // Carrier data may only share scan paths with category-1 segments; the
  // victim module is the untrusted (category 0) observer.
  spec.set_policy(carrier, 1, 0b10u);
  spec.set_policy(victim, 0, 0b11u);
  return spec;
}

}  // namespace

RedTeamWorkload make_redteam_workload(const std::string& benchmark,
                                      std::uint64_t seed,
                                      const RedTeamOptions& options) {
  const BenchmarkProfile& profile = bastion_profile(benchmark);
  double scale = options.scale;
  if (profile.scan_ffs > 0)
    scale = std::min(scale, static_cast<double>(options.target_ffs) /
                                static_cast<double>(profile.scan_ffs));
  if (profile.registers > 0) {
    scale = std::min(scale, static_cast<double>(options.target_regs) /
                                static_cast<double>(profile.registers));
    // Planting needs distinct carrier/victim/staging registers clear of
    // each other (up to 5 across both scenarios). FF-heavy profiles
    // (q12710's ~520 FFs per register) would otherwise collapse to one
    // register under the FF target, leaving nothing to plant into — the
    // register floor wins over the FF target.
    scale = std::min(
        1.0, std::max(scale, 6.0 / static_cast<double>(profile.registers)));
  }

  Rng rng(seed);
  RedTeamWorkload w;
  w.doc = generate_bastion(profile, scale, rng);

  rsn::Rsn& net = w.doc.network;
  const std::vector<rsn::ElemId>& regs = net.registers();
  const std::size_t num_modules = w.doc.module_names.size();
  auto module_of = [&net](rsn::ElemId r) { return net.elem(r).module; };

  // Registers along one single-configuration path containing `r`, in
  // scan-in -> scan-out order.
  auto path_registers = [&net](rsn::ElemId r) {
    std::vector<rsn::ElemId> out;
    if (auto plan = rsn::find_path_through(net, {r}))
      for (rsn::ElemId e : plan->elements)
        if (net.elem(e).kind == rsn::ElemKind::Register) out.push_back(e);
    return out;
  };
  auto other_module = [num_modules](
                          std::initializer_list<netlist::ModuleId> exclude) {
    for (std::size_t m = 0; m < num_modules; ++m) {
      netlist::ModuleId id = static_cast<netlist::ModuleId>(m);
      if (std::find(exclude.begin(), exclude.end(), id) == exclude.end())
        return id;
    }
    return netlist::no_module;
  };

  // ---- Register selection. Runs on the bare RSN, before the circuit is
  // attached: the fallbacks below re-home a register to another module,
  // and the circuit generator derives its boundary flip-flops' modules
  // from the register ownership, so ownership must be final here.
  rsn::ElemId pure_carrier = rsn::no_elem;
  rsn::ElemId pure_victim = rsn::no_elem;
  if (options.plant_pure) {
    for (rsn::ElemId ra : regs) {
      for (rsn::ElemId rb : regs) {
        if (ra == rb || module_of(ra) == module_of(rb)) continue;
        if (!rsn::find_path_through(net, {ra, rb})) continue;
        pure_carrier = ra;
        pure_victim = rb;
        break;
      }
      if (pure_carrier != rsn::no_elem) break;
    }
    if (pure_carrier == rsn::no_elem) {
      // Single-module-per-path topologies (the ITC'02 SoC wrappers select
      // one core's wrapper chain per configuration): no configuration
      // covers two modules, so manufacture the cross-module flow by
      // re-homing the downstream register of some path to another module.
      for (rsn::ElemId ra : regs) {
        std::vector<rsn::ElemId> pr = path_registers(ra);
        auto it = std::find(pr.begin(), pr.end(), ra);
        if (it == pr.end() || it + 1 == pr.end()) continue;
        netlist::ModuleId target = other_module({module_of(ra)});
        if (target == netlist::no_module) continue;
        pure_carrier = ra;
        pure_victim = pr.back();
        net.set_module(pure_victim, target);
        break;
      }
    }
    if (pure_carrier == rsn::no_elem)
      throw std::runtime_error(
          "redteam: no plantable pure scenario (no path with two "
          "registers) in " +
          benchmark);
  }
  netlist::ModuleId pure_carrier_mod =
      pure_carrier != rsn::no_elem ? module_of(pure_carrier)
                                   : netlist::no_module;

  rsn::ElemId hyb_carrier = rsn::no_elem;
  rsn::ElemId hyb_staging = rsn::no_elem;
  rsn::ElemId hyb_victim = rsn::no_elem;
  if (options.plant_hybrid) {
    auto is_pure = [&](rsn::ElemId r) {
      return r == pure_carrier || r == pure_victim;
    };
    for (rsn::ElemId ca : regs) {
      // Planting overrides (carrier_reg, ff 0)'s capture source, so the
      // hybrid carrier and victim must not collide with the pure plant.
      if (is_pure(ca)) continue;
      for (rsn::ElemId st : regs) {
        // The staging module must stay token-free under *both* scenario
        // specs, or the staging FF -> victim-capture hop would be a
        // static (unfixable) violation instead of an RSN-resolvable one.
        if (st == ca || module_of(st) == module_of(ca) ||
            module_of(st) == pure_carrier_mod)
          continue;
        if (!rsn::find_path_through(net, {ca, st})) continue;
        for (rsn::ElemId vb : regs) {
          if (vb == ca || vb == st || is_pure(vb)) continue;
          if (module_of(vb) == module_of(ca)) continue;
          hyb_carrier = ca;
          hyb_staging = st;
          hyb_victim = vb;
          break;
        }
        if (hyb_carrier != rsn::no_elem) break;
      }
      if (hyb_carrier != rsn::no_elem) break;
    }
    if (hyb_carrier == rsn::no_elem) {
      // Same re-homing fallback as the pure scenario: put carrier and
      // staging on one path and move staging (and, if needed, the victim)
      // into modules that keep the planted flow RSN-resolvable.
      for (rsn::ElemId ca : regs) {
        if (is_pure(ca)) continue;
        std::vector<rsn::ElemId> pr = path_registers(ca);
        auto it = std::find(pr.begin(), pr.end(), ca);
        if (it == pr.end()) continue;
        rsn::ElemId st = rsn::no_elem;
        for (auto jt = it + 1; jt != pr.end(); ++jt)
          if (!is_pure(*jt)) {
            st = *jt;
            break;
          }
        if (st == rsn::no_elem) continue;
        rsn::ElemId vb = rsn::no_elem;
        for (rsn::ElemId r : regs)
          if (r != ca && r != st && !is_pure(r)) {
            vb = r;
            break;
          }
        if (vb == rsn::no_elem) continue;
        netlist::ModuleId st_target =
            other_module({module_of(ca), pure_carrier_mod});
        if (st_target == netlist::no_module) continue;
        if (module_of(st) == module_of(ca) ||
            module_of(st) == pure_carrier_mod)
          net.set_module(st, st_target);
        if (module_of(vb) == module_of(ca)) {
          netlist::ModuleId vb_target = other_module({module_of(ca)});
          if (vb_target == netlist::no_module) continue;
          net.set_module(vb, vb_target);
        }
        hyb_carrier = ca;
        hyb_staging = st;
        hyb_victim = vb;
        break;
      }
    }
    if (hyb_carrier == rsn::no_elem && !options.plant_pure)
      throw std::runtime_error("redteam: no plantable hybrid scenario in " +
                               benchmark);
  }

  // ---- Circuit attachment. No cross-module functional (or structural)
  // circuit connections: the planted flows must be the only cross-module
  // flows, so the scenario specs pass the scan-infrastructure-independent
  // static checks and `secure` can always resolve the violations by
  // rewiring the RSN.
  CircuitOptions copt;
  copt.target_cross_functional = 0.0;
  copt.target_cross_structural = 0.0;
  w.circuit = attach_random_circuit(w.doc, copt, rng);

  // ---- Planting.
  if (pure_carrier != rsn::no_elem) {
    RedTeamScenario sc;
    sc.kind = ScenarioKind::PureScanPath;
    sc.name = "pure";
    netlist::ModuleId ma = module_of(pure_carrier);
    sc.secret_ff = w.circuit.add_ff(benchmark + "_pure_secret", ma);
    w.circuit.set_ff_input(sc.secret_ff, sc.secret_ff);  // holds the secret
    net.set_capture(pure_carrier, 0, sc.secret_ff);
    sc.secret_value = rng.chance(0.5);
    sc.carrier_reg = pure_carrier;
    sc.carrier_ff = 0;
    sc.victim_reg = pure_victim;
    sc.spec = make_redteam_spec(num_modules, ma, module_of(pure_victim));
    w.scenarios.push_back(std::move(sc));
  }

  if (hyb_carrier != rsn::no_elem) {
    rsn::ElemId ra = hyb_carrier, rc = hyb_staging, rb = hyb_victim;
    RedTeamScenario sc;
    sc.kind = ScenarioKind::HybridPath;
    sc.name = "hybrid";
    netlist::ModuleId ma = module_of(ra);
    netlist::ModuleId mc = module_of(rc);
    sc.secret_ff = w.circuit.add_ff(benchmark + "_hyb_secret", ma);
    w.circuit.set_ff_input(sc.secret_ff, sc.secret_ff);
    net.set_capture(ra, 0, sc.secret_ff);
    sc.secret_value = rng.chance(0.5);
    sc.carrier_reg = ra;
    sc.carrier_ff = 0;
    // Staging FF: the update phase writes the shifted-in secret into a
    // self-looped circuit FF of the staging module ...
    sc.staging_reg = rc;
    sc.staging_ff = net.elem(rc).ffs.size() - 1;
    sc.staging_node = w.circuit.add_ff(benchmark + "_hyb_staging", mc);
    w.circuit.set_ff_input(sc.staging_node, sc.staging_node);
    net.set_update(rc, sc.staging_ff, sc.staging_node);
    // ... and the victim's capture cone reads it back through an
    // input-gated tap, so the SAT attack must derive the enabling
    // primary-input assignment (en1=1, en2=0) to sensitize it.
    netlist::NodeId en1 = w.circuit.add_input(benchmark + "_hyb_en1", mc);
    netlist::NodeId en2 = w.circuit.add_input(benchmark + "_hyb_en2", mc);
    netlist::NodeId n2 = w.circuit.add_gate(netlist::GateType::Not, {en2},
                                            benchmark + "_hyb_n2", mc);
    netlist::NodeId tap = w.circuit.add_gate(
        netlist::GateType::And, {sc.staging_node, en1, n2},
        benchmark + "_hyb_tap", mc);
    net.set_capture(rb, 0, tap);
    sc.victim_reg = rb;
    sc.spec = make_redteam_spec(num_modules, ma, module_of(rb));
    w.scenarios.push_back(std::move(sc));
  }

  if (w.scenarios.empty())
    throw std::runtime_error("redteam: no scenario planted in " + benchmark);
  return w;
}

}  // namespace rsnsec::benchgen
