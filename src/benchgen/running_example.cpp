#include "benchgen/running_example.hpp"

namespace rsnsec::benchgen {

using netlist::GateType;
using netlist::NodeId;

RunningExample make_running_example() {
  RunningExample ex;
  ex.doc.module_names = {"crypto", "modA", "modB", "untrusted", "modC"};

  // --- Circuit (gray background of Fig. 1) ---
  netlist::Netlist& nl = ex.circuit;
  for (const std::string& name : ex.doc.module_names) nl.add_module(name);

  NodeId in_crypto = nl.add_input("crypto_pi", ex.crypto);
  NodeId in_a = nl.add_input("modA_pi", ex.mod_a);
  NodeId in_b = nl.add_input("modB_pi", ex.mod_b);
  NodeId in_u = nl.add_input("untrusted_pi", ex.untrusted);

  ex.f1 = nl.add_ff("F1", ex.crypto);
  ex.f2 = nl.add_ff("F2", ex.crypto);  // holds the confidential data
  ex.f3 = nl.add_ff("F3", ex.mod_a);
  ex.f4 = nl.add_ff("F4", ex.mod_a);
  ex.f5 = nl.add_ff("F5", ex.mod_b);
  ex.f6 = nl.add_ff("F6", ex.mod_b);
  ex.f7 = nl.add_ff("F7", ex.untrusted);
  ex.f8 = nl.add_ff("F8", ex.untrusted);
  ex.f9 = nl.add_ff("F9", ex.mod_c);
  ex.f10 = nl.add_ff("F10", ex.mod_c);
  ex.if1 = nl.add_ff("IF1", ex.mod_b);  // internal: not RSN-connected
  ex.if2 = nl.add_ff("IF2", ex.mod_b);  // internal

  nl.set_ff_input(ex.f1, in_crypto);
  nl.set_ff_input(ex.f2,
                  nl.add_gate(GateType::And, {ex.f1, in_crypto}, "keymix",
                              ex.crypto));
  nl.set_ff_input(ex.f3, in_a);
  nl.set_ff_input(ex.f4, ex.f3);
  // F5 holds whatever the RSN updates into it (self-loop gated by a
  // module input keeps it a valid sequential element).
  nl.set_ff_input(ex.f5,
                  nl.add_gate(GateType::And, {ex.f5, in_b}, "f5_hold",
                              ex.mod_b));
  // F6 functionally receives the confidential F2 (Fig. 4: "there is a
  // connection from F2 to F6").
  nl.set_ff_input(ex.f6, ex.f2);
  // IF1 depends functionally on F5 and *only structurally* on F6: the
  // XOR(F6, F6) reconvergence cancels all data flow from F6 (Fig. 5).
  NodeId dead = nl.add_gate(GateType::Xor, {ex.f6, ex.f6}, "reconv",
                            ex.mod_b);
  nl.set_ff_input(
      ex.if1, nl.add_gate(GateType::Or, {ex.f5, dead}, "if1_d", ex.mod_b));
  nl.set_ff_input(ex.if2, ex.if1);
  nl.set_ff_input(ex.f7, ex.if2);  // the hybrid path's untrusted sink
  nl.set_ff_input(ex.f8, nl.add_gate(GateType::And, {ex.f7, in_u}, "u_mix",
                                     ex.untrusted));
  nl.set_ff_input(ex.f9, ex.if2);  // Fig. 3: "F9 on IF2"
  nl.set_ff_input(ex.f10, ex.f9);

  // --- RSN (blue background of Fig. 1): 5 registers, 14 scan FFs ---
  rsn::Rsn& net = ex.doc.network;
  net = rsn::Rsn("running_example");
  ex.r1 = net.add_register("R1", 2, ex.crypto);     // SF1, SF2
  ex.r2 = net.add_register("R2", 2, ex.mod_a);      // SF3, SF4
  ex.r3 = net.add_register("R3", 2, ex.mod_b);      // SF5, SF6
  ex.r4 = net.add_register("R4", 2, ex.untrusted);  // SF7, SF8
  ex.r5 = net.add_register("R5", 6, ex.mod_c);      // SF9..SF14
  ex.mux1 = net.add_mux("M1", 2);
  ex.mux2 = net.add_mux("M2", 2);

  // scan_in -> R1 -> {M1: bypass | R2} -> R3 -> {M2: bypass | R4} -> R5
  //         -> scan_out. With both muxes at 1 the active path traverses
  // all five registers (the green dashed path of Fig. 1).
  net.connect(net.scan_in(), ex.r1, 0);
  net.connect(ex.r1, ex.r2, 0);
  net.connect(ex.r1, ex.mux1, 0);
  net.connect(ex.r2, ex.mux1, 1);
  net.connect(ex.mux1, ex.r3, 0);
  net.connect(ex.r3, ex.r4, 0);
  net.connect(ex.r3, ex.mux2, 0);
  net.connect(ex.r4, ex.mux2, 1);
  net.connect(ex.mux2, ex.r5, 0);
  net.connect(ex.r5, net.scan_out(), 0);
  net.set_mux_select(ex.mux1, 1);
  net.set_mux_select(ex.mux2, 1);

  // Capture/update attachment.
  net.set_capture(ex.r1, 0, ex.f1);
  net.set_capture(ex.r1, 1, ex.f2);  // confidential data enters here
  net.set_capture(ex.r2, 0, ex.f3);
  net.set_capture(ex.r2, 1, ex.f4);
  net.set_capture(ex.r3, 0, ex.f5);
  net.set_capture(ex.r3, 1, ex.f6);
  net.set_capture(ex.r4, 0, ex.f7);
  net.set_capture(ex.r4, 1, ex.f8);
  net.set_capture(ex.r5, 0, ex.f9);
  net.set_capture(ex.r5, 1, ex.f10);
  net.set_update(ex.r3, 0, ex.f5);  // hybrid path: SF5 updates into F5
  net.set_update(ex.r4, 0, ex.f7);  // pure path: SF7 updates into F7

  // --- Security specification (Sec. II-B) ---
  // Category 0 = untrusted, category 1 = trusted. Crypto data accepts
  // only trusted observers; everything else is unrestricted.
  ex.spec = security::SecuritySpec(ex.doc.module_names.size(), 2);
  ex.spec.set_policy(ex.crypto, 1, 0b10);
  ex.spec.set_policy(ex.mod_a, 1, 0b11);
  ex.spec.set_policy(ex.mod_b, 1, 0b11);
  ex.spec.set_policy(ex.untrusted, 0, 0b11);
  ex.spec.set_policy(ex.mod_c, 1, 0b11);
  return ex;
}

}  // namespace rsnsec::benchgen
