#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "rsn/io.hpp"
#include "security/spec.hpp"

namespace rsnsec::benchgen {

/// The two leakage shapes of the paper's threat model that the attack
/// engine exercises end to end (Sec. II-A):
///  - PureScanPath: the secret is captured into a carrier register and
///    travels to the untrusted victim purely by shifting along the scan
///    chain.
///  - HybridPath: the secret is captured, shifted to a staging register of
///    a third module, written into the circuit by the update phase, and
///    re-enters the scan side through the victim's capture cone — a flow
///    crossing both the RSN and the circuit logic.
enum class ScenarioKind : std::uint8_t { PureScanPath, HybridPath };
const char* scenario_kind_name(ScenarioKind k);

/// One planted red-team scenario: where the secret lives, the path shape
/// it can leak over, and the security specification under which that leak
/// is a violation (carrier module sensitive, victim module untrusted).
struct RedTeamScenario {
  ScenarioKind kind = ScenarioKind::PureScanPath;
  std::string name;  ///< "pure" | "hybrid"
  /// Self-looped circuit flip-flop holding the planted secret.
  netlist::NodeId secret_ff = netlist::no_node;
  bool secret_value = false;  ///< ground truth (hidden from the attacks)
  /// Register whose first scan FF captures the secret.
  rsn::ElemId carrier_reg = rsn::no_elem;
  std::size_t carrier_ff = 0;
  /// Hybrid only: register/FF whose update phase writes `staging_node`.
  rsn::ElemId staging_reg = rsn::no_elem;
  std::size_t staging_ff = 0;
  /// Hybrid only: self-looped circuit FF the victim's capture cone reads.
  netlist::NodeId staging_node = netlist::no_node;
  /// Untrusted register the attacker observes.
  rsn::ElemId victim_reg = rsn::no_elem;
  /// Two-category spec: every module vendor-qualified (trust 1), the
  /// carrier module's data restricted to category 1, the victim module
  /// untrusted (trust 0). The planted flow violates exactly this spec.
  security::SecuritySpec spec;
};

struct RedTeamOptions {
  double scale = 1.0;
  /// The requested scale is capped so the generated network stays near
  /// these sizes (attack replays are O(chain length) per shift).
  std::size_t target_ffs = 64;
  std::size_t target_regs = 16;
  bool plant_pure = true;
  bool plant_hybrid = true;
};

/// A generated benchmark network plus circuit with planted secrets.
struct RedTeamWorkload {
  rsn::RsnDocument doc;
  netlist::Netlist circuit;
  std::vector<RedTeamScenario> scenarios;
};

/// Generates a scaled network of BASTION family `benchmark`, attaches a
/// random circuit with no cross-module functional logic (so the planted
/// flows are the only cross-module flows and `secure` can always resolve
/// them), and plants the requested scenarios. Register and module choices
/// are deterministic in (benchmark, seed). Throws std::runtime_error if a
/// requested scenario cannot be planted (does not happen for the 13 stock
/// families at default sizes; see tests/attack/redteam_families_test.cpp).
RedTeamWorkload make_redteam_workload(const std::string& benchmark,
                                      std::uint64_t seed,
                                      const RedTeamOptions& options = {});

}  // namespace rsnsec::benchgen
