#include "benchgen/circuit.hpp"

#include <algorithm>
#include <cassert>

namespace rsnsec::benchgen {

using netlist::GateType;
using netlist::ModuleId;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// Per-module bookkeeping during generation.
struct ModuleCtx {
  std::vector<NodeId> boundary;  ///< RSN-attachable flip-flops
  std::vector<NodeId> internal;  ///< bridging candidates
  std::vector<NodeId> all_ffs;
  NodeId input = netlist::no_node;  ///< one primary input per module
};

/// Candidate-source sequence of one cone, layout-compatible with the
/// `std::vector<NodeId> sources = ctx[m].boundary; sources.push_back(...)`
/// vectors it replaces: an optional prefix element, the shared boundary
/// vector (referenced, not copied), then up to two appended extras. The
/// per-FF boundary copy was O(boundary^2) per module and dominated
/// generation on 10^5+-FF circuits; the view is O(1) per FF. Index order
/// matches the old vectors exactly, so every rng.pick() draws the same
/// node at the same stream position and historical artifacts reproduce
/// bit for bit.
class SourceView {
 public:
  explicit SourceView(const std::vector<NodeId>& base) : base_(&base) {}

  void push_back(NodeId id) {
    assert(n_extra_ < 2);
    extra_[n_extra_++] = id;
  }
  void set_prefix(NodeId id) {
    prefix_ = id;
    has_prefix_ = true;
  }

  std::size_t size() const {
    return (has_prefix_ ? 1 : 0) + base_->size() + n_extra_;
  }
  const NodeId& operator[](std::size_t i) const {
    if (has_prefix_) {
      if (i == 0) return prefix_;
      --i;
    }
    if (i < base_->size()) return (*base_)[i];
    return extra_[i - base_->size()];
  }
  const NodeId& front() const { return (*this)[0]; }

 private:
  const std::vector<NodeId>* base_;
  NodeId prefix_ = netlist::no_node;
  bool has_prefix_ = false;
  NodeId extra_[2] = {netlist::no_node, netlist::no_node};
  std::size_t n_extra_ = 0;
};

/// Builds a small random combinational cone over `sources` and returns
/// its root node. With `cancelling`, the cone is a data-flow-cancelling
/// reconvergence over its first source: structurally connected, but no
/// value propagates (XOR(x, x) and MUX(s, a, a) patterns).
NodeId build_cone(Netlist& nl, const SourceView& sources,
                  std::size_t max_gates, bool cancelling,
                  bool must_include_first, ModuleId module, Rng& rng) {
  assert(sources.size() > 0);
  if (cancelling) {
    NodeId x = sources.front();  // by convention the signal to cancel
    // A "live" source other than x, so the cancellation is not undone by
    // re-including x on the live branch.
    NodeId live =
        sources.size() >= 2
            ? sources[1 + static_cast<std::size_t>(
                              rng.below64(sources.size() - 1))]
            : x;
    if (sources.size() >= 2 && rng.chance(0.5)) {
      // MUX(sel = x, a, a): structurally depends on x, functionally only
      // on a.
      return nl.add_gate(GateType::Mux, {x, live, live}, {}, module);
    }
    // XOR(x, x) [== 0] fed into an OR with a live signal: the live signal
    // propagates, x does not.
    NodeId dead = nl.add_gate(GateType::Xor, {x, x}, {}, module);
    return nl.add_gate(GateType::Or, {dead, live}, {}, module);
  }

  NodeId acc = must_include_first ? sources.front() : rng.pick(sources);
  std::size_t gates =
      1 + static_cast<std::size_t>(
              rng.below64(std::max<std::size_t>(1, max_gates)));
  for (std::size_t g = 0; g < gates; ++g) {
    NodeId other = rng.pick(sources);
    switch (rng.below(5)) {
      case 0:
        acc = nl.add_gate(GateType::And, {acc, other}, {}, module);
        break;
      case 1:
        acc = nl.add_gate(GateType::Or, {acc, other}, {}, module);
        break;
      case 2:
        acc = nl.add_gate(GateType::Xor, {acc, other}, {}, module);
        break;
      case 3:
        acc = nl.add_gate(GateType::Not, {acc}, {}, module);
        break;
      default: {
        NodeId third = rng.pick(sources);
        acc = nl.add_gate(GateType::Mux, {acc, other, third}, {}, module);
        break;
      }
    }
  }
  return acc;
}

}  // namespace

netlist::Netlist attach_random_circuit(rsn::RsnDocument& doc,
                                       const CircuitOptions& options,
                                       Rng& rng) {
  Netlist nl;
  rsn::Rsn& net = doc.network;

  // Scan FFs per module (determines boundary FF counts).
  std::vector<std::size_t> scan_ffs_of_module(doc.module_names.size(), 0);
  for (rsn::ElemId r : net.registers()) {
    ModuleId m = net.elem(r).module;
    if (m >= 0 && static_cast<std::size_t>(m) < scan_ffs_of_module.size())
      scan_ffs_of_module[static_cast<std::size_t>(m)] +=
          net.elem(r).ffs.size();
  }

  std::vector<ModuleCtx> ctx(doc.module_names.size());
  for (std::size_t m = 0; m < doc.module_names.size(); ++m) {
    ModuleId mid = nl.add_module(doc.module_names[m]);
    assert(static_cast<std::size_t>(mid) == m);
    ctx[m].input = nl.add_input(doc.module_names[m] + "_pi", mid);
    std::size_t n_boundary = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(
               scan_ffs_of_module[m]) *
           options.boundary_per_scan_ff));
    std::size_t n_internal =
        options.internal_per_module + (n_boundary * 7) / 10;
    for (std::size_t i = 0; i < n_boundary; ++i) {
      NodeId ff = nl.add_ff(doc.module_names[m] + "_F" + std::to_string(i),
                            mid);
      ctx[m].boundary.push_back(ff);
      ctx[m].all_ffs.push_back(ff);
    }
    for (std::size_t i = 0; i < n_internal; ++i) {
      NodeId ff = nl.add_ff(
          doc.module_names[m] + "_IF" + std::to_string(i), mid);
      ctx[m].internal.push_back(ff);
      ctx[m].all_ffs.push_back(ff);
    }
  }

  // Next-state cones. Sources: own-module FFs and the module's primary
  // input. A calibrated expected number of cones additionally pulls in a
  // foreign flip-flop: functional pulls create real cross-module data
  // paths (hybrid-path substrate), cancelled pulls create
  // only-structural ones (Sec. IV-C false-positive material).
  std::size_t n_cross_eligible = 0;
  for (const ModuleCtx& mc : ctx) n_cross_eligible += mc.boundary.size();
  const double p_cross_f =
      ctx.size() > 1 && n_cross_eligible > 0
          ? std::min(1.0, options.target_cross_functional /
                              static_cast<double>(n_cross_eligible))
          : 0.0;
  const double p_cross_s =
      ctx.size() > 1 && n_cross_eligible > 0
          ? std::min(1.0, options.target_cross_structural /
                              static_cast<double>(n_cross_eligible))
          : 0.0;
  for (std::size_t m = 0; m < ctx.size(); ++m) {
    auto mid = static_cast<ModuleId>(m);
    for (std::size_t fi = 0; fi < ctx[m].all_ffs.size(); ++fi) {
      NodeId ff = ctx[m].all_ffs[fi];
      // Boundary FFs come first in all_ffs; cross-module connections are
      // drawn between boundary FFs on both ends (the RSN-visible data
      // paths the hybrid analysis is about).
      bool is_boundary = fi < ctx[m].boundary.size();

      if (!is_boundary) {
        if (rng.chance(0.35)) {
          // Pipeline chain stage between boundary FFs (IF1 -> IF2 in
          // Fig. 1): a chain head reads a boundary FF, later stages read
          // their predecessor; an occasional cancelled reconvergence
          // makes a stage only-structural.
          NodeId prev = (fi == ctx[m].boundary.size())
                            ? rng.pick(ctx[m].boundary)
                            : ctx[m].all_ffs[fi - 1];
          std::vector<NodeId> chain_sources{prev};
          if (rng.chance(0.3))
            chain_sources.push_back(rng.pick(ctx[m].boundary));
          NodeId d = build_cone(nl, SourceView(chain_sources), 1,
                                rng.chance(options.cancelling_prob),
                                /*must_include_first=*/true, mid, rng);
          nl.set_ff_input(ff, d);
        } else {
          // Monitor/status sink: observes several boundary signals and
          // feeds nothing (performance counters, sticky status bits).
          // These carry many 1-cycle dependencies that bridging removes
          // wholesale — the bulk of the Sec. III-A.2 reduction.
          std::size_t k = 4 + rng.below(4);
          NodeId acc = rng.pick(ctx[m].boundary);
          for (std::size_t g = 1; g < k; ++g) {
            GateType t = (g % 3 == 0)   ? GateType::And
                         : (g % 3 == 1) ? GateType::Xor
                                        : GateType::Or;
            acc = nl.add_gate(t, {acc, rng.pick(ctx[m].boundary)}, {}, mid);
          }
          nl.set_ff_input(ff, acc);
        }
        continue;
      }

      // Boundary cones draw from boundary FFs, the module input and
      // occasionally a chain tail (so internal pipelines feed back into
      // RSN-visible state, F5 -> IF1 -> IF2 -> F7 style).
      SourceView sources(ctx[m].boundary);
      sources.push_back(ctx[m].input);
      if (!ctx[m].internal.empty() && rng.chance(0.4))
        sources.push_back(rng.pick(ctx[m].internal));
      bool cross_f = is_boundary && rng.chance(p_cross_f);
      bool cross_s = is_boundary && !cross_f && rng.chance(p_cross_s);
      bool cancelling;
      if (cross_f || cross_s) {
        auto other = static_cast<std::size_t>(rng.below64(ctx.size()));
        if (other == m) other = (m + 1) % ctx.size();
        if (!ctx[other].boundary.empty()) {
          // The foreign FF goes first: cancelling cones cancel sources[0].
          sources.set_prefix(rng.pick(ctx[other].boundary));
        }
        cancelling = cross_s;
      } else {
        cancelling = rng.chance(options.cancelling_prob);
      }
      NodeId d = build_cone(nl, sources, options.max_cone_gates, cancelling,
                            /*must_include_first=*/cross_f || cross_s, mid,
                            rng);
      nl.set_ff_input(ff, d);
    }
  }

  // Capture / update attachment: own-module boundary FFs only.
  for (rsn::ElemId r : net.registers()) {
    ModuleId m = net.elem(r).module;
    if (m < 0 || static_cast<std::size_t>(m) >= ctx.size()) continue;
    const ModuleCtx& mc = ctx[static_cast<std::size_t>(m)];
    if (mc.boundary.empty()) continue;
    for (std::size_t f = 0; f < net.elem(r).ffs.size(); ++f) {
      if (rng.chance(options.capture_prob)) {
        if (rng.chance(0.3)) {
          // Capture a small combinational function of boundary FFs
          // (exercises capture-cone extraction and its SAT checks).
          NodeId cone = build_cone(nl, SourceView(mc.boundary), 2,
                                   rng.chance(0.2),
                                   /*must_include_first=*/false, m, rng);
          net.set_capture(r, f, cone);
        } else {
          net.set_capture(r, f, rng.pick(mc.boundary));
        }
      }
      if (rng.chance(options.update_prob)) {
        net.set_update(r, f, rng.pick(mc.boundary));
      }
    }
  }

  std::string err;
  bool ok = nl.validate(&err);
  assert(ok && "generated circuit must validate");
  (void)ok;
  return nl;
}

}  // namespace rsnsec::benchgen
