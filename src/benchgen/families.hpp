#pragma once

#include <array>
#include <string>
#include <vector>

#include "rsn/io.hpp"
#include "util/rng.hpp"

namespace rsnsec::benchgen {

/// Topology family of a generated benchmark network.
enum class Topology : std::uint8_t {
  ChainBypass,  ///< serial registers, some bypassable via 2:1 muxes (SCB)
  SibTree,      ///< hierarchical segment-insertion-bit tree (IEEE 1687)
  SocWrapper,   ///< ITC'02-style cores with wrapper chains behind muxes
  SerialMux     ///< FlexScan: 1-FF registers with serial bypass muxes
};

/// Structural profile of one benchmark (Table I columns 2-4 of the paper).
struct BenchmarkProfile {
  std::string name;
  std::size_t registers = 0;
  std::size_t scan_ffs = 0;
  std::size_t muxes = 0;
  Topology topology = Topology::ChainBypass;
  /// Tree shape parameter: children per node (SibTree), cores (SocWrapper).
  std::size_t fan = 4;
  /// Skew in [0,1]: 0 = balanced, 1 = fully unbalanced (TreeUnbalanced).
  double skew = 0.0;
};

/// Profiles of the 13 BASTION-family benchmarks evaluated in the paper,
/// with the published register/FF/mux counts. The original ICL files are
/// not redistributable; these generators reproduce the published counts
/// and topology family (see DESIGN.md, substitutions).
const std::vector<BenchmarkProfile>& bastion_profiles();

/// Looks up a BASTION profile by name; throws if unknown.
const BenchmarkProfile& bastion_profile(const std::string& name);

/// Generates the network of `profile` scaled by `scale` (register and FF
/// counts multiplied by `scale`, minimum sizes enforced). `scale == 1`
/// reproduces the published counts. Module assignment follows the family:
/// tree subnetworks, SoC cores and chain groups each become one module;
/// FlexScan gives every register its own module ("it was assumed that
/// each scan register belongs to a different module", Sec. IV-A).
rsn::RsnDocument generate_bastion(const BenchmarkProfile& profile,
                                  double scale, Rng& rng);

/// Generates the industrial-style MBIST_n_m_o network exactly as described
/// in Sec. IV-A: a chip with `n` cores, each with `m` MBIST controllers,
/// each responsible for `o` memories; hierarchical include/exclude muxes
/// at the core and controller level. `scale` scales the per-level data
/// register widths.
rsn::RsnDocument generate_mbist(std::size_t n, std::size_t m, std::size_t o,
                                double scale);

/// The 9 industrial MBIST configurations of Table I, as (n, m, o) triples.
const std::vector<std::array<std::size_t, 3>>& mbist_configs();

}  // namespace rsnsec::benchgen
