#pragma once

#include "security/spec.hpp"
#include "util/rng.hpp"

namespace rsnsec::benchgen {

/// Knobs of the random security-specification generator ("we randomly
/// generated the security specifications with 16 different security
/// requirements for each benchmark", Sec. IV-A).
struct SpecOptions {
  /// Number of trust categories.
  std::size_t categories = 4;
  /// Upper bound on the per-module probability of carrying sensitive
  /// data (see expected_sensitive_modules).
  double sensitive_module_prob = 1.0;
  /// Expected number of sensitive modules per specification. Real
  /// designs protect a few instruments (crypto cores, key stores), not a
  /// fixed fraction of all of them; keeping the count roughly constant
  /// across network sizes keeps the violating-register counts in the
  /// sparse regime Table I reports. The effective per-module probability
  /// is min(sensitive_module_prob, expected_sensitive_modules / modules).
  double expected_sensitive_modules = 3.0;
  /// Probability that a module is a low-trust instrument (uniform over
  /// the non-top categories); all other modules carry the top trust
  /// category. Real designs have few untrusted third-party instruments,
  /// which keeps violating-register counts sparse (Table I: ~2-8% of
  /// registers).
  double low_trust_prob = 0.15;
  /// For a sensitive module, the probability that its data rejects a
  /// given non-top category (the top category is always accepted).
  double restrict_prob = 0.7;
};

/// Generates one random security specification over `num_modules`
/// modules: each module gets a uniform trust category and an accepted-set
/// that always contains its own category and rejects each other category
/// with probability `restrict_prob`. The result always validates.
security::SecuritySpec random_spec(std::size_t num_modules,
                                   const SpecOptions& options, Rng& rng);

}  // namespace rsnsec::benchgen
