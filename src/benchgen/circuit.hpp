#pragma once

#include "netlist/netlist.hpp"
#include "rsn/io.hpp"
#include "util/rng.hpp"

namespace rsnsec::benchgen {

/// Knobs of the random circuit generator. The paper's benchmarks ship
/// without underlying circuits ("each ... benchmark is only available
/// without the underlying circuit. We therefore randomly generated 10
/// circuits per benchmark", Sec. IV-A); this generator plays that role.
struct CircuitOptions {
  /// Boundary circuit flip-flops created per scan flip-flop of a module
  /// (capture sources / update targets are drawn from these).
  double boundary_per_scan_ff = 0.5;
  /// Internal flip-flops (bridging candidates, IF1/IF2 style) per module,
  /// in addition to one per 4 boundary FFs.
  std::size_t internal_per_module = 2;
  /// Expected number of *functional* cross-module circuit connections in
  /// the whole circuit (the substrate of hybrid scan paths). Kept small:
  /// the transitive closure of functional cross-module paths quickly
  /// makes random specifications reject the circuit as statically
  /// insecure (Sec. III-B), which the paper's averaging excludes.
  double target_cross_functional = 4.0;
  /// Expected number of *cancelled* (only-structural) cross-module
  /// connections: reconvergences that look like data paths structurally
  /// but cannot propagate data — the raw material of the Sec. IV-C
  /// false positives.
  double target_cross_structural = 8.0;
  /// Probability that a cone uses a data-flow-cancelling reconvergence
  /// (XOR(x,x) / MUX(s,a,a) patterns): structural but not functional
  /// dependencies, which the SAT check must classify correctly (Fig. 5).
  double cancelling_prob = 0.2;
  /// Probability that a scan flip-flop has a capture source / update
  /// target at all.
  double capture_prob = 0.8;
  double update_prob = 0.5;
  /// Maximum gates per generated boundary next-state cone. Boundary
  /// flip-flops are pipeline-like (low fan-in); internal monitors are
  /// generated separately with higher fan-in.
  std::size_t max_cone_gates = 2;
};

/// Generates a random circuit underneath `doc.network`:
///  - one netlist module per entry of doc.module_names;
///  - per module: boundary flip-flops, internal flip-flops and random
///    combinational next-state cones (AND/OR/XOR/NOT/MUX), including
///    deliberate cancelling reconvergences;
///  - calibrated numbers of functional and cancelled cross-module paths
///    (options.target_cross_*);
///  - capture sources and update targets of every scan flip-flop are
///    drawn from its own module's boundary flip-flops (so a register's
///    own capture/shift/update loop cannot leak foreign data; see
///    DESIGN.md on intra-segment flows).
///
/// Mutates `doc.network` (sets capture/update attachments) and returns
/// the generated netlist.
netlist::Netlist attach_random_circuit(rsn::RsnDocument& doc,
                                       const CircuitOptions& options,
                                       Rng& rng);

}  // namespace rsnsec::benchgen
