#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rsnsec::security {

/// Index of a trust category (0-based). Categories formalize degrees of
/// trustworthiness, e.g. 0 = untrusted third-party, 1 = vendor-qualified,
/// 2 = in-house, 3 = security-critical (Sec. II-B, spec of [17]).
using TrustCategory = std::uint8_t;

/// Maximum number of trust categories supported by the bitmask encoding.
constexpr std::size_t max_categories = 16;

/// Security annotation of one module/instrument (and thereby of the scan
/// segments it owns): its own trust category, and the set of categories
/// that are accepted to observe or control its data (data sensitivity).
struct ModulePolicy {
  TrustCategory trust = 0;
  /// Bitmask over categories: bit c set means data of this module may
  /// share a (pure or hybrid) scan path with segments of trust category c.
  std::uint32_t accepted = 0xffffffffu;
};

/// The user-given security specification: one policy per module. The
/// specification is *violated* if data of module x can flow (over a pure
/// or hybrid scan path) to a flip-flop of module y with
/// trust(y) not in accepted(x).
class SecuritySpec {
 public:
  SecuritySpec() = default;

  /// Creates a spec over `num_modules` modules with `num_categories`
  /// categories; all policies default to fully-permissive.
  SecuritySpec(std::size_t num_modules, std::size_t num_categories);

  /// Sets the policy of module `m`.
  void set_policy(netlist::ModuleId m, TrustCategory trust,
                  std::uint32_t accepted_mask);

  /// Policy of module `m`. Modules without an explicit policy (or nodes
  /// with no module) are fully permissive.
  const ModulePolicy& policy(netlist::ModuleId m) const;

  std::size_t num_modules() const { return policies_.size(); }
  std::size_t num_categories() const { return num_categories_; }

  /// Checks internal consistency: every trust category is in range and
  /// every module accepts its own trust category (a module may always see
  /// its own data). Fills `error` on failure.
  bool validate(std::string* error = nullptr) const;

 private:
  std::vector<ModulePolicy> policies_;
  std::size_t num_categories_ = 1;
  ModulePolicy permissive_{};
};

/// Fixed-capacity bitset over interned token ids, used as the propagated
/// security-attribute set of a node. 256 distinct sensitivity classes
/// (distinct accepted-masks) are supported, far beyond what specs with
/// <= 16 categories produce in practice.
class TokenSet {
 public:
  static constexpr std::size_t capacity = 256;

  bool test(std::size_t i) const {
    return (w_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { w_[i >> 6] |= 1ULL << (i & 63); }

  /// Union; returns true if this set changed (fixed-point detection).
  bool merge(const TokenSet& o) {
    bool changed = false;
    for (std::size_t k = 0; k < w_.size(); ++k) {
      std::uint64_t nw = w_[k] | o.w_[k];
      changed |= (nw != w_[k]);
      w_[k] = nw;
    }
    return changed;
  }

  bool any() const {
    for (auto v : w_)
      if (v) return true;
    return false;
  }

  bool intersects(const TokenSet& o) const {
    for (std::size_t k = 0; k < w_.size(); ++k)
      if (w_[k] & o.w_[k]) return true;
    return false;
  }

  /// True if every token of `o` is already present, i.e. merge(o) would
  /// be a no-op. Lets the delta engine test for growth without copying.
  bool contains(const TokenSet& o) const {
    for (std::size_t k = 0; k < w_.size(); ++k)
      if (o.w_[k] & ~w_[k]) return false;
    return true;
  }

  /// Removes every token of `o` (set difference in place).
  void subtract(const TokenSet& o) {
    for (std::size_t k = 0; k < w_.size(); ++k) w_[k] &= ~o.w_[k];
  }

  /// First token id present in both sets, or -1.
  int first_common(const TokenSet& o) const;

  /// Number of token ids present in both sets (popcount of the
  /// intersection). The violation index uses this to maintain per-victim
  /// violating-pair counts under deltas.
  std::size_t count_common(const TokenSet& o) const;

  bool operator==(const TokenSet&) const = default;

 private:
  std::array<std::uint64_t, capacity / 64> w_{};
};

/// Interning table mapping module sensitivities to compact token ids.
///
/// Two modules whose data has the same accepted-mask are security-
/// equivalent sources, so they share one token; the set of distinct masks
/// is small. For each trust category t, `bad(t)` is the set of tokens
/// whose data must not reach a category-t node — violation detection is a
/// single bitset intersection per node.
class TokenTable {
 public:
  TokenTable(const SecuritySpec& spec, std::size_t num_modules);

  /// Token id carried by data of module `m`, or -1 if `m` is unannotated
  /// (fully permissive data generates no token: it can never violate).
  int token_of(netlist::ModuleId m) const;

  /// Tokens that violate when present at a node of trust category `t`.
  const TokenSet& bad(TrustCategory t) const {
    return bad_[static_cast<std::size_t>(t)];
  }

  /// Number of distinct tokens.
  std::size_t num_tokens() const { return masks_.size(); }

  /// Accepted-mask of token `id` (for reporting).
  std::uint32_t mask(int id) const {
    return masks_[static_cast<std::size_t>(id)];
  }

 private:
  std::vector<int> module_token_;
  std::vector<std::uint32_t> masks_;
  std::vector<TokenSet> bad_;  // indexed by trust category
};

}  // namespace rsnsec::security
