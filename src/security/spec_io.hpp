#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "security/spec.hpp"

namespace rsnsec::security {

/// Malformed spec-file input. Carries the 1-based line number; what()
/// always reads "spec parse error at line N: ...". A distinct type so
/// the CLI can turn bad *input* into a usage-style exit code while real
/// I/O or internal failures keep the generic error path.
class SpecParseError : public std::runtime_error {
 public:
  SpecParseError(int line, const std::string& msg)
      : std::runtime_error("spec parse error at line " +
                           std::to_string(line) + ": " + msg),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_;
};

/// Serializes a security specification to a plain-text format:
///
///   categories 4
///   # module <name-or-index> trust <cat> accepts <cat>[,<cat>...]
///   module crypto trust 3 accepts 2,3
///   module 7 trust 0 accepts 0,1,2,3
///
/// Modules are written by name where `module_names` provides one;
/// unlisted modules are fully permissive (accept every category).
void write_spec(std::ostream& os, const SecuritySpec& spec,
                const std::vector<std::string>& module_names = {});

/// Parses the format produced by write_spec. Module names are resolved
/// against `module_names`; numeric indices are always accepted. Tokens
/// may be separated by any run of spaces or tabs. The returned spec
/// covers max(module_names.size(), largest index + 1) modules. Throws
/// SpecParseError with a line-numbered message on malformed input
/// (including non-numeric or overflowing numbers), unknown module names
/// or invalid categories.
SecuritySpec read_spec(std::istream& is,
                       const std::vector<std::string>& module_names = {});

}  // namespace rsnsec::security
