#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "security/spec.hpp"

namespace rsnsec::security {

/// Serializes a security specification to a plain-text format:
///
///   categories 4
///   # module <name-or-index> trust <cat> accepts <cat>[,<cat>...]
///   module crypto trust 3 accepts 2,3
///   module 7 trust 0 accepts 0,1,2,3
///
/// Modules are written by name where `module_names` provides one;
/// unlisted modules are fully permissive (accept every category).
void write_spec(std::ostream& os, const SecuritySpec& spec,
                const std::vector<std::string>& module_names = {});

/// Parses the format produced by write_spec. Module names are resolved
/// against `module_names`; numeric indices are always accepted. The
/// returned spec covers max(module_names.size(), largest index + 1)
/// modules. Throws std::runtime_error with a line-numbered message on
/// malformed input, unknown module names or invalid categories.
SecuritySpec read_spec(std::istream& is,
                       const std::vector<std::string>& module_names = {});

}  // namespace rsnsec::security
