#include "security/pure.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "obs/trace.hpp"
#include "security/violation_index.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::security {

using rsn::ElemId;
using rsn::ElemKind;
using rsn::Rsn;

PureScanAnalyzer::PureScanAnalyzer(const SecuritySpec& spec,
                                   const TokenTable& tokens)
    : spec_(spec), tokens_(tokens) {}

int PureScanAnalyzer::register_token(const Rsn& network, ElemId reg) const {
  return tokens_.token_of(network.elem(reg).module);
}

namespace {

/// Topological order of RSN elements along connection edges (drivers
/// before consumers). The network is acyclic by invariant.
std::vector<ElemId> topo_order(const Rsn& network) {
  std::vector<std::uint32_t> pending(network.num_elements(), 0);
  std::vector<std::vector<ElemId>> fanout(network.num_elements());
  for (ElemId id = 0; id < network.num_elements(); ++id) {
    for (ElemId in : network.elem(id).inputs) {
      if (in == rsn::no_elem) continue;
      ++pending[id];
      fanout[in].push_back(id);
    }
  }
  std::vector<ElemId> ready, order;
  for (ElemId id = 0; id < network.num_elements(); ++id)
    if (pending[id] == 0) ready.push_back(id);
  while (!ready.empty()) {
    ElemId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (ElemId s : fanout[id])
      if (--pending[s] == 0) ready.push_back(s);
  }
  return order;
}

}  // namespace

std::vector<TokenSet> PureScanAnalyzer::propagate(const Rsn& network) const {
  std::vector<TokenSet> out(network.num_elements());
  for (ElemId id : topo_order(network)) {
    const rsn::Element& e = network.elem(id);
    for (ElemId in : e.inputs) {
      if (in != rsn::no_elem) out[id].merge(out[in]);
    }
    if (e.kind == ElemKind::Register) {
      int tok = register_token(network, id);
      if (tok >= 0) out[id].set(static_cast<std::size_t>(tok));
    }
  }
  return out;
}

bool PureScanAnalyzer::violates(const Rsn& network, ElemId reg,
                                const TokenSet& incoming) const {
  TrustCategory t = spec_.policy(network.elem(reg).module).trust;
  return incoming.intersects(tokens_.bad(t));
}

std::size_t PureScanAnalyzer::count_violating_registers(
    const Rsn& network) const {
  std::vector<TokenSet> out = propagate(network);
  std::size_t n = 0;
  for (ElemId reg : network.registers()) {
    TokenSet incoming;
    for (ElemId in : network.elem(reg).inputs)
      if (in != rsn::no_elem) incoming.merge(out[in]);
    if (violates(network, reg, incoming)) ++n;
  }
  return n;
}

std::size_t PureScanAnalyzer::count_violating_pairs(
    const Rsn& network) const {
  std::vector<TokenSet> out = propagate(network);
  std::size_t n = 0;
  for (ElemId reg : network.registers()) {
    TokenSet incoming;
    for (ElemId in : network.elem(reg).inputs)
      if (in != rsn::no_elem) incoming.merge(out[in]);
    TrustCategory t = spec_.policy(network.elem(reg).module).trust;
    const TokenSet& bad = tokens_.bad(t);
    for (std::size_t k = 0; k < tokens_.num_tokens(); ++k)
      if (incoming.test(k) && bad.test(k)) ++n;
  }
  return n;
}

std::optional<PureViolation> PureScanAnalyzer::find_violation(
    const Rsn& network) const {
  std::vector<TokenSet> out = propagate(network);
  for (ElemId reg : network.registers()) {
    TokenSet incoming;
    for (ElemId in : network.elem(reg).inputs)
      if (in != rsn::no_elem) incoming.merge(out[in]);
    TrustCategory t = spec_.policy(network.elem(reg).module).trust;
    int tok = incoming.first_common(tokens_.bad(t));
    if (tok < 0) continue;

    // Trace a witnessing path: walk backward over drivers that carry the
    // token until a register that contributes it.
    PureViolation v;
    v.victim = reg;
    v.token = tok;
    std::vector<ElemId> parent(network.num_elements(), rsn::no_elem);
    std::vector<bool> seen(network.num_elements(), false);
    std::vector<ElemId> queue;
    seen[reg] = true;
    queue.push_back(reg);
    ElemId origin = rsn::no_elem;
    for (std::size_t qi = 0; qi < queue.size() && origin == rsn::no_elem;
         ++qi) {
      ElemId cur = queue[qi];
      for (ElemId in : network.elem(cur).inputs) {
        if (in == rsn::no_elem || seen[in]) continue;
        if (!out[in].test(static_cast<std::size_t>(tok))) continue;
        seen[in] = true;
        parent[in] = cur;
        if (network.elem(in).kind == ElemKind::Register &&
            register_token(network, in) == tok) {
          origin = in;
          break;
        }
        queue.push_back(in);
      }
    }
    assert(origin != rsn::no_elem && "token present but no origin found");
    v.origin = origin;
    for (ElemId cur = origin; cur != rsn::no_elem; cur = parent[cur])
      v.path.push_back(cur);
    return v;
  }
  return std::nullopt;
}

PureStats PureScanAnalyzer::detect_and_resolve(
    Rsn& network, std::vector<AppliedChange>* log,
    ResolutionPolicy policy, const ChangeCallback& on_change,
    const ResolveOptions& resolve_options) {
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span resolve_span(trace, "pure.resolve");
  PureStats stats;

  const bool incremental = resolve_options.incremental;
  std::optional<PureViolationIndex> index;
  // ResolveOptions::pool (shared, serve scheduler) wins over a private
  // per-resolve pool sized by num_threads.
  ThreadPool* pool = resolve_options.pool;
  std::optional<ThreadPool> owned_pool;
  if (incremental) {
    index.emplace(*this, network);
    if (pool == nullptr) {
      owned_pool.emplace(
          ThreadPool::resolve_num_threads(resolve_options.num_threads));
      pool = &*owned_pool;
    }
    stats.initial_violating_registers = index->violating_registers();
    stats.initial_violating_pairs = index->pairs();
  } else {
    stats.initial_violating_registers = count_violating_registers(network);
    stats.initial_violating_pairs = count_violating_pairs(network);
  }
  // Applying a cut re-runs the deterministic cut_connection on the real
  // network, so the selected trial's residual count IS the new current
  // count; only the fallback isolation needs a recount. (Previously every
  // iteration recounted from scratch on top of find_violation's own
  // propagation.)
  std::size_t cur_pairs = stats.initial_violating_pairs;

  std::size_t max_iters = 8 * network.registers().size() + 64;
  std::size_t iter = 0;
  for (;;) {
    std::optional<PureViolation> v =
        incremental ? index->find_violation() : find_violation(network);
    if (!v) break;
    if (++iter > max_iters)
      throw std::runtime_error(
          "pure resolution did not converge (iteration cap exceeded)");
    if (trace != nullptr) trace->counter("resolve.pure_iterations").add(1);

    // Candidate cuts: every connection along the witnessing path.
    std::vector<Connection> candidates;
    for (std::size_t i = 0; i + 1 < v->path.size(); ++i) {
      const rsn::Element& to = network.elem(v->path[i + 1]);
      for (std::size_t p = 0; p < to.inputs.size(); ++p) {
        if (to.inputs[p] == v->path[i])
          candidates.push_back({v->path[i], v->path[i + 1], p});
      }
    }

    // Each cut is evaluated with both reconnection variants ([17]-style
    // candidate generation); the policy decides how exhaustively.
    Rewirer::Selection sel;
    if (incremental) {
      sel = Rewirer::select_cut_parallel(
          network, candidates,
          [&index]() -> Rewirer::TrialCounter {
            auto scratch = std::make_shared<PureViolationIndex::Scratch>();
            return [&index, scratch](const Rsn& n) {
              return index->eval_trial(n, *scratch);
            };
          },
          cur_pairs, policy, *pool);
    } else {
      sel = Rewirer::select_cut(
          network, candidates,
          [this](const Rsn& n) { return count_violating_pairs(n); },
          cur_pairs, policy);
    }

    AppliedChange change;
    if (sel.found) {
      change.kind = AppliedChange::Kind::CutConnection;
      change.cut = sel.cut;
      change.rewire_operations =
          Rewirer::cut_connection(network, sel.cut, sel.reconnect_hint);
      change.note = "pure: cut " + network.elem(sel.cut.from).name + " -> " +
                    network.elem(sel.cut.to).name;
      cur_pairs = sel.residual_pairs;
      if (incremental) index->commit(network);
    } else {
      // Guaranteed-progress fallback: isolate the last register on the
      // path before the victim (or the origin itself).
      ElemId iso = v->origin;
      for (std::size_t i = 0; i + 1 < v->path.size(); ++i) {
        if (network.elem(v->path[i]).kind == ElemKind::Register)
          iso = v->path[i];
      }
      change.kind = AppliedChange::Kind::IsolateRegister;
      change.isolated = iso;
      change.rewire_operations =
          Rewirer::isolate_register_output(network, iso);
      change.note = "pure: isolate " + network.elem(iso).name;
      ++stats.fallback_isolations;
      if (incremental) {
        index->commit(network);
        cur_pairs = index->pairs();
      } else {
        cur_pairs = count_violating_pairs(network);
      }
    }
    ++stats.applied_changes;
    stats.rewire_operations += change.rewire_operations;
    if (trace != nullptr) {
      trace->counter("rewire.changes_applied").add(1);
      trace->counter("rewire.operations").add(change.rewire_operations);
    }
    if (on_change) on_change(network, change);
    if (log) log->push_back(std::move(change));
  }
  return stats;
}

}  // namespace rsnsec::security
