#pragma once

#include <cstdint>
#include <vector>

#include "rsn/rsn.hpp"
#include "security/spec.hpp"

namespace rsnsec::security {

/// Result of the access-filter baseline analysis.
struct FilterReport {
  /// Registers for which at least one violation-free active scan path
  /// exists (the filter can allow accessing them).
  std::vector<rsn::ElemId> accessible;
  /// Registers every access to which crosses a violating pair: a filter
  /// must make them permanently inaccessible for debug and diagnosis.
  std::vector<rsn::ElemId> inaccessible;
  /// True if the path search hit its node budget and conservatively
  /// classified some registers inaccessible.
  bool search_truncated = false;
};

/// Baseline from the related work ([13], [14]): instead of transforming
/// the RSN, an online filter *forbids* scan-in access sequences (i.e.
/// active-path configurations) that would violate the specification.
///
/// The paper's argument against this approach (Sec. I): when a pair of
/// scan registers cannot be separated by any scan-path configuration,
/// the filter must make every such pair inaccessible, losing debug and
/// diagnosis access — whereas the structural transformation keeps every
/// register accessible. This class quantifies that: for each register it
/// searches for *some* active path through it on which the (pure)
/// forward token flow causes no violation.
///
/// Filters of this style reason about pure scan paths only; they are
/// blind to hybrid flows through the circuit logic, which is the paper's
/// second argument (quantified by the baseline benchmark).
class AccessFilterBaseline {
 public:
  AccessFilterBaseline(const rsn::Rsn& network, const SecuritySpec& spec,
                       const TokenTable& tokens,
                       std::size_t node_budget = 200000)
      : net_(network), spec_(spec), tokens_(tokens),
        node_budget_(node_budget) {}

  /// True if some complete active path through `target` carries no
  /// violating (token, register) pair.
  bool has_clean_path(rsn::ElemId target) const;

  /// Classifies every register.
  FilterReport analyze() const;

 private:
  const rsn::Rsn& net_;
  const SecuritySpec& spec_;
  const TokenTable& tokens_;
  std::size_t node_budget_;

  mutable bool truncated_ = false;
};

}  // namespace rsnsec::security
