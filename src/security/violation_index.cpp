#include "security/violation_index.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "obs/trace.hpp"
#include "rsn/access.hpp"

namespace rsnsec::security {

using rsn::ElemId;
using rsn::ElemKind;
using rsn::Rsn;

namespace {

/// Backward mux-walk under `net`: appends every register that can reach
/// `x` through mux-only element chains (the sources whose chain DFS may
/// traverse x), including x itself if it is a register. Ports terminate
/// the walk — chains neither start nor pass through them. `visited`
/// entries equal to `epoch` are skipped (marks persist across the
/// endpoints of one delta query).
void collect_chain_sources(const Rsn& net, ElemId x,
                           std::vector<std::uint32_t>& visited,
                           std::uint32_t epoch, std::vector<ElemId>& stack,
                           std::vector<ElemId>& dirty) {
  if (x == rsn::no_elem || x >= net.num_elements()) return;
  stack.clear();
  stack.push_back(x);
  while (!stack.empty()) {
    ElemId cur = stack.back();
    stack.pop_back();
    if (visited[cur] == epoch) continue;
    visited[cur] = epoch;
    const rsn::Element& e = net.elem(cur);
    if (e.kind == ElemKind::Register) {
      dirty.push_back(cur);
      continue;
    }
    if (e.kind != ElemKind::Mux) continue;
    for (ElemId in : e.inputs)
      if (in != rsn::no_elem) stack.push_back(in);
  }
}

void count_delta_query() {
  if (obs::TraceSession* trace = obs::TraceSession::active())
    trace->counter("resolve.delta_queries").add(1);
}

void count_index_rebuild() {
  if (obs::TraceSession* trace = obs::TraceSession::active())
    trace->counter("resolve.index_rebuilds").add(1);
}

}  // namespace

// ---------------------------------------------------------------------------
// HybridViolationIndex

HybridViolationIndex::HybridViolationIndex(const HybridAnalyzer& analyzer,
                                           const Rsn& network)
    : a_(analyzer), net_(network), fanout_(network) {
  count_index_rebuild();
  const std::size_t nodes = a_.owner_module_.size();
  reg_chains_.assign(net_.num_elements(), {});
  rsn_succ_.assign(nodes, {});
  rsn_pred_.assign(nodes, {});
  // Flatten the (dense, immutable) static + circuit adjacency into one
  // CSR array: the delta passes scan successor lists of thousands of
  // nodes per query, where contiguous storage beats nested vectors.
  fixed_succ_off_.assign(nodes + 1, 0);
  for (std::size_t n = 0; n < nodes; ++n)
    fixed_succ_off_[n + 1] =
        fixed_succ_off_[n] +
        static_cast<std::uint32_t>(a_.static_succ_[n].size() +
                                   a_.circuit_succ_[n].size());
  fixed_succ_.resize(fixed_succ_off_[nodes]);
  for (std::size_t n = 0; n < nodes; ++n) {
    std::uint32_t o = fixed_succ_off_[n];
    for (std::size_t t : a_.static_succ_[n])
      fixed_succ_[o++] = static_cast<std::uint32_t>(t);
    for (std::size_t t : a_.circuit_succ_[n])
      fixed_succ_[o++] = static_cast<std::uint32_t>(t);
  }
  std::vector<std::vector<std::size_t>> extra(nodes);
  for (ElemId r : net_.registers()) {
    HybridAnalyzer::append_register_chains(net_, fanout_, r, reg_chains_[r]);
    for (const HybridAnalyzer::RsnEdge& e : reg_chains_[r]) {
      std::size_t f = from_node(e.from_reg);
      std::size_t t = a_.scan_node(e.to_reg, 0);
      rsn_succ_[f].push_back(t);
      rsn_pred_[t].push_back(f);
      extra[f].push_back(t);
    }
  }
  // The committed fixpoint. run_worklist computes the unique least
  // fixpoint, so this equals what any later from-scratch propagation of
  // the same network produces, bit for bit.
  state_ = a_.run_worklist(extra, /*circuit_only=*/false);
  node_pairs_.assign(nodes, 0);
  for (std::size_t n = 0; n < nodes; ++n) {
    node_pairs_[n] = node_pair_count(n, state_[n]);
    pairs_ += node_pairs_[n];
  }
}

std::size_t HybridViolationIndex::node_pair_count(std::size_t node,
                                                  const TokenSet& st) const {
  netlist::ModuleId m = a_.owner_module_[node];
  if (m < 0) return 0;  // unannotated: transit only
  TrustCategory t = a_.spec_.policy(m).trust;
  return st.count_common(a_.tokens_.bad(t));
}

std::size_t HybridViolationIndex::from_node(ElemId reg) const {
  return a_.scan_node(reg, net_.elem(reg).ffs.size() - 1);
}

std::size_t HybridViolationIndex::violating_registers() const {
  std::size_t count = 0;
  for (ElemId r : net_.registers()) {
    const rsn::Element& e = net_.elem(r);
    if (e.module < 0) continue;
    TrustCategory t = a_.spec_.policy(e.module).trust;
    const TokenSet& bad = a_.tokens_.bad(t);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      if (state_[a_.scan_node(r, f)].intersects(bad)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

const std::vector<std::pair<ElemId, std::size_t>>&
HybridViolationIndex::trial_fanout_of(ElemId x, Scratch& s) const {
  s.fanout_buf.clear();
  // Committed entries of unchanged consumers, merged with the trial-only
  // patch, both already in FanoutIndex order (consumer asc, port asc) —
  // so the merged sequence is bit-identical to FanoutIndex(trial).of(x).
  auto add_lo = std::lower_bound(
      s.fanout_adds.begin(), s.fanout_adds.end(), x,
      [](const auto& a, ElemId key) { return a.first < key; });
  auto add_hi = add_lo;
  while (add_hi != s.fanout_adds.end() && add_hi->first == x) ++add_hi;
  const std::vector<std::pair<ElemId, std::size_t>>* committed = nullptr;
  if (x < net_.num_elements()) committed = &fanout_.of(x);
  std::size_t ci = 0;
  const std::size_t cn = committed != nullptr ? committed->size() : 0;
  while (ci < cn || add_lo != add_hi) {
    bool take_committed;
    if (ci == cn) {
      take_committed = false;
    } else if ((*committed)[ci].first < s.changed_mark.size() &&
               s.changed_mark[(*committed)[ci].first] == s.epoch) {
      ++ci;  // consumer's input list changed: committed entry is stale
      continue;
    } else if (add_lo == add_hi) {
      take_committed = true;
    } else {
      take_committed = (*committed)[ci] < add_lo->second;
    }
    if (take_committed) {
      s.fanout_buf.push_back((*committed)[ci]);
      ++ci;
    } else {
      s.fanout_buf.push_back(add_lo->second);
      ++add_lo;
    }
  }
  return s.fanout_buf;
}

std::size_t HybridViolationIndex::delta_analysis(const Rsn& trial,
                                                 Scratch& s) const {
  count_delta_query();
  const std::size_t nodes = state_.size();
  const std::size_t elems =
      std::max(net_.num_elements(), trial.num_elements());
  if (s.state.size() < nodes) {
    s.state.resize(nodes);
    s.affected_mark.assign(nodes, 0);
    s.queued_mark.assign(nodes, 0);
    s.dirty_from_mark.assign(nodes, 0);
    s.holds_lost_mark.assign(nodes, 0);
  }
  if (s.changed_mark.size() < elems) {
    s.changed_mark.resize(elems, 0);
    s.vis_old_mark.resize(elems, 0);
    s.vis_new_mark.resize(elems, 0);
  }
  if (++s.epoch == 0) {  // epoch wrap: reset marks once per 2^32 queries
    std::fill(s.affected_mark.begin(), s.affected_mark.end(), 0u);
    std::fill(s.queued_mark.begin(), s.queued_mark.end(), 0u);
    std::fill(s.dirty_from_mark.begin(), s.dirty_from_mark.end(), 0u);
    std::fill(s.holds_lost_mark.begin(), s.holds_lost_mark.end(), 0u);
    std::fill(s.changed_mark.begin(), s.changed_mark.end(), 0u);
    std::fill(s.vis_old_mark.begin(), s.vis_old_mark.end(), 0u);
    std::fill(s.vis_new_mark.begin(), s.vis_new_mark.end(), 0u);
    s.epoch = 1;
  }

  // 1. Input-list diff: changed consumers (elements whose input vector
  //    differs, or that exist only in the trial), the drivers involved
  //    on either side (endpoints — every element whose fanout differs
  //    between the two structures has a representative among them), and
  //    the trial-side fanout patch entries of the changed consumers.
  s.endpoints.clear();
  s.fanout_adds.clear();
  for (ElemId id = 0; id < elems; ++id) {
    const std::vector<ElemId>* old_in =
        id < net_.num_elements() ? &net_.elem(id).inputs : nullptr;
    const std::vector<ElemId>* new_in =
        id < trial.num_elements() ? &trial.elem(id).inputs : nullptr;
    if (old_in != nullptr && new_in != nullptr && *old_in == *new_in)
      continue;
    s.changed_mark[id] = s.epoch;
    if (old_in != nullptr) {
      for (ElemId x : *old_in)
        if (x != rsn::no_elem) s.endpoints.push_back(x);
    }
    if (new_in != nullptr) {
      for (std::size_t p = 0; p < new_in->size(); ++p) {
        ElemId x = (*new_in)[p];
        if (x == rsn::no_elem) continue;
        s.endpoints.push_back(x);
        s.fanout_adds.push_back({x, {id, p}});
      }
    }
  }
  std::sort(s.endpoints.begin(), s.endpoints.end());
  s.endpoints.erase(std::unique(s.endpoints.begin(), s.endpoints.end()),
                    s.endpoints.end());
  // Consumers were scanned ascending (ports ascending within each), so a
  // stable sort by source keeps each source's run in FanoutIndex order.
  std::stable_sort(s.fanout_adds.begin(), s.fanout_adds.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  //    Dirty registers: backward mux-walk from every endpoint under both
  //    structures (a register whose chains change in either direction
  //    must rebuild).
  s.dirty_regs.clear();
  for (ElemId x : s.endpoints) {
    if (x < net_.num_elements())
      collect_chain_sources(net_, x, s.vis_old_mark, s.epoch, s.chain_stack,
                            s.dirty_regs);
    collect_chain_sources(trial, x, s.vis_new_mark, s.epoch, s.chain_stack,
                          s.dirty_regs);
  }
  std::sort(s.dirty_regs.begin(), s.dirty_regs.end());
  s.dirty_regs.erase(std::unique(s.dirty_regs.begin(), s.dirty_regs.end()),
                     s.dirty_regs.end());

  // 2. Rebuild the dirty registers' chains under the trial structure
  //    (against the patched committed fanout) and derive the node-level
  //    edge sets on both sides.
  // Reuse the outer chain buffers across queries (clear keeps capacity).
  if (s.dirty_chains.size() < s.dirty_regs.size())
    s.dirty_chains.resize(s.dirty_regs.size());
  for (std::size_t i = 0; i < s.dirty_regs.size(); ++i)
    s.dirty_chains[i].clear();
  s.old_edges.clear();
  s.new_edges.clear();
  for (std::size_t i = 0; i < s.dirty_regs.size(); ++i) {
    ElemId r = s.dirty_regs[i];
    HybridAnalyzer::append_register_chains_fn(
        trial,
        [&](ElemId id) -> const std::vector<std::pair<ElemId, std::size_t>>& {
          return trial_fanout_of(id, s);
        },
        r, s.dirty_chains[i]);
    for (const HybridAnalyzer::RsnEdge& e : reg_chains_[r])
      s.old_edges.push_back(
          {from_node(e.from_reg), a_.scan_node(e.to_reg, 0)});
    for (const HybridAnalyzer::RsnEdge& e : s.dirty_chains[i])
      s.new_edges.push_back(
          {from_node(e.from_reg), a_.scan_node(e.to_reg, 0)});
    s.dirty_from_mark[from_node(r)] = s.epoch;
  }

  // 3. Removed/added inter-segment edges as multiset differences — an
  //    edge with equal multiplicity on both sides transports the same
  //    values and invalidates nothing.
  std::vector<std::pair<std::size_t, std::size_t>>& so = s.sorted_old;
  std::vector<std::pair<std::size_t, std::size_t>>& sn = s.sorted_new;
  so = s.old_edges;
  sn = s.new_edges;
  std::sort(so.begin(), so.end());
  std::sort(sn.begin(), sn.end());
  std::vector<std::pair<std::size_t, std::size_t>>& removed = s.edge_removed;
  std::vector<std::pair<std::size_t, std::size_t>>& added = s.edge_added;
  removed.clear();
  added.clear();
  std::set_difference(so.begin(), so.end(), sn.begin(), sn.end(),
                      std::back_inserter(removed));
  std::set_difference(sn.begin(), sn.end(), so.begin(), so.end(),
                      std::back_inserter(added));

  // 4. Shrink region: only values flowing over a removed edge can be
  //    lost anywhere, so a node whose committed value shares no token
  //    with `possibly_lost` can only grow — it need not be re-solved
  //    from scratch (growth is handled monotonically in step 5). The
  //    region is the forward closure, over the TRIAL graph, of the
  //    removed-edge heads, pruned at content-disjoint nodes: any
  //    committed support path of a lost token downstream of a removed
  //    edge consists of nodes all carrying that token, so every node
  //    that can actually lose a token is reached. This mirrors the
  //    oracle's sparsity — its push-based worklist also never touches
  //    token-free nodes, while an unfiltered structural closure drags
  //    in the whole dense circuit-closure fanout.
  TokenSet possibly_lost;
  for (const auto& e : removed) possibly_lost.merge(state_[e.first]);
  const std::size_t num_nodes = a_.num_nodes();
  if (possibly_lost.any()) {
    for (std::size_t n = 0; n < num_nodes; ++n)
      if (state_[n].intersects(possibly_lost)) s.holds_lost_mark[n] = s.epoch;
  }
  s.affected.clear();
  s.worklist.clear();
  auto discover = [&](std::size_t n) {
    if (s.affected_mark[n] == s.epoch) return;
    if (s.holds_lost_mark[n] != s.epoch) return;
    s.affected_mark[n] = s.epoch;
    s.affected.push_back(n);
    s.worklist.push_back(n);
  };
  for (const auto& e : removed) discover(e.second);
  auto for_each_trial_rsn_succ = [&](std::size_t n, auto&& fn) {
    if (s.dirty_from_mark[n] == s.epoch) {
      for (const auto& e : s.new_edges)
        if (e.first == n) fn(e.second);
    } else {
      for (std::size_t t : rsn_succ_[n]) fn(t);
    }
  };
  while (!s.worklist.empty()) {
    std::size_t n = s.worklist.back();
    s.worklist.pop_back();
    for (std::uint32_t i = fixed_succ_off_[n]; i < fixed_succ_off_[n + 1];
         ++i)
      discover(fixed_succ_[i]);
    for_each_trial_rsn_succ(n, discover);
  }

  // 5. Re-solve the fixpoint on the region (seed tokens plus committed
  //    values of outside trial-predecessors as boundary constants), with
  //    lazy monotone growth beyond it: a relaxation that would enlarge an
  //    outside node's committed value pulls that node into the overlay
  //    (committed ∪ growth, not reset) and keeps propagating. The start
  //    assignment is pointwise ≤ the trial's least fixpoint and every
  //    retained committed token keeps a support path untouched by the
  //    edit (it would otherwise carry a possibly-lost token into the
  //    region), so the chaotic iteration converges exactly to the
  //    trial's least fixpoint — bit-identical to the from-scratch run.
  s.worklist.clear();
  // A committed token outside `possibly_lost` keeps, at every node, a
  // support path no removed edge touched (losing it would require its
  // support to cross a removed edge, tagging it possibly-lost), so the
  // stripped committed value is a sound start below the trial's
  // fixpoint — only the possibly-lost part needs re-deriving. That in
  // turn means the only boundary contributions the strip didn't keep
  // come from predecessors *holding* possibly-lost tokens; they are few,
  // so they push their values into the region (touching only their own
  // out-edges) instead of every region node pulling its dense in-edges.
  for (std::size_t n : s.affected) {
    s.state[n] = state_[n];
    s.state[n].subtract(possibly_lost);
    if (a_.seed_token_[n] >= 0)
      s.state[n].set(static_cast<std::size_t>(a_.seed_token_[n]));
  }
  if (possibly_lost.any()) {
    for (std::size_t p = 0; p < num_nodes; ++p) {
      if (s.holds_lost_mark[p] != s.epoch || s.affected_mark[p] == s.epoch)
        continue;
      for (std::uint32_t i = fixed_succ_off_[p]; i < fixed_succ_off_[p + 1];
           ++i) {
        std::uint32_t t = fixed_succ_[i];
        if (s.affected_mark[t] == s.epoch) s.state[t].merge(state_[p]);
      }
      // Committed inter-segment out-edges survive into the trial iff
      // their source register is not dirty; edges of dirty registers
      // are re-added from the rebuilt chains below.
      if (s.dirty_from_mark[p] != s.epoch)
        for (std::size_t t : rsn_succ_[p])
          if (s.affected_mark[t] == s.epoch) s.state[t].merge(state_[p]);
    }
  }
  auto enqueue = [&](std::size_t n) {
    if (s.queued_mark[n] != s.epoch) {
      s.queued_mark[n] = s.epoch;
      s.worklist.push_back(n);
    }
  };
  for (const auto& e : s.new_edges) {
    if (s.affected_mark[e.second] == s.epoch &&
        s.affected_mark[e.first] != s.epoch)
      s.state[e.second].merge(state_[e.first]);
  }
  // Only nodes that can deliver something a successor's init lacks —
  // possibly-lost tokens they retained or tokens gained beyond their
  // committed value — need to push (dirty-from nodes always do: their
  // rebuilt inter-segment edges may be new, with no init coverage).
  for (std::size_t n : s.affected) {
    TokenSet d = s.state[n];
    TokenSet base = state_[n];
    base.subtract(possibly_lost);
    d.subtract(base);
    if (d.any() || s.dirty_from_mark[n] == s.epoch) {
      s.queued_mark[n] = s.epoch;
      s.worklist.push_back(n);
    }
  }
  auto grow_to = [&](const TokenSet& fv, std::size_t to) {
    if (s.affected_mark[to] == s.epoch) {
      // contains-first: the common no-op push stays read-only instead of
      // rewriting (and dirtying) the target's cache lines via merge.
      if (!s.state[to].contains(fv)) {
        s.state[to].merge(fv);
        enqueue(to);
      }
    } else if (!state_[to].contains(fv)) {
      s.affected_mark[to] = s.epoch;
      s.affected.push_back(to);
      s.state[to] = state_[to];
      s.state[to].merge(fv);
      s.queued_mark[to] = s.epoch;
      s.worklist.push_back(to);
    }
  };
  // Added edges whose source stays outside the overlay deliver their
  // committed value exactly once here; overlay sources push from the
  // worklist below.
  for (const auto& e : added)
    if (s.affected_mark[e.first] != s.epoch)
      grow_to(state_[e.first], e.second);
  while (!s.worklist.empty()) {
    std::size_t n = s.worklist.back();
    s.worklist.pop_back();
    s.queued_mark[n] = s.epoch - 1;
    const TokenSet& nv = s.state[n];
    const bool dirty_from = s.dirty_from_mark[n] == s.epoch;
    // Push only what committed-edge targets can be missing (see above);
    // rebuilt inter-segment edges of dirty-from nodes may be brand new,
    // so they carry the full value.
    TokenSet push = state_[n];
    push.subtract(possibly_lost);
    TokenSet masked = nv;
    masked.subtract(push);
    if (masked.any()) {
      for (std::uint32_t i = fixed_succ_off_[n]; i < fixed_succ_off_[n + 1];
           ++i)
        grow_to(masked, fixed_succ_[i]);
      if (!dirty_from)
        for (std::size_t t : rsn_succ_[n]) grow_to(masked, t);
    }
    if (dirty_from)
      for (const auto& e : s.new_edges)
        if (e.first == n) grow_to(nv, e.second);
  }

  // 6. Pair-count delta over the affected nodes only.
  std::ptrdiff_t delta = 0;
  for (std::size_t n : s.affected) {
    delta += static_cast<std::ptrdiff_t>(node_pair_count(n, s.state[n]));
    delta -= static_cast<std::ptrdiff_t>(node_pairs_[n]);
  }
  return static_cast<std::size_t>(static_cast<std::ptrdiff_t>(pairs_) +
                                  delta);
}

std::size_t HybridViolationIndex::eval_trial(const Rsn& trial,
                                             Scratch& scratch) const {
  return delta_analysis(trial, scratch);
}

void HybridViolationIndex::commit(const Rsn& network) {
  Scratch& s = commit_scratch_;
  const std::size_t new_pairs = delta_analysis(network, s);
  for (std::size_t n : s.affected) {
    state_[n] = s.state[n];
    node_pairs_[n] = node_pair_count(n, state_[n]);
  }
  pairs_ = new_pairs;

  // Splice the rebuilt chains and node-level adjacency of the dirty
  // registers into the committed structures. rsn_pred_ lists are only
  // read for (idempotent, order-insensitive) boundary merges, so
  // filter-and-append is enough.
  if (reg_chains_.size() < network.num_elements())
    reg_chains_.resize(network.num_elements());
  std::vector<std::size_t> touched;
  for (const auto& e : s.old_edges) touched.push_back(e.second);
  for (const auto& e : s.new_edges) touched.push_back(e.second);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (std::size_t t : touched) {
    std::vector<std::size_t>& lst = rsn_pred_[t];
    lst.erase(std::remove_if(lst.begin(), lst.end(),
                             [&](std::size_t f) {
                               return s.dirty_from_mark[f] == s.epoch;
                             }),
              lst.end());
  }
  for (std::size_t i = 0; i < s.dirty_regs.size(); ++i) {
    ElemId r = s.dirty_regs[i];
    rsn_succ_[from_node(r)].clear();
    reg_chains_[r] = std::move(s.dirty_chains[i]);
  }
  for (const auto& e : s.new_edges) {
    rsn_succ_[e.first].push_back(e.second);
    rsn_pred_[e.second].push_back(e.first);
  }
  net_ = network;
  // Re-index the committed fanout (once per applied change; trials never
  // pay for it — they patch this index instead).
  fanout_ = rsn::FanoutIndex(net_);
}

std::optional<HybridAnalyzer::Violation> HybridViolationIndex::find_violation()
    const {
  // Mirror of HybridAnalyzer::find_violation, answered from the
  // committed fixpoint: same rsn_edges order (chains concatenated in
  // registers() order — exactly build_rsn_edges' emission order), same
  // predecessor construction order, same BFS — so the same Violation.
  std::vector<HybridAnalyzer::RsnEdge> rsn_edges;
  for (ElemId r : net_.registers())
    for (const HybridAnalyzer::RsnEdge& e : reg_chains_[r])
      rsn_edges.push_back(e);

  const std::size_t nodes = state_.size();
  struct Pred {
    std::size_t node;
    int rsn_edge;
  };
  std::vector<std::vector<Pred>> preds(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (std::size_t t : a_.static_succ_[n]) preds[t].push_back({n, -1});
    for (std::size_t t : a_.circuit_succ_[n]) preds[t].push_back({n, -1});
  }
  for (std::size_t ei = 0; ei < rsn_edges.size(); ++ei) {
    const HybridAnalyzer::RsnEdge& e = rsn_edges[ei];
    std::size_t from =
        a_.scan_node(e.from_reg, net_.elem(e.from_reg).ffs.size() - 1);
    std::size_t to = a_.scan_node(e.to_reg, 0);
    preds[to].push_back({from, static_cast<int>(ei)});
  }

  const std::vector<TokenSet>& state = state_;
  for (std::size_t victim = 0; victim < nodes; ++victim) {
    if (a_.owner_module_[victim] < 0) continue;
    TrustCategory t = a_.spec_.policy(a_.owner_module_[victim]).trust;
    int tok = state[victim].first_common(a_.tokens_.bad(t));
    if (tok < 0) continue;

    std::vector<int> parent_edge(nodes, -2);
    std::vector<std::size_t> parent(nodes, 0);
    std::vector<bool> seen(nodes, false);
    std::vector<std::size_t> queue{victim};
    seen[victim] = true;
    std::size_t seed = nodes;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      std::size_t cur = queue[qi];
      if (a_.seed_token_[cur] == tok && cur != victim) {
        seed = cur;
        break;
      }
      for (const Pred& p : preds[cur]) {
        if (seen[p.node]) continue;
        if (!state[p.node].test(static_cast<std::size_t>(tok))) continue;
        seen[p.node] = true;
        parent[p.node] = cur;
        parent_edge[p.node] = p.rsn_edge;
        queue.push_back(p.node);
      }
    }
    if (seed == nodes) continue;

    HybridAnalyzer::Violation v;
    v.token = tok;
    v.victim_node = victim;
    for (std::size_t cur = seed;; cur = parent[cur]) {
      v.node_path.push_back(cur);
      if (parent_edge[cur] >= 0) {
        const HybridAnalyzer::RsnEdge& e =
            rsn_edges[static_cast<std::size_t>(parent_edge[cur])];
        for (const Connection& c : e.chain) v.rsn_connections.push_back(c);
      }
      if (cur == victim) break;
    }
    return v;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// PureViolationIndex

namespace {

/// Element fanout (consumers per element, one entry per reading port) of
/// `net` — the closure substrate PureViolationIndex keeps committed.
std::vector<std::vector<ElemId>> build_elem_fanout(const Rsn& net) {
  std::vector<std::vector<ElemId>> fanout(net.num_elements());
  for (ElemId id = 0; id < net.num_elements(); ++id) {
    for (ElemId in : net.elem(id).inputs)
      if (in != rsn::no_elem) fanout[in].push_back(id);
  }
  return fanout;
}

}  // namespace

PureViolationIndex::PureViolationIndex(const PureScanAnalyzer& analyzer,
                                       const Rsn& network)
    : a_(analyzer), net_(network) {
  count_index_rebuild();
  state_ = a_.propagate(net_);
  fanout_ = build_elem_fanout(net_);
  reg_pairs_.assign(net_.num_elements(), 0);
  for (ElemId reg : net_.registers()) {
    TokenSet incoming;
    for (ElemId in : net_.elem(reg).inputs)
      if (in != rsn::no_elem) incoming.merge(state_[in]);
    reg_pairs_[reg] = register_pair_count(net_, reg, incoming);
    pairs_ += reg_pairs_[reg];
  }
}

std::size_t PureViolationIndex::register_pair_count(
    const Rsn& net, ElemId reg, const TokenSet& incoming) const {
  TrustCategory t = a_.spec_.policy(net.elem(reg).module).trust;
  return incoming.count_common(a_.tokens_.bad(t));
}

std::size_t PureViolationIndex::violating_registers() const {
  std::size_t count = 0;
  for (ElemId reg : net_.registers()) {
    TokenSet incoming;
    for (ElemId in : net_.elem(reg).inputs)
      if (in != rsn::no_elem) incoming.merge(state_[in]);
    if (a_.violates(net_, reg, incoming)) ++count;
  }
  return count;
}

std::size_t PureViolationIndex::delta_analysis(const Rsn& trial,
                                               Scratch& s) const {
  count_delta_query();
  const std::size_t n = trial.num_elements();
  if (s.state.size() < n) {
    s.state.resize(n);
    s.affected_mark.resize(n, 0);
    s.pending.resize(n, 0);
    s.local_succ.resize(n);
  }
  if (++s.epoch == 0) {
    std::fill(s.affected_mark.begin(), s.affected_mark.end(), 0u);
    s.epoch = 1;
  }

  // Affected = forward closure of the elements whose input lists changed
  // (including elements that exist only in the trial). Everything else
  // keeps its committed attribute set: the propagation is a function of
  // the input lists and upstream values, both unchanged. The closure
  // expands over the *committed* fanout, which over-approximates: a
  // trial-removed edge only adds elements that recompute to their old
  // value, and every trial-added edge ends in a changed consumer — a
  // closure seed already.
  s.affected.clear();
  s.stack.clear();
  auto discover = [&](ElemId id) {
    if (s.affected_mark[id] == s.epoch) return;
    s.affected_mark[id] = s.epoch;
    s.affected.push_back(id);
    s.stack.push_back(id);
  };
  for (ElemId id = 0; id < n; ++id) {
    if (id >= net_.num_elements() ||
        trial.elem(id).inputs != net_.elem(id).inputs)
      discover(id);
  }
  while (!s.stack.empty()) {
    ElemId id = s.stack.back();
    s.stack.pop_back();
    if (id >= fanout_.size()) continue;  // trial-only: consumers are seeds
    for (ElemId t : fanout_[id]) discover(t);
  }

  // Kahn order restricted to the affected subgraph: in-degrees and
  // successor lists only over affected-to-affected trial edges, so this
  // stage costs O(affected region), not O(network). Unaffected inputs
  // are ready constants (the committed value).
  for (std::size_t id : s.affected) {
    s.pending[id] = 0;
    s.local_succ[id].clear();
  }
  for (std::size_t id : s.affected) {
    for (ElemId in : trial.elem(static_cast<ElemId>(id)).inputs) {
      if (in == rsn::no_elem || s.affected_mark[in] != s.epoch) continue;
      s.local_succ[in].push_back(static_cast<ElemId>(id));
      ++s.pending[id];
    }
  }
  auto value_of = [&](ElemId id) -> const TokenSet& {
    return s.affected_mark[id] == s.epoch ? s.state[id] : state_[id];
  };
  s.ready.clear();
  for (std::size_t id : s.affected)
    if (s.pending[id] == 0) s.ready.push_back(static_cast<ElemId>(id));
  while (!s.ready.empty()) {
    ElemId id = s.ready.back();
    s.ready.pop_back();
    s.state[id] = TokenSet{};
    const rsn::Element& e = trial.elem(id);
    for (ElemId in : e.inputs)
      if (in != rsn::no_elem) s.state[id].merge(value_of(in));
    if (e.kind == ElemKind::Register) {
      int tok = a_.register_token(trial, id);
      if (tok >= 0) s.state[id].set(static_cast<std::size_t>(tok));
    }
    for (ElemId t : s.local_succ[id])
      if (--s.pending[t] == 0) s.ready.push_back(t);
  }

  // Pair-count delta over affected registers (registers are never
  // created by repairs, so reg_pairs_ always has the old contribution).
  std::ptrdiff_t delta = 0;
  for (std::size_t id : s.affected) {
    const rsn::Element& e = trial.elem(static_cast<ElemId>(id));
    if (e.kind != ElemKind::Register) continue;
    TokenSet incoming;
    for (ElemId in : e.inputs)
      if (in != rsn::no_elem) incoming.merge(value_of(in));
    delta += static_cast<std::ptrdiff_t>(
        register_pair_count(trial, static_cast<ElemId>(id), incoming));
    delta -= static_cast<std::ptrdiff_t>(reg_pairs_[id]);
  }
  return static_cast<std::size_t>(static_cast<std::ptrdiff_t>(pairs_) +
                                  delta);
}

std::size_t PureViolationIndex::eval_trial(const Rsn& trial,
                                           Scratch& scratch) const {
  return delta_analysis(trial, scratch);
}

void PureViolationIndex::commit(const Rsn& network) {
  Scratch& s = commit_scratch_;
  const std::size_t new_pairs = delta_analysis(network, s);
  if (state_.size() < network.num_elements())
    state_.resize(network.num_elements());
  if (reg_pairs_.size() < network.num_elements())
    reg_pairs_.resize(network.num_elements(), 0);
  for (std::size_t id : s.affected) state_[id] = s.state[id];
  for (std::size_t id : s.affected) {
    const rsn::Element& e = network.elem(static_cast<ElemId>(id));
    if (e.kind != ElemKind::Register) continue;
    TokenSet incoming;
    for (ElemId in : e.inputs)
      if (in != rsn::no_elem) incoming.merge(state_[in]);
    reg_pairs_[id] =
        register_pair_count(network, static_cast<ElemId>(id), incoming);
  }
  pairs_ = new_pairs;
  net_ = network;
  fanout_ = build_elem_fanout(net_);
}

std::optional<PureViolation> PureViolationIndex::find_violation() const {
  // Mirror of PureScanAnalyzer::find_violation, answered from the
  // committed propagation (same register order, same backward BFS).
  for (ElemId reg : net_.registers()) {
    TokenSet incoming;
    for (ElemId in : net_.elem(reg).inputs)
      if (in != rsn::no_elem) incoming.merge(state_[in]);
    TrustCategory t = a_.spec_.policy(net_.elem(reg).module).trust;
    int tok = incoming.first_common(a_.tokens_.bad(t));
    if (tok < 0) continue;

    PureViolation v;
    v.victim = reg;
    v.token = tok;
    std::vector<ElemId> parent(net_.num_elements(), rsn::no_elem);
    std::vector<bool> seen(net_.num_elements(), false);
    std::vector<ElemId> queue;
    seen[reg] = true;
    queue.push_back(reg);
    ElemId origin = rsn::no_elem;
    for (std::size_t qi = 0; qi < queue.size() && origin == rsn::no_elem;
         ++qi) {
      ElemId cur = queue[qi];
      for (ElemId in : net_.elem(cur).inputs) {
        if (in == rsn::no_elem || seen[in]) continue;
        if (!state_[in].test(static_cast<std::size_t>(tok))) continue;
        seen[in] = true;
        parent[in] = cur;
        if (net_.elem(in).kind == ElemKind::Register &&
            a_.register_token(net_, in) == tok) {
          origin = in;
          break;
        }
        queue.push_back(in);
      }
    }
    assert(origin != rsn::no_elem && "token present but no origin found");
    v.origin = origin;
    for (ElemId cur = origin; cur != rsn::no_elem; cur = parent[cur])
      v.path.push_back(cur);
    return v;
  }
  return std::nullopt;
}

}  // namespace rsnsec::security
