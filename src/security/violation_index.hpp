#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rsn/access.hpp"
#include "rsn/rsn.hpp"
#include "security/hybrid.hpp"
#include "security/pure.hpp"
#include "security/spec.hpp"

namespace rsnsec::security {

/// Incremental violation state of the hybrid analyzer over one evolving
/// network (the resolution loop's delta engine).
///
/// The index materializes, once, everything HybridAnalyzer recomputes
/// from scratch per query: the inter-segment chains of every register,
/// the node-level RSN edges they induce, the token-propagation fixpoint,
/// and the per-node violating-pair counts. Structural edits then only
/// invalidate the chains of *dirty* registers (those whose mux-fanout
/// region a changed connection touches) and the fixpoint values of a
/// small re-solve *region*: the forward closure, in the edited graph, of
/// the removed inter-segment edges' heads, pruned at nodes whose
/// committed value is disjoint from everything a removed edge carried
/// (such nodes can only gain tokens, never lose them — and any support
/// path of a lost token consists of nodes all carrying it, so every node
/// that can actually lose one is inside the region). Region nodes are
/// reset and re-solved against committed boundary values; token *gains*
/// (from added edges or grown region values) propagate monotonically
/// beyond the region, lazily pulling grown nodes into the overlay.
/// Because the start assignment is pointwise below the edited network's
/// least fixpoint and every retained committed token keeps an untouched
/// support path, the chaotic iteration converges exactly to that least
/// fixpoint — bit-identical to a from-scratch propagation, for any
/// evaluation order. This is what makes the incremental and
/// `--no-incremental` resolution paths produce identical change logs,
/// stats and networks.
///
/// eval_trial is const and touches only caller-owned scratch, so
/// independent candidate cuts are evaluated concurrently (one scratch
/// per thread/chunk); commit folds an applied change into the committed
/// state.
class HybridViolationIndex {
 public:
  /// Builds the full index for `network` (one "index rebuild").
  HybridViolationIndex(const HybridAnalyzer& analyzer,
                       const rsn::Rsn& network);

  /// Committed violating-pair count (== analyzer.count_violating_pairs
  /// of the committed network).
  std::size_t pairs() const { return pairs_; }

  /// Committed violating-register count (== count_violating_registers).
  std::size_t violating_registers() const;

  /// Reusable buffers of one trial evaluation. Sized lazily; reuse one
  /// instance across many eval_trial calls on the same thread to avoid
  /// per-trial allocation. Never share an instance between threads.
  struct Scratch {
    std::vector<TokenSet> state;
    std::vector<std::uint32_t> affected_mark;
    std::vector<std::uint32_t> queued_mark;
    std::vector<std::uint32_t> dirty_from_mark;
    /// Nodes whose committed value intersects the trial's possibly-lost
    /// token set (the only nodes whose values can shrink, and the only
    /// boundary predecessors worth pulling at region re-init).
    std::vector<std::uint32_t> holds_lost_mark;
    /// Element-level marks (the node-level marks above are indexed by
    /// propagation node): changed consumers, and the visited sets of the
    /// backward chain walks under the committed / trial structure.
    std::vector<std::uint32_t> changed_mark;
    std::vector<std::uint32_t> vis_old_mark;
    std::vector<std::uint32_t> vis_new_mark;
    std::uint32_t epoch = 0;
    std::vector<std::size_t> affected;
    std::vector<std::size_t> worklist;
    std::vector<rsn::ElemId> endpoints;
    std::vector<rsn::ElemId> chain_stack;
    /// Trial-only fanout entries, (source, (consumer, port)) sorted by
    /// source then FanoutIndex order; patched over the committed fanout.
    std::vector<std::pair<rsn::ElemId, std::pair<rsn::ElemId, std::size_t>>>
        fanout_adds;
    std::vector<std::pair<rsn::ElemId, std::size_t>> fanout_buf;
    std::vector<rsn::ElemId> dirty_regs;
    std::vector<std::vector<HybridAnalyzer::RsnEdge>> dirty_chains;
    /// Node-level (from, to) inter-segment edges of the dirty registers:
    /// committed on the left, trial on the right.
    std::vector<std::pair<std::size_t, std::size_t>> old_edges;
    std::vector<std::pair<std::size_t, std::size_t>> new_edges;
    std::vector<std::pair<std::size_t, std::size_t>> sorted_old;
    std::vector<std::pair<std::size_t, std::size_t>> sorted_new;
    std::vector<std::pair<std::size_t, std::size_t>> edge_removed;
    std::vector<std::pair<std::size_t, std::size_t>> edge_added;
  };

  /// Violating-pair count of `trial`, a network derived from the
  /// committed one by Rewirer edits, computed as a delta query against
  /// the committed state. Thread-safe (const; all mutation in `scratch`).
  std::size_t eval_trial(const rsn::Rsn& trial, Scratch& scratch) const;

  /// Folds the applied change into the committed state: `network` is the
  /// committed network after Rewirer edits. Incremental (same delta
  /// machinery as eval_trial, then written back).
  void commit(const rsn::Rsn& network);

  /// HybridAnalyzer::find_violation of the committed network, answered
  /// from the committed fixpoint instead of a fresh propagation. The
  /// witnessing path and cut candidates are bit-identical to the from-
  /// scratch result (same predecessor construction order, same state).
  std::optional<HybridAnalyzer::Violation> find_violation() const;

 private:
  const HybridAnalyzer& a_;
  rsn::Rsn net_;  ///< committed snapshot (trial diffs run against it)
  std::vector<TokenSet> state_;          ///< committed fixpoint, per node
  std::vector<std::size_t> node_pairs_;  ///< violating pairs per node
  std::size_t pairs_ = 0;
  /// Inter-segment chains per source register (indexed by ElemId; empty
  /// for non-registers). Concatenated in registers() order these equal
  /// HybridAnalyzer::build_rsn_edges of the committed network.
  std::vector<std::vector<HybridAnalyzer::RsnEdge>> reg_chains_;
  /// Node-level RSN adjacency induced by the chains (duplicates kept —
  /// two chains between the same register pair yield two entries; merges
  /// are idempotent so only multiplicity bookkeeping cares).
  std::vector<std::vector<std::size_t>> rsn_succ_;
  std::vector<std::vector<std::size_t>> rsn_pred_;
  /// Static + circuit successors per node, flattened to CSR form (fixed
  /// across rewirings; node n's successors are
  /// fixed_succ_[fixed_succ_off_[n] .. fixed_succ_off_[n+1]]).
  std::vector<std::uint32_t> fixed_succ_off_;
  std::vector<std::uint32_t> fixed_succ_;
  /// Element-level fanout of the committed network; trial fanout is this
  /// plus the patch derived from the trial's changed consumers.
  rsn::FanoutIndex fanout_;
  Scratch commit_scratch_;

  std::size_t node_pair_count(std::size_t node, const TokenSet& st) const;
  std::size_t from_node(rsn::ElemId reg) const;
  /// Merged trial fanout of `x` into s.fanout_buf: committed entries of
  /// unchanged consumers + the trial-only patch, in FanoutIndex order.
  const std::vector<std::pair<rsn::ElemId, std::size_t>>& trial_fanout_of(
      rsn::ElemId x, Scratch& s) const;
  /// Runs the delta analysis of `trial` against the committed state into
  /// `s`: dirty registers, rebuilt chains, affected set (s.affected,
  /// valid s.state entries) and the resulting pair-count delta (returned
  /// added to pairs_).
  std::size_t delta_analysis(const rsn::Rsn& trial, Scratch& s) const;
};

/// Incremental violation state of the pure-path analyzer: the committed
/// element-granular token propagation plus per-register violating-pair
/// contributions, maintained under structural deltas. An edit invalidates
/// exactly the elements whose input lists changed and their forward
/// closure; everything upstream keeps its committed attribute set (the
/// propagation is a function over a DAG, so the restriction argument is
/// immediate). Same determinism contract as HybridViolationIndex.
class PureViolationIndex {
 public:
  PureViolationIndex(const PureScanAnalyzer& analyzer,
                     const rsn::Rsn& network);

  std::size_t pairs() const { return pairs_; }
  std::size_t violating_registers() const;

  /// See HybridViolationIndex::Scratch.
  struct Scratch {
    std::vector<TokenSet> state;
    std::vector<std::uint32_t> affected_mark;
    std::uint32_t epoch = 0;
    std::vector<std::size_t> affected;
    std::vector<rsn::ElemId> stack;
    /// Affected-subgraph Kahn state: in-degrees and successor lists are
    /// written (and cleared) only for affected elements, so one trial's
    /// cost is proportional to the affected region, not the network.
    std::vector<std::uint32_t> pending;
    std::vector<std::vector<rsn::ElemId>> local_succ;
    std::vector<rsn::ElemId> ready;
  };

  std::size_t eval_trial(const rsn::Rsn& trial, Scratch& scratch) const;
  void commit(const rsn::Rsn& network);

  /// PureScanAnalyzer::find_violation of the committed network, answered
  /// from the committed propagation (bit-identical witness).
  std::optional<PureViolation> find_violation() const;

 private:
  const PureScanAnalyzer& a_;
  rsn::Rsn net_;                        ///< committed snapshot
  std::vector<TokenSet> state_;         ///< out[] per element
  std::vector<std::size_t> reg_pairs_;  ///< per element (registers only)
  std::size_t pairs_ = 0;
  /// Committed element fanout (consumers per element, duplicates per
  /// port). Used only for the affected-set closure, where edges that a
  /// trial removed merely over-approximate (any trial-added edge has a
  /// changed consumer, which is a closure seed already).
  std::vector<std::vector<rsn::ElemId>> fanout_;
  Scratch commit_scratch_;

  std::size_t register_pair_count(const rsn::Rsn& net, rsn::ElemId reg,
                                  const TokenSet& incoming) const;
  std::size_t delta_analysis(const rsn::Rsn& trial, Scratch& s) const;
};

}  // namespace rsnsec::security
