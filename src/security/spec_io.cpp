#include "security/spec_io.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace rsnsec::security {

namespace {

/// Upper bound for numeric module indices in spec files. A spec's
/// largest index sizes the policy table, so an absurd index (typo or
/// hostile input) must be a parse error, not a multi-gigabyte
/// allocation.
constexpr std::uint64_t kMaxModuleIndex = 1u << 20;

}  // namespace

void write_spec(std::ostream& os, const SecuritySpec& spec,
                const std::vector<std::string>& module_names) {
  os << "categories " << spec.num_categories() << "\n";
  const std::uint32_t all =
      spec.num_categories() >= 32 ? 0xffffffffu
                                  : ((1u << spec.num_categories()) - 1u);
  for (std::size_t m = 0; m < spec.num_modules(); ++m) {
    const ModulePolicy& p = spec.policy(static_cast<netlist::ModuleId>(m));
    if ((p.accepted & all) == all && p.trust == spec.num_categories() - 1)
      continue;  // default policy: omit
    os << "module ";
    if (m < module_names.size() && !module_names[m].empty()) {
      os << module_names[m];
    } else {
      os << m;
    }
    os << " trust " << static_cast<unsigned>(p.trust) << " accepts ";
    bool first = true;
    for (std::size_t c = 0; c < spec.num_categories(); ++c) {
      if ((p.accepted >> c) & 1u) {
        os << (first ? "" : ",") << c;
        first = false;
      }
    }
    os << "\n";
  }
}

SecuritySpec read_spec(std::istream& is,
                       const std::vector<std::string>& module_names) {
  std::map<std::string, std::size_t, std::less<>> by_name;
  for (std::size_t i = 0; i < module_names.size(); ++i)
    by_name[module_names[i]] = i;

  struct Entry {
    std::size_t module;
    TrustCategory trust;
    std::uint32_t accepted;
  };
  std::vector<Entry> entries;
  std::size_t categories = 0;
  std::size_t max_module = module_names.size();

  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& msg) -> SpecParseError {
    return SpecParseError(line_no, msg);
  };
  // Guarded numeric parse: a hostile or truncated file must surface as a
  // line-numbered diagnostic, never as an uncaught std::stoul exception.
  auto parse_num = [&](const std::string& tok,
                       const char* what) -> std::uint64_t {
    std::optional<std::uint64_t> v = parse_u64(tok);
    if (!v)
      throw fail(std::string("invalid ") + what + " '" + tok +
                 "' (expected a non-negative integer)");
    return *v;
  };
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    // split_ws: tabs and runs of spaces separate tokens just like a
    // single space, so indented or column-aligned specs parse the same.
    std::vector<std::string> tok = split_ws(sv);
    if (tok[0] == "categories") {
      if (tok.size() != 2) throw fail("expected: categories <n>");
      std::uint64_t n = parse_num(tok[1], "category count");
      if (n == 0 || n > max_categories)
        throw fail("category count out of range");
      categories = static_cast<std::size_t>(n);
    } else if (tok[0] == "module") {
      if (tok.size() != 6 || tok[2] != "trust" || tok[4] != "accepts")
        throw fail(
            "expected: module <name|index> trust <cat> accepts <list>");
      if (categories == 0)
        throw fail("'categories' must come before 'module' lines");
      Entry e{};
      auto it = by_name.find(tok[1]);
      if (it != by_name.end()) {
        e.module = it->second;
      } else if (!tok[1].empty() &&
                 std::all_of(tok[1].begin(), tok[1].end(), [](char c) {
                   return c >= '0' && c <= '9';
                 })) {
        std::uint64_t m = parse_num(tok[1], "module index");
        if (m > kMaxModuleIndex)
          throw fail("module index " + tok[1] + " out of range (max " +
                     std::to_string(kMaxModuleIndex) + ")");
        e.module = static_cast<std::size_t>(m);
      } else {
        throw fail("unknown module '" + tok[1] + "'");
      }
      std::uint64_t trust = parse_num(tok[3], "trust category");
      if (trust >= categories) throw fail("trust category out of range");
      e.trust = static_cast<TrustCategory>(trust);
      for (const std::string& c : split(tok[5], ',')) {
        std::uint64_t cat = parse_num(c, "accepted category");
        if (cat >= categories) throw fail("accepted category out of range");
        e.accepted |= 1u << cat;
      }
      if (((e.accepted >> e.trust) & 1u) == 0)
        throw fail("module must accept its own trust category");
      max_module = std::max(max_module, e.module + 1);
      entries.push_back(e);
    } else {
      throw fail("unknown keyword '" + tok[0] + "'");
    }
  }
  if (categories == 0) throw fail("missing 'categories' line");

  SecuritySpec spec(max_module, categories);
  // Defaults: top trust, accept-all (fully permissive).
  const std::uint32_t all =
      categories >= 32 ? 0xffffffffu : ((1u << categories) - 1u);
  for (std::size_t m = 0; m < max_module; ++m)
    spec.set_policy(static_cast<netlist::ModuleId>(m),
                    static_cast<TrustCategory>(categories - 1), all);
  for (const Entry& e : entries)
    spec.set_policy(static_cast<netlist::ModuleId>(e.module), e.trust,
                    e.accepted);
  return spec;
}

}  // namespace rsnsec::security
