#include "security/spec_io.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace rsnsec::security {

void write_spec(std::ostream& os, const SecuritySpec& spec,
                const std::vector<std::string>& module_names) {
  os << "categories " << spec.num_categories() << "\n";
  const std::uint32_t all =
      spec.num_categories() >= 32 ? 0xffffffffu
                                  : ((1u << spec.num_categories()) - 1u);
  for (std::size_t m = 0; m < spec.num_modules(); ++m) {
    const ModulePolicy& p = spec.policy(static_cast<netlist::ModuleId>(m));
    if ((p.accepted & all) == all && p.trust == spec.num_categories() - 1)
      continue;  // default policy: omit
    os << "module ";
    if (m < module_names.size() && !module_names[m].empty()) {
      os << module_names[m];
    } else {
      os << m;
    }
    os << " trust " << static_cast<unsigned>(p.trust) << " accepts ";
    bool first = true;
    for (std::size_t c = 0; c < spec.num_categories(); ++c) {
      if ((p.accepted >> c) & 1u) {
        os << (first ? "" : ",") << c;
        first = false;
      }
    }
    os << "\n";
  }
}

SecuritySpec read_spec(std::istream& is,
                       const std::vector<std::string>& module_names) {
  std::map<std::string, std::size_t, std::less<>> by_name;
  for (std::size_t i = 0; i < module_names.size(); ++i)
    by_name[module_names[i]] = i;

  struct Entry {
    std::size_t module;
    TrustCategory trust;
    std::uint32_t accepted;
  };
  std::vector<Entry> entries;
  std::size_t categories = 0;
  std::size_t max_module = module_names.size();

  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& msg) -> std::runtime_error {
    return std::runtime_error("spec parse error at line " +
                              std::to_string(line_no) + ": " + msg);
  };
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    std::vector<std::string> tok = split(sv, ' ');
    if (tok[0] == "categories") {
      if (tok.size() != 2) throw fail("expected: categories <n>");
      categories = std::stoul(tok[1]);
      if (categories == 0 || categories > max_categories)
        throw fail("category count out of range");
    } else if (tok[0] == "module") {
      if (tok.size() != 6 || tok[2] != "trust" || tok[4] != "accepts")
        throw fail(
            "expected: module <name|index> trust <cat> accepts <list>");
      if (categories == 0)
        throw fail("'categories' must come before 'module' lines");
      Entry e{};
      auto it = by_name.find(tok[1]);
      if (it != by_name.end()) {
        e.module = it->second;
      } else if (!tok[1].empty() &&
                 std::all_of(tok[1].begin(), tok[1].end(), [](char c) {
                   return c >= '0' && c <= '9';
                 })) {
        e.module = std::stoul(tok[1]);
      } else {
        throw fail("unknown module '" + tok[1] + "'");
      }
      unsigned long trust = std::stoul(tok[3]);
      if (trust >= categories) throw fail("trust category out of range");
      e.trust = static_cast<TrustCategory>(trust);
      for (const std::string& c : split(tok[5], ',')) {
        unsigned long cat = std::stoul(c);
        if (cat >= categories) throw fail("accepted category out of range");
        e.accepted |= 1u << cat;
      }
      if (((e.accepted >> e.trust) & 1u) == 0)
        throw fail("module must accept its own trust category");
      max_module = std::max(max_module, e.module + 1);
      entries.push_back(e);
    } else {
      throw fail("unknown keyword '" + tok[0] + "'");
    }
  }
  if (categories == 0) throw fail("missing 'categories' line");

  SecuritySpec spec(max_module, categories);
  // Defaults: top trust, accept-all (fully permissive).
  const std::uint32_t all =
      categories >= 32 ? 0xffffffffu : ((1u << categories) - 1u);
  for (std::size_t m = 0; m < max_module; ++m)
    spec.set_policy(static_cast<netlist::ModuleId>(m),
                    static_cast<TrustCategory>(categories - 1), all);
  for (const Entry& e : entries)
    spec.set_policy(static_cast<netlist::ModuleId>(e.module), e.trust,
                    e.accepted);
  return spec;
}

}  // namespace rsnsec::security
