#pragma once

#include <optional>
#include <vector>

#include "rsn/rsn.hpp"
#include "security/rewire.hpp"
#include "security/spec.hpp"

namespace rsnsec::security {

class PureViolationIndex;

/// A detected security violation over a pure scan path: data of some
/// register carrying `token` reaches register `victim` purely over the
/// scan infrastructure; `path` is one witnessing element path from a
/// contributing origin register to the victim.
struct PureViolation {
  rsn::ElemId origin = rsn::no_elem;
  rsn::ElemId victim = rsn::no_elem;
  int token = -1;
  std::vector<rsn::ElemId> path;  ///< origin ... victim (inclusive)
};

/// Statistics of one pure-path detect-and-resolve run.
struct PureStats {
  std::size_t initial_violating_registers = 0;  ///< Table I col. 5 input
  std::size_t initial_violating_pairs = 0;
  int applied_changes = 0;  ///< Table I "pure" changes column
  int rewire_operations = 0;
  int fallback_isolations = 0;
};

/// Detection and resolution of security violations over *pure* scan paths
/// (reimplementation of [17], which the paper applies first — Fig. 2).
///
/// Propagation works at scan-register granularity, which is exact for
/// pure paths: shifting moves data through every flip-flop of every
/// downstream register. Security attributes (tokens) are propagated
/// forward from each register over all mux inputs (any-configuration
/// over-approximation); a violation exists at register y if a token with
/// accepted-mask lacking trust(y) reaches y.
class PureScanAnalyzer {
 public:
  PureScanAnalyzer(const SecuritySpec& spec, const TokenTable& tokens);

  /// Propagated attribute set per element (indexed by ElemId) for the
  /// current topology of `network`.
  std::vector<TokenSet> propagate(const rsn::Rsn& network) const;

  /// Number of registers where at least one violating token arrives.
  std::size_t count_violating_registers(const rsn::Rsn& network) const;

  /// Number of (victim register, token) violating pairs.
  std::size_t count_violating_pairs(const rsn::Rsn& network) const;

  /// Finds one violation (with a witnessing path) or nullopt if secure.
  std::optional<PureViolation> find_violation(const rsn::Rsn& network) const;

  /// Repeatedly detects and resolves violations until the network is
  /// secure w.r.t. pure scan paths. Modifies `network` in place; appends
  /// applied changes to `log`; invokes `on_change` after every applied
  /// change (see ChangeCallback). Returns run statistics.
  ///
  /// ResolveOptions selects between the incremental engine (delta
  /// queries against a PureViolationIndex, parallel candidate trials)
  /// and the from-scratch oracle path; both produce bit-identical change
  /// logs, stats and final networks.
  PureStats detect_and_resolve(
      rsn::Rsn& network, std::vector<AppliedChange>* log = nullptr,
      ResolutionPolicy policy = ResolutionPolicy::BestGlobal,
      const ChangeCallback& on_change = {},
      const ResolveOptions& resolve_options = {});

 private:
  friend class PureViolationIndex;
  const SecuritySpec& spec_;
  const TokenTable& tokens_;

  int register_token(const rsn::Rsn& network, rsn::ElemId reg) const;
  bool violates(const rsn::Rsn& network, rsn::ElemId reg,
                const TokenSet& incoming) const;
};

}  // namespace rsnsec::security
