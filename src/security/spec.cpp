#include "security/spec.hpp"

#include <bit>
#include <stdexcept>

namespace rsnsec::security {

SecuritySpec::SecuritySpec(std::size_t num_modules,
                           std::size_t num_categories)
    : policies_(num_modules), num_categories_(num_categories) {
  if (num_categories == 0 || num_categories > max_categories)
    throw std::invalid_argument("num_categories must be in [1, 16]");
  // Unannotated modules default to the TOP trust category with
  // fully-permissive data: they are trusted infrastructure, neither a
  // source of sensitive data nor a suspect observer. (Matching the
  // defaults of the spec file format, security/spec_io.)
  for (ModulePolicy& p : policies_) {
    p.trust = static_cast<TrustCategory>(num_categories - 1);
  }
  permissive_.trust = static_cast<TrustCategory>(num_categories - 1);
}

void SecuritySpec::set_policy(netlist::ModuleId m, TrustCategory trust,
                              std::uint32_t accepted_mask) {
  if (m < 0 || static_cast<std::size_t>(m) >= policies_.size())
    throw std::out_of_range("module id out of range");
  policies_[static_cast<std::size_t>(m)] = {trust, accepted_mask};
}

const ModulePolicy& SecuritySpec::policy(netlist::ModuleId m) const {
  if (m < 0 || static_cast<std::size_t>(m) >= policies_.size())
    return permissive_;
  return policies_[static_cast<std::size_t>(m)];
}

bool SecuritySpec::validate(std::string* error) const {
  for (std::size_t m = 0; m < policies_.size(); ++m) {
    const ModulePolicy& p = policies_[m];
    if (p.trust >= num_categories_) {
      if (error)
        *error = "module " + std::to_string(m) +
                 ": trust category out of range";
      return false;
    }
    if (((p.accepted >> p.trust) & 1u) == 0) {
      if (error)
        *error = "module " + std::to_string(m) +
                 " does not accept its own trust category";
      return false;
    }
  }
  return true;
}

int TokenSet::first_common(const TokenSet& o) const {
  for (std::size_t i = 0; i < capacity; ++i) {
    if (test(i) && o.test(i)) return static_cast<int>(i);
  }
  return -1;
}

std::size_t TokenSet::count_common(const TokenSet& o) const {
  std::size_t c = 0;
  for (std::size_t k = 0; k < w_.size(); ++k)
    c += static_cast<std::size_t>(std::popcount(w_[k] & o.w_[k]));
  return c;
}

TokenTable::TokenTable(const SecuritySpec& spec, std::size_t num_modules) {
  module_token_.assign(num_modules, -1);
  const std::uint32_t all_mask =
      (spec.num_categories() >= 32)
          ? 0xffffffffu
          : ((1u << spec.num_categories()) - 1u);
  for (std::size_t m = 0; m < num_modules; ++m) {
    std::uint32_t mask =
        spec.policy(static_cast<netlist::ModuleId>(m)).accepted & all_mask;
    if (mask == all_mask) continue;  // fully permissive: no token needed
    int id = -1;
    for (std::size_t k = 0; k < masks_.size(); ++k) {
      if (masks_[k] == mask) {
        id = static_cast<int>(k);
        break;
      }
    }
    if (id < 0) {
      if (masks_.size() >= TokenSet::capacity)
        throw std::runtime_error("too many distinct sensitivity classes");
      id = static_cast<int>(masks_.size());
      masks_.push_back(mask);
    }
    module_token_[m] = id;
  }
  bad_.resize(spec.num_categories());
  for (std::size_t t = 0; t < spec.num_categories(); ++t) {
    for (std::size_t k = 0; k < masks_.size(); ++k) {
      if (((masks_[k] >> t) & 1u) == 0) bad_[t].set(k);
    }
  }
}

int TokenTable::token_of(netlist::ModuleId m) const {
  if (m < 0 || static_cast<std::size_t>(m) >= module_token_.size()) return -1;
  return module_token_[static_cast<std::size_t>(m)];
}

}  // namespace rsnsec::security
