#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rsn/rsn.hpp"

namespace rsnsec {
class ThreadPool;
}

namespace rsnsec::security {

/// Candidate-selection strategy of the resolution loops (pure and
/// hybrid). [17] generates multiple repair candidates per violation and
/// applies the cheapest; the strategies below trade repair quality
/// against trial-evaluation cost (see bench/ablation_resolution).
enum class ResolutionPolicy : std::uint8_t {
  /// Evaluate every (cut, reconnect) candidate; apply the one leaving the
  /// fewest violating pairs, breaking ties by wiring cost. Default.
  BestGlobal,
  /// Apply the first candidate that reduces the violating-pair count
  /// (path order). Fewer trial propagations, possibly more changes.
  FirstImproving,
  /// Like FirstImproving, but try the reconnect-to-scan-in variant first
  /// (aggressively isolating upstream flow).
  PreferScanIn
};

/// Execution options of the detect-and-resolve loops (pure and hybrid).
struct ResolveOptions {
  /// Maintain violation state in a ViolationIndex and evaluate candidate
  /// cuts as deltas against it (parallel across candidates). When false,
  /// every query recomputes reachability from scratch — the oracle path
  /// (`--no-incremental`). Both paths produce bit-identical change logs,
  /// stats and final networks.
  bool incremental = true;
  /// Worker threads for candidate trial evaluation (incremental path
  /// only). 0 = auto: RSNSEC_JOBS if set, else hardware concurrency.
  /// Any value yields bit-identical results (in-order selection).
  /// Ignored when `pool` is set.
  std::size_t num_threads = 0;
  /// External thread pool for the trial evaluation (not owned; must
  /// outlive the resolve call). When set, the loops run on it instead of
  /// constructing a private pool — the serve scheduler shares one pool
  /// across every concurrent request, so total worker threads stay
  /// bounded by the machine, not by tenant count. Safe because
  /// ThreadPool's loops are caller-participating and independent batches
  /// from different requests interleave without blocking each other.
  ThreadPool* pool = nullptr;
};

/// One concrete RSN connection (driver `from` feeding input `port` of
/// `to`), the unit the resolution step cuts.
struct Connection {
  rsn::ElemId from = rsn::no_elem;
  rsn::ElemId to = rsn::no_elem;
  std::size_t port = 0;

  bool operator==(const Connection&) const = default;
};

/// Record of one applied repair (for reporting and the #Applied-Changes
/// columns of Table I).
struct AppliedChange;

/// Observer the resolution loops invoke after each applied change, with
/// the already-modified network. SecureFlowTool uses it to run the lint
/// invariant pass after every rewire (PipelineOptions::verify_invariants);
/// exceptions thrown from the callback abort the resolution.
using ChangeCallback =
    std::function<void(const rsn::Rsn&, const AppliedChange&)>;

struct AppliedChange {
  enum class Kind : std::uint8_t { CutConnection, IsolateRegister };
  Kind kind = Kind::CutConnection;
  Connection cut;             ///< for CutConnection
  rsn::ElemId isolated = rsn::no_elem;  ///< for IsolateRegister
  int rewire_operations = 0;  ///< individual wiring edits performed
  std::string note;
};

/// Structural repair operations on an RSN, implementing the reconnection
/// rules of Sec. III-D:
///  - segments never dangle: a register (or the scan-out port) that loses
///    its driver is reconnected to a pre-cut multi-cycle predecessor that
///    does not create a cycle, else to the scan-in port;
///  - an element that loses all fanout is attached to a pre-cut
///    multi-cycle successor (adding a mux input, or inserting a fresh
///    2:1 mux in front of a register), else routed to the scan-out port;
///  - the scan network stays cycle-free and keeps every scan register.
class Rewirer {
 public:
  /// Cuts `c` from `network` and repairs both sides. Returns the number of
  /// individual wiring operations performed (>= 1).
  ///
  /// `reconnect_hint` selects the new driver for a dangling to-side input:
  /// by default the first multi-cycle predecessor that keeps the network
  /// acyclic is chosen; passing the scan-in port (or another element)
  /// forces that driver instead. The resolution loop evaluates both
  /// variants as separate repair candidates ([17]: "multiple candidates
  /// to resolve that violation were generated and evaluated").
  static int cut_connection(rsn::Rsn& network, const Connection& c,
                            rsn::ElemId reconnect_hint = rsn::no_elem);

  /// True if cut_connection(network, c, hint) produces the same network
  /// for every hint (the cut shrinks a multi-input mux and does not
  /// orphan its source, so no dangling-input repair consults the hint).
  /// The selection loops evaluate such cuts once instead of per hint.
  static bool cut_is_hint_insensitive(const rsn::Rsn& network,
                                      const Connection& c);

  /// Removes every outgoing connection of register `reg` and routes its
  /// output directly to the scan-out port; downstream dangling inputs are
  /// repaired. This is the guaranteed-progress fallback of the resolution
  /// loop: after isolation no data can leave `reg` over the scan
  /// infrastructure. Returns the number of wiring operations.
  static int isolate_register_output(rsn::Rsn& network, rsn::ElemId reg);

  /// All current connections of `network`.
  static std::vector<Connection> all_connections(const rsn::Rsn& network);

  /// Outcome of trial-evaluating repair candidates.
  struct Selection {
    bool found = false;
    Connection cut;
    rsn::ElemId reconnect_hint = rsn::no_elem;
    std::size_t residual_pairs = 0;
    int operations = 0;
  };

  /// Trial-evaluates cutting each candidate (with both reconnection
  /// variants) against `count_pairs` and selects per `policy`. Only
  /// candidates that strictly reduce the violating-pair count below
  /// `current_pairs` qualify.
  static Selection select_cut(
      const rsn::Rsn& network, const std::vector<Connection>& candidates,
      const std::function<std::size_t(const rsn::Rsn&)>& count_pairs,
      std::size_t current_pairs, ResolutionPolicy policy);

  /// Counts the violating pairs of one trial network. Instances returned
  /// by a TrialCounterFactory may carry per-chunk scratch state; each
  /// instance is used by one thread at a time.
  using TrialCounter = std::function<std::size_t(const rsn::Rsn&)>;
  /// Called once per work chunk of the parallel trial loop; the returned
  /// counter is reused for every trial of that chunk (scratch reuse).
  using TrialCounterFactory = std::function<TrialCounter()>;

  /// Parallel variant of select_cut: every (cut, reconnect) candidate is
  /// trial-evaluated concurrently on `pool`, then the selection scans the
  /// results in the same nested (candidate, hint) order as the sequential
  /// loop — so for every policy the returned Selection is identical to
  /// select_cut's. (FirstImproving/PreferScanIn evaluate trials past the
  /// one selected; only side-effect-free counters may observe that.)
  static Selection select_cut_parallel(
      const rsn::Rsn& network, const std::vector<Connection>& candidates,
      const TrialCounterFactory& make_counter, std::size_t current_pairs,
      ResolutionPolicy policy, ThreadPool& pool);

 private:
  static int repair_dangling_input(rsn::Rsn& network, rsn::ElemId to,
                                   std::size_t port,
                                   const std::vector<rsn::ElemId>& pre_preds,
                                   rsn::ElemId avoid, rsn::ElemId hint);
  static int repair_lost_fanout(rsn::Rsn& network, rsn::ElemId from,
                                const std::vector<rsn::ElemId>& pre_succs,
                                rsn::ElemId avoid);
  static int attach_to_scan_out_avoiding(rsn::Rsn& network, rsn::ElemId from,
                                         rsn::ElemId avoid);
};

}  // namespace rsnsec::security
