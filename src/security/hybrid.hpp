#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dep/analyzer.hpp"
#include "netlist/netlist.hpp"
#include "rsn/access.hpp"
#include "rsn/rsn.hpp"
#include "security/rewire.hpp"
#include "security/spec.hpp"

namespace rsnsec::security {

class HybridViolationIndex;

/// Outcome of the scan-infrastructure-independent checks (Sec. III-B plus
/// the intra-segment extension documented in DESIGN.md). Violations of
/// these classes cannot be removed by rewiring the RSN.
struct StaticReport {
  /// Circuit-logic-only violations: data of a too-confidential module is
  /// path-dependent into an untrusted module purely through circuit logic
  /// (Sec. III-B). Requires redesigning the circuit.
  bool insecure_logic = false;
  /// Violations through a single register's own capture/shift/update flow
  /// (confidential data captured at FF i, updated out at FF j >= i into an
  /// untrusted sink). Requires redesigning the register, not the RSN.
  bool intra_segment = false;
  std::vector<std::string> details;

  bool clean() const { return !insecure_logic && !intra_segment; }
};

/// Statistics of one hybrid detect-and-resolve run.
struct HybridStats {
  std::size_t initial_violating_registers = 0;
  std::size_t initial_violating_pairs = 0;
  int applied_changes = 0;  ///< Table I "hybrid" changes column
  int rewire_operations = 0;
  int fallback_isolations = 0;
};

/// Detection and resolution of security violations over *hybrid* scan
/// paths — paths through both the RSN and the underlying circuit logic
/// (the paper's contribution, Sec. III-C / III-D).
///
/// The analyzer works at flip-flop granularity: its propagation graph has
/// one node per scan flip-flop and one per (non-bridged) circuit
/// flip-flop. Static edges — intra-register shift order, capture-cone
/// dependencies, update connections and the multi-cycle circuit closure —
/// are built once from the dependency analysis and remain valid across
/// all RSN rewirings; the RSN inter-segment edges are recomputed from the
/// current network on every propagation ("the dependencies are calculated
/// once ... without RSN-internal connections", Sec. III-A). Tokens
/// propagate only over path-dependent edges; only-structural connections
/// cannot transport data (Fig. 5's XOR reconvergence). Propagation is
/// cyclic ("omnidirectional", Sec. III-D) and runs to a fixed point,
/// recomputed from scratch after every applied change.
class HybridAnalyzer {
 public:
  HybridAnalyzer(const netlist::Netlist& nl,
                 const rsn::Rsn& layout_network,
                 const dep::DependencyAnalyzer& deps,
                 const SecuritySpec& spec, const TokenTable& tokens);

  /// Number of nodes of the propagation graph.
  std::size_t num_nodes() const { return owner_module_.size(); }

  /// Node index of scan FF `ff` of register `reg`.
  std::size_t scan_node(rsn::ElemId reg, std::size_t ff) const;

  /// Node index of circuit flip-flop `ff`.
  std::size_t circuit_node(netlist::NodeId ff) const;

  /// Human-readable node label (for reports).
  std::string node_name(std::size_t node) const;

  /// Runs the fixed-point token propagation. `network` provides the RSN
  /// inter-segment edges; pass nullptr to propagate over static edges
  /// only (scan-infrastructure-independent flows). `circuit_only`
  /// restricts edges to the circuit closure (Sec. III-B check).
  std::vector<TokenSet> propagate(const rsn::Rsn* network,
                                  bool circuit_only = false) const;

  /// Scan-infrastructure-independent violation checks; must be clean
  /// before detect_and_resolve is meaningful.
  StaticReport check_static() const;

  /// Number of (node, token) violating pairs under the given propagation.
  std::size_t count_violating_pairs(const rsn::Rsn& network) const;

  /// Registers with at least one violating scan flip-flop.
  std::size_t count_violating_registers(const rsn::Rsn& network) const;

  /// A violation over a hybrid (or pure) path in the combined graph.
  struct Violation {
    int token = -1;
    std::size_t victim_node = 0;
    std::vector<std::size_t> node_path;  ///< seed ... victim
    /// Concrete RSN connections crossed by the path (cut candidates).
    std::vector<Connection> rsn_connections;
  };

  /// Finds one violation with a witnessing path, or nullopt if secure.
  std::optional<Violation> find_violation(const rsn::Rsn& network) const;

  /// Repeatedly detects and resolves violations by cutting RSN
  /// connections until the network is secure. Requires check_static() to
  /// be clean. Modifies `network`; appends changes to `log`; invokes
  /// `on_change` after every applied change (see ChangeCallback).
  ///
  /// By default (ResolveOptions::incremental) violation state is kept in
  /// a HybridViolationIndex and maintained under deltas, with candidate
  /// cuts trial-evaluated in parallel; with incremental off every query
  /// recomputes the fixpoint from scratch (the oracle the incremental
  /// path is tested against). Both paths — at any thread count — produce
  /// bit-identical change logs, stats and final networks.
  HybridStats detect_and_resolve(
      rsn::Rsn& network, std::vector<AppliedChange>* log = nullptr,
      ResolutionPolicy policy = ResolutionPolicy::BestGlobal,
      const ChangeCallback& on_change = {},
      const ResolveOptions& resolve_options = {});

 private:
  friend class HybridViolationIndex;
  const netlist::Netlist& nl_;
  const dep::DependencyAnalyzer& deps_;
  const SecuritySpec& spec_;
  const TokenTable& tokens_;

  // Node layout: [scan FFs by register, flattened][circuit FFs].
  std::vector<std::size_t> scan_base_;  // ElemId -> first node index
  std::vector<rsn::ElemId> node_reg_;   // scan node -> register
  std::vector<std::size_t> node_ff_;    // scan node -> ff index
  std::size_t circuit_base_ = 0;
  std::vector<netlist::ModuleId> owner_module_;  // per node
  std::vector<int> seed_token_;                  // per node, -1 = none

  // Static adjacency (node -> successor nodes), path-dependent edges only.
  std::vector<std::vector<std::size_t>> static_succ_;
  std::vector<std::vector<std::size_t>> circuit_succ_;  // circuit closure only

  struct RsnEdge {
    rsn::ElemId from_reg, to_reg;
    std::vector<Connection> chain;
  };
  /// Appends the inter-segment chains starting at register `r` (DFS over
  /// mux-only element chains under `fanout`, capped) to `out`. The
  /// emission order is a deterministic function of r's local fanout
  /// structure alone, so the violation index can rebuild one register's
  /// chains and splice them into the full build_rsn_edges order.
  static void append_register_chains(const rsn::Rsn& network,
                                     const rsn::FanoutIndex& fanout,
                                     rsn::ElemId r, std::vector<RsnEdge>& out);
  /// Generalization over the fanout source: `fanout_of(id)` must return a
  /// range of (consumer, port) pairs in FanoutIndex order (consumer
  /// ascending, then port). The returned reference may be invalidated by
  /// the next fanout_of call; each result is fully consumed before the
  /// next lookup. This is what lets the violation index rebuild chains
  /// against a patched committed fanout without indexing a whole trial
  /// network per candidate.
  template <typename FanoutFn>
  static void append_register_chains_fn(const rsn::Rsn& network,
                                        FanoutFn&& fanout_of, rsn::ElemId r,
                                        std::vector<RsnEdge>& out) {
    constexpr std::size_t max_chains_per_register = 256;
    std::size_t emitted = 0;
    // DFS over (element, chain-so-far); chains are short in practice.
    std::vector<std::pair<rsn::ElemId, std::vector<Connection>>> stack;
    stack.push_back({r, {}});
    while (!stack.empty() && emitted < max_chains_per_register) {
      auto [cur, chain] = std::move(stack.back());
      stack.pop_back();
      for (auto [to, port] : fanout_of(cur)) {
        std::vector<Connection> next_chain = chain;
        next_chain.push_back({cur, to, port});
        const rsn::Element& te = network.elem(to);
        if (te.kind == rsn::ElemKind::Register) {
          out.push_back({r, to, std::move(next_chain)});
          ++emitted;
        } else if (te.kind == rsn::ElemKind::Mux) {
          stack.push_back({to, std::move(next_chain)});
        }
        // Scan-out: data leaves the chip; no further segment is reached.
      }
    }
  }
  std::vector<RsnEdge> build_rsn_edges(const rsn::Rsn& network) const;

  void build_nodes(const rsn::Rsn& layout);
  void build_static_edges(const rsn::Rsn& layout);
  std::vector<TokenSet> run_worklist(
      const std::vector<std::vector<std::size_t>>& extra_succ,
      bool circuit_only) const;
  std::size_t violating_pairs(const std::vector<TokenSet>& state) const;
};

}  // namespace rsnsec::security
