#include "security/rewire.hpp"

#include <cassert>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::security {

using rsn::ElemId;
using rsn::ElemKind;
using rsn::Rsn;

std::vector<Connection> Rewirer::all_connections(const Rsn& network) {
  std::vector<Connection> out;
  for (ElemId id = 0; id < network.num_elements(); ++id) {
    const rsn::Element& e = network.elem(id);
    for (std::size_t p = 0; p < e.inputs.size(); ++p) {
      if (e.inputs[p] != rsn::no_elem)
        out.push_back({e.inputs[p], id, p});
    }
  }
  return out;
}

int Rewirer::repair_dangling_input(Rsn& network, ElemId to, std::size_t port,
                                   const std::vector<ElemId>& pre_preds,
                                   ElemId avoid, ElemId hint) {
  // Reconnect to a multi-cycle predecessor over pure scan paths that does
  // not recreate a cycle (Sec. III-D: "only segments that are multi-cycle
  // predecessors/successors over pure scan paths are connected"); fall
  // back to the scan-in port. A hint (evaluated as a separate repair
  // candidate by the resolver) overrides the default choice.
  if (hint != rsn::no_elem && hint != avoid && hint != to &&
      network.elem(hint).kind != ElemKind::ScanOut) {
    network.connect(hint, to, port);
    if (network.is_acyclic()) return 1;
    network.disconnect(to, port);
  }
  for (ElemId cand : pre_preds) {
    if (cand == avoid || cand == to) continue;
    ElemKind k = network.elem(cand).kind;
    if (k == ElemKind::ScanOut) continue;
    network.connect(cand, to, port);
    if (network.is_acyclic()) return 1;
    network.disconnect(to, port);
  }
  network.connect(network.scan_in(), to, port);
  return 1;
}

int Rewirer::repair_lost_fanout(Rsn& network, ElemId from,
                                const std::vector<ElemId>& pre_succs,
                                ElemId avoid) {
  int ops = 0;
  for (ElemId cand : pre_succs) {
    if (cand == avoid || cand == from) continue;
    const rsn::Element& e = network.elem(cand);
    if (e.kind == ElemKind::Mux) {
      network.add_mux_input(cand, from);
      if (network.is_acyclic()) return 1;
      network.remove_mux_input(cand, e.inputs.size() - 1);
      continue;
    }
    if (e.kind == ElemKind::Register) {
      // Insert a fresh 2:1 mux in front of the register ("placing new
      // multiplexers", Sec. IV-C).
      ElemId old_driver = e.inputs[0];
      if (old_driver == rsn::no_elem) {
        network.connect(from, cand, 0);
        if (network.is_acyclic()) return 1;
        network.disconnect(cand, 0);
        continue;
      }
      ElemId m = network.add_mux(
          "repair_mux_" + std::to_string(network.num_elements()), 2);
      network.connect(old_driver, m, 0);
      network.connect(from, m, 1);
      network.connect(m, cand, 0);
      if (network.is_acyclic()) return 2;
      // Roll back: restore the old driver. The fresh mux stays allocated
      // but unused; it has no connections into the rest of the network.
      network.disconnect(m, 0);
      network.disconnect(m, 1);
      network.connect(old_driver, cand, 0);
      ops = 0;
      continue;
    }
  }
  (void)ops;
  return attach_to_scan_out_avoiding(network, from, avoid);
}

int Rewirer::attach_to_scan_out_avoiding(Rsn& network, ElemId from,
                                         ElemId avoid) {
  // Like Rsn::attach_to_scan_out, but never reuses `avoid` as the
  // collector mux (we just disconnected `from` from it; reusing it would
  // silently recreate the cut connection).
  ElemId driver = network.elem(network.scan_out()).inputs[0];
  if (driver == avoid && driver != rsn::no_elem) {
    ElemId m = network.add_mux(
        "collect_mux_" + std::to_string(network.num_elements()), 2);
    network.connect(driver, m, 0);
    network.connect(from, m, 1);
    network.connect(m, network.scan_out(), 0);
    return 2;
  }
  ElemId created = network.attach_to_scan_out(from);
  return created == rsn::no_elem ? 1 : 2;
}

Rewirer::Selection Rewirer::select_cut(
    const Rsn& network, const std::vector<Connection>& candidates,
    const std::function<std::size_t(const Rsn&)>& count_pairs,
    std::size_t current_pairs, ResolutionPolicy policy) {
  obs::TraceSession* trace = obs::TraceSession::active();
  Selection best;
  for (const Connection& c : candidates) {
    std::vector<ElemId> hints{rsn::no_elem, network.scan_in()};
    if (policy == ResolutionPolicy::PreferScanIn)
      std::swap(hints[0], hints[1]);
    // A hint-insensitive cut yields the same trial for both hints;
    // evaluating it twice cannot change the selection (identical pairs
    // and ops lose every strict tie-break), so the duplicate is skipped.
    if (cut_is_hint_insensitive(network, c)) hints.resize(1);
    for (ElemId hint : hints) {
      if (trace != nullptr) trace->counter("rewire.trials").add(1);
      Rsn trial = network;
      int ops = cut_connection(trial, c, hint);
      std::size_t pairs = count_pairs(trial);
      if (pairs >= current_pairs) continue;
      if (policy != ResolutionPolicy::BestGlobal) {
        return {true, c, hint, pairs, ops};
      }
      if (!best.found || pairs < best.residual_pairs ||
          (pairs == best.residual_pairs && ops < best.operations)) {
        best = {true, c, hint, pairs, ops};
      }
    }
  }
  return best;
}

Rewirer::Selection Rewirer::select_cut_parallel(
    const Rsn& network, const std::vector<Connection>& candidates,
    const TrialCounterFactory& make_counter, std::size_t current_pairs,
    ResolutionPolicy policy, ThreadPool& pool) {
  obs::TraceSession* trace = obs::TraceSession::active();
  // Flatten the nested (candidate, hint) loop of select_cut into one
  // combo list in the same order; evaluate all combos concurrently; then
  // select by scanning the results in combo order. The scan replicates
  // the sequential policy logic exactly, so the Selection is identical
  // for any thread count — including the sequential path itself.
  struct Combo {
    Connection cut;
    rsn::ElemId hint;
  };
  std::vector<Combo> combos;
  combos.reserve(2 * candidates.size());
  for (const Connection& c : candidates) {
    rsn::ElemId hints[2] = {rsn::no_elem, network.scan_in()};
    if (policy == ResolutionPolicy::PreferScanIn)
      std::swap(hints[0], hints[1]);
    combos.push_back({c, hints[0]});
    // Same dedupe as select_cut, so both paths stay in lockstep.
    if (!cut_is_hint_insensitive(network, c)) combos.push_back({c, hints[1]});
  }
  std::vector<std::size_t> pairs(combos.size(), 0);
  std::vector<int> ops(combos.size(), 0);
  pool.parallel_chunks(
      0, combos.size(),
      [&](std::size_t cb, std::size_t ce, std::size_t) {
        // One counter (and thus one set of delta-query scratch buffers)
        // per chunk, reused across the chunk's trials.
        TrialCounter count = make_counter();
        for (std::size_t i = cb; i < ce; ++i) {
          Rsn trial = network;
          ops[i] = cut_connection(trial, combos[i].cut, combos[i].hint);
          pairs[i] = count(trial);
        }
      },
      /*grain=*/0);
  if (trace != nullptr) {
    trace->counter("rewire.trials").add(combos.size());
    trace->counter("resolve.candidates_evaluated").add(combos.size());
  }

  Selection best;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    if (pairs[i] >= current_pairs) continue;
    if (policy != ResolutionPolicy::BestGlobal) {
      return {true, combos[i].cut, combos[i].hint, pairs[i], ops[i]};
    }
    if (!best.found || pairs[i] < best.residual_pairs ||
        (pairs[i] == best.residual_pairs && ops[i] < best.operations)) {
      best = {true, combos[i].cut, combos[i].hint, pairs[i], ops[i]};
    }
  }
  return best;
}

bool Rewirer::cut_is_hint_insensitive(const Rsn& network,
                                      const Connection& c) {
  // The reconnect hint is consulted only by repair_dangling_input, which
  // runs when the cut leaves a non-mux input dangling. A cut that merely
  // shrinks a multi-input mux and does not orphan its source produces
  // the same network for every hint.
  const rsn::Element& to_elem = network.elem(c.to);
  if (to_elem.kind != ElemKind::Mux || to_elem.inputs.size() <= 1)
    return false;
  return !(network.elem(c.from).kind != ElemKind::ScanIn &&
           network.fanouts(c.from).size() == 1);
}

int Rewirer::cut_connection(Rsn& network, const Connection& c,
                            ElemId reconnect_hint) {
  assert(network.elem(c.to).inputs.at(c.port) == c.from);
  int ops = 1;
  const rsn::Element& to_elem = network.elem(c.to);
  const bool mux_shrink =
      to_elem.kind == ElemKind::Mux && to_elem.inputs.size() > 1;
  // `from` is orphaned exactly when this connection is its only fanout
  // (repairs reconnect drivers to `c.to` but never to `from`).
  const bool loses_fanout = network.elem(c.from).kind != ElemKind::ScanIn &&
                            network.fanouts(c.from).size() == 1;
  // Predecessor/successor sets *before* the cut, per Sec. III-D —
  // computed only for the repairs that actually consult them.
  std::vector<ElemId> pre_preds, pre_succs;
  if (!mux_shrink) pre_preds = network.reaching(c.to);
  if (loses_fanout) pre_succs = network.reachable_from(c.from);

  if (mux_shrink) {
    network.remove_mux_input(c.to, c.port);
  } else {
    network.disconnect(c.to, c.port);
    ops += repair_dangling_input(network, c.to, c.port, pre_preds, c.from,
                                 reconnect_hint);
  }

  if (loses_fanout) ops += repair_lost_fanout(network, c.from, pre_succs, c.to);
  return ops;
}

int Rewirer::isolate_register_output(Rsn& network, ElemId reg) {
  assert(network.elem(reg).kind == ElemKind::Register);
  int ops = 0;
  for (;;) {
    auto fo = network.fanouts(reg);
    if (fo.empty()) break;
    auto [to, port] = fo.front();
    const rsn::Element& te = network.elem(to);
    ++ops;
    if (te.kind == ElemKind::Mux && te.inputs.size() > 1) {
      network.remove_mux_input(to, port);
    } else {
      std::vector<ElemId> pre_preds = network.reaching(to);
      network.disconnect(to, port);
      ops += repair_dangling_input(network, to, port, pre_preds, reg,
                                   rsn::no_elem);
    }
  }
  network.attach_to_scan_out(reg);
  ++ops;
  return ops;
}

}  // namespace rsnsec::security
