#include "security/filter.hpp"

#include <set>
#include <tuple>

namespace rsnsec::security {

using rsn::ElemId;
using rsn::ElemKind;

bool AccessFilterBaseline::has_clean_path(ElemId target) const {
  if (net_.elem(target).kind != ElemKind::Register) return false;

  // Forward adjacency.
  std::vector<std::vector<ElemId>> fanout(net_.num_elements());
  for (ElemId id = 0; id < net_.num_elements(); ++id) {
    for (ElemId in : net_.elem(id).inputs)
      if (in != rsn::no_elem) fanout[in].push_back(id);
  }

  // DFS over (element, accumulated tokens, passed-target) states. The
  // token set grows monotonically along a path, so memoizing visited
  // states is sound; the state space is bounded by
  // elements x 2^(active tokens) x 2 and additionally by node_budget_.
  std::set<std::tuple<ElemId, bool, std::vector<std::uint64_t>>> seen;
  auto key = [](ElemId e, bool passed, const TokenSet& t) {
    std::vector<std::uint64_t> words(TokenSet::capacity / 64);
    for (std::size_t i = 0; i < TokenSet::capacity; ++i)
      if (t.test(i)) words[i >> 6] |= 1ULL << (i & 63);
    return std::make_tuple(e, passed, std::move(words));
  };

  struct Frame {
    ElemId elem;
    TokenSet tokens;
    bool passed;
  };
  std::vector<Frame> stack;
  stack.push_back({net_.scan_in(), {}, false});
  std::size_t visited = 0;

  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (++visited > node_budget_) {
      truncated_ = true;
      return false;  // conservative: treat as inaccessible
    }
    if (!seen.insert(key(f.elem, f.passed, f.tokens)).second) continue;

    const rsn::Element& e = net_.elem(f.elem);
    if (e.kind == ElemKind::Register) {
      // Entering this register: the accumulated upstream data shifts
      // through it; violation if any incoming token rejects its trust.
      TrustCategory t = spec_.policy(e.module).trust;
      if (f.tokens.intersects(tokens_.bad(t))) continue;  // filtered
      int tok = tokens_.token_of(e.module);
      if (tok >= 0) f.tokens.set(static_cast<std::size_t>(tok));
      if (f.elem == target) f.passed = true;
    }
    if (e.kind == ElemKind::ScanOut) {
      if (f.passed) return true;
      continue;
    }
    for (ElemId s : fanout[f.elem]) stack.push_back({s, f.tokens, f.passed});
  }
  return false;
}

FilterReport AccessFilterBaseline::analyze() const {
  FilterReport report;
  truncated_ = false;
  for (ElemId r : net_.registers()) {
    if (has_clean_path(r)) {
      report.accessible.push_back(r);
    } else {
      report.inaccessible.push_back(r);
    }
  }
  report.search_truncated = truncated_;
  return report;
}

}  // namespace rsnsec::security
