#include "security/hybrid.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

#include "obs/trace.hpp"
#include "security/violation_index.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::security {

using rsn::ElemId;
using rsn::ElemKind;
using rsn::Rsn;

HybridAnalyzer::HybridAnalyzer(const netlist::Netlist& nl,
                               const Rsn& layout_network,
                               const dep::DependencyAnalyzer& deps,
                               const SecuritySpec& spec,
                               const TokenTable& tokens)
    : nl_(nl), deps_(deps), spec_(spec), tokens_(tokens) {
  build_nodes(layout_network);
  build_static_edges(layout_network);
}

std::size_t HybridAnalyzer::scan_node(ElemId reg, std::size_t ff) const {
  return scan_base_[static_cast<std::size_t>(reg)] + ff;
}

std::size_t HybridAnalyzer::circuit_node(netlist::NodeId ff) const {
  return circuit_base_ + deps_.circuit_index(ff);
}

std::string HybridAnalyzer::node_name(std::size_t node) const {
  if (node < circuit_base_) {
    return "scan:" + std::to_string(node_reg_[node]) + "[" +
           std::to_string(node_ff_[node]) + "]";
  }
  netlist::NodeId ff = deps_.circuit_ff(node - circuit_base_);
  const std::string& n = nl_.node(ff).name;
  return "ff:" + (n.empty() ? std::to_string(ff) : n);
}

void HybridAnalyzer::build_nodes(const Rsn& layout) {
  scan_base_.assign(layout.num_elements(), 0);
  std::size_t next = 0;
  for (ElemId r : layout.registers()) {
    scan_base_[r] = next;
    const rsn::Element& e = layout.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      node_reg_.push_back(r);
      node_ff_.push_back(f);
      owner_module_.push_back(e.module);
      ++next;
    }
  }
  circuit_base_ = next;
  for (std::size_t i = 0; i < deps_.num_circuit_ffs(); ++i) {
    owner_module_.push_back(nl_.node(deps_.circuit_ff(i)).module);
  }

  seed_token_.assign(owner_module_.size(), -1);
  for (std::size_t n = 0; n < owner_module_.size(); ++n) {
    // Internal circuit flip-flops are transit-only: they were bridged out
    // of the relation and contribute no tokens (Sec. III-A.2).
    if (n >= circuit_base_ && deps_.is_internal(n - circuit_base_)) continue;
    seed_token_[n] = tokens_.token_of(owner_module_[n]);
  }
}

void HybridAnalyzer::build_static_edges(const Rsn& layout) {
  static_succ_.assign(owner_module_.size(), {});
  circuit_succ_.assign(owner_module_.size(), {});

  for (ElemId r : layout.registers()) {
    const rsn::Element& e = layout.elem(r);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      std::size_t node = scan_node(r, f);
      // Shift order inside the register: data only moves toward scan-out
      // (SF5 -> SF6, never SF6 -> SF5; Sec. III-C).
      if (f + 1 < e.ffs.size())
        static_succ_[node].push_back(scan_node(r, f + 1));
      // Capture-cone dependencies (path-dependent only: tokens cannot
      // ride only-structural connections).
      for (const dep::CaptureDep& d : deps_.capture_deps(r, f)) {
        if (d.kind == DepKind::Path)
          static_succ_[circuit_node(d.circuit_ff)].push_back(node);
      }
      // Update connection into the circuit.
      if (e.ffs[f].update_dst != netlist::no_node)
        static_succ_[node].push_back(circuit_node(e.ffs[f].update_dst));
    }
  }

  // Multi-cycle circuit closure: one edge per path-dependent pair. The
  // closure is transitively closed, so a single hop covers any number of
  // functional clock cycles. Representation-agnostic access keeps this
  // working at scales where the closure is tiled and a dense matrix is
  // never materialized.
  for (std::size_t i = 0; i < deps_.num_circuit_ffs(); ++i) {
    if (deps_.is_internal(i)) continue;
    for (std::size_t j : deps_.closure_path_successors(i)) {
      if (i != j) circuit_succ_[circuit_base_ + i].push_back(circuit_base_ + j);
    }
  }
}

void HybridAnalyzer::append_register_chains(const Rsn& network,
                                            const rsn::FanoutIndex& fanout,
                                            ElemId r,
                                            std::vector<RsnEdge>& out) {
  append_register_chains_fn(
      network, [&](ElemId id) -> decltype(auto) { return fanout.of(id); }, r,
      out);
}

std::vector<HybridAnalyzer::RsnEdge> HybridAnalyzer::build_rsn_edges(
    const Rsn& network) const {
  // For every register, find the registers reachable through mux-only
  // element chains, recording the concrete connections of each chain
  // (cut candidates for the resolution step).
  std::vector<RsnEdge> edges;
  rsn::FanoutIndex fanout(network);
  for (ElemId r : network.registers())
    append_register_chains(network, fanout, r, edges);
  return edges;
}

std::vector<TokenSet> HybridAnalyzer::run_worklist(
    const std::vector<std::vector<std::size_t>>& extra_succ,
    bool circuit_only) const {
  std::vector<TokenSet> state(owner_module_.size());
  std::vector<std::size_t> worklist;
  std::vector<bool> queued(owner_module_.size(), false);
  for (std::size_t n = 0; n < owner_module_.size(); ++n) {
    if (circuit_only && n < circuit_base_) continue;
    if (seed_token_[n] >= 0) {
      state[n].set(static_cast<std::size_t>(seed_token_[n]));
      worklist.push_back(n);
      queued[n] = true;
    }
  }
  auto relax = [&](std::size_t from, std::size_t to) {
    if (state[to].merge(state[from]) && !queued[to]) {
      queued[to] = true;
      worklist.push_back(to);
    }
  };
  while (!worklist.empty()) {
    std::size_t n = worklist.back();
    worklist.pop_back();
    queued[n] = false;
    if (!circuit_only) {
      for (std::size_t s : static_succ_[n]) relax(n, s);
      if (n < extra_succ.size()) {
        for (std::size_t s : extra_succ[n]) relax(n, s);
      }
    }
    for (std::size_t s : circuit_succ_[n]) relax(n, s);
  }
  return state;
}

std::vector<TokenSet> HybridAnalyzer::propagate(const Rsn* network,
                                                bool circuit_only) const {
  if (obs::TraceSession* trace = obs::TraceSession::active())
    trace->counter("hybrid.propagations").add(1);
  std::vector<std::vector<std::size_t>> extra;
  if (network != nullptr && !circuit_only) {
    extra.assign(owner_module_.size(), {});
    for (const RsnEdge& e : build_rsn_edges(*network)) {
      std::size_t from =
          scan_node(e.from_reg, network->elem(e.from_reg).ffs.size() - 1);
      std::size_t to = scan_node(e.to_reg, 0);
      extra[from].push_back(to);
    }
  }
  return run_worklist(extra, circuit_only);
}

std::size_t HybridAnalyzer::violating_pairs(
    const std::vector<TokenSet>& state) const {
  std::size_t count = 0;
  for (std::size_t n = 0; n < state.size(); ++n) {
    if (owner_module_[n] < 0) continue;  // unannotated: transit only
    TrustCategory t = spec_.policy(owner_module_[n]).trust;
    const TokenSet& bad = tokens_.bad(t);
    for (std::size_t k = 0; k < tokens_.num_tokens(); ++k)
      if (state[n].test(k) && bad.test(k)) ++count;
  }
  return count;
}

StaticReport HybridAnalyzer::check_static() const {
  StaticReport report;
  std::vector<TokenSet> circ = propagate(nullptr, /*circuit_only=*/true);
  std::vector<TokenSet> stat = propagate(nullptr, /*circuit_only=*/false);
  for (std::size_t n = 0; n < stat.size(); ++n) {
    if (owner_module_[n] < 0) continue;
    TrustCategory t = spec_.policy(owner_module_[n]).trust;
    const TokenSet& bad = tokens_.bad(t);
    for (std::size_t k = 0; k < tokens_.num_tokens(); ++k) {
      bool in_circ = circ[n].test(k) && bad.test(k);
      bool in_stat = stat[n].test(k) && bad.test(k);
      if (in_circ) {
        report.insecure_logic = true;
        report.details.push_back("insecure circuit logic: token " +
                                 std::to_string(k) + " reaches " +
                                 node_name(n));
      } else if (in_stat) {
        report.intra_segment = true;
        report.details.push_back("intra-segment flow: token " +
                                 std::to_string(k) + " reaches " +
                                 node_name(n));
      }
    }
  }
  return report;
}

std::size_t HybridAnalyzer::count_violating_pairs(const Rsn& network) const {
  return violating_pairs(propagate(&network));
}

std::size_t HybridAnalyzer::count_violating_registers(
    const Rsn& network) const {
  std::vector<TokenSet> state = propagate(&network);
  std::size_t count = 0;
  for (ElemId r : network.registers()) {
    const rsn::Element& e = network.elem(r);
    if (e.module < 0) continue;
    TrustCategory t = spec_.policy(e.module).trust;
    const TokenSet& bad = tokens_.bad(t);
    for (std::size_t f = 0; f < e.ffs.size(); ++f) {
      if (state[scan_node(r, f)].intersects(bad)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::optional<HybridAnalyzer::Violation> HybridAnalyzer::find_violation(
    const Rsn& network) const {
  std::vector<RsnEdge> rsn_edges = build_rsn_edges(network);

  // Forward adjacency with provenance (-1 = static/circuit edge, else
  // index into rsn_edges), for path tracing.
  struct Pred {
    std::size_t node;
    int rsn_edge;
  };
  std::vector<std::vector<Pred>> preds(owner_module_.size());
  for (std::size_t n = 0; n < owner_module_.size(); ++n) {
    for (std::size_t s : static_succ_[n]) preds[s].push_back({n, -1});
    for (std::size_t s : circuit_succ_[n]) preds[s].push_back({n, -1});
  }
  std::vector<std::vector<std::size_t>> extra(owner_module_.size());
  for (std::size_t ei = 0; ei < rsn_edges.size(); ++ei) {
    const RsnEdge& e = rsn_edges[ei];
    std::size_t from =
        scan_node(e.from_reg, network.elem(e.from_reg).ffs.size() - 1);
    std::size_t to = scan_node(e.to_reg, 0);
    extra[from].push_back(to);
    preds[to].push_back({from, static_cast<int>(ei)});
  }

  std::vector<TokenSet> state = run_worklist(extra, false);
  for (std::size_t victim = 0; victim < state.size(); ++victim) {
    if (owner_module_[victim] < 0) continue;
    TrustCategory t = spec_.policy(owner_module_[victim]).trust;
    int tok = state[victim].first_common(tokens_.bad(t));
    if (tok < 0) continue;

    // Backward BFS to a seed of the token, over predecessors carrying it.
    std::vector<int> parent_edge(owner_module_.size(), -2);
    std::vector<std::size_t> parent(owner_module_.size(), 0);
    std::vector<bool> seen(owner_module_.size(), false);
    std::vector<std::size_t> queue{victim};
    seen[victim] = true;
    std::size_t seed = owner_module_.size();
    bool victim_is_seed = false;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      std::size_t cur = queue[qi];
      if (seed_token_[cur] == tok && cur != victim) {
        seed = cur;
        break;
      }
      for (const Pred& p : preds[cur]) {
        if (seen[p.node]) continue;
        if (!state[p.node].test(static_cast<std::size_t>(tok))) continue;
        seen[p.node] = true;
        parent[p.node] = cur;
        parent_edge[p.node] = p.rsn_edge;
        queue.push_back(p.node);
      }
    }
    if (seed == owner_module_.size() && !victim_is_seed) {
      // The token can only have been seeded upstream; if no seed was
      // found the victim itself must carry it (cannot happen after spec
      // validation, but keep the analysis robust).
      continue;
    }

    Violation v;
    v.token = tok;
    v.victim_node = victim;
    for (std::size_t cur = seed;; cur = parent[cur]) {
      v.node_path.push_back(cur);
      if (parent_edge[cur] >= 0) {
        const RsnEdge& e = rsn_edges[static_cast<std::size_t>(
            parent_edge[cur])];
        for (const Connection& c : e.chain) v.rsn_connections.push_back(c);
      }
      if (cur == victim) break;
    }
    return v;
  }
  return std::nullopt;
}

HybridStats HybridAnalyzer::detect_and_resolve(
    Rsn& network, std::vector<AppliedChange>* log,
    ResolutionPolicy policy, const ChangeCallback& on_change,
    const ResolveOptions& resolve_options) {
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span resolve_span(trace, "hybrid.resolve");
  HybridStats stats;

  const bool incremental = resolve_options.incremental;
  std::optional<HybridViolationIndex> index;
  // ResolveOptions::pool (shared, serve scheduler) wins over a private
  // per-resolve pool sized by num_threads.
  ThreadPool* pool = resolve_options.pool;
  std::optional<ThreadPool> owned_pool;
  if (incremental) {
    index.emplace(*this, network);
    if (pool == nullptr) {
      owned_pool.emplace(
          ThreadPool::resolve_num_threads(resolve_options.num_threads));
      pool = &*owned_pool;
    }
    stats.initial_violating_registers = index->violating_registers();
    stats.initial_violating_pairs = index->pairs();
  } else {
    stats.initial_violating_registers = count_violating_registers(network);
    stats.initial_violating_pairs = count_violating_pairs(network);
  }
  // Applying a cut re-runs the deterministic cut_connection on the real
  // network, so the selected trial's residual count IS the new current
  // count; only the fallback isolation needs a recount. (Previously every
  // iteration recounted from scratch on top of find_violation's own
  // propagation.)
  std::size_t cur_pairs = stats.initial_violating_pairs;

  std::size_t max_iters = 8 * network.registers().size() + 64;
  std::size_t iter = 0;
  for (;;) {
    std::optional<Violation> v =
        incremental ? index->find_violation() : find_violation(network);
    if (!v) break;
    if (++iter > max_iters)
      throw std::runtime_error(
          "hybrid resolution did not converge (iteration cap exceeded)");
    if (trace != nullptr)
      trace->counter("resolve.hybrid_iterations").add(1);
    if (v->rsn_connections.empty())
      throw std::runtime_error(
          "hybrid violation without RSN connection on its path; "
          "run check_static() before resolution");

    // Each cut is evaluated with both reconnection variants ([17]-style
    // candidate generation); the policy decides how exhaustively.
    Rewirer::Selection sel;
    if (incremental) {
      sel = Rewirer::select_cut_parallel(
          network, v->rsn_connections,
          [&index]() -> Rewirer::TrialCounter {
            auto scratch = std::make_shared<HybridViolationIndex::Scratch>();
            return [&index, scratch](const Rsn& n) {
              return index->eval_trial(n, *scratch);
            };
          },
          cur_pairs, policy, *pool);
    } else {
      sel = Rewirer::select_cut(
          network, v->rsn_connections,
          [this](const Rsn& n) { return count_violating_pairs(n); },
          cur_pairs, policy);
    }

    AppliedChange change;
    if (sel.found) {
      change.kind = AppliedChange::Kind::CutConnection;
      change.cut = sel.cut;
      change.rewire_operations =
          Rewirer::cut_connection(network, sel.cut, sel.reconnect_hint);
      change.note = "hybrid: cut " + network.elem(sel.cut.from).name +
                    " -> " + network.elem(sel.cut.to).name;
      cur_pairs = sel.residual_pairs;
      if (incremental) index->commit(network);
    } else {
      // Isolate the source register of the last RSN hop on the path.
      ElemId iso = v->rsn_connections.front().from;
      // rsn_connections were collected walking seed -> victim, so the
      // last chain's first element is the register driving the final
      // inter-segment hop; fall back to any register endpoint.
      for (auto it = v->rsn_connections.rbegin();
           it != v->rsn_connections.rend(); ++it) {
        if (network.elem(it->from).kind == ElemKind::Register) {
          iso = it->from;
          break;
        }
      }
      if (network.elem(iso).kind != ElemKind::Register) {
        throw std::runtime_error(
            "hybrid resolution fallback found no register to isolate");
      }
      change.kind = AppliedChange::Kind::IsolateRegister;
      change.isolated = iso;
      change.rewire_operations =
          Rewirer::isolate_register_output(network, iso);
      change.note = "hybrid: isolate " + network.elem(iso).name;
      ++stats.fallback_isolations;
      if (incremental) {
        index->commit(network);
        cur_pairs = index->pairs();
      } else {
        cur_pairs = count_violating_pairs(network);
      }
    }
    ++stats.applied_changes;
    stats.rewire_operations += change.rewire_operations;
    if (trace != nullptr) {
      trace->counter("rewire.changes_applied").add(1);
      trace->counter("rewire.operations").add(change.rewire_operations);
    }
    if (on_change) on_change(network, change);
    if (log) log->push_back(std::move(change));
  }
  return stats;
}

}  // namespace rsnsec::security
