#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rsn/rsn.hpp"

namespace rsnsec::rsn {

/// A concrete plan to access one scan register: the mux configuration
/// that puts it on the active scan path, and the shift offsets needed to
/// read its captured contents at the scan-out port or to position
/// scan-in data into it before an update.
struct AccessPlan {
  ElemId target = no_elem;
  /// Mux settings establishing the path (muxes not listed are don't-care).
  std::vector<std::pair<ElemId, std::size_t>> mux_settings;
  /// The resulting active path (scan-in ... scan-out).
  std::vector<ElemId> path;
  /// Total scan flip-flops on the active path.
  std::size_t chain_length = 0;
  /// Position (0-based, from scan-in) of the target's first flip-flop in
  /// the active chain.
  std::size_t position = 0;
  /// Width of the target register.
  std::size_t width = 0;

  /// Shift cycles after capture until the target's flip-flop `i` appears
  /// at the scan-out port.
  std::size_t read_shifts(std::size_t i = 0) const {
    return chain_length - position - i;
  }
  /// Shift cycles needed to move a bit inserted at scan-in into the
  /// target's flip-flop `i` (insert the bit, then shift the remainder).
  std::size_t write_shifts(std::size_t i = 0) const {
    return position + i + 1;
  }
};

/// Materialized fanout adjacency of an RSN: for every element, the
/// (consumer, port) pairs it drives. Rsn::fanouts(id) scans all elements
/// per call, which is fine for one-off queries but quadratic when a
/// traversal needs the fanout of many elements (chain enumeration in the
/// security analysis, the violation index's delta maintenance). The index
/// is a snapshot — rebuild it after structural edits.
///
/// Entries are ordered by (consumer id ascending, port ascending); code
/// that derives deterministic structures from fanout order (the per-
/// register chain DFS of the hybrid analyzer) relies on this.
class FanoutIndex {
 public:
  explicit FanoutIndex(const Rsn& network);

  const std::vector<std::pair<ElemId, std::size_t>>& of(ElemId id) const {
    return fanout_[static_cast<std::size_t>(id)];
  }

 private:
  std::vector<std::vector<std::pair<ElemId, std::size_t>>> fanout_;
};

/// Plans scan access to registers of an RSN (the pattern-retargeting
/// core of tools like eda1687 [20], reduced to path planning).
///
/// The paper's method guarantees that the transformed, secure network
/// still contains every scan register; the planner makes that guarantee
/// checkable: plan_access() must succeed for every register before *and*
/// after the transformation.
class AccessPlanner {
 public:
  explicit AccessPlanner(const Rsn& network) : net_(network) {}

  /// Computes an access plan for `target`, or nullopt if no mux
  /// configuration puts it on a complete scan path. Does not modify the
  /// network.
  std::optional<AccessPlan> plan(ElemId target) const;

  /// Applies the plan's mux settings to `network` (which must have the
  /// same topology this planner was built over).
  static void apply(const AccessPlan& plan, Rsn& network);

  /// True if every register of the network is accessible.
  bool all_registers_accessible() const;

 private:
  const Rsn& net_;

  /// Backward chain of elements from `to` to `from` following input
  /// edges, or empty if none exists. The result is ordered from `from`
  /// to `to` (inclusive).
  std::vector<ElemId> find_chain(ElemId from, ElemId to) const;
};

}  // namespace rsnsec::rsn
