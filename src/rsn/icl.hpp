#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "rsn/io.hpp"

namespace rsnsec::rsn::icl {

/// A reference to a signal inside an ICL module: a port, register, mux
/// or instance name, optionally with a bit index ("R[3]").
struct Ref {
  std::string name;
  int bit = -1;
};

/// ScanRegister R[7:0] { ScanInSource <ref>; CaptureSource ...; }
struct ScanRegisterDecl {
  std::string name;
  std::size_t width = 1;
  Ref scan_in_source;
};

/// ScanMux M SelectedBy sel { 1'b0 : <ref>; 1'b1 : <ref>; }
struct ScanMuxDecl {
  std::string name;
  std::string select;
  std::vector<std::pair<std::uint32_t, Ref>> inputs;  ///< (select value, src)
};

/// Instance i Of Mod { InputPort SI = <ref>; }
struct InstanceDecl {
  std::string name;
  std::string of_module;
  std::map<std::string, Ref> bindings;  ///< input port -> parent ref
};

/// One ICL Module declaration.
struct ModuleDecl {
  std::string name;
  std::vector<std::string> scan_in_ports;
  /// Scan-out ports with their Source reference.
  std::vector<std::pair<std::string, Ref>> scan_out_ports;
  std::vector<ScanRegisterDecl> registers;
  std::vector<ScanMuxDecl> muxes;
  std::vector<InstanceDecl> instances;
};

/// A parsed ICL document: all module declarations by name.
struct Document {
  std::map<std::string, ModuleDecl> modules;

  /// The top module: the unique module not instantiated by any other
  /// (throws if ambiguous).
  const ModuleDecl& top() const;
};

/// Parses an IEEE 1687 ICL subset sufficient for structural scan-network
/// descriptions like the BASTION benchmark suite [19]:
///
///   Module <name> {
///     ScanInPort <id>;
///     ScanOutPort <id> { Source <ref>; }
///     ScanRegister <id>[msb:lsb] { ScanInSource <ref>; ... }
///     ScanMux <id> SelectedBy <sel> { <n>'b<bits> : <ref>; ... }
///     Instance <id> Of <module> { InputPort <port> = <ref>; ... }
///     // comments, plus Attribute/Alias/LocalParameter (skipped)
///   }
///
/// Unsupported: select wiring (muxes are treated as freely configurable,
/// as the analysis assumes), capture/update source wiring (attach the
/// circuit programmatically), mid-register taps (a "R[3]" reference is
/// resolved to R's scan-out side). Throws std::runtime_error with a
/// line-numbered message on malformed input.
Document parse(std::istream& is);

/// Elaborates the document's top module (or `top_name` if given) into a
/// flat RSN. Every elaborated instance that declares scan registers
/// becomes one module/instrument of the RsnDocument; element names are
/// hierarchical ("core1.sib", "core1.wir").
RsnDocument elaborate(const Document& doc, const std::string& top_name = {});

/// Convenience: parse + elaborate.
RsnDocument load_icl(std::istream& is, const std::string& top_name = {});

}  // namespace rsnsec::rsn::icl
