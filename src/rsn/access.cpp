#include "rsn/access.hpp"

#include <algorithm>

namespace rsnsec::rsn {

FanoutIndex::FanoutIndex(const Rsn& network)
    : fanout_(network.num_elements()) {
  // (consumer id ascending, port ascending) — documented ordering.
  for (ElemId id = 0; id < network.num_elements(); ++id) {
    const Element& e = network.elem(id);
    for (std::size_t p = 0; p < e.inputs.size(); ++p) {
      if (e.inputs[p] != no_elem) fanout_[e.inputs[p]].push_back({id, p});
    }
  }
}

std::vector<ElemId> AccessPlanner::find_chain(ElemId from, ElemId to) const {
  // BFS backward over input edges from `to`; reconstruct the chain.
  std::vector<ElemId> parent(net_.num_elements(), no_elem);
  std::vector<bool> seen(net_.num_elements(), false);
  std::vector<ElemId> queue{to};
  seen[to] = true;
  while (!queue.empty()) {
    ElemId cur = queue.back();
    queue.pop_back();
    if (cur == from) {
      std::vector<ElemId> chain;
      for (ElemId e = from; e != no_elem; e = parent[e]) chain.push_back(e);
      return chain;  // ordered from `from` to `to`
    }
    for (ElemId in : net_.elem(cur).inputs) {
      if (in == no_elem || seen[in]) continue;
      seen[in] = true;
      parent[in] = cur;
      queue.push_back(in);
    }
  }
  return {};
}

std::optional<AccessPlan> AccessPlanner::plan(ElemId target) const {
  if (net_.elem(target).kind != ElemKind::Register) return std::nullopt;
  // The network is acyclic, so the ancestors of `target` (upstream chain)
  // and its descendants (downstream chain) are disjoint; concatenating
  // any upstream chain from scan-in with any downstream chain to
  // scan-out yields a realizable active path.
  std::vector<ElemId> up = find_chain(net_.scan_in(), target);
  if (up.empty()) return std::nullopt;
  std::vector<ElemId> down = find_chain(target, net_.scan_out());
  if (down.empty()) return std::nullopt;

  AccessPlan plan;
  plan.target = target;
  plan.path = up;
  plan.path.insert(plan.path.end(), down.begin() + 1, down.end());

  // Mux settings: every mux on the path selects its path predecessor.
  for (std::size_t i = 1; i < plan.path.size(); ++i) {
    const Element& e = net_.elem(plan.path[i]);
    if (e.kind != ElemKind::Mux) continue;
    for (std::size_t p = 0; p < e.inputs.size(); ++p) {
      if (e.inputs[p] == plan.path[i - 1]) {
        plan.mux_settings.emplace_back(plan.path[i], p);
        break;
      }
    }
  }

  // Chain geometry.
  for (ElemId e : plan.path) {
    const Element& el = net_.elem(e);
    if (el.kind != ElemKind::Register) continue;
    if (e == target) {
      plan.position = plan.chain_length;
      plan.width = el.ffs.size();
    }
    plan.chain_length += el.ffs.size();
  }
  return plan;
}

void AccessPlanner::apply(const AccessPlan& plan, Rsn& network) {
  for (auto [mux, sel] : plan.mux_settings)
    network.set_mux_select(mux, sel);
}

bool AccessPlanner::all_registers_accessible() const {
  return std::all_of(
      net_.registers().begin(), net_.registers().end(),
      [this](ElemId r) { return plan(r).has_value(); });
}

}  // namespace rsnsec::rsn
