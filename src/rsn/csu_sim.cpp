#include "rsn/csu_sim.hpp"

#include <cassert>

namespace rsnsec::rsn {

CsuSimulator::CsuSimulator(const Rsn& rsn, const netlist::Netlist& nl)
    : rsn_(rsn), sim_(nl), reg_slot_(rsn.num_elements(), 0) {
  values_.reserve(rsn.registers().size());
  for (ElemId r : rsn.registers()) {
    reg_slot_[r] = values_.size();
    values_.emplace_back(rsn.elem(r).ffs.size(), 0);
  }
}

std::uint64_t CsuSimulator::scan_value(ElemId reg, std::size_t ff) const {
  return values_[slot(reg)].at(ff);
}

void CsuSimulator::set_scan_value(ElemId reg, std::size_t ff,
                                  std::uint64_t v) {
  values_[slot(reg)].at(ff) = v;
}

std::vector<std::pair<ElemId, std::size_t>> CsuSimulator::active_chain()
    const {
  std::vector<std::pair<ElemId, std::size_t>> chain;
  for (ElemId e : rsn_.active_path()) {
    if (rsn_.elem(e).kind != ElemKind::Register) continue;
    for (std::size_t i = 0; i < rsn_.elem(e).ffs.size(); ++i)
      chain.emplace_back(e, i);
  }
  return chain;
}

void CsuSimulator::capture() {
  sim_.eval_comb();
  for (ElemId e : rsn_.active_path()) {
    const Element& el = rsn_.elem(e);
    if (el.kind != ElemKind::Register) continue;
    for (std::size_t i = 0; i < el.ffs.size(); ++i) {
      if (el.ffs[i].capture_src != netlist::no_node)
        values_[slot(e)][i] = sim_.value(el.ffs[i].capture_src);
    }
  }
}

std::uint64_t CsuSimulator::shift(std::uint64_t scan_in_bits) {
  auto chain = active_chain();
  if (chain.empty()) return 0;
  std::uint64_t out = values_[slot(chain.back().first)][chain.back().second];
  for (std::size_t i = chain.size(); i-- > 1;) {
    auto [reg, ff] = chain[i];
    auto [preg, pff] = chain[i - 1];
    values_[slot(reg)][ff] = values_[slot(preg)][pff];
  }
  values_[slot(chain.front().first)][chain.front().second] = scan_in_bits;
  return out;
}

void CsuSimulator::update() {
  for (ElemId e : rsn_.active_path()) {
    const Element& el = rsn_.elem(e);
    if (el.kind != ElemKind::Register) continue;
    for (std::size_t i = 0; i < el.ffs.size(); ++i) {
      if (el.ffs[i].update_dst != netlist::no_node)
        sim_.set_value(el.ffs[i].update_dst, values_[slot(e)][i]);
    }
  }
}

void CsuSimulator::clock_circuit(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) sim_.step();
}

}  // namespace rsnsec::rsn
