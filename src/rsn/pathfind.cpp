#include "rsn/pathfind.hpp"

#include <algorithm>

namespace rsnsec::rsn {

std::size_t PathPlan::position_of(ElemId reg, std::size_t ff) const {
  for (std::size_t i = 0; i < chain.size(); ++i)
    if (chain[i].first == reg && chain[i].second == ff) return i;
  return npos;
}

std::optional<PathPlan> find_path_through(
    const Rsn& network, const std::vector<ElemId>& waypoints) {
  const std::size_t n = network.num_elements();
  const std::size_t phases = waypoints.size() + 1;

  // Forward adjacency from the per-element input lists: succ[from] holds
  // (consumer, input port) pairs.
  std::vector<std::vector<std::pair<ElemId, std::size_t>>> succ(n);
  for (std::size_t to = 0; to < n; ++to) {
    const Element& e = network.elem(static_cast<ElemId>(to));
    for (std::size_t port = 0; port < e.inputs.size(); ++port) {
      ElemId from = e.inputs[port];
      if (from != no_elem)
        succ[static_cast<std::size_t>(from)].push_back(
            {static_cast<ElemId>(to), port});
    }
  }

  std::vector<int> wp_of(n, -1);
  for (std::size_t i = 0; i < waypoints.size(); ++i)
    wp_of[static_cast<std::size_t>(waypoints[i])] = static_cast<int>(i);

  auto state = [phases](ElemId e, std::size_t wp) {
    return static_cast<std::size_t>(e) * phases + wp;
  };

  struct Step {
    ElemId elem = no_elem;  ///< predecessor element (no_elem at scan-in)
    std::size_t wp = 0;     ///< predecessor waypoint progress
    std::size_t port = 0;   ///< input port used to enter this element
  };
  std::vector<char> visited(n * phases, 0);
  std::vector<Step> parent(n * phases);

  std::size_t wp0 =
      wp_of[static_cast<std::size_t>(network.scan_in())] == 0 ? 1 : 0;
  std::vector<std::pair<ElemId, std::size_t>> stack{{network.scan_in(), wp0}};
  visited[state(network.scan_in(), wp0)] = 1;

  constexpr std::size_t no_state = static_cast<std::size_t>(-1);
  std::size_t found = no_state;
  while (!stack.empty() && found == no_state) {
    auto [cur, wp] = stack.back();
    stack.pop_back();
    if (cur == network.scan_out()) {
      if (wp == waypoints.size()) found = state(cur, wp);
      continue;
    }
    for (auto [to, port] : succ[static_cast<std::size_t>(cur)]) {
      std::size_t nwp = wp;
      int w = wp_of[static_cast<std::size_t>(to)];
      if (w >= 0) {
        // Reaching any waypoint other than the next one in sequence makes
        // this branch unable to satisfy the order: the network is acyclic,
        // so a simple path cannot come back to it later.
        if (static_cast<std::size_t>(w) != wp) continue;
        nwp = wp + 1;
      }
      std::size_t s = state(to, nwp);
      if (visited[s]) continue;
      visited[s] = 1;
      parent[s] = {cur, wp, port};
      stack.push_back({to, nwp});
    }
  }
  if (found == no_state) return std::nullopt;

  PathPlan plan;
  // Walk the parent chain back from (scan_out, all-waypoints-consumed).
  std::size_t s = found;
  std::vector<std::size_t> enter_port;
  while (true) {
    ElemId e = static_cast<ElemId>(s / phases);
    plan.elements.push_back(e);
    const Step& p = parent[s];
    if (p.elem == no_elem) break;
    enter_port.push_back(p.port);
    s = state(p.elem, p.wp);
  }
  std::reverse(plan.elements.begin(), plan.elements.end());
  std::reverse(enter_port.begin(), enter_port.end());

  for (std::size_t i = 1; i < plan.elements.size(); ++i) {
    const Element& e = network.elem(plan.elements[i]);
    if (e.kind == ElemKind::Mux)
      plan.settings.push_back({plan.elements[i], enter_port[i - 1]});
    if (e.kind == ElemKind::Register)
      for (std::size_t f = 0; f < e.ffs.size(); ++f)
        plan.chain.push_back({plan.elements[i], f});
  }
  return plan;
}

void apply_plan(Rsn& network, const PathPlan& plan) {
  for (const MuxSetting& m : plan.settings)
    network.set_mux_select(m.mux, m.sel);
}

}  // namespace rsnsec::rsn
