#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "rsn/rsn.hpp"

namespace rsnsec::rsn {

/// A pending capture/update attachment read from a network file: the
/// circuit net is referenced by name and resolved against a netlist later
/// (apply_attachments).
struct Attachment {
  ElemId reg = no_elem;
  std::size_t ff = 0;
  bool is_update = false;
  std::string net;
};

/// An RSN together with the module (instrument) names its registers refer
/// to. The BASTION benchmarks ship as ICL without circuits, so networks are
/// meaningful standalone; module names become netlist modules only when a
/// circuit is attached (src/benchgen), and capture/update attachments are
/// carried by net name until then.
struct RsnDocument {
  Rsn network{"rsn"};
  std::vector<std::string> module_names;
  std::vector<Attachment> attachments;
};

/// Serializes an RSN to the library's ICL-like plain-text format:
///
///   rsn <name>
///   module <index> <name>
///   register <name> ffs <n> module <index>
///   mux <name> inputs <k>
///   connect <from-element> <to-element> <port>
///   capture <register> <ff-index> <circuit-net-name>
///   update <register> <ff-index> <circuit-net-name>
///
/// Elements are referred to by name; "scan_in"/"scan_out" name the ports.
/// capture/update lines are emitted when `circuit` is given (net names
/// taken from the node names, falling back to "n<id>").
void write_rsn(std::ostream& os, const Rsn& network,
               const std::vector<std::string>& module_names = {},
               const netlist::Netlist* circuit = nullptr);

/// Resolves the document's pending capture/update attachments against
/// circuit nets by name and applies them to the network. Throws on
/// unknown net names.
void apply_attachments(RsnDocument& doc,
                       const std::map<std::string, netlist::NodeId>& nets);

/// Parses the format produced by write_rsn. Throws std::runtime_error with
/// a line-numbered message on malformed input.
RsnDocument read_rsn(std::istream& is);

/// Renders a one-line summary ("name: R registers, F scan FFs, M muxes").
std::string summarize(const Rsn& network);

}  // namespace rsnsec::rsn
