#pragma once

#include <optional>
#include <vector>

#include "rsn/rsn.hpp"

namespace rsnsec::rsn {

/// One mux configuration assignment derived from a planned scan path.
struct MuxSetting {
  ElemId mux = no_elem;
  std::size_t sel = 0;
};

/// A planned single-configuration scan path: the element sequence from the
/// scan-in to the scan-out port, plus the mux selects that make it the
/// active path. Registers not on the path hold their state under CSU
/// semantics, so a plan fully determines which scan flip-flops shift.
struct PathPlan {
  std::vector<ElemId> elements;      ///< scan-in ... scan-out
  std::vector<MuxSetting> settings;  ///< selects for every mux on the path
  /// Scan flip-flops of the planned path as (register, ff) pairs, ordered
  /// from scan-in side to scan-out side — the chain the path produces.
  std::vector<std::pair<ElemId, std::size_t>> chain;

  /// Chain position of scan FF `ff` of register `reg`, or npos.
  std::size_t position_of(ElemId reg, std::size_t ff) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Finds a scan-in -> scan-out path that traverses `waypoints` (registers
/// or muxes) in the given order under a *single* mux configuration, or
/// nullopt if no such path exists. The search is a DFS over the product of
/// the element graph and the waypoint progress, so it is linear in
/// edges x (waypoints + 1). Paths in the (acyclic) element graph are
/// simple, so the returned configuration is conflict-free: each traversed
/// mux is assigned exactly one select.
std::optional<PathPlan> find_path_through(const Rsn& network,
                                          const std::vector<ElemId>& waypoints);

/// Applies the plan's mux settings to `network`, making plan.elements the
/// active path.
void apply_plan(Rsn& network, const PathPlan& plan);

}  // namespace rsnsec::rsn
