#include "rsn/io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace rsnsec::rsn {

void write_rsn(std::ostream& os, const Rsn& network,
               const std::vector<std::string>& module_names,
               const netlist::Netlist* circuit) {
  os << "rsn " << network.name() << "\n";
  for (std::size_t i = 0; i < module_names.size(); ++i)
    os << "module " << i << " " << module_names[i] << "\n";
  for (ElemId r : network.registers()) {
    const Element& e = network.elem(r);
    os << "register " << e.name << " ffs " << e.ffs.size() << " module "
       << e.module << "\n";
  }
  for (ElemId m : network.muxes()) {
    const Element& e = network.elem(m);
    os << "mux " << e.name << " inputs " << e.inputs.size() << "\n";
  }
  auto emit_connections = [&](ElemId id) {
    const Element& e = network.elem(id);
    for (std::size_t p = 0; p < e.inputs.size(); ++p) {
      if (e.inputs[p] == no_elem) continue;
      os << "connect " << network.elem(e.inputs[p]).name << " " << e.name
         << " " << p << "\n";
    }
  };
  for (ElemId r : network.registers()) emit_connections(r);
  for (ElemId m : network.muxes()) emit_connections(m);
  emit_connections(network.scan_out());

  if (circuit != nullptr) {
    auto net_name = [&](netlist::NodeId id) {
      const std::string& n = circuit->node(id).name;
      return n.empty() ? "n" + std::to_string(id) : n;
    };
    for (ElemId r : network.registers()) {
      const Element& e = network.elem(r);
      for (std::size_t f = 0; f < e.ffs.size(); ++f) {
        if (e.ffs[f].capture_src != netlist::no_node)
          os << "capture " << e.name << " " << f << " "
             << net_name(e.ffs[f].capture_src) << "\n";
        if (e.ffs[f].update_dst != netlist::no_node)
          os << "update " << e.name << " " << f << " "
             << net_name(e.ffs[f].update_dst) << "\n";
      }
    }
  }
}

void apply_attachments(RsnDocument& doc,
                       const std::map<std::string, netlist::NodeId>& nets) {
  for (const Attachment& a : doc.attachments) {
    auto it = nets.find(a.net);
    if (it == nets.end())
      throw std::runtime_error("rsn attachment: unknown circuit net '" +
                               a.net + "'");
    if (a.is_update) {
      doc.network.set_update(a.reg, a.ff, it->second);
    } else {
      doc.network.set_capture(a.reg, a.ff, it->second);
    }
  }
}

RsnDocument read_rsn(std::istream& is) {
  RsnDocument doc;
  std::map<std::string, ElemId, std::less<>> by_name;
  std::string line;
  int line_no = 0;
  bool named = false;

  auto fail = [&](const std::string& msg) -> std::runtime_error {
    return std::runtime_error("rsn parse error at line " +
                              std::to_string(line_no) + ": " + msg);
  };
  auto lookup = [&](const std::string& name) {
    auto it = by_name.find(name);
    if (it == by_name.end()) throw fail("unknown element '" + name + "'");
    return it->second;
  };
  // Guarded numeric fields (like spec_io.cpp): a malformed or absurd
  // number in a hostile file is a line-numbered parse error, never an
  // uncaught std::sto* exception or a multi-gigabyte allocation.
  constexpr std::uint64_t kMaxIndex = 1u << 20;   // modules, ports, ffs
  constexpr std::uint64_t kMaxCount = 1u << 22;   // ffs/inputs per element
  auto parse_num = [&](const std::string& tok, const char* what,
                       std::uint64_t max) -> std::uint64_t {
    std::optional<std::uint64_t> v = parse_u64(tok);
    if (!v)
      throw fail(std::string("invalid ") + what + " '" + tok +
                 "' (expected a non-negative integer)");
    if (*v > max)
      throw fail(std::string(what) + " " + tok + " out of range (max " +
                 std::to_string(max) + ")");
    return *v;
  };

  while (std::getline(is, line)) {
    ++line_no;
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    std::vector<std::string> tok = split(sv, ' ');
    const std::string& kw = tok[0];
    if (kw == "rsn") {
      if (tok.size() != 2) throw fail("expected: rsn <name>");
      if (named) throw fail("duplicate rsn header");
      doc.network = Rsn(tok[1]);
      named = true;
      by_name["scan_in"] = doc.network.scan_in();
      by_name["scan_out"] = doc.network.scan_out();
    } else if (kw == "module") {
      if (tok.size() != 3) throw fail("expected: module <index> <name>");
      auto idx = static_cast<std::size_t>(
          parse_num(tok[1], "module index", kMaxIndex));
      if (idx != doc.module_names.size())
        throw fail("module indices must be consecutive from 0");
      doc.module_names.push_back(tok[2]);
    } else if (kw == "register") {
      if (tok.size() != 6 || tok[2] != "ffs" || tok[4] != "module")
        throw fail("expected: register <name> ffs <n> module <index>");
      if (!named) throw fail("missing rsn header");
      auto n = static_cast<std::size_t>(
          parse_num(tok[3], "scan FF count", kMaxCount));
      // "module -1" marks an unowned register (write_rsn emits it for
      // registers without a module).
      netlist::ModuleId mod =
          tok[5] == "-1"
              ? netlist::no_module
              : static_cast<netlist::ModuleId>(
                    parse_num(tok[5], "module index", kMaxIndex));
      if (by_name.count(tok[1])) throw fail("duplicate element name");
      try {
        by_name[tok[1]] = doc.network.add_register(tok[1], n, mod);
      } catch (const std::exception& e) {
        throw fail(e.what());
      }
    } else if (kw == "mux") {
      if (tok.size() != 4 || tok[2] != "inputs")
        throw fail("expected: mux <name> inputs <k>");
      if (!named) throw fail("missing rsn header");
      auto k = static_cast<std::size_t>(
          parse_num(tok[3], "mux input count", kMaxCount));
      if (by_name.count(tok[1])) throw fail("duplicate element name");
      try {
        by_name[tok[1]] = doc.network.add_mux(tok[1], k);
      } catch (const std::exception& e) {
        throw fail(e.what());
      }
    } else if (kw == "connect") {
      if (tok.size() != 4) throw fail("expected: connect <from> <to> <port>");
      ElemId from = lookup(tok[1]);
      ElemId to = lookup(tok[2]);
      auto port = static_cast<std::size_t>(
          parse_num(tok[3], "port index", kMaxIndex));
      try {
        doc.network.connect(from, to, port);
      } catch (const std::exception& e) {
        throw fail(e.what());
      }
    } else if (kw == "capture" || kw == "update") {
      if (tok.size() != 4)
        throw fail("expected: " + kw + " <register> <ff> <net>");
      Attachment a;
      a.reg = lookup(tok[1]);
      if (doc.network.elem(a.reg).kind != ElemKind::Register)
        throw fail("'" + tok[1] + "' is not a register");
      a.ff = static_cast<std::size_t>(
          parse_num(tok[2], "ff index", kMaxIndex));
      if (a.ff >= doc.network.elem(a.reg).ffs.size())
        throw fail("ff index out of range on '" + tok[1] + "'");
      a.is_update = (kw == "update");
      a.net = tok[3];
      doc.attachments.push_back(std::move(a));
    } else {
      throw fail("unknown keyword '" + kw + "'");
    }
  }
  if (!named) throw fail("empty document (no rsn header)");
  return doc;
}

std::string summarize(const Rsn& network) {
  std::ostringstream os;
  os << network.name() << ": " << network.registers().size()
     << " registers, " << network.num_scan_ffs() << " scan FFs, "
     << network.muxes().size() << " muxes";
  return os.str();
}

}  // namespace rsnsec::rsn
