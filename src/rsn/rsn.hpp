#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rsnsec::rsn {

/// Identifier of an RSN element (port, scan register or scan multiplexer).
using ElemId = std::uint32_t;
constexpr ElemId no_elem = 0xffffffffu;

/// Kind of RSN element.
enum class ElemKind : std::uint8_t { ScanIn, ScanOut, Register, Mux };

/// One scan flip-flop of a scan register, with its optional attachment to
/// the underlying circuit: `capture_src` is the circuit node whose value is
/// loaded in the capture phase; `update_dst` is the circuit flip-flop
/// written in the update phase (Sec. II-A).
struct ScanFF {
  netlist::NodeId capture_src = netlist::no_node;
  netlist::NodeId update_dst = netlist::no_node;
  std::string name;
};

/// One element of the reconfigurable scan network.
struct Element {
  ElemKind kind = ElemKind::Register;
  std::string name;
  /// Driving elements per input port. Registers and the scan-out port have
  /// exactly one port; multiplexers have two or more; the scan-in port has
  /// none. `no_elem` marks a dangling port.
  std::vector<ElemId> inputs;
  /// Multiplexer select (configuration state): index into `inputs`.
  std::size_t sel = 0;
  /// Scan flip-flops, ordered from scan-in side to scan-out side
  /// (registers only).
  std::vector<ScanFF> ffs;
  /// Owning module/instrument (registers only); carries the trust
  /// annotation of the security specification.
  netlist::ModuleId module = netlist::no_module;
};

/// Reconfigurable scan network (IEEE Std 1687 style): a directed acyclic
/// graph of scan registers and scan multiplexers between a scan-in and a
/// scan-out port. Supports the structural edits (cut, reconnect, mux
/// insertion) the resolution step of the paper applies, and computes
/// active scan paths and any-configuration reachability for the security
/// analysis. Value semantics: copying an Rsn snapshots the topology, which
/// the resolver uses to trial-evaluate repair candidates.
class Rsn {
 public:
  /// Creates a network containing only the scan-in and scan-out ports.
  explicit Rsn(std::string name = "rsn");

  /// Network name (benchmark name in the harness).
  const std::string& name() const { return name_; }

  /// The scan-in port element.
  ElemId scan_in() const { return scan_in_; }

  /// The scan-out port element.
  ElemId scan_out() const { return scan_out_; }

  /// Adds a scan register with `n_ffs` scan flip-flops owned by `module`.
  ElemId add_register(std::string name, std::size_t n_ffs,
                      netlist::ModuleId module = netlist::no_module);

  /// Adds a scan multiplexer with `n_inputs` (>= 2) input ports.
  ElemId add_mux(std::string name, std::size_t n_inputs);

  /// Connects the output of `from` to input port `port` of `to`,
  /// replacing any previous driver of that port.
  void connect(ElemId from, ElemId to, std::size_t port = 0);

  /// Clears input port `port` of `to` (leaves it dangling).
  void disconnect(ElemId to, std::size_t port = 0);

  /// Removes input port `port` from multiplexer `mux` entirely, shrinking
  /// the port list (a mux reduced to one input keeps that single port and
  /// behaves as a buffer).
  void remove_mux_input(ElemId mux, std::size_t port);

  /// Appends a new input port to multiplexer `mux` driven by `from`;
  /// returns the new port index.
  std::size_t add_mux_input(ElemId mux, ElemId from);

  /// Routes the output of `elem` to the scan-out port: directly if the
  /// port is dangling, via an existing collector mux, or by inserting a
  /// fresh 2:1 mux in front of scan-out. Returns the mux created, or
  /// `no_elem` if none was needed.
  ElemId attach_to_scan_out(ElemId elem);

  /// Mux configuration.
  void set_mux_select(ElemId mux, std::size_t sel);
  std::size_t mux_select(ElemId mux) const { return elem(mux).sel; }

  /// Scan-FF circuit attachment.
  void set_capture(ElemId reg, std::size_t ff, netlist::NodeId src);
  void set_update(ElemId reg, std::size_t ff, netlist::NodeId dst);

  /// Reassigns the owning module of register `reg`. Workload-construction
  /// aid (benchgen re-homes registers to manufacture cross-module flows in
  /// single-module topologies); call before deriving anything from the
  /// module assignment — circuit attachment, specs, token tables.
  void set_module(ElemId reg, netlist::ModuleId module);

  /// Element accessors.
  std::size_t num_elements() const { return elems_.size(); }
  const Element& elem(ElemId id) const {
    return elems_[static_cast<std::size_t>(id)];
  }

  /// All register element ids, in creation order.
  const std::vector<ElemId>& registers() const { return registers_; }

  /// All multiplexer element ids, in creation order.
  const std::vector<ElemId>& muxes() const { return muxes_; }

  /// Total number of scan flip-flops over all registers.
  std::size_t num_scan_ffs() const;

  /// Elements driven by `from` (fanout), as (element, port) pairs.
  std::vector<std::pair<ElemId, std::size_t>> fanouts(ElemId from) const;

  /// True if the connection graph is cycle-free. The paper's resolution
  /// step must maintain this invariant (Sec. III-D).
  bool is_acyclic() const;

  /// Structural sanity: acyclic, every register/scan-out port driven, every
  /// register's output reaches the scan-out port over some configuration,
  /// and every register reachable from scan-in. Fills `error` on failure.
  bool validate(std::string* error = nullptr) const;

  /// The active scan path for the current mux configuration: elements from
  /// scan-in to scan-out, or an empty vector if the configured path is
  /// broken. Determined by a backward walk from scan-out following selected
  /// mux inputs (Sec. II-A).
  std::vector<ElemId> active_path() const;

  /// Any-configuration reachability: true if data shifted out of `from`
  /// can reach an input of `to` under some mux configuration (i.e. `to` is
  /// a multi-cycle successor of `from` over pure scan paths).
  bool reaches(ElemId from, ElemId to) const;

  /// All elements reachable from `from` (excluding `from` itself).
  std::vector<ElemId> reachable_from(ElemId from) const;

  /// All elements that reach `to` (excluding `to` itself).
  std::vector<ElemId> reaching(ElemId to) const;

 private:
  std::string name_;
  std::vector<Element> elems_;
  std::vector<ElemId> registers_;
  std::vector<ElemId> muxes_;
  ElemId scan_in_ = no_elem;
  ElemId scan_out_ = no_elem;
  int next_auto_mux_ = 0;

  Element& mut(ElemId id) { return elems_[static_cast<std::size_t>(id)]; }
};

}  // namespace rsnsec::rsn
