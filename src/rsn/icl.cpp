#include "rsn/icl.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <optional>
#include <set>
#include <stdexcept>

#include "util/strings.hpp"

namespace rsnsec::rsn::icl {

namespace {

// ---------------------------------------------------------------- lexer

enum class TokKind : std::uint8_t {
  Ident,
  Number,
  SizedConst,  // 2'b01
  String,      // "text" (only inside skipped statements)
  Punct,       // { } [ ] ; : =
  End
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::uint32_t value = 0;  // Number / SizedConst
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::istream& is) {
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    tokenize(text);
  }

  const Token& peek() const { return tokens_[pos_]; }
  Token next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;

  [[noreturn]] static void fail(int line, const std::string& msg) {
    throw std::runtime_error("icl parse error at line " +
                             std::to_string(line) + ": " + msg);
  }

  void tokenize(const std::string& s) {
    int line = 1;
    std::size_t i = 0;
    while (i < s.size()) {
      char c = s[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        while (i < s.size() && s[i] != '\n') ++i;
        continue;
      }
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        i += 2;
        while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) {
          if (s[i] == '\n') ++line;
          ++i;
        }
        i += 2;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) ||
                s[j] == '_' || s[j] == '.'))
          ++j;
        tokens_.push_back({TokKind::Ident, s.substr(i, j - i), 0, line});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j])))
          ++j;
        if (j < s.size() && s[j] == '\'') {
          // Sized binary constant: <width>'b<bits> (also accepts 'd/'h).
          std::size_t k = j + 1;
          if (k >= s.size()) fail(line, "truncated sized constant");
          char base = static_cast<char>(
              std::tolower(static_cast<unsigned char>(s[k])));
          ++k;
          std::size_t v = k;
          while (v < s.size() &&
                 std::isxdigit(static_cast<unsigned char>(s[v])))
            ++v;
          std::string digits = s.substr(k, v - k);
          if (digits.empty()) fail(line, "sized constant without digits");
          int radix = base == 'b' ? 2 : base == 'd' ? 10 : base == 'h' ? 16
                                                                       : 0;
          if (radix == 0) fail(line, "unsupported constant base");
          // Strict radix-checked accumulation: std::stoul would silently
          // stop at the first out-of-base digit ("2'b02" -> 0) and throw
          // an uncaught out_of_range on overflow; a hostile file gets a
          // line-numbered diagnostic instead.
          std::uint64_t value = 0;
          for (char d : digits) {
            int dv = d >= '0' && d <= '9'
                         ? d - '0'
                         : 10 + (std::tolower(static_cast<unsigned char>(d)) -
                                 'a');
            if (dv >= radix)
              fail(line, "digit '" + std::string(1, d) +
                             "' invalid for base-" + std::to_string(radix) +
                             " constant");
            value = value * static_cast<std::uint64_t>(radix) +
                    static_cast<std::uint64_t>(dv);
            if (value > 0xffffffffULL)
              fail(line, "sized constant '" + s.substr(i, v - i) +
                             "' overflows 32 bits");
          }
          tokens_.push_back({TokKind::SizedConst, s.substr(i, v - i),
                             static_cast<std::uint32_t>(value), line});
          i = v;
        } else {
          std::string digits = s.substr(i, j - i);
          std::optional<std::uint64_t> parsed = parse_u64(digits);
          if (!parsed || *parsed > 0xffffffffULL)
            fail(line, "number '" + digits + "' out of range");
          tokens_.push_back({TokKind::Number, std::move(digits),
                             static_cast<std::uint32_t>(*parsed), line});
          i = j;
        }
        continue;
      }
      if (c == '"') {
        std::size_t j = i + 1;
        while (j < s.size() && s[j] != '"') {
          if (s[j] == '\n') ++line;
          ++j;
        }
        if (j >= s.size()) fail(line, "unterminated string literal");
        tokens_.push_back(
            {TokKind::String, s.substr(i + 1, j - i - 1), 0, line});
        i = j + 1;
        continue;
      }
      if (std::string("{}[];:=,()").find(c) != std::string::npos) {
        tokens_.push_back({TokKind::Punct, std::string(1, c), 0, line});
        ++i;
        continue;
      }
      fail(line, std::string("unexpected character '") + c + "'");
    }
    tokens_.push_back({TokKind::End, "<eof>", 0, line});
  }
};

// --------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::istream& is) : lex_(is) {}

  Document parse_document() {
    Document doc;
    while (lex_.peek().kind != TokKind::End) {
      expect_keyword("Module");
      ModuleDecl mod;
      mod.name = expect_ident("module name");
      expect_punct("{");
      while (!accept_punct("}")) parse_statement(mod);
      if (doc.modules.count(mod.name))
        fail("duplicate module '" + mod.name + "'");
      doc.modules.emplace(mod.name, std::move(mod));
    }
    return doc;
  }

 private:
  Lexer lex_;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("icl parse error at line " +
                             std::to_string(lex_.peek().line) + ": " + msg);
  }
  std::string expect_ident(const std::string& what) {
    Token t = lex_.next();
    if (t.kind != TokKind::Ident) fail("expected " + what);
    return t.text;
  }
  void expect_keyword(const std::string& kw) {
    Token t = lex_.next();
    if (t.kind != TokKind::Ident || t.text != kw)
      fail("expected '" + kw + "', got '" + t.text + "'");
  }
  void expect_punct(const std::string& p) {
    Token t = lex_.next();
    if (t.kind != TokKind::Punct || t.text != p)
      fail("expected '" + p + "', got '" + t.text + "'");
  }
  bool accept_punct(const std::string& p) {
    if (lex_.peek().kind == TokKind::Punct && lex_.peek().text == p) {
      lex_.next();
      return true;
    }
    return false;
  }
  std::uint32_t expect_number(const std::string& what) {
    Token t = lex_.next();
    if (t.kind != TokKind::Number) fail("expected " + what);
    return t.value;
  }

  Ref parse_ref() {
    Ref r;
    r.name = expect_ident("signal reference");
    if (accept_punct("[")) {
      r.bit = static_cast<int>(expect_number("bit index"));
      expect_punct("]");
    }
    return r;
  }

  void skip_statement() {
    // Consume until the matching ';' (skipping balanced braces).
    int depth = 0;
    for (;;) {
      Token t = lex_.next();
      if (t.kind == TokKind::End) fail("unterminated statement");
      if (t.kind == TokKind::Punct) {
        if (t.text == "{") ++depth;
        if (t.text == "}") {
          if (depth == 0) fail("unexpected '}'");
          if (--depth == 0) return;  // brace-form statement
        }
        if (t.text == ";" && depth == 0) return;
      }
    }
  }

  void parse_statement(ModuleDecl& mod) {
    std::string kw = expect_ident("statement keyword");
    if (kw == "ScanInPort") {
      mod.scan_in_ports.push_back(expect_ident("port name"));
      expect_punct(";");
    } else if (kw == "ScanOutPort") {
      std::string name = expect_ident("port name");
      if (accept_punct(";")) {
        mod.scan_out_ports.emplace_back(name, Ref{});
        return;
      }
      expect_punct("{");
      Ref source;
      while (!accept_punct("}")) {
        std::string attr = expect_ident("attribute");
        if (attr == "Source") {
          source = parse_ref();
          expect_punct(";");
        } else {
          skip_statement();
        }
      }
      mod.scan_out_ports.emplace_back(name, source);
    } else if (kw == "ScanRegister") {
      ScanRegisterDecl reg;
      reg.name = expect_ident("register name");
      if (accept_punct("[")) {
        std::uint32_t msb = expect_number("msb");
        expect_punct(":");
        std::uint32_t lsb = expect_number("lsb");
        expect_punct("]");
        reg.width = static_cast<std::size_t>(
                        msb > lsb ? msb - lsb : lsb - msb) + 1;
      }
      if (accept_punct(";")) {
        mod.registers.push_back(std::move(reg));
        return;
      }
      expect_punct("{");
      while (!accept_punct("}")) {
        std::string attr = expect_ident("attribute");
        if (attr == "ScanInSource") {
          reg.scan_in_source = parse_ref();
          expect_punct(";");
        } else {
          skip_statement();  // CaptureSource, ResetValue, ...
        }
      }
      mod.registers.push_back(std::move(reg));
    } else if (kw == "ScanMux") {
      ScanMuxDecl mux;
      mux.name = expect_ident("mux name");
      expect_keyword("SelectedBy");
      mux.select = expect_ident("select signal");
      expect_punct("{");
      while (!accept_punct("}")) {
        Token t = lex_.next();
        if (t.kind != TokKind::SizedConst && t.kind != TokKind::Number)
          fail("expected select constant");
        expect_punct(":");
        Ref src = parse_ref();
        expect_punct(";");
        mux.inputs.emplace_back(t.value, src);
      }
      if (mux.inputs.size() < 2) fail("ScanMux needs >= 2 inputs");
      mod.muxes.push_back(std::move(mux));
    } else if (kw == "Instance") {
      InstanceDecl inst;
      inst.name = expect_ident("instance name");
      expect_keyword("Of");
      inst.of_module = expect_ident("module name");
      if (accept_punct(";")) {
        mod.instances.push_back(std::move(inst));
        return;
      }
      expect_punct("{");
      while (!accept_punct("}")) {
        std::string attr = expect_ident("attribute");
        if (attr == "InputPort") {
          std::string port = expect_ident("port name");
          expect_punct("=");
          inst.bindings[port] = parse_ref();
          expect_punct(";");
        } else {
          skip_statement();
        }
      }
      mod.instances.push_back(std::move(inst));
    } else if (kw == "Attribute" || kw == "Alias" ||
               kw == "LocalParameter" || kw == "Parameter" ||
               kw == "SelectPort" || kw == "ToSelectPort" ||
               kw == "CaptureEnPort" || kw == "ShiftEnPort" ||
               kw == "UpdateEnPort" || kw == "TCKPort" ||
               kw == "ResetPort" || kw == "DataInPort" ||
               kw == "DataOutPort" || kw == "LogicSignal") {
      skip_statement();
    } else {
      fail("unsupported statement '" + kw + "'");
    }
  }
};

// ----------------------------------------------------------- elaborator

class Elaborator {
 public:
  Elaborator(const Document& doc, RsnDocument& out)
      : doc_(doc), out_(out) {}

  /// Elaborates `mod` under hierarchical `prefix`; `input` is the element
  /// feeding the module's scan-in port. Returns the element producing the
  /// module's scan-out.
  ElemId run(const ModuleDecl& mod, const std::string& prefix,
             ElemId input) {
    if (mod.scan_in_ports.size() != 1 || mod.scan_out_ports.size() != 1)
      throw std::runtime_error(
          "icl elaborate: module '" + mod.name +
          "' must have exactly one ScanInPort and one ScanOutPort");

    std::map<std::string, ElemId> producer;
    producer[mod.scan_in_ports.front()] = input;

    // Instrument id: one per elaborated instance that owns registers.
    netlist::ModuleId instrument = netlist::no_module;
    if (!mod.registers.empty()) {
      out_.module_names.push_back(prefix.empty() ? mod.name : prefix);
      instrument =
          static_cast<netlist::ModuleId>(out_.module_names.size() - 1);
    }

    // Pass 1: create local elements.
    for (const ScanRegisterDecl& r : mod.registers) {
      producer[r.name] = out_.network.add_register(
          prefix.empty() ? r.name : prefix + "." + r.name, r.width,
          instrument);
    }
    for (const ScanMuxDecl& m : mod.muxes) {
      producer[m.name] = out_.network.add_mux(
          prefix.empty() ? m.name : prefix + "." + m.name,
          m.inputs.size());
    }

    // Pass 2: elaborate instances; bindings may reference other
    // instances, so iterate to a fixed point.
    std::vector<const InstanceDecl*> pending;
    for (const InstanceDecl& i : mod.instances) pending.push_back(&i);
    while (!pending.empty()) {
      bool progress = false;
      for (auto it = pending.begin(); it != pending.end();) {
        const InstanceDecl& inst = **it;
        auto child_it = doc_.modules.find(inst.of_module);
        if (child_it == doc_.modules.end())
          throw std::runtime_error("icl elaborate: unknown module '" +
                                   inst.of_module + "'");
        const ModuleDecl& child = child_it->second;
        if (child.scan_in_ports.size() != 1)
          throw std::runtime_error("icl elaborate: module '" + child.name +
                                   "' must have exactly one ScanInPort");
        const std::string& port = child.scan_in_ports.front();
        auto bind = inst.bindings.find(port);
        if (bind == inst.bindings.end())
          throw std::runtime_error("icl elaborate: instance '" + inst.name +
                                   "' does not bind port '" + port + "'");
        auto src = producer.find(bind->second.name);
        if (src == producer.end()) {
          ++it;  // producer not elaborated yet; retry next round
          continue;
        }
        std::string child_prefix =
            prefix.empty() ? inst.name : prefix + "." + inst.name;
        producer[inst.name] = run(child, child_prefix, src->second);
        it = pending.erase(it);
        progress = true;
      }
      if (!progress)
        throw std::runtime_error(
            "icl elaborate: unresolvable instance bindings in module '" +
            mod.name + "' (cycle or unknown reference)");
    }

    // Pass 3: connect local elements.
    auto resolve = [&](const Ref& ref, const std::string& what) {
      auto it = producer.find(ref.name);
      if (it == producer.end())
        throw std::runtime_error("icl elaborate: unknown reference '" +
                                 ref.name + "' in " + what);
      return it->second;
    };
    for (const ScanRegisterDecl& r : mod.registers) {
      if (r.scan_in_source.name.empty())
        throw std::runtime_error("icl elaborate: register '" + r.name +
                                 "' has no ScanInSource");
      out_.network.connect(resolve(r.scan_in_source, "register " + r.name),
                           producer[r.name], 0);
    }
    for (const ScanMuxDecl& m : mod.muxes) {
      // Port order follows ascending select values.
      auto inputs = m.inputs;
      std::sort(inputs.begin(), inputs.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t p = 0; p < inputs.size(); ++p) {
        out_.network.connect(resolve(inputs[p].second, "mux " + m.name),
                             producer[m.name], p);
      }
    }
    return resolve(mod.scan_out_ports.front().second,
                   "scan-out of module " + mod.name);
  }

 private:
  const Document& doc_;
  RsnDocument& out_;
};

}  // namespace

const ModuleDecl& Document::top() const {
  std::set<std::string> instantiated;
  for (const auto& [name, mod] : modules)
    for (const InstanceDecl& i : mod.instances)
      instantiated.insert(i.of_module);
  const ModuleDecl* top = nullptr;
  for (const auto& [name, mod] : modules) {
    if (instantiated.count(name)) continue;
    if (top != nullptr)
      throw std::runtime_error(
          "icl: ambiguous top module ('" + top->name + "' and '" + name +
          "'); pass a top name explicitly");
    top = &mod;
  }
  if (top == nullptr)
    throw std::runtime_error("icl: no top module (instantiation cycle?)");
  return *top;
}

Document parse(std::istream& is) { return Parser(is).parse_document(); }

RsnDocument elaborate(const Document& doc, const std::string& top_name) {
  const ModuleDecl* top = nullptr;
  if (top_name.empty()) {
    top = &doc.top();
  } else {
    auto it = doc.modules.find(top_name);
    if (it == doc.modules.end())
      throw std::runtime_error("icl: unknown top module '" + top_name + "'");
    top = &it->second;
  }
  RsnDocument out;
  out.network = Rsn(top->name);
  Elaborator el(doc, out);
  ElemId result = el.run(*top, "", out.network.scan_in());
  out.network.connect(result, out.network.scan_out(), 0);
  return out;
}

RsnDocument load_icl(std::istream& is, const std::string& top_name) {
  Document doc = parse(is);
  return elaborate(doc, top_name);
}

}  // namespace rsnsec::rsn::icl
