#pragma once

#include <cstdint>
#include <vector>

#include "netlist/sim.hpp"
#include "rsn/rsn.hpp"

namespace rsnsec::rsn {

/// Capture/Shift/Update simulator for an RSN coupled to its underlying
/// circuit (Sec. II-A). Used by tests and examples to demonstrate, bit by
/// bit, the pure and hybrid attack paths of the paper's running example —
/// and to verify that the transformed (secure) network no longer allows
/// them.
///
/// Like netlist::Simulator, all values are 64-bit packed parallel patterns.
class CsuSimulator {
 public:
  /// Couples `rsn` (whose mux selects define the active path) with the
  /// circuit `nl`.
  CsuSimulator(const Rsn& rsn, const netlist::Netlist& nl);

  /// Underlying circuit simulator (flip-flop/input state access).
  netlist::Simulator& circuit() { return sim_; }
  const netlist::Simulator& circuit() const { return sim_; }

  /// Value of scan flip-flop `ff` of register `reg`.
  std::uint64_t scan_value(ElemId reg, std::size_t ff) const;

  /// Sets the value of scan flip-flop `ff` of register `reg`.
  void set_scan_value(ElemId reg, std::size_t ff, std::uint64_t v);

  /// Capture phase: every scan flip-flop on the active path with a capture
  /// source loads the current combinational value of that circuit node.
  void capture();

  /// One shift cycle: data moves one position along the active scan path;
  /// the first flip-flop loads `scan_in_bits`; returns the bits shifted
  /// out of the scan-out port. Registers off the active path hold.
  std::uint64_t shift(std::uint64_t scan_in_bits);

  /// Update phase: every scan flip-flop on the active path with an update
  /// destination writes its value into that circuit flip-flop.
  void update();

  /// Runs `n` functional clock cycles of the underlying circuit.
  void clock_circuit(std::size_t n = 1);

  /// Scan flip-flops (as (register, ff-index) pairs) on the current active
  /// path, ordered from scan-in to scan-out; empty if the configured path
  /// is broken.
  std::vector<std::pair<ElemId, std::size_t>> active_chain() const;

 private:
  const Rsn& rsn_;
  netlist::Simulator sim_;
  // Scan state: values_[register-order index][ff index].
  std::vector<std::vector<std::uint64_t>> values_;
  std::vector<std::size_t> reg_slot_;  // ElemId -> index into values_

  std::size_t slot(ElemId reg) const {
    return reg_slot_[static_cast<std::size_t>(reg)];
  }
};

}  // namespace rsnsec::rsn
