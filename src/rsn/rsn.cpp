#include "rsn/rsn.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rsnsec::rsn {

Rsn::Rsn(std::string name) : name_(std::move(name)) {
  scan_in_ = static_cast<ElemId>(elems_.size());
  elems_.push_back({ElemKind::ScanIn, "scan_in", {}, 0, {}, netlist::no_module});
  scan_out_ = static_cast<ElemId>(elems_.size());
  elems_.push_back({ElemKind::ScanOut,
                    "scan_out",
                    {no_elem},
                    0,
                    {},
                    netlist::no_module});
}

ElemId Rsn::add_register(std::string name, std::size_t n_ffs,
                         netlist::ModuleId module) {
  if (n_ffs == 0) throw std::invalid_argument("register needs >= 1 scan FF");
  auto id = static_cast<ElemId>(elems_.size());
  Element e;
  e.kind = ElemKind::Register;
  e.name = std::move(name);
  e.inputs.assign(1, no_elem);
  e.module = module;
  e.ffs.resize(n_ffs);
  for (std::size_t i = 0; i < n_ffs; ++i)
    e.ffs[i].name = e.name + "[" + std::to_string(i) + "]";
  elems_.push_back(std::move(e));
  registers_.push_back(id);
  return id;
}

ElemId Rsn::add_mux(std::string name, std::size_t n_inputs) {
  if (n_inputs < 2) throw std::invalid_argument("mux needs >= 2 inputs");
  auto id = static_cast<ElemId>(elems_.size());
  Element e;
  e.kind = ElemKind::Mux;
  e.name = std::move(name);
  e.inputs.assign(n_inputs, no_elem);
  elems_.push_back(std::move(e));
  muxes_.push_back(id);
  return id;
}

void Rsn::connect(ElemId from, ElemId to, std::size_t port) {
  Element& t = mut(to);
  if (t.kind == ElemKind::ScanIn)
    throw std::invalid_argument("scan-in port has no inputs");
  if (port >= t.inputs.size())
    throw std::out_of_range("no such input port on '" + t.name + "'");
  t.inputs[port] = from;
}

void Rsn::disconnect(ElemId to, std::size_t port) {
  Element& t = mut(to);
  if (port >= t.inputs.size())
    throw std::out_of_range("no such input port on '" + t.name + "'");
  t.inputs[port] = no_elem;
}

void Rsn::remove_mux_input(ElemId mux, std::size_t port) {
  Element& m = mut(mux);
  assert(m.kind == ElemKind::Mux);
  if (port >= m.inputs.size())
    throw std::out_of_range("no such mux port");
  if (m.inputs.size() <= 1)
    throw std::logic_error("cannot remove the last mux input");
  m.inputs.erase(m.inputs.begin() + static_cast<std::ptrdiff_t>(port));
  if (m.sel >= m.inputs.size()) m.sel = m.inputs.size() - 1;
}

std::size_t Rsn::add_mux_input(ElemId mux, ElemId from) {
  Element& m = mut(mux);
  assert(m.kind == ElemKind::Mux);
  m.inputs.push_back(from);
  return m.inputs.size() - 1;
}

ElemId Rsn::attach_to_scan_out(ElemId elem_id) {
  Element& so = mut(scan_out_);
  ElemId driver = so.inputs[0];
  if (driver == no_elem) {
    so.inputs[0] = elem_id;
    return no_elem;
  }
  if (driver == elem_id) return no_elem;
  if (elem(driver).kind == ElemKind::Mux && fanouts(driver).size() == 1) {
    // Reuse the existing mux in front of scan-out as a collector — but
    // only if it feeds nothing else, so the attached element cannot
    // reach other segments through it.
    for (ElemId in : elem(driver).inputs)
      if (in == elem_id) return no_elem;
    add_mux_input(driver, elem_id);
    return no_elem;
  }
  ElemId m = add_mux("collect_mux" + std::to_string(next_auto_mux_++), 2);
  connect(driver, m, 0);
  connect(elem_id, m, 1);
  connect(m, scan_out_, 0);
  return m;
}

void Rsn::set_mux_select(ElemId mux, std::size_t sel) {
  Element& m = mut(mux);
  assert(m.kind == ElemKind::Mux);
  if (sel >= m.inputs.size()) throw std::out_of_range("mux select");
  m.sel = sel;
}

void Rsn::set_capture(ElemId reg, std::size_t ff, netlist::NodeId src) {
  Element& r = mut(reg);
  assert(r.kind == ElemKind::Register);
  r.ffs.at(ff).capture_src = src;
}

void Rsn::set_update(ElemId reg, std::size_t ff, netlist::NodeId dst) {
  Element& r = mut(reg);
  assert(r.kind == ElemKind::Register);
  r.ffs.at(ff).update_dst = dst;
}

void Rsn::set_module(ElemId reg, netlist::ModuleId module) {
  Element& r = mut(reg);
  assert(r.kind == ElemKind::Register);
  r.module = module;
}

std::size_t Rsn::num_scan_ffs() const {
  std::size_t n = 0;
  for (ElemId r : registers_) n += elem(r).ffs.size();
  return n;
}

std::vector<std::pair<ElemId, std::size_t>> Rsn::fanouts(ElemId from) const {
  std::vector<std::pair<ElemId, std::size_t>> out;
  for (ElemId id = 0; id < elems_.size(); ++id) {
    const Element& e = elem(id);
    for (std::size_t p = 0; p < e.inputs.size(); ++p)
      if (e.inputs[p] == from) out.emplace_back(id, p);
  }
  return out;
}

bool Rsn::is_acyclic() const {
  // DFS over input edges; a back edge means a cycle.
  enum class Mark : std::uint8_t { Unseen, OnStack, Done };
  std::vector<Mark> marks(elems_.size(), Mark::Unseen);
  std::vector<std::pair<ElemId, std::size_t>> stack;
  for (ElemId r = 0; r < elems_.size(); ++r) {
    if (marks[r] != Mark::Unseen) continue;
    marks[r] = Mark::OnStack;
    stack.emplace_back(r, 0);
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const Element& e = elem(id);
      if (next < e.inputs.size()) {
        ElemId f = e.inputs[next++];
        if (f == no_elem) continue;
        if (marks[f] == Mark::OnStack) return false;
        if (marks[f] == Mark::Unseen) {
          marks[f] = Mark::OnStack;
          stack.emplace_back(f, 0);
        }
      } else {
        marks[id] = Mark::Done;
        stack.pop_back();
      }
    }
  }
  return true;
}

bool Rsn::validate(std::string* error) const {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (!is_acyclic()) return fail("scan network contains a cycle");
  for (ElemId id = 0; id < elems_.size(); ++id) {
    const Element& e = elem(id);
    for (std::size_t p = 0; p < e.inputs.size(); ++p) {
      if (e.inputs[p] == no_elem &&
          (e.kind == ElemKind::Register || e.kind == ElemKind::ScanOut))
        return fail("dangling input on '" + e.name + "'");
      if (e.inputs[p] != no_elem && e.inputs[p] >= elems_.size())
        return fail("invalid input id on '" + e.name + "'");
    }
  }
  // Every register must be reachable from scan-in and must reach scan-out
  // under some configuration (the paper's method keeps every scan register
  // in the final secure network).
  std::vector<ElemId> fwd = reachable_from(scan_in_);
  std::vector<bool> fwd_set(elems_.size(), false);
  for (ElemId id : fwd) fwd_set[id] = true;
  std::vector<ElemId> bwd = reaching(scan_out_);
  std::vector<bool> bwd_set(elems_.size(), false);
  for (ElemId id : bwd) bwd_set[id] = true;
  for (ElemId r : registers_) {
    if (!fwd_set[r])
      return fail("register '" + elem(r).name + "' unreachable from scan-in");
    if (!bwd_set[r])
      return fail("register '" + elem(r).name + "' cannot reach scan-out");
  }
  return true;
}

std::vector<ElemId> Rsn::active_path() const {
  std::vector<ElemId> rev;
  ElemId cur = scan_out_;
  std::vector<bool> visited(elems_.size(), false);
  while (cur != no_elem) {
    if (visited[cur]) return {};  // configured cycle: broken configuration
    visited[cur] = true;
    rev.push_back(cur);
    const Element& e = elem(cur);
    if (e.kind == ElemKind::ScanIn) {
      return {rev.rbegin(), rev.rend()};
    }
    if (e.inputs.empty()) return {};
    cur = (e.kind == ElemKind::Mux) ? e.inputs[e.sel] : e.inputs[0];
  }
  return {};  // dangling port on the configured path
}

std::vector<ElemId> Rsn::reachable_from(ElemId from) const {
  // Forward reachability needs fanout edges; build a reverse adjacency
  // once per query (element counts are modest and the resolver snapshots).
  std::vector<std::vector<ElemId>> fanout(elems_.size());
  for (ElemId id = 0; id < elems_.size(); ++id) {
    for (ElemId in : elem(id).inputs)
      if (in != no_elem) fanout[in].push_back(id);
  }
  std::vector<bool> seen(elems_.size(), false);
  std::vector<ElemId> queue{from}, out;
  seen[from] = true;
  while (!queue.empty()) {
    ElemId id = queue.back();
    queue.pop_back();
    for (ElemId s : fanout[id]) {
      if (!seen[s]) {
        seen[s] = true;
        out.push_back(s);
        queue.push_back(s);
      }
    }
  }
  return out;
}

std::vector<ElemId> Rsn::reaching(ElemId to) const {
  std::vector<bool> seen(elems_.size(), false);
  std::vector<ElemId> queue{to}, out;
  seen[to] = true;
  while (!queue.empty()) {
    ElemId id = queue.back();
    queue.pop_back();
    for (ElemId in : elem(id).inputs) {
      if (in != no_elem && !seen[in]) {
        seen[in] = true;
        out.push_back(in);
        queue.push_back(in);
      }
    }
  }
  return out;
}

bool Rsn::reaches(ElemId from, ElemId to) const {
  if (from == to) return false;
  std::vector<ElemId> r = reachable_from(from);
  return std::find(r.begin(), r.end(), to) != r.end();
}

}  // namespace rsnsec::rsn
