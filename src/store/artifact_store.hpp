#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rsnsec::store {

/// Tuning knobs for an ArtifactStore.
struct StoreOptions {
  /// On-disk size cap in bytes; when non-zero, every put() is followed by
  /// an LRU garbage collection down to this cap. 0 = unbounded (collect
  /// explicitly via gc() / the `rsnsec store gc` subcommand).
  std::uint64_t max_bytes = 0;
  /// Byte cap of the in-memory tier (decoded-blob payload bytes).
  std::uint64_t memory_max_bytes = 256ull << 20;
  /// Whether the in-memory tier is enabled at all. Disable to test the
  /// disk path in isolation.
  bool memory_tier = true;
  /// Test seam: how gc() reads an object's mtime. Defaults to
  /// std::filesystem::last_write_time; tests inject probes that fail for
  /// chosen paths to pin the error-handling contract (a failed mtime read
  /// makes the object an oldest-first eviction candidate, it never
  /// silently exempts it from collection).
  std::function<std::filesystem::file_time_type(
      const std::filesystem::path&, std::error_code&)>
      mtime_probe;
};

/// Monotonic counters of one store instance. These mirror the ambient
/// `store.*` obs counters so tests and tools can assert on store behavior
/// without installing a TraceSession.
struct StoreCounters {
  std::uint64_t hits = 0;       ///< analyses served from the store
  std::uint64_t misses = 0;     ///< analyses recomputed (then published)
  std::uint64_t corrupt = 0;    ///< blobs rejected and quarantined
  std::uint64_t evictions = 0;  ///< blobs removed by gc()
  /// Failed mtime reads (gc) or touches (load). Each one degrades LRU
  /// accuracy for that object — gc() treats it as oldest — so a non-zero
  /// count on a healthy filesystem deserves investigation.
  std::uint64_t mtime_errors = 0;
};

/// Aggregate on-disk state, as reported by `rsnsec store stats`.
struct DiskStats {
  std::uint64_t objects = 0;      ///< valid-envelope object files
  std::uint64_t bytes = 0;        ///< total size of object files
  std::uint64_t quarantined = 0;  ///< files parked in quarantine/
};

/// Result of a full verification scan.
struct VerifyResult {
  std::uint64_t valid = 0;
  std::uint64_t corrupt = 0;  ///< rejected and moved to quarantine/
};

/// Content-addressed artifact store: an on-disk map from 64-hex-char
/// content keys to opaque payload blobs, fronted by an in-process LRU
/// memory tier.
///
/// Layout under the root directory:
///   objects/<key[0:2]>/<key>.art   — published blobs
///   quarantine/<original name>.N   — blobs that failed validation
///
/// Each object file wraps the payload in an envelope of magic, format
/// version and a trailing FNV-1a checksum; load() validates all three and
/// treats any mismatch — truncation, bit flip, version skew — as a clean
/// miss, moving the offending file to quarantine/ so it is never
/// revalidated (and remains available for debugging). Publication is
/// write-to-temp-then-rename, so concurrent writers of the same key are
/// safe: rename is atomic and last-wins, and both writers produced the
/// same bytes by construction (the key is a content hash).
///
/// All methods are safe to call from multiple threads; cross-process
/// safety relies only on atomic rename within one filesystem.
class ArtifactStore {
 public:
  explicit ArtifactStore(std::filesystem::path root,
                         StoreOptions options = {});

  const std::filesystem::path& root() const { return root_; }
  const StoreOptions& options() const { return options_; }

  /// Fetches the payload stored under `key`, or nullopt if absent or
  /// invalid (invalid blobs are quarantined and counted as corrupt).
  /// A successful disk load refreshes the object's mtime — the LRU clock
  /// used by gc(). Never throws on malformed data.
  std::optional<std::string> load(const std::string& key);

  /// Publishes `payload` under `key` (write-to-temp + atomic rename) and
  /// inserts it into the memory tier. If StoreOptions::max_bytes is
  /// non-zero, collects down to the cap afterwards. Throws
  /// std::runtime_error on I/O failure (disk full, unwritable root).
  void put(const std::string& key, std::string_view payload);

  /// Drops `key` everywhere after a higher layer rejected its payload
  /// (structurally invalid despite a valid envelope checksum): removes
  /// it from the memory tier and quarantines the on-disk object,
  /// counting it corrupt. Without this, a poisoned memory-tier entry
  /// would be served again on the next lookup.
  void discard(const std::string& key);

  /// Evicts least-recently-used objects (by mtime) until the on-disk
  /// total is at most `max_bytes`; evicted keys leave the memory tier
  /// too. gc(0) empties the store. Returns the number of evicted objects.
  std::size_t gc(std::uint64_t max_bytes);

  /// Validates every object's envelope, quarantining failures.
  VerifyResult verify();

  /// Scans the on-disk state.
  DiskStats disk_stats() const;

  /// Records a served-from-store / recomputed outcome. Called by the
  /// cache driver (run_with_store), not by load()/put() themselves, so
  /// that a corrupt blob followed by recomputation counts as exactly one
  /// miss.
  void note_hit();
  void note_miss();

  /// Snapshot of this instance's counters.
  StoreCounters counters() const;

 private:
  std::filesystem::path root_;
  StoreOptions options_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> mtime_errors_{0};

  // In-memory tier: key -> payload, LRU by access order.
  struct MemEntry {
    std::string key;
    std::shared_ptr<const std::string> payload;
  };
  mutable std::mutex mem_mutex_;
  std::list<MemEntry> mem_lru_;  // front = most recent
  std::unordered_map<std::string, std::list<MemEntry>::iterator> mem_index_;
  std::uint64_t mem_bytes_ = 0;

  std::filesystem::path object_path(const std::string& key) const;
  void quarantine(const std::filesystem::path& file);
  void mem_insert(const std::string& key, std::string payload);
  std::shared_ptr<const std::string> mem_lookup(const std::string& key);
  void mem_erase(const std::string& key);

  /// Validates an envelope in place; returns the payload view on success.
  static std::optional<std::string_view> unwrap(std::string_view blob);
};

/// True if `key` has the shape of a store key (64 lowercase hex chars).
bool is_store_key(std::string_view key);

}  // namespace rsnsec::store
