#include "store/dep_cache.hpp"

#include "obs/trace.hpp"

namespace rsnsec::store {

namespace {

/// Versioned domain label: any change to the key recipe or the snapshot
/// payload format must bump this, so old blobs become unreachable rather
/// than mis-decoded.
constexpr std::string_view kDepKeyLabel = "rsnsec-dep-v4";

void encode_options_fingerprint(ByteWriter& w,
                                const dep::DepOptions& options) {
  w.u8(static_cast<std::uint8_t>(options.mode));
  w.u8(options.bridge_internal ? 1 : 0);
  w.zigzag(options.sim_rounds);
  w.varint(options.sat_conflict_limit);
  w.varint(options.max_cycles);
  w.varint(options.seed);
  // cone_cache is result-invariant for every counter except
  // cone_cache_hits — which DepStats reports and the snapshot replays —
  // so it participates in the key to keep even that field bit-identical.
  w.u8(options.cone_cache ? 1 : 0);
  // Like cone_cache: matrices are bit-identical either way, but the
  // ternary_resolved / sat_* counters the snapshot replays are not.
  w.u8(options.ternary_prefilter ? 1 : 0);
  // Incremental SAT and clause sharing keep matrices and classification
  // counters bit-identical, but the solver work counters the snapshot
  // replays (solver_solves, cores_reused, ...) depend on both.
  w.u8(options.sat_incremental ? 1 : 0);
  w.u8(options.share_clauses ? 1 : 0);
  // The representation choice selects the snapshot payload format (dense
  // vs. tiled sections) and the footprint stats, so it must split the key
  // space — otherwise a dense analyzer would keep discarding a tiled
  // analyzer's perfectly valid blobs and vice versa.
  w.u8(static_cast<std::uint8_t>(options.partition));
  // NOT num_threads: bit-identical at any thread count. NOT
  // tile_spill_budget / spill_backend: pure execution knobs — the
  // snapshot is always fully resident.
}

void encode_bits(ByteWriter& w, const std::vector<bool>& bits) {
  w.varint(bits.size());
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) word |= 1ULL << (i & 63);
    if ((i & 63) == 63) {
      w.fixed64(word);
      word = 0;
    }
  }
  if (bits.size() % 64 != 0) w.fixed64(word);
}

std::vector<bool> decode_bits(ByteReader& r) {
  std::uint64_t n = r.varint();
  if (n > (1ull << 32)) throw CodecError("bit vector length out of range");
  std::vector<bool> bits(static_cast<std::size_t>(n));
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if ((i & 63) == 0) word = r.fixed64();
    bits[i] = (word >> (i & 63)) & 1;
  }
  if (n % 64 != 0 && (word >> (n % 64)) != 0)
    throw CodecError("bit vector tail bits set");
  return bits;
}

void encode_stats(ByteWriter& w, const dep::DepStats& s) {
  // Logical result fields only: the wall-clock fields and threads_used
  // describe the run that produced the snapshot, not the result, and
  // restore() zeroes them regardless.
  w.varint(s.circuit_ffs);
  w.varint(s.internal_ffs);
  w.varint(s.denoted_ffs_before);
  w.varint(s.denoted_ffs_after);
  w.varint(s.deps_before_bridging);
  w.varint(s.deps_after_bridging);
  w.varint(s.closure_deps);
  w.varint(s.closure_path_deps);
  w.varint(s.sim_resolved);
  w.varint(s.ternary_resolved);
  w.varint(s.sat_calls);
  w.varint(s.sat_functional);
  w.varint(s.sat_structural);
  w.varint(s.sat_unknown);
  w.varint(s.cone_cache_hits);
  w.varint(s.solver_solves);
  w.varint(s.solver_conflicts);
  w.varint(s.solver_decisions);
  w.varint(s.solver_propagations);
  w.varint(s.solver_restarts);
  w.varint(s.solver_learned);
  w.varint(s.lbd_protected);
  w.varint(s.inprocessing_rounds);
  w.varint(s.cores_reused);
  w.varint(s.rotation_witnesses);
  w.varint(s.shared_clauses);
  // v4: partition region count (restore() recomputes it anyway and
  // prefers the live value; encoded for payload self-containedness). The
  // footprint fields (matrix_bytes, tiles_*) are intentionally absent:
  // they describe the producing process, not the result, and restore()
  // refreshes them from the restored matrices.
  w.varint(s.regions);
}

dep::DepStats decode_stats(ByteReader& r) {
  dep::DepStats s;
  s.circuit_ffs = static_cast<std::size_t>(r.varint());
  s.internal_ffs = static_cast<std::size_t>(r.varint());
  s.denoted_ffs_before = static_cast<std::size_t>(r.varint());
  s.denoted_ffs_after = static_cast<std::size_t>(r.varint());
  s.deps_before_bridging = static_cast<std::size_t>(r.varint());
  s.deps_after_bridging = static_cast<std::size_t>(r.varint());
  s.closure_deps = static_cast<std::size_t>(r.varint());
  s.closure_path_deps = static_cast<std::size_t>(r.varint());
  s.sim_resolved = r.varint();
  s.ternary_resolved = r.varint();
  s.sat_calls = r.varint();
  s.sat_functional = r.varint();
  s.sat_structural = r.varint();
  s.sat_unknown = r.varint();
  s.cone_cache_hits = r.varint();
  s.solver_solves = r.varint();
  s.solver_conflicts = r.varint();
  s.solver_decisions = r.varint();
  s.solver_propagations = r.varint();
  s.solver_restarts = r.varint();
  s.solver_learned = r.varint();
  s.lbd_protected = r.varint();
  s.inprocessing_rounds = r.varint();
  s.cores_reused = r.varint();
  s.rotation_witnesses = r.varint();
  s.shared_clauses = r.varint();
  s.regions = static_cast<std::size_t>(r.varint());
  return s;
}

}  // namespace

std::string dep_cache_key(const netlist::Netlist& nl, const rsn::Rsn& network,
                          const dep::DepOptions& options) {
  ByteWriter w;
  w.str(kDepKeyLabel);
  ByteWriter nl_bytes;
  encode_netlist(nl_bytes, nl);
  w.section(nl_bytes);
  ByteWriter rsn_bytes;
  encode_rsn(rsn_bytes, network);
  w.section(rsn_bytes);
  ByteWriter opt_bytes;
  encode_options_fingerprint(opt_bytes, options);
  w.section(opt_bytes);
  return Sha256::hex(w.bytes());
}

void encode_dep_snapshot(ByteWriter& w,
                         const dep::DependencyAnalyzer::AnalysisSnapshot& s) {
  encode_bits(w, s.internal);
  // v4: representation flag selects which pair of matrix sections
  // follows. Tiled snapshots store only the non-zero tiles — on sparse
  // large-scale matrices the blob shrinks by the same factor as RAM.
  w.u8(s.tiled ? 1 : 0);
  if (s.tiled) {
    ByteWriter one_cycle;
    encode_tiled_matrix(one_cycle, s.one_cycle_tiled);
    w.section(one_cycle);
    ByteWriter closure;
    encode_tiled_matrix(closure, s.closure_tiled);
    w.section(closure);
  } else {
    ByteWriter one_cycle;
    encode_dep_matrix(one_cycle, s.one_cycle);
    w.section(one_cycle);
    ByteWriter closure;
    encode_dep_matrix(closure, s.closure);
    w.section(closure);
  }
  w.varint(s.capture_deps.size());
  for (const auto& reg : s.capture_deps) {
    w.varint(reg.size());
    for (const auto& deps : reg) {
      w.varint(deps.size());
      for (const dep::CaptureDep& d : deps) {
        w.varint(d.circuit_ff);
        w.u8(static_cast<std::uint8_t>(d.kind));
      }
    }
  }
  encode_stats(w, s.stats);
}

dep::DependencyAnalyzer::AnalysisSnapshot decode_dep_snapshot(ByteReader& r) {
  dep::DependencyAnalyzer::AnalysisSnapshot s;
  s.internal = decode_bits(r);
  const std::uint8_t tiled = r.u8();
  if (tiled > 1) throw CodecError("matrix representation flag out of range");
  s.tiled = tiled != 0;
  if (s.tiled) {
    ByteReader sec = r.section();
    s.one_cycle_tiled = decode_tiled_matrix(sec);
    sec.expect_end();
    ByteReader sec2 = r.section();
    s.closure_tiled = decode_tiled_matrix(sec2);
    sec2.expect_end();
  } else {
    ByteReader sec = r.section();
    s.one_cycle = decode_dep_matrix(sec);
    sec.expect_end();
    ByteReader sec2 = r.section();
    s.closure = decode_dep_matrix(sec2);
    sec2.expect_end();
  }
  std::uint64_t num_regs = r.varint();
  if (num_regs > (1ull << 24)) throw CodecError("register count out of range");
  s.capture_deps.resize(static_cast<std::size_t>(num_regs));
  for (auto& reg : s.capture_deps) {
    std::uint64_t num_ffs = r.varint();
    if (num_ffs > (1ull << 24)) throw CodecError("scan FF count out of range");
    reg.resize(static_cast<std::size_t>(num_ffs));
    for (auto& deps : reg) {
      std::uint64_t n = r.varint();
      if (n > (1ull << 24))
        throw CodecError("capture dependency count out of range");
      deps.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t ff = r.varint();
        if (ff >= netlist::no_node)
          throw CodecError("capture dependency node id out of range");
        std::uint8_t kind = r.u8();
        if (kind == 0 || kind > static_cast<std::uint8_t>(DepKind::Path))
          throw CodecError("capture dependency kind out of range");
        deps.push_back({static_cast<netlist::NodeId>(ff),
                        static_cast<DepKind>(kind)});
      }
    }
  }
  s.stats = decode_stats(r);
  return s;
}

bool run_with_store(ArtifactStore* store,
                    dep::DependencyAnalyzer& analyzer) {
  if (store == nullptr) {
    analyzer.run();
    return false;
  }
  obs::TraceSession* trace = obs::TraceSession::active();
  std::string key;
  {
    obs::Span span(trace, "store.key");
    key = dep_cache_key(analyzer.circuit(), analyzer.network(),
                        analyzer.options());
  }
  {
    obs::Span span(trace, "store.load");
    if (std::optional<std::string> payload = store->load(key)) {
      bool restored = false;
      try {
        ByteReader r(*payload);
        dep::DependencyAnalyzer::AnalysisSnapshot snap =
            decode_dep_snapshot(r);
        r.expect_end();
        restored = analyzer.restore(std::move(snap), nullptr);
      } catch (const CodecError&) {
        restored = false;
      }
      if (restored) {
        store->note_hit();
        return true;
      }
      // Valid envelope, un-replayable payload (hand-edited blob or a
      // hash collision — practically the former): drop it and recompute.
      store->discard(key);
    }
  }
  analyzer.run();
  store->note_miss();
  {
    obs::Span span(trace, "store.publish");
    ByteWriter w;
    encode_dep_snapshot(w, analyzer.snapshot());
    try {
      store->put(key, w.bytes());
    } catch (const std::exception&) {
      // Publication failure (read-only store, disk full) must not fail
      // the analysis itself; the next process simply recomputes.
    }
  }
  return false;
}

}  // namespace rsnsec::store
