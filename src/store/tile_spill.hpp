#pragma once

#include <string>
#include <string_view>

#include "store/artifact_store.hpp"
#include "util/tiled_matrix.hpp"

namespace rsnsec::store {

/// TileSpillBackend over an ArtifactStore: evicted TiledDepMatrix tiles
/// become content-addressed store objects, so matrices larger than the
/// configured residency budget round-trip through the same disk tier (and
/// envelope checksums) as cached analyses. Handles are SHA-256 keys of a
/// domain-labeled framing of the tile bytes — identical tiles (common:
/// all-ones closure blocks, repeated module patterns) deduplicate to one
/// object, and a handle never needs invalidation because the content it
/// names is immutable. Orphaned tiles from finished runs are reclaimed by
/// the store's ordinary LRU gc, not by this class.
class ArtifactSpillBackend : public TileSpillBackend {
 public:
  explicit ArtifactSpillBackend(ArtifactStore* store) : store_(store) {}

  std::string store(std::string_view bytes) override;
  bool fetch(const std::string& handle, std::string* out) override;

 private:
  ArtifactStore* store_;  // not owned
};

}  // namespace rsnsec::store
