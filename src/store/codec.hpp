#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "rsn/io.hpp"
#include "rsn/rsn.hpp"
#include "util/dep_matrix.hpp"
#include "util/tiled_matrix.hpp"

namespace rsnsec::store {

/// Malformed serialized data (truncation, out-of-range value, shape
/// mismatch). The artifact store treats any CodecError as a cache miss
/// and quarantines the offending blob; it must never escape to the user
/// as a crash.
struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// ------------------------------------------------------------ primitives

/// Append-only byte buffer with the codec's primitive encodings: LEB128
/// varints for integers (canonical: minimal length), zigzag for signed
/// values, length-prefixed strings, and fixed-width little-endian words
/// for bit-plane payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void varint(std::uint64_t v);
  void zigzag(std::int64_t v);
  void fixed64(std::uint64_t v);
  void str(std::string_view s);
  void raw(const void* data, std::size_t n);

  /// Length-prefixed section framing: a reader can skip or bound a
  /// section without understanding its contents.
  void section(const ByteWriter& body);

  const std::string& bytes() const { return bytes_; }
  std::string take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// Bounds-checked reader over a byte range. Every overrun, non-canonical
/// varint or oversized length throws CodecError.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : data_(bytes) {}

  std::uint8_t u8();
  std::uint64_t varint();
  std::int64_t zigzag();
  std::uint64_t fixed64();
  std::string str();
  void raw(void* out, std::size_t n);

  /// Enters a length-prefixed section, returning a reader bounded to it.
  ByteReader section();

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Fails unless the reader consumed its range exactly.
  void expect_end() const;

 private:
  std::string_view data_;
  std::size_t pos_ = 0;

  void need(std::size_t n) const;
};

// ------------------------------------------------------------- checksums

/// FNV-1a 64-bit hash; the cheap trailing checksum of store blobs.
std::uint64_t fnv1a64(std::string_view bytes);

/// Incremental SHA-256; derives content-addressed cache keys. Keys must
/// be collision-resistant — two different (circuit, RSN, options) inputs
/// mapping to one key would silently serve the wrong analysis — so a
/// cryptographic hash is used even though blobs only carry the cheap
/// FNV checksum against accidental corruption.
class Sha256 {
 public:
  Sha256();
  void update(const void* data, std::size_t n);
  void update(std::string_view s) { update(s.data(), s.size()); }
  std::array<std::uint8_t, 32> digest();

  /// Hex digest of `bytes` (64 lowercase hex characters).
  static std::string hex(std::string_view bytes);

 private:
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> block_;
  std::uint64_t total_ = 0;
  std::size_t fill_ = 0;

  void compress(const std::uint8_t* block);
};

// ------------------------------------------------- model object codecs

/// Canonical encoding of a netlist: modules, then nodes in id order with
/// type, module, name and fanins. Everything observable through the
/// Netlist API is covered, so equal encodings imply indistinguishable
/// netlists (and the encoding doubles as the content-hash input).
void encode_netlist(ByteWriter& w, const netlist::Netlist& nl);
netlist::Netlist decode_netlist(ByteReader& r);

/// Canonical encoding of an RSN: name, then elements in id order with
/// kind, name, module, mux select, input ports and scan FFs (capture /
/// update attachments included).
void encode_rsn(ByteWriter& w, const rsn::Rsn& network);
rsn::Rsn decode_rsn(ByteReader& r);

/// Canonical encoding of a DepMatrix: dimension, then the two bit planes
/// as little-endian words. Decode validates the plane shapes, the
/// P-implies-S invariant and that no bit beyond column n-1 is set.
void encode_dep_matrix(ByteWriter& w, const DepMatrix& m);
DepMatrix decode_dep_matrix(ByteReader& r);

/// Canonical encoding of a TiledDepMatrix: dimension, non-zero tile
/// count, then each tile as (row block, column block, 128 little-endian
/// words) in strictly ascending (row block, column block) order — the
/// size is proportional to the denoted tiles, not n^2, which is the point
/// of spilling large matrices through the store. Decode validates tile
/// order, range, non-zero payload, clear edge-tail bits and the
/// P-implies-S invariant (via TiledDepMatrix::insert_tile).
void encode_tiled_matrix(ByteWriter& w, const TiledDepMatrix& m);
TiledDepMatrix decode_tiled_matrix(ByteReader& r);

}  // namespace rsnsec::store
