#pragma once

#include <string>

#include "dep/analyzer.hpp"
#include "store/artifact_store.hpp"
#include "store/codec.hpp"

namespace rsnsec::store {

/// Content-addressed cache key of a dependency analysis: SHA-256 over a
/// versioned label, the canonical encodings of circuit and RSN, and a
/// fingerprint of every DepOptions field that can influence the result —
/// mode, bridging, sim_rounds, conflict limit, max_cycles, seed and
/// cone_cache. num_threads is deliberately excluded: the engine is
/// bit-identical at any thread count (PR 2), so all thread counts share
/// one cache entry.
std::string dep_cache_key(const netlist::Netlist& nl, const rsn::Rsn& network,
                          const dep::DepOptions& options);

/// Codec for the analysis result payload stored under the key. Decode
/// throws CodecError on any malformed input; shape validation against the
/// actual circuit/RSN happens in DependencyAnalyzer::restore.
void encode_dep_snapshot(ByteWriter& w,
                         const dep::DependencyAnalyzer::AnalysisSnapshot& s);
dep::DependencyAnalyzer::AnalysisSnapshot decode_dep_snapshot(ByteReader& r);

/// Runs `analyzer` through the store: on a hit the cached snapshot is
/// replayed (no analysis work, no SAT calls — the `dep.*` obs counters
/// stay untouched); on a miss run() executes and the result is published
/// for the next process. A null store degrades to a plain run(). Returns
/// true iff the result was served from the store. Counts store.hits /
/// store.misses; a blob that decodes but fails shape validation is
/// discarded as corrupt and recomputed (exactly one miss).
bool run_with_store(ArtifactStore* store, dep::DependencyAnalyzer& analyzer);

}  // namespace rsnsec::store
