#include "store/codec.hpp"

#include <cstring>

namespace rsnsec::store {

namespace {

/// Upper bound on any single length field (string, fanin list, section).
/// A hostile blob must not be able to request a multi-gigabyte
/// allocation before the bounds check on the remaining bytes trips.
constexpr std::uint64_t kMaxLength = 1ull << 32;

[[noreturn]] void fail(const char* msg) { throw CodecError(msg); }

}  // namespace

// --------------------------------------------------------------- writer

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  bytes_.push_back(static_cast<char>(v));
}

void ByteWriter::zigzag(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::fixed64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  bytes_.append(s.data(), s.size());
}

void ByteWriter::raw(const void* data, std::size_t n) {
  bytes_.append(static_cast<const char*>(data), n);
}

void ByteWriter::section(const ByteWriter& body) {
  varint(body.bytes_.size());
  bytes_.append(body.bytes_);
}

// --------------------------------------------------------------- reader

void ByteReader::need(std::size_t n) const {
  if (n > data_.size() - pos_) fail("truncated data");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      // Canonical form: no zero continuation byte (the writer never
      // emits one), and the top byte must fit the remaining bits.
      if (b == 0 && shift != 0) fail("non-canonical varint");
      if (shift == 63 && b > 1) fail("varint overflow");
      return v;
    }
  }
  fail("varint too long");
}

std::int64_t ByteReader::zigzag() {
  std::uint64_t v = varint();
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

std::uint64_t ByteReader::fixed64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 8;
  return v;
}

std::string ByteReader::str() {
  std::uint64_t n = varint();
  if (n > kMaxLength) fail("string length out of range");
  need(static_cast<std::size_t>(n));
  std::string s(data_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void ByteReader::raw(void* out, std::size_t n) {
  need(n);
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

ByteReader ByteReader::section() {
  std::uint64_t n = varint();
  if (n > kMaxLength) fail("section length out of range");
  need(static_cast<std::size_t>(n));
  ByteReader r(data_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
  return r;
}

void ByteReader::expect_end() const {
  if (pos_ != data_.size()) fail("trailing bytes after structure");
}

// ------------------------------------------------------------- checksums

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
             0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::compress(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t t1 = h + s1 + ch + kSha256K[static_cast<std::size_t>(i)] +
                       w[i];
    std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(const void* data, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  total_ += n;
  while (n > 0) {
    std::size_t take = std::min(n, block_.size() - fill_);
    std::memcpy(block_.data() + fill_, p, take);
    fill_ += take;
    p += take;
    n -= take;
    if (fill_ == block_.size()) {
      compress(block_.data());
      fill_ = 0;
    }
  }
}

std::array<std::uint8_t, 32> Sha256::digest() {
  std::uint64_t bit_len = total_ * 8;
  std::uint8_t pad = 0x80;
  update(&pad, 1);
  std::uint8_t zero = 0;
  while (fill_ != 56) update(&zero, 1);
  std::uint8_t len[8];
  for (int i = 0; i < 8; ++i)
    len[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  update(len, 8);
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::string Sha256::hex(std::string_view bytes) {
  Sha256 h;
  h.update(bytes);
  std::array<std::uint8_t, 32> d = h.digest();
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : d) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

// ------------------------------------------------- model object codecs

void encode_netlist(ByteWriter& w, const netlist::Netlist& nl) {
  w.varint(nl.num_modules());
  for (std::size_t m = 0; m < nl.num_modules(); ++m)
    w.str(nl.module_name(static_cast<netlist::ModuleId>(m)));
  w.varint(nl.num_nodes());
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const netlist::Node& n = nl.node(static_cast<netlist::NodeId>(i));
    w.u8(static_cast<std::uint8_t>(n.type));
    w.zigzag(n.module);
    w.str(n.name);
    w.varint(n.fanins.size());
    for (netlist::NodeId f : n.fanins) w.varint(f);
  }
}

netlist::Netlist decode_netlist(ByteReader& r) {
  netlist::Netlist nl;
  std::uint64_t num_modules = r.varint();
  if (num_modules > kMaxLength) fail("module count out of range");
  for (std::uint64_t m = 0; m < num_modules; ++m) nl.add_module(r.str());
  std::uint64_t num_nodes = r.varint();
  if (num_nodes > kMaxLength) fail("node count out of range");
  // FF data inputs may reference later nodes (sequential cycles are
  // legal), so they are applied after all nodes exist.
  std::vector<std::pair<netlist::NodeId, netlist::NodeId>> ff_inputs;
  auto check_module = [&](std::int64_t m) -> netlist::ModuleId {
    if (m != netlist::no_module &&
        (m < 0 || static_cast<std::uint64_t>(m) >= num_modules))
      fail("node module out of range");
    return static_cast<netlist::ModuleId>(m);
  };
  auto check_node = [&](std::uint64_t id) -> netlist::NodeId {
    if (id >= num_nodes) fail("fanin id out of range");
    return static_cast<netlist::NodeId>(id);
  };
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    auto type = static_cast<netlist::GateType>(r.u8());
    if (type > netlist::GateType::FF) fail("unknown gate type");
    netlist::ModuleId module = check_module(r.zigzag());
    std::string name = r.str();
    std::uint64_t nf = r.varint();
    if (nf > kMaxLength) fail("fanin count out of range");
    std::vector<netlist::NodeId> fanins;
    fanins.reserve(static_cast<std::size_t>(nf));
    for (std::uint64_t f = 0; f < nf; ++f)
      fanins.push_back(check_node(r.varint()));
    netlist::NodeId id;
    switch (type) {
      case netlist::GateType::Input:
        if (!fanins.empty()) fail("input with fanins");
        id = nl.add_input(std::move(name), module);
        break;
      case netlist::GateType::Const0:
      case netlist::GateType::Const1:
        // add_const cannot carry a name or module; a blob claiming one
        // is not representable and must not round-trip silently.
        if (!fanins.empty() || !name.empty() ||
            module != netlist::no_module)
          fail("constant with fanins, name or module");
        id = nl.add_const(type == netlist::GateType::Const1);
        break;
      case netlist::GateType::FF:
        if (fanins.size() > 1) fail("flip-flop with more than one fanin");
        id = nl.add_ff(std::move(name), module);
        if (!fanins.empty())
          ff_inputs.emplace_back(id, fanins[0]);
        break;
      default:
        try {
          id = nl.add_gate(type, std::move(fanins), std::move(name), module);
        } catch (const std::exception&) {
          fail("invalid gate arity");
        }
        break;
    }
    if (id != static_cast<netlist::NodeId>(i)) fail("node id skew");
  }
  for (auto [ff, d] : ff_inputs) nl.set_ff_input(ff, d);
  return nl;
}

void encode_rsn(ByteWriter& w, const rsn::Rsn& network) {
  w.str(network.name());
  w.varint(network.num_elements());
  for (std::size_t i = 0; i < network.num_elements(); ++i) {
    const rsn::Element& e = network.elem(static_cast<rsn::ElemId>(i));
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.str(e.name);
    w.zigzag(e.module);
    w.varint(e.sel);
    w.varint(e.inputs.size());
    for (rsn::ElemId in : e.inputs) w.varint(in);
    w.varint(e.ffs.size());
    for (const rsn::ScanFF& f : e.ffs) {
      w.varint(f.capture_src);
      w.varint(f.update_dst);
    }
  }
}

rsn::Rsn decode_rsn(ByteReader& r) {
  std::string name = r.str();
  std::uint64_t num_elems = r.varint();
  if (num_elems > kMaxLength) fail("element count out of range");
  if (num_elems < 2) fail("network without scan ports");
  rsn::Rsn network(std::move(name));

  struct PendingElem {
    std::vector<rsn::ElemId> inputs;
    std::size_t sel = 0;
  };
  std::vector<PendingElem> pending(static_cast<std::size_t>(num_elems));
  auto check_elem = [&](std::uint64_t id) -> rsn::ElemId {
    if (id != rsn::no_elem && id >= num_elems) fail("element id out of range");
    return static_cast<rsn::ElemId>(id);
  };

  for (std::uint64_t i = 0; i < num_elems; ++i) {
    auto kind = static_cast<rsn::ElemKind>(r.u8());
    if (kind > rsn::ElemKind::Mux) fail("unknown element kind");
    std::string ename = r.str();
    std::int64_t module = r.zigzag();
    std::uint64_t sel = r.varint();
    std::uint64_t n_inputs = r.varint();
    if (n_inputs > kMaxLength) fail("input count out of range");
    PendingElem& pe = pending[static_cast<std::size_t>(i)];
    for (std::uint64_t p = 0; p < n_inputs; ++p)
      pe.inputs.push_back(check_elem(r.varint()));
    std::uint64_t n_ffs = r.varint();
    if (n_ffs > kMaxLength) fail("scan FF count out of range");
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ffs;
    ffs.reserve(static_cast<std::size_t>(n_ffs));
    for (std::uint64_t f = 0; f < n_ffs; ++f) {
      std::uint64_t cap = r.varint();
      std::uint64_t upd = r.varint();
      ffs.emplace_back(cap, upd);
    }
    if (sel >= std::max<std::uint64_t>(1, n_inputs))
      fail("mux select out of range");
    pe.sel = static_cast<std::size_t>(sel);

    if (i == 0) {
      if (kind != rsn::ElemKind::ScanIn || n_ffs != 0 || !pe.inputs.empty())
        fail("element 0 must be the scan-in port");
      continue;
    }
    if (i == 1) {
      if (kind != rsn::ElemKind::ScanOut || n_ffs != 0 ||
          pe.inputs.size() != 1)
        fail("element 1 must be the scan-out port");
      continue;
    }
    if (kind == rsn::ElemKind::Register) {
      if (n_ffs == 0) fail("register without scan FFs");
      if (pe.inputs.size() != 1) fail("register with port count != 1");
      rsn::ElemId id;
      try {
        id = network.add_register(std::move(ename),
                                  static_cast<std::size_t>(n_ffs),
                                  static_cast<netlist::ModuleId>(module));
      } catch (const std::exception&) {
        fail("invalid register");
      }
      if (id != static_cast<rsn::ElemId>(i)) fail("element id skew");
      auto check_node_ref = [&](std::uint64_t v) -> netlist::NodeId {
        if (v != netlist::no_node && v > 0x7fffffffull)
          fail("circuit node id out of range");
        return static_cast<netlist::NodeId>(v);
      };
      for (std::size_t f = 0; f < ffs.size(); ++f) {
        if (ffs[f].first != netlist::no_node)
          network.set_capture(id, f, check_node_ref(ffs[f].first));
        if (ffs[f].second != netlist::no_node)
          network.set_update(id, f, check_node_ref(ffs[f].second));
      }
    } else if (kind == rsn::ElemKind::Mux) {
      if (n_ffs != 0) fail("mux with scan FFs");
      if (module != netlist::no_module) fail("mux with module");
      if (pe.inputs.empty()) fail("mux without input ports");
      // add_mux requires >= 2 ports, but a mux shrunk to one port by
      // remove_mux_input is legal in a live network: create with two
      // and drop the extra one.
      std::size_t ports = pe.inputs.size();
      rsn::ElemId id = network.add_mux(std::move(ename),
                                       std::max<std::size_t>(2, ports));
      if (id != static_cast<rsn::ElemId>(i)) fail("element id skew");
      if (ports == 1) network.remove_mux_input(id, 1);
    } else {
      fail("scan port at element id >= 2");
    }
  }

  // Connections and mux selects, after every element exists (ports may
  // reference elements with higher ids).
  for (std::uint64_t i = 0; i < num_elems; ++i) {
    const PendingElem& pe = pending[static_cast<std::size_t>(i)];
    auto id = static_cast<rsn::ElemId>(i);
    const rsn::Element& e = network.elem(id);
    if (e.inputs.size() != pe.inputs.size()) fail("port count skew");
    for (std::size_t p = 0; p < pe.inputs.size(); ++p) {
      if (pe.inputs[p] != rsn::no_elem)
        network.connect(pe.inputs[p], id, p);
    }
    if (e.kind == rsn::ElemKind::Mux && pe.sel != 0)
      network.set_mux_select(id, pe.sel);
  }
  return network;
}

void encode_dep_matrix(ByteWriter& w, const DepMatrix& m) {
  w.varint(m.size());
  const std::vector<std::uint64_t>& s = m.plane_s();
  const std::vector<std::uint64_t>& p = m.plane_p();
  for (std::uint64_t word : s) w.fixed64(word);
  for (std::uint64_t word : p) w.fixed64(word);
}

DepMatrix decode_dep_matrix(ByteReader& r) {
  std::uint64_t n64 = r.varint();
  if (n64 > (1ull << 24)) fail("matrix dimension out of range");
  const std::size_t n = static_cast<std::size_t>(n64);
  const std::size_t words = n * ((n + 63) / 64);
  std::vector<std::uint64_t> s(words), p(words);
  for (std::uint64_t& word : s) word = r.fixed64();
  for (std::uint64_t& word : p) word = r.fixed64();
  DepMatrix m;
  if (!DepMatrix::from_planes(n, std::move(s), std::move(p), &m))
    fail("invalid matrix planes");
  return m;
}

void encode_tiled_matrix(ByteWriter& w, const TiledDepMatrix& m) {
  w.varint(m.size());
  w.varint(m.tiles_nonzero());
  std::size_t written = 0;
  m.for_each_tile([&](std::size_t rb, std::size_t cb,
                      const TiledDepMatrix::Tile& t) {
    w.varint(rb);
    w.varint(cb);
    for (std::size_t r = 0; r < 64; ++r) w.fixed64(t.s[r]);
    for (std::size_t r = 0; r < 64; ++r) w.fixed64(t.p[r]);
    ++written;
  });
  // for_each_tile skips all-zero tiles defensively; tiles_nonzero counts
  // slots. The two only diverge on a corrupted in-memory matrix, and a
  // count mismatch must fail encode, not produce an undecodable blob.
  if (written != m.tiles_nonzero()) fail("tiled matrix tile count skew");
}

TiledDepMatrix decode_tiled_matrix(ByteReader& r) {
  std::uint64_t n64 = r.varint();
  if (n64 > (1ull << 24)) fail("matrix dimension out of range");
  const std::size_t n = static_cast<std::size_t>(n64);
  const std::size_t nb = (n + 63) / 64;
  std::uint64_t tiles = r.varint();
  if (tiles > nb * nb) fail("tile count out of range");
  TiledDepMatrix m(n);
  TiledDepMatrix::Tile t;
  bool first = true;
  std::uint64_t last_rb = 0;
  std::uint64_t last_cb = 0;
  for (std::uint64_t k = 0; k < tiles; ++k) {
    std::uint64_t rb = r.varint();
    std::uint64_t cb = r.varint();
    if (rb >= nb || cb >= nb) fail("tile coordinates out of range");
    // Canonical blobs list tiles in strictly ascending (rb, cb) order;
    // insert_tile only validates the per-row-block suffix of that.
    if (!first && (rb < last_rb || (rb == last_rb && cb <= last_cb)))
      fail("tile order not canonical");
    first = false;
    last_rb = rb;
    last_cb = cb;
    for (std::size_t row = 0; row < 64; ++row) t.s[row] = r.fixed64();
    for (std::size_t row = 0; row < 64; ++row) t.p[row] = r.fixed64();
    if (!m.insert_tile(static_cast<std::size_t>(rb),
                       static_cast<std::size_t>(cb), t))
      fail("invalid tile payload or order");
  }
  return m;
}

}  // namespace rsnsec::store
