#include "store/tile_spill.hpp"

#include <stdexcept>

#include "store/codec.hpp"

namespace rsnsec::store {

namespace {

/// Domain label prefixed to the hashed framing so a spilled tile can
/// never collide with a dep-snapshot key derived from the same bytes.
constexpr std::string_view kTileKeyLabel = "rsnsec-tile-v1";

std::string tile_key(std::string_view bytes) {
  ByteWriter w;
  w.str(kTileKeyLabel);
  w.str(bytes);
  return Sha256::hex(w.bytes());
}

}  // namespace

std::string ArtifactSpillBackend::store(std::string_view bytes) {
  std::string key = tile_key(bytes);
  // Content-addressed: if the object already exists its payload is
  // already these bytes, so the write can be skipped. load() also
  // refreshes the object's LRU position, protecting live tiles from gc.
  if (!store_->load(key).has_value()) store_->put(key, bytes);
  return key;
}

bool ArtifactSpillBackend::fetch(const std::string& handle,
                                 std::string* out) {
  std::optional<std::string> payload = store_->load(handle);
  if (!payload.has_value()) return false;
  *out = *std::move(payload);
  return true;
}

}  // namespace rsnsec::store
