#include "store/artifact_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include <unistd.h>

#include "obs/trace.hpp"
#include "store/codec.hpp"

namespace rsnsec::store {

namespace fs = std::filesystem;

namespace {

/// Envelope: 4 magic bytes, 4-byte little-endian format version, payload,
/// 8-byte little-endian FNV-1a 64 over everything before the checksum.
constexpr char kMagic[4] = {'R', 'S', 'N', 'A'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kTrailerSize = 8;

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::string wrap(std::string_view payload) {
  std::string blob;
  blob.reserve(kHeaderSize + payload.size() + kTrailerSize);
  blob.append(kMagic, 4);
  put_u32le(blob, kFormatVersion);
  blob.append(payload.data(), payload.size());
  put_u64le(blob, fnv1a64(blob));
  return blob;
}

/// Reads a whole file; nullopt on any I/O error (including absence).
std::optional<std::string> slurp(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buf).str();
}

/// Process-unique suffix source for temp files; combined with the pid it
/// makes temp names collision-free across concurrent writers.
std::uint64_t next_temp_seq() {
  static std::atomic<std::uint64_t> seq{0};
  return seq.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

bool is_store_key(std::string_view key) {
  if (key.size() != 64) return false;
  return std::all_of(key.begin(), key.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

ArtifactStore::ArtifactStore(fs::path root, StoreOptions options)
    : root_(std::move(root)), options_(options) {
  std::error_code ec;
  fs::create_directories(root_ / "objects", ec);
  if (ec) {
    throw std::runtime_error("store: cannot create '" +
                             (root_ / "objects").string() +
                             "': " + ec.message());
  }
  fs::create_directories(root_ / "quarantine", ec);
  if (ec) {
    throw std::runtime_error("store: cannot create '" +
                             (root_ / "quarantine").string() +
                             "': " + ec.message());
  }
}

fs::path ArtifactStore::object_path(const std::string& key) const {
  return root_ / "objects" / key.substr(0, 2) / (key + ".art");
}

std::optional<std::string_view> ArtifactStore::unwrap(std::string_view blob) {
  if (blob.size() < kHeaderSize + kTrailerSize) return std::nullopt;
  if (std::memcmp(blob.data(), kMagic, 4) != 0) return std::nullopt;
  std::uint64_t stored = get_u64le(blob.data() + blob.size() - kTrailerSize);
  if (fnv1a64(blob.substr(0, blob.size() - kTrailerSize)) != stored)
    return std::nullopt;
  // Version is checked after the checksum: a failed checksum means the
  // version field itself is untrustworthy, so "corrupt" wins over "skew".
  if (get_u32le(blob.data() + 4) != kFormatVersion) return std::nullopt;
  return blob.substr(kHeaderSize, blob.size() - kHeaderSize - kTrailerSize);
}

void ArtifactStore::quarantine(const fs::path& file) {
  corrupt_.fetch_add(1, std::memory_order_relaxed);
  obs::bump("store.corrupt");
  std::error_code ec;
  // Keep trying distinct destination names so repeated corruption of the
  // same key never silently overwrites earlier evidence.
  for (int attempt = 0; attempt < 16; ++attempt) {
    fs::path dst = root_ / "quarantine" /
                   (file.filename().string() + "." +
                    std::to_string(next_temp_seq()));
    if (fs::exists(dst, ec)) continue;
    fs::rename(file, dst, ec);
    if (!ec) return;
  }
  fs::remove(file, ec);  // last resort: a corrupt blob must not persist
}

std::shared_ptr<const std::string> ArtifactStore::mem_lookup(
    const std::string& key) {
  if (!options_.memory_tier) return nullptr;
  std::lock_guard<std::mutex> lock(mem_mutex_);
  auto it = mem_index_.find(key);
  if (it == mem_index_.end()) return nullptr;
  mem_lru_.splice(mem_lru_.begin(), mem_lru_, it->second);
  return it->second->payload;
}

void ArtifactStore::mem_insert(const std::string& key, std::string payload) {
  if (!options_.memory_tier) return;
  std::lock_guard<std::mutex> lock(mem_mutex_);
  auto it = mem_index_.find(key);
  if (it != mem_index_.end()) {
    mem_lru_.splice(mem_lru_.begin(), mem_lru_, it->second);
    return;  // same key = same content; nothing to replace
  }
  mem_bytes_ += payload.size();
  mem_lru_.push_front(
      {key, std::make_shared<const std::string>(std::move(payload))});
  mem_index_[key] = mem_lru_.begin();
  while (mem_bytes_ > options_.memory_max_bytes && mem_lru_.size() > 1) {
    const MemEntry& victim = mem_lru_.back();
    mem_bytes_ -= victim.payload->size();
    mem_index_.erase(victim.key);
    mem_lru_.pop_back();
  }
}

void ArtifactStore::mem_erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  auto it = mem_index_.find(key);
  if (it == mem_index_.end()) return;
  mem_bytes_ -= it->second->payload->size();
  mem_lru_.erase(it->second);
  mem_index_.erase(it);
}

std::optional<std::string> ArtifactStore::load(const std::string& key) {
  if (auto mem = mem_lookup(key)) return *mem;
  fs::path file = object_path(key);
  std::optional<std::string> blob = slurp(file);
  if (!blob) return std::nullopt;  // plain absence: not corruption
  std::optional<std::string_view> payload = unwrap(*blob);
  if (!payload) {
    quarantine(file);
    return std::nullopt;
  }
  // Touch: a served object is "recently used" for the LRU collector. A
  // failed touch leaves the object looking idle (it will be evicted
  // earlier than it should); surface that instead of swallowing it.
  std::error_code ec;
  fs::last_write_time(file, fs::file_time_type::clock::now(), ec);
  if (ec) {
    mtime_errors_.fetch_add(1, std::memory_order_relaxed);
    obs::bump("store.mtime_errors");
  }
  std::string result(*payload);
  mem_insert(key, result);
  return result;
}

void ArtifactStore::put(const std::string& key, std::string_view payload) {
  if (!is_store_key(key))
    throw std::runtime_error("store: malformed key '" + key + "'");
  fs::path file = object_path(key);
  std::error_code ec;
  fs::create_directories(file.parent_path(), ec);
  if (ec) {
    throw std::runtime_error("store: cannot create '" +
                             file.parent_path().string() +
                             "': " + ec.message());
  }
  std::string blob = wrap(payload);
  fs::path tmp =
      file.parent_path() /
      (key + ".tmp." + std::to_string(::getpid()) + "." +
       std::to_string(next_temp_seq()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("store: cannot write '" + tmp.string() + "'");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      throw std::runtime_error("store: short write to '" + tmp.string() +
                               "'");
    }
  }
  fs::rename(tmp, file, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("store: cannot publish '" + file.string() +
                             "': " + ec.message());
  }
  mem_insert(key, std::string(payload));
  if (options_.max_bytes > 0) gc(options_.max_bytes);
}

void ArtifactStore::discard(const std::string& key) {
  mem_erase(key);
  fs::path file = object_path(key);
  std::error_code ec;
  if (fs::exists(file, ec)) quarantine(file);
}

std::size_t ArtifactStore::gc(std::uint64_t max_bytes) {
  obs::Span span(obs::TraceSession::active(), "store.gc");
  struct Object {
    fs::path path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Object> objects;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_ / "objects", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    fs::path p = it->path();
    if (p.extension() != ".art") continue;
    Object o;
    o.path = p;
    o.size = it->file_size(ec);
    if (ec) continue;
    o.mtime = options_.mtime_probe ? options_.mtime_probe(p, ec)
                                   : fs::last_write_time(p, ec);
    if (ec) {
      // An unreadable mtime must not exempt the object from collection:
      // its bytes still count against the cap, and with no usable LRU
      // clock it is treated as the oldest candidate (evicted first).
      // Silently skipping here (the old behavior) both under-counted
      // `total` and made the object immortal.
      o.mtime = fs::file_time_type::min();
      ec.clear();
      mtime_errors_.fetch_add(1, std::memory_order_relaxed);
      obs::bump("store.mtime_errors");
    }
    total += o.size;
    objects.push_back(std::move(o));
  }
  if (total <= max_bytes) return 0;
  std::sort(objects.begin(), objects.end(),
            [](const Object& a, const Object& b) { return a.mtime < b.mtime; });
  std::size_t evicted = 0;
  for (const Object& o : objects) {
    if (total <= max_bytes) break;
    fs::remove(o.path, ec);
    if (ec) continue;
    total -= o.size;
    ++evicted;
    mem_erase(o.path.stem().string());
  }
  if (max_bytes == 0) {
    // Emptying the store must also drop the memory tier, or a "cold"
    // run in this process would still be served from memory.
    std::lock_guard<std::mutex> lock(mem_mutex_);
    mem_lru_.clear();
    mem_index_.clear();
    mem_bytes_ = 0;
  }
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
  obs::bump("store.evictions", evicted);
  return evicted;
}

VerifyResult ArtifactStore::verify() {
  obs::Span span(obs::TraceSession::active(), "store.verify");
  VerifyResult result;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_ / "objects", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".art") continue;
    files.push_back(it->path());
  }
  for (const fs::path& file : files) {
    std::optional<std::string> blob = slurp(file);
    bool ok = blob && unwrap(*blob).has_value() &&
              is_store_key(file.stem().string());
    if (ok) {
      ++result.valid;
    } else {
      ++result.corrupt;
      quarantine(file);
      mem_erase(file.stem().string());
    }
  }
  return result;
}

DiskStats ArtifactStore::disk_stats() const {
  DiskStats stats;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_ / "objects", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".art") continue;
    ++stats.objects;
    stats.bytes += it->file_size(ec);
  }
  for (fs::directory_iterator it(root_ / "quarantine", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) ++stats.quarantined;
  }
  return stats;
}

void ArtifactStore::note_hit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::bump("store.hits");
}

void ArtifactStore::note_miss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::bump("store.misses");
}

StoreCounters ArtifactStore::counters() const {
  StoreCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.corrupt = corrupt_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.mtime_errors = mtime_errors_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace rsnsec::store
