#include "netlist/sim.hpp"

#include <cassert>

namespace rsnsec::netlist {

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), values_(nl.num_nodes(), 0) {
  build_topo();
  // Constants are fixed once.
  for (NodeId id = 0; id < nl_.num_nodes(); ++id) {
    GateType t = nl_.node(id).type;
    if (t == GateType::Const0) values_[id] = 0;
    if (t == GateType::Const1) values_[id] = ~0ULL;
  }
}

void Simulator::build_topo() {
  // Kahn-style topological sort over combinational edges. FFs and inputs
  // are sources; their values are state, not computed.
  std::vector<std::uint32_t> pending(nl_.num_nodes(), 0);
  std::vector<std::vector<NodeId>> fanouts(nl_.num_nodes());
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nl_.num_nodes(); ++id) {
    const Node& n = nl_.node(id);
    if (n.type == GateType::FF || n.type == GateType::Input ||
        n.type == GateType::Const0 || n.type == GateType::Const1)
      continue;
    for (NodeId f : n.fanins) {
      GateType t = nl_.node(f).type;
      if (t == GateType::FF || t == GateType::Input ||
          t == GateType::Const0 || t == GateType::Const1)
        continue;
      ++pending[id];
      fanouts[f].push_back(id);
    }
    if (pending[id] == 0) ready.push_back(id);
  }
  topo_.clear();
  while (!ready.empty()) {
    NodeId id = ready.back();
    ready.pop_back();
    topo_.push_back(id);
    for (NodeId s : fanouts[id]) {
      if (--pending[s] == 0) ready.push_back(s);
    }
  }
}

void Simulator::randomize_state(Rng& rng) {
  for (NodeId id : nl_.inputs()) values_[id] = rng.next_u64();
  for (NodeId id : nl_.ffs()) values_[id] = rng.next_u64();
}

void Simulator::eval_comb() {
  std::vector<std::uint64_t> fanin_vals;
  for (NodeId id : topo_) {
    const Node& n = nl_.node(id);
    fanin_vals.clear();
    for (NodeId f : n.fanins) fanin_vals.push_back(values_[f]);
    values_[id] = eval_gate(n.type, fanin_vals.data(), fanin_vals.size());
  }
}

void Simulator::step() {
  eval_comb();
  std::vector<std::uint64_t> next(nl_.ffs().size());
  for (std::size_t i = 0; i < nl_.ffs().size(); ++i) {
    const Node& ff = nl_.node(nl_.ffs()[i]);
    assert(!ff.fanins.empty());
    next[i] = values_[ff.fanins[0]];
  }
  for (std::size_t i = 0; i < nl_.ffs().size(); ++i)
    values_[nl_.ffs()[i]] = next[i];
}

std::uint64_t eval_cone(const Netlist& nl, const Cone& cone,
                        const std::vector<std::uint64_t>& leaf_values,
                        std::vector<std::uint64_t>& scratch) {
  assert(leaf_values.size() == cone.leaves.size());
  scratch.resize(nl.num_nodes());
  for (std::size_t i = 0; i < cone.leaves.size(); ++i)
    scratch[cone.leaves[i]] = leaf_values[i];
  std::uint64_t fanin_vals[64];
  for (NodeId id : cone.gates) {
    const Node& n = nl.node(id);
    std::size_t k = n.fanins.size();
    if (k <= 64) {
      for (std::size_t i = 0; i < k; ++i)
        fanin_vals[i] = scratch[n.fanins[i]];
      scratch[id] = eval_gate(n.type, fanin_vals, k);
    } else {
      std::vector<std::uint64_t> big(k);
      for (std::size_t i = 0; i < k; ++i) big[i] = scratch[n.fanins[i]];
      scratch[id] = eval_gate(n.type, big.data(), k);
    }
  }
  return scratch[cone.root];
}

Word256 eval_cone(const Netlist& nl, const Cone& cone,
                  const std::vector<Word256>& leaf_values,
                  std::vector<Word256>& scratch) {
  assert(leaf_values.size() == cone.leaves.size());
  scratch.resize(nl.num_nodes());
  for (std::size_t i = 0; i < cone.leaves.size(); ++i)
    scratch[cone.leaves[i]] = leaf_values[i];
  std::uint64_t fanin_vals[64];
  for (NodeId id : cone.gates) {
    const Node& n = nl.node(id);
    std::size_t k = n.fanins.size();
    if (k <= 64) {
      for (std::size_t lane = 0; lane < 4; ++lane) {
        for (std::size_t i = 0; i < k; ++i)
          fanin_vals[i] = scratch[n.fanins[i]].lane[lane];
        scratch[id].lane[lane] = eval_gate(n.type, fanin_vals, k);
      }
    } else {
      std::vector<std::uint64_t> big(k);
      for (std::size_t lane = 0; lane < 4; ++lane) {
        for (std::size_t i = 0; i < k; ++i)
          big[i] = scratch[n.fanins[i]].lane[lane];
        scratch[id].lane[lane] = eval_gate(n.type, big.data(), k);
      }
    }
  }
  return scratch[cone.root];
}

}  // namespace rsnsec::netlist
