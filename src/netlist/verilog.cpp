#include "netlist/verilog.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rsnsec::netlist::verilog {

namespace {

struct Token {
  std::string text;
  int line = 0;
  bool is_punct = false;
};

class Lexer {
 public:
  explicit Lexer(std::istream& is) {
    std::string s((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
    int line = 1;
    std::size_t i = 0;
    auto fail = [&](const std::string& m) {
      throw std::runtime_error("verilog parse error at line " +
                               std::to_string(line) + ": " + m);
    };
    while (i < s.size()) {
      char c = s[i];
      if (c == '\n') {
        ++line;
        ++i;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
      } else if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        while (i < s.size() && s[i] != '\n') ++i;
      } else if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        i += 2;
        while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) {
          if (s[i] == '\n') ++line;
          ++i;
        }
        i += 2;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '\\') {
        // Identifier; '\' starts an escaped identifier ending at space.
        std::size_t j = i;
        if (c == '\\') {
          ++j;
          while (j < s.size() &&
                 !std::isspace(static_cast<unsigned char>(s[j])))
            ++j;
          tokens_.push_back({s.substr(i + 1, j - i - 1), line, false});
        } else {
          while (j < s.size() &&
                 (std::isalnum(static_cast<unsigned char>(s[j])) ||
                  s[j] == '_' || s[j] == '$' || s[j] == '.'))
            ++j;
          tokens_.push_back({s.substr(i, j - i), line, false});
        }
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        // Number or sized constant like 1'b0.
        std::size_t j = i;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) ||
                s[j] == '\''))
          ++j;
        tokens_.push_back({s.substr(i, j - i), line, false});
        i = j;
      } else if (c == '(' && i + 1 < s.size() && s[i + 1] == '*') {
        tokens_.push_back({"(*", line, true});
        i += 2;
      } else if (c == '*' && i + 1 < s.size() && s[i + 1] == ')') {
        tokens_.push_back({"*)", line, true});
        i += 2;
      } else if (c == '"') {
        std::size_t j = i + 1;
        while (j < s.size() && s[j] != '"') ++j;
        if (j >= s.size()) fail("unterminated string");
        tokens_.push_back({s.substr(i + 1, j - i - 1), line, false});
        i = j + 1;
      } else if (std::string("(),;=").find(c) != std::string::npos) {
        tokens_.push_back({std::string(1, c), line, true});
        ++i;
      } else {
        fail(std::string("unexpected character '") + c + "'");
      }
    }
    tokens_.push_back({"<eof>", line, true});
  }

  const Token& peek() const { return tokens_[pos_]; }
  Token next() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

/// A pending gate instantiation awaiting fanin resolution.
struct PendingGate {
  GateType type = GateType::Buf;
  std::string name;
  std::vector<std::string> args;  // [out, in...] net names
  std::string instrument;
  int line = 0;
};

bool prim_type(const std::string& kw, GateType* out) {
  if (kw == "and") *out = GateType::And;
  else if (kw == "or") *out = GateType::Or;
  else if (kw == "nand") *out = GateType::Nand;
  else if (kw == "nor") *out = GateType::Nor;
  else if (kw == "xor") *out = GateType::Xor;
  else if (kw == "xnor") *out = GateType::Xnor;
  else if (kw == "not") *out = GateType::Not;
  else if (kw == "buf") *out = GateType::Buf;
  else if (kw == "mux") *out = GateType::Mux;
  else if (kw == "dff") *out = GateType::FF;
  else return false;
  return true;
}

}  // namespace

ParsedCircuit parse(std::istream& is) {
  Lexer lex(is);
  ParsedCircuit out;
  std::map<std::string, ModuleId> instruments;

  auto fail = [&](int line, const std::string& m) -> std::runtime_error {
    return std::runtime_error("verilog parse error at line " +
                              std::to_string(line) + ": " + m);
  };
  auto expect = [&](const std::string& p) {
    Token t = lex.next();
    if (t.text != p)
      throw fail(t.line, "expected '" + p + "', got '" + t.text + "'");
  };

  // --- header ---
  {
    Token t = lex.next();
    if (t.text != "module") throw fail(t.line, "expected 'module'");
  }
  out.module_name = lex.next().text;
  std::vector<std::string> inputs, wires;
  expect("(");
  std::string pending_dir;
  while (lex.peek().text != ")") {
    Token t = lex.next();
    if (t.text == ",") continue;
    if (t.text == "input" || t.text == "output" || t.text == "wire") {
      pending_dir = t.text;
      continue;
    }
    if (pending_dir == "input") inputs.push_back(t.text);
    else if (pending_dir == "output") out.outputs.push_back(t.text);
    // Undirected header ports get their direction from body decls.
  }
  expect(")");
  expect(";");

  // --- body ---
  std::vector<PendingGate> gates;
  std::string next_instrument;
  int anon = 0;
  for (;;) {
    Token t = lex.next();
    if (t.text == "endmodule") break;
    if (t.text == "<eof>") throw fail(t.line, "missing 'endmodule'");
    if (t.text == "(*") {
      // (* instrument = "name" *)
      Token key = lex.next();
      if (key.text != "instrument")
        throw fail(key.line, "unsupported attribute '" + key.text + "'");
      expect("=");
      next_instrument = lex.next().text;
      expect("*)");
      continue;
    }
    if (t.text == "input" || t.text == "output" || t.text == "wire") {
      while (true) {
        Token n = lex.next();
        if (n.is_punct)
          throw fail(n.line, "expected net name");
        if (t.text == "input") inputs.push_back(n.text);
        if (t.text == "output") out.outputs.push_back(n.text);
        Token sep = lex.next();
        if (sep.text == ";") break;
        if (sep.text != ",") throw fail(sep.line, "expected ',' or ';'");
      }
      continue;
    }
    GateType type;
    if (!prim_type(t.text, &type))
      throw fail(t.line, "unknown primitive '" + t.text + "'");
    PendingGate g;
    g.type = type;
    g.line = t.line;
    g.instrument = next_instrument;
    next_instrument.clear();
    if (lex.peek().text != "(") g.name = lex.next().text;
    if (g.name.empty())
      g.name = "g$" + std::to_string(anon++);
    expect("(");
    while (lex.peek().text != ")") {
      Token a = lex.next();
      if (a.text == ",") continue;
      g.args.push_back(a.text);
    }
    expect(")");
    expect(";");
    if (g.args.size() < 2)
      throw fail(g.line, "primitive needs an output and >= 1 input");
    if (g.type == GateType::Mux && g.args.size() != 4)
      throw fail(g.line, "mux needs (out, sel, in0, in1)");
    if (g.type == GateType::FF && g.args.size() != 2)
      throw fail(g.line, "dff needs (q, d)");
    if ((g.type == GateType::Not || g.type == GateType::Buf) &&
        g.args.size() != 2)
      throw fail(g.line, "not/buf need (out, in)");
    gates.push_back(std::move(g));
  }

  auto instrument_id = [&](const std::string& name) {
    if (name.empty()) return no_module;
    auto it = instruments.find(name);
    if (it != instruments.end()) return it->second;
    ModuleId id = out.netlist.add_module(name);
    instruments.emplace(name, id);
    return id;
  };

  // Inputs and flip-flop outputs exist up front; combinational gates are
  // created once all their fanins exist (rejects combinational loops).
  for (const std::string& in : inputs) {
    if (out.nets.count(in)) throw fail(0, "net '" + in + "' redefined");
    out.nets[in] = out.netlist.add_input(in);
  }
  for (const PendingGate& g : gates) {
    if (g.type != GateType::FF) continue;
    if (out.nets.count(g.args[0]))
      throw fail(g.line, "net '" + g.args[0] + "' redefined");
    out.nets[g.args[0]] =
        out.netlist.add_ff(g.args[0], instrument_id(g.instrument));
  }

  auto resolve = [&](const std::string& name) -> NodeId {
    if (name == "1'b0") {
      return out.netlist.add_const(false);
    }
    if (name == "1'b1") {
      return out.netlist.add_const(true);
    }
    auto it = out.nets.find(name);
    return it == out.nets.end() ? no_node : it->second;
  };

  std::vector<const PendingGate*> todo;
  for (const PendingGate& g : gates)
    if (g.type != GateType::FF) todo.push_back(&g);
  while (!todo.empty()) {
    bool progress = false;
    for (auto it = todo.begin(); it != todo.end();) {
      const PendingGate& g = **it;
      std::vector<NodeId> fanins;
      bool ready = true;
      for (std::size_t a = 1; a < g.args.size(); ++a) {
        NodeId n = resolve(g.args[a]);
        if (n == no_node) {
          ready = false;
          break;
        }
        fanins.push_back(n);
      }
      if (!ready) {
        ++it;
        continue;
      }
      if (out.nets.count(g.args[0]))
        throw fail(g.line, "net '" + g.args[0] + "' redefined");
      out.nets[g.args[0]] = out.netlist.add_gate(
          g.type, std::move(fanins), g.args[0],
          instrument_id(g.instrument));
      it = todo.erase(it);
      progress = true;
    }
    if (!progress) {
      throw fail(todo.front()->line,
                 "unresolvable nets (combinational loop or undriven "
                 "wire feeding '" +
                     todo.front()->args[0] + "')");
    }
  }

  // Flip-flop data inputs.
  for (const PendingGate& g : gates) {
    if (g.type != GateType::FF) continue;
    NodeId d = resolve(g.args[1]);
    if (d == no_node)
      throw fail(g.line, "dff '" + g.args[0] + "': undriven data net '" +
                             g.args[1] + "'");
    out.netlist.set_ff_input(out.nets[g.args[0]], d);
  }

  std::string err;
  if (!out.netlist.validate(&err))
    throw std::runtime_error("verilog: parsed netlist invalid: " + err);
  return out;
}

void write(std::ostream& os, const Netlist& nl, const std::string& name) {
  auto net_name = [&](NodeId id) {
    const Node& n = nl.node(id);
    if (!n.name.empty()) return n.name;
    return "n" + std::to_string(id);
  };

  os << "module " << name << "(";
  bool first = true;
  for (NodeId in : nl.inputs()) {
    os << (first ? "" : ", ") << net_name(in);
    first = false;
  }
  os << ");\n";
  if (!nl.inputs().empty()) {
    os << "  input ";
    first = true;
    for (NodeId in : nl.inputs()) {
      os << (first ? "" : ", ") << net_name(in);
      first = false;
    }
    os << ";\n";
  }

  auto emit_attr = [&](const Node& n) {
    if (n.module != no_module)
      os << "  (* instrument = \"" << nl.module_name(n.module) << "\" *)\n";
  };

  // Declare wires for gate outputs.
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    os << "  wire " << net_name(id) << ";\n";
  }
  // Constants.
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Const0)
      os << "  buf (" << net_name(id) << ", 1'b0);\n";
    if (n.type == GateType::Const1)
      os << "  buf (" << net_name(id) << ", 1'b1);\n";
  }
  // Gates and flip-flops (any order: the parser resolves).
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    switch (n.type) {
      case GateType::Input:
      case GateType::Const0:
      case GateType::Const1:
        break;
      case GateType::FF: {
        emit_attr(n);
        os << "  dff (" << net_name(id) << ", " << net_name(n.fanins[0])
           << ");\n";
        break;
      }
      default: {
        emit_attr(n);
        const char* prim = nullptr;
        switch (n.type) {
          case GateType::Buf: prim = "buf"; break;
          case GateType::Not: prim = "not"; break;
          case GateType::And: prim = "and"; break;
          case GateType::Nand: prim = "nand"; break;
          case GateType::Or: prim = "or"; break;
          case GateType::Nor: prim = "nor"; break;
          case GateType::Xor: prim = "xor"; break;
          case GateType::Xnor: prim = "xnor"; break;
          case GateType::Mux: prim = "mux"; break;
          default: break;
        }
        os << "  " << prim << " (" << net_name(id);
        for (NodeId f : n.fanins) os << ", " << net_name(f);
        os << ");\n";
        break;
      }
    }
  }
  os << "endmodule\n";
}

}  // namespace rsnsec::netlist::verilog
