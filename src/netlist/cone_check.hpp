#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace rsnsec::netlist {

/// SAT-based exact functional-dependence check for one combinational cone
/// (the method of [18], Sec. III-A of the paper).
///
/// The checker encodes two copies A and B of the cone into one CNF. Every
/// leaf i gets an equality selector eq_i (eq_i -> a_i == b_i) and a `diff`
/// literal asserts that the two root values differ. Whether the root
/// functionally depends on leaf j is then a single incremental SAT call
/// under assumptions {eq_i : i != j} ∪ {a_j, ¬b_j, diff}: satisfiable iff
/// some assignment of the remaining leaves lets a flip of leaf j flip the
/// root — i.e. data can propagate. UNSAT means the structural connection
/// is "only structural" (e.g. cancelled by reconvergence, as the XOR in
/// Fig. 5 of the paper).
class ConeDependenceChecker {
 public:
  /// Builds the two-copy CNF for `cone` of netlist `nl`. The cone must
  /// have been produced by Netlist::extract_signal_cone or
  /// Netlist::extract_next_state_cone. `conflict_limit` bounds every
  /// query's SAT conflicts (0 = unlimited); an exceeded budget makes
  /// query() return sat::Result::Unknown.
  ConeDependenceChecker(const Netlist& nl, const Cone& cone,
                        std::uint64_t conflict_limit = 0);

  /// Exact query for cone.leaves[leaf_idx]: Sat means the root
  /// functionally depends on the leaf, Unsat means the connection is
  /// only structural, Unknown means the conflict budget ran out before a
  /// proof (callers must treat this conservatively — for security that
  /// means assuming a functional dependency). Constant leaves never
  /// support dependence (Unsat without a solver call).
  sat::Result query(std::size_t leaf_idx);

  /// True if the cone root provably functionally depends on
  /// cone.leaves[leaf_idx] (query() == Sat).
  bool depends_on(std::size_t leaf_idx) {
    return query(leaf_idx) == sat::Result::Sat;
  }

  /// Number of SAT calls issued so far.
  std::uint64_t sat_calls() const { return sat_calls_; }

  /// Access to the underlying solver statistics.
  const sat::SolverStats& solver_stats() const { return solver_.stats(); }

 private:
  const Netlist& nl_;
  const Cone& cone_;
  sat::Solver solver_;
  std::vector<sat::Lit> a_leaf_, b_leaf_, eq_sel_;
  std::vector<bool> leaf_is_const_;
  sat::Lit diff_{};
  std::uint64_t sat_calls_ = 0;

  sat::Lit encode_copy(std::vector<sat::Lit>& node_lit,
                       const std::vector<sat::Lit>& leaf_lits);
};

}  // namespace rsnsec::netlist
