#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/sim.hpp"
#include "sat/solver.hpp"

namespace rsnsec::netlist {

/// Tuning knobs for ConeDependenceChecker.
struct ConeCheckOptions {
  /// Per-query SAT conflict budget (0 = unlimited); an exceeded budget
  /// makes query() return sat::Result::Unknown.
  std::uint64_t conflict_limit = 0;

  /// Enables the incremental query machinery: verdict caching, Unsat-core
  /// reuse across leaves, model rotation (a Sat model is perturbed one
  /// leaf at a time to witness other dependencies for free) and periodic
  /// solver inprocessing. Verdicts are identical to the non-incremental
  /// path except that with a finite conflict_limit the incremental path
  /// can be strictly more precise (a leaf another query already decided
  /// cannot come back Unknown).
  bool incremental = true;

  /// Solver solve() calls between bounded inprocess() rounds on the cone
  /// CNF (0 = never). Only active when `incremental` is set.
  std::size_t inprocess_interval = 64;
};

/// SAT-based exact functional-dependence check for one combinational cone
/// (the method of [18], Sec. III-A of the paper).
///
/// The checker encodes two copies A and B of the cone into one CNF. Every
/// leaf i gets an equality selector eq_i (eq_i -> a_i == b_i) and a `diff`
/// literal asserts that the two root values differ. Whether the root
/// functionally depends on leaf j is then a single incremental SAT call
/// under assumptions {diff} ∪ {eq_i : i != j} ∪ {a_j, ¬b_j}: satisfiable
/// iff some assignment of the remaining leaves lets a flip of leaf j flip
/// the root — i.e. data can propagate. UNSAT means the structural
/// connection is "only structural" (e.g. cancelled by reconvergence, as
/// the XOR in Fig. 5 of the paper).
///
/// Queries are incremental three ways. The assumption vector is ordered
/// canonically (diff first, then the eq selectors ascending) so
/// consecutive queries share a maximal trail prefix inside the solver and
/// skip re-propagating it. A Sat model is rotated: flipping one undecided
/// leaf at a time from the model assignment (up to 255 leaves per
/// 256-pattern cone evaluation) witnesses further functional dependencies
/// without any solver call. An Unsat answer yields an assumption core; when the core
/// avoids the flipped leaf's literals, every other leaf whose eq selector
/// is outside the core is Unsat by the same proof and is discharged
/// without a solve.
class ConeDependenceChecker {
 public:
  /// Builds the two-copy CNF for `cone` of netlist `nl`. The cone must
  /// have been produced by Netlist::extract_signal_cone or
  /// Netlist::extract_next_state_cone.
  ConeDependenceChecker(const Netlist& nl, const Cone& cone,
                        const ConeCheckOptions& options);

  /// Back-compat convenience: default options with the given per-query
  /// conflict limit.
  ConeDependenceChecker(const Netlist& nl, const Cone& cone,
                        std::uint64_t conflict_limit = 0)
      : ConeDependenceChecker(nl, cone,
                              ConeCheckOptions{conflict_limit, true, 64}) {}

  /// Exact query for cone.leaves[leaf_idx]: Sat means the root
  /// functionally depends on the leaf, Unsat means the connection is
  /// only structural, Unknown means the conflict budget ran out before a
  /// proof (callers must treat this conservatively — for security that
  /// means assuming a functional dependency). Constant leaves never
  /// support dependence (Unsat without a solver call).
  sat::Result query(std::size_t leaf_idx);

  /// True if the cone root provably functionally depends on
  /// cone.leaves[leaf_idx] (query() == Sat).
  bool depends_on(std::size_t leaf_idx) {
    return query(leaf_idx) == sat::Result::Sat;
  }

  /// Number of logical SAT queries so far. Cached verdicts (from core
  /// reuse or model rotation) still count: the number is identical to the
  /// non-incremental path's and measures classification work, not solver
  /// invocations (see solver_solves()).
  std::uint64_t sat_calls() const { return sat_calls_; }

  /// Number of actual solver solve() calls issued.
  std::uint64_t solver_solves() const { return solver_solves_; }

  /// Leaves discharged as Unsat by assumption-core reuse.
  std::uint64_t cores_reused() const { return cores_reused_; }

  /// Leaves discharged as Sat by model rotation.
  std::uint64_t rotation_witnesses() const { return rotation_witnesses_; }

  /// Access to the underlying solver statistics.
  const sat::SolverStats& solver_stats() const { return solver_.stats(); }

  /// Learned clauses of the underlying solver, translated into the
  /// canonical leaf numbering given by `leaf_to_canon` (own leaf index →
  /// canonical leaf index; a permutation of 0..num_leaves-1). Clauses of
  /// size <= max_size and LBD <= max_lbd plus all root-implied units are
  /// returned. Any checker whose cone has the same canonical signature
  /// (identical CNF modulo the leaf permutation) may import them.
  std::vector<sat::Clause> export_clauses(
      const std::vector<std::uint32_t>& leaf_to_canon, std::size_t max_size,
      std::uint32_t max_lbd) const;

  /// Imports clauses previously exported by an isomorphic cone's checker
  /// (in canonical leaf numbering), translating them through this cone's
  /// own `leaf_to_canon` permutation. Returns the number of clauses
  /// installed.
  std::size_t import_clauses(const std::vector<sat::Clause>& clauses,
                             const std::vector<std::uint32_t>& leaf_to_canon);

 private:
  const Netlist& nl_;
  const Cone& cone_;
  ConeCheckOptions opts_;
  sat::Solver solver_;
  std::vector<sat::Lit> a_leaf_, b_leaf_, eq_sel_;
  std::vector<bool> leaf_is_const_;
  sat::Lit diff_{};
  std::uint64_t sat_calls_ = 0;
  std::uint64_t solver_solves_ = 0;
  std::uint64_t cores_reused_ = 0;
  std::uint64_t rotation_witnesses_ = 0;
  std::uint64_t last_inprocess_solves_ = 0;
  // Cached verdicts per leaf: 0 = undecided, 1 = Sat, 2 = Unsat.
  std::vector<std::uint8_t> verdict_;
  // Scratch for model rotation.
  std::vector<Word256> rot_vals_, rot_scratch_;
  std::vector<std::size_t> rot_cand_;

  sat::Lit encode_copy(std::vector<sat::Lit>& node_lit,
                       const std::vector<sat::Lit>& leaf_lits);
  void reuse_core(std::size_t leaf_idx);
  void rotate_model();
};

}  // namespace rsnsec::netlist
