#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rsnsec::netlist::verilog {

/// Result of parsing a structural Verilog module.
struct ParsedCircuit {
  Netlist netlist;
  /// Net name -> producing node (inputs, gate outputs, flip-flop outputs).
  std::map<std::string, NodeId> nets;
  /// Declared output port names, in declaration order.
  std::vector<std::string> outputs;
  std::string module_name;
};

/// Parses a flat structural Verilog subset:
///
///   module top(a, b, y);
///     input a, b;
///     output y;
///     wire w1;
///     and g1(w1, a, b);            // and/or/nand/nor/xor/xnor (n-ary)
///     not (y, w1);                 // not/buf (instance name optional)
///     mux m1(y2, sel, d0, d1);     // 2:1 mux primitive
///     (* instrument = "aes" *)     // optional module/instrument tag
///     dff q1(q, d);                // D flip-flop primitive
///   endmodule
///
/// Port directions may also be declared in the header
/// ("module top(input a, output y);"). Constants 1'b0/1'b1 are allowed
/// as gate inputs. Gates may appear in any order; combinational loops
/// are rejected. An `(* instrument = "name" *)` attribute assigns the
/// following primitive to that named instrument (netlist module);
/// instruments are created on first use.
///
/// Throws std::runtime_error with a line-numbered message on errors.
ParsedCircuit parse(std::istream& is);

/// Writes `nl` as a flat structural Verilog module named `name`, using
/// the subset accepted by parse() (instrument attributes included).
/// Nodes without names get synthetic ones ("n<id>").
void write(std::ostream& os, const Netlist& nl,
           const std::string& name = "top");

}  // namespace rsnsec::netlist::verilog
