#include "netlist/cone_check.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sat/encode.hpp"

namespace rsnsec::netlist {

using sat::Lit;
using sat::mk_lit;

ConeDependenceChecker::ConeDependenceChecker(const Netlist& nl,
                                             const Cone& cone,
                                             std::uint64_t conflict_limit)
    : nl_(nl), cone_(cone) {
  solver_.set_conflict_limit(conflict_limit);
  // Literals for the leaves of both copies.
  a_leaf_.reserve(cone_.leaves.size());
  b_leaf_.reserve(cone_.leaves.size());
  eq_sel_.reserve(cone_.leaves.size());
  leaf_is_const_.reserve(cone_.leaves.size());
  for (NodeId leaf : cone_.leaves) {
    GateType t = nl_.node(leaf).type;
    bool is_const = (t == GateType::Const0 || t == GateType::Const1);
    leaf_is_const_.push_back(is_const);
    Lit a = mk_lit(solver_.new_var());
    Lit b = mk_lit(solver_.new_var());
    Lit eq = mk_lit(solver_.new_var());
    if (is_const) {
      bool v = (t == GateType::Const1);
      solver_.add_clause(v ? a : ~a);
      solver_.add_clause(v ? b : ~b);
    }
    // eq -> (a == b)
    solver_.add_clause(~eq, ~a, b);
    solver_.add_clause(~eq, a, ~b);
    a_leaf_.push_back(a);
    b_leaf_.push_back(b);
    eq_sel_.push_back(eq);
  }

  std::vector<Lit> node_lit_a, node_lit_b;
  Lit out_a = encode_copy(node_lit_a, a_leaf_);
  Lit out_b = encode_copy(node_lit_b, b_leaf_);

  diff_ = mk_lit(solver_.new_var());
  // diff -> (out_a != out_b)
  solver_.add_clause(~diff_, out_a, out_b);
  solver_.add_clause(~diff_, ~out_a, ~out_b);
}

Lit ConeDependenceChecker::encode_copy(
    std::vector<Lit>& node_lit, const std::vector<Lit>& leaf_lits) {
  node_lit.assign(nl_.num_nodes(), sat::lit_undef);
  for (std::size_t i = 0; i < cone_.leaves.size(); ++i)
    node_lit[cone_.leaves[i]] = leaf_lits[i];

  for (NodeId id : cone_.gates) {
    const Node& n = nl_.node(id);
    std::vector<Lit> fanin_lits;
    fanin_lits.reserve(n.fanins.size());
    for (NodeId f : n.fanins) {
      assert(node_lit[f] != sat::lit_undef &&
             "cone gates must be topologically ordered");
      fanin_lits.push_back(node_lit[f]);
    }
    Lit out = mk_lit(solver_.new_var());
    switch (n.type) {
      case GateType::Buf:
        sat::encode_eq(solver_, out, fanin_lits[0]);
        break;
      case GateType::Not:
        sat::encode_eq(solver_, out, ~fanin_lits[0]);
        break;
      case GateType::And:
        sat::encode_and(solver_, out, fanin_lits);
        break;
      case GateType::Nand:
        sat::encode_and(solver_, ~out, fanin_lits);
        break;
      case GateType::Or:
        sat::encode_or(solver_, out, fanin_lits);
        break;
      case GateType::Nor:
        sat::encode_or(solver_, ~out, fanin_lits);
        break;
      case GateType::Xor:
        sat::encode_xor(solver_, out, fanin_lits);
        break;
      case GateType::Xnor:
        sat::encode_xor(solver_, ~out, fanin_lits);
        break;
      case GateType::Mux:
        sat::encode_mux(solver_, out, fanin_lits[0], fanin_lits[1],
                        fanin_lits[2]);
        break;
      default:
        throw std::logic_error("unexpected node type inside cone");
    }
    node_lit[id] = out;
  }

  assert(node_lit[cone_.root] != sat::lit_undef);
  return node_lit[cone_.root];
}

sat::Result ConeDependenceChecker::query(std::size_t leaf_idx) {
  assert(leaf_idx < cone_.leaves.size());
  if (leaf_is_const_[leaf_idx]) return sat::Result::Unsat;
  std::vector<Lit> assumptions;
  assumptions.reserve(cone_.leaves.size() + 3);
  for (std::size_t i = 0; i < cone_.leaves.size(); ++i) {
    if (i != leaf_idx) assumptions.push_back(eq_sel_[i]);
  }
  // WLOG fix the flipped leaf to 1 in copy A and 0 in copy B.
  assumptions.push_back(a_leaf_[leaf_idx]);
  assumptions.push_back(~b_leaf_[leaf_idx]);
  assumptions.push_back(diff_);
  ++sat_calls_;
  if (obs::TraceSession* trace = obs::TraceSession::active()) {
    trace->counter("cone.sat_queries").add(1);
    trace->histogram("cone.leaves_per_query")
        .record(cone_.leaves.size());
  }
  return solver_.solve(assumptions);
}

}  // namespace rsnsec::netlist
