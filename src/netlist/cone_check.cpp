#include "netlist/cone_check.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sat/encode.hpp"

namespace rsnsec::netlist {

using sat::Lit;
using sat::mk_lit;

ConeDependenceChecker::ConeDependenceChecker(const Netlist& nl,
                                             const Cone& cone,
                                             const ConeCheckOptions& options)
    : nl_(nl), cone_(cone), opts_(options) {
  solver_.set_conflict_limit(opts_.conflict_limit);
  // Literals for the leaves of both copies. The variable layout is part
  // of the clause-sharing contract: leaf i owns the triple
  // (3i = a, 3i+1 = b, 3i+2 = eq); gate and diff variables follow and
  // depend only on the gate structure, so two cones with the same
  // canonical signature have identical CNFs modulo a permutation of the
  // leaf triples.
  a_leaf_.reserve(cone_.leaves.size());
  b_leaf_.reserve(cone_.leaves.size());
  eq_sel_.reserve(cone_.leaves.size());
  leaf_is_const_.reserve(cone_.leaves.size());
  for (NodeId leaf : cone_.leaves) {
    GateType t = nl_.node(leaf).type;
    bool is_const = (t == GateType::Const0 || t == GateType::Const1);
    leaf_is_const_.push_back(is_const);
    Lit a = mk_lit(solver_.new_var());
    Lit b = mk_lit(solver_.new_var());
    Lit eq = mk_lit(solver_.new_var());
    if (is_const) {
      bool v = (t == GateType::Const1);
      solver_.add_clause(v ? a : ~a);
      solver_.add_clause(v ? b : ~b);
    }
    // eq -> (a == b)
    solver_.add_clause(~eq, ~a, b);
    solver_.add_clause(~eq, a, ~b);
    a_leaf_.push_back(a);
    b_leaf_.push_back(b);
    eq_sel_.push_back(eq);
  }

  std::vector<Lit> node_lit_a, node_lit_b;
  Lit out_a = encode_copy(node_lit_a, a_leaf_);
  Lit out_b = encode_copy(node_lit_b, b_leaf_);

  diff_ = mk_lit(solver_.new_var());
  // diff -> (out_a != out_b)
  solver_.add_clause(~diff_, out_a, out_b);
  solver_.add_clause(~diff_, ~out_a, ~out_b);

  verdict_.assign(cone_.leaves.size(), 0);
}

Lit ConeDependenceChecker::encode_copy(
    std::vector<Lit>& node_lit, const std::vector<Lit>& leaf_lits) {
  node_lit.assign(nl_.num_nodes(), sat::lit_undef);
  for (std::size_t i = 0; i < cone_.leaves.size(); ++i)
    node_lit[cone_.leaves[i]] = leaf_lits[i];

  for (NodeId id : cone_.gates) {
    const Node& n = nl_.node(id);
    std::vector<Lit> fanin_lits;
    fanin_lits.reserve(n.fanins.size());
    for (NodeId f : n.fanins) {
      assert(node_lit[f] != sat::lit_undef &&
             "cone gates must be topologically ordered");
      fanin_lits.push_back(node_lit[f]);
    }
    Lit out = mk_lit(solver_.new_var());
    switch (n.type) {
      case GateType::Buf:
        sat::encode_eq(solver_, out, fanin_lits[0]);
        break;
      case GateType::Not:
        sat::encode_eq(solver_, out, ~fanin_lits[0]);
        break;
      case GateType::And:
        sat::encode_and(solver_, out, fanin_lits);
        break;
      case GateType::Nand:
        sat::encode_and(solver_, ~out, fanin_lits);
        break;
      case GateType::Or:
        sat::encode_or(solver_, out, fanin_lits);
        break;
      case GateType::Nor:
        sat::encode_or(solver_, ~out, fanin_lits);
        break;
      case GateType::Xor:
        sat::encode_xor(solver_, out, fanin_lits);
        break;
      case GateType::Xnor:
        sat::encode_xor(solver_, ~out, fanin_lits);
        break;
      case GateType::Mux:
        sat::encode_mux(solver_, out, fanin_lits[0], fanin_lits[1],
                        fanin_lits[2]);
        break;
      default:
        throw std::logic_error("unexpected node type inside cone");
    }
    node_lit[id] = out;
  }

  assert(node_lit[cone_.root] != sat::lit_undef);
  return node_lit[cone_.root];
}

sat::Result ConeDependenceChecker::query(std::size_t leaf_idx) {
  assert(leaf_idx < cone_.leaves.size());
  if (leaf_is_const_[leaf_idx]) return sat::Result::Unsat;
  ++sat_calls_;
  if (obs::TraceSession* trace = obs::TraceSession::active()) {
    trace->counter("cone.sat_queries").add(1);
    trace->histogram("cone.leaves_per_query")
        .record(cone_.leaves.size());
  }
  if (opts_.incremental && verdict_[leaf_idx] != 0) {
    return verdict_[leaf_idx] == 1 ? sat::Result::Sat : sat::Result::Unsat;
  }

  if (opts_.incremental && opts_.inprocess_interval != 0 &&
      solver_solves_ - last_inprocess_solves_ >= opts_.inprocess_interval) {
    solver_.inprocess();
    last_inprocess_solves_ = solver_solves_;
  }

  // Canonical assumption order: diff first, then the eq selectors in
  // ascending leaf order, then the flipped leaf's polarity literals.
  // Consecutive queries j, j' thus share an assumption prefix of length
  // 1 + min(j, j'), which the solver keeps on its trail verbatim.
  std::vector<Lit> assumptions;
  assumptions.reserve(cone_.leaves.size() + 3);
  assumptions.push_back(diff_);
  for (std::size_t i = 0; i < cone_.leaves.size(); ++i) {
    if (i != leaf_idx) assumptions.push_back(eq_sel_[i]);
  }
  // WLOG fix the flipped leaf to 1 in copy A and 0 in copy B.
  assumptions.push_back(a_leaf_[leaf_idx]);
  assumptions.push_back(~b_leaf_[leaf_idx]);

  sat::Result r = solver_.solve(assumptions);
  ++solver_solves_;
  if (!opts_.incremental) return r;
  if (r == sat::Result::Sat) {
    verdict_[leaf_idx] = 1;
    rotate_model();
  } else if (r == sat::Result::Unsat) {
    verdict_[leaf_idx] = 2;
    reuse_core(leaf_idx);
  }
  return r;
}

void ConeDependenceChecker::reuse_core(std::size_t leaf_idx) {
  // The core is a subset of {diff} ∪ {eq_i : i != j} ∪ {a_j, ~b_j} whose
  // conjunction is already unsatisfiable with the CNF. Leaf k's
  // assumption set contains diff, every eq_i with i != k, a_k and ~b_k —
  // so the core is a subset of it (making k Unsat by the same proof) iff
  // it avoids a_j, ~b_j and eq_k. An empty core means the CNF is
  // unsatisfiable under no assumptions, discharging every leaf.
  const std::size_t num_leaves = cone_.leaves.size();
  const std::vector<Lit>& core = solver_.conflict_core();
  std::vector<bool> eq_in_core(num_leaves, false);
  for (Lit l : core) {
    if (l == a_leaf_[leaf_idx] || l == ~b_leaf_[leaf_idx]) return;
    auto v = static_cast<std::uint32_t>(sat::var(l));
    if (v < 3 * num_leaves && v % 3 == 2) eq_in_core[v / 3] = true;
  }
  for (std::size_t k = 0; k < num_leaves; ++k) {
    if (k == leaf_idx || leaf_is_const_[k] || verdict_[k] != 0) continue;
    if (!eq_in_core[k]) {
      verdict_[k] = 2;
      ++cores_reused_;
    }
  }
}

void ConeDependenceChecker::rotate_model() {
  // Model rotation: the satisfying model assigns every leaf of copy A.
  // Flipping a single undecided leaf u from that assignment and
  // re-evaluating the cone is a direct dependence test — if the root
  // flips, u is a Sat witness (∃ assignment of the other leaves such
  // that toggling u toggles the root). 255 candidate flips ride in one
  // 256-pattern evaluation: bit 0 keeps the unflipped base, bit p >= 1
  // flips exactly candidate p-1.
  const std::size_t num_leaves = cone_.leaves.size();
  rot_cand_.clear();
  for (std::size_t k = 0; k < num_leaves; ++k) {
    if (!leaf_is_const_[k] && verdict_[k] == 0) rot_cand_.push_back(k);
  }
  if (rot_cand_.empty()) return;

  rot_vals_.resize(num_leaves);
  for (std::size_t i = 0; i < num_leaves; ++i)
    rot_vals_[i] = Word256::broadcast(solver_.model_value(a_leaf_[i]));

  for (std::size_t start = 0; start < rot_cand_.size(); start += 255) {
    std::size_t m = std::min<std::size_t>(255, rot_cand_.size() - start);
    for (std::size_t p = 0; p < m; ++p)
      rot_vals_[rot_cand_[start + p]].flip_bit(p + 1);
    Word256 f = eval_cone(nl_, cone_, rot_vals_, rot_scratch_);
    bool base = f.bit(0);
    for (std::size_t p = 0; p < m; ++p) {
      rot_vals_[rot_cand_[start + p]].flip_bit(p + 1);  // restore
      if (f.bit(p + 1) != base) {
        verdict_[rot_cand_[start + p]] = 1;
        ++rotation_witnesses_;
      }
    }
  }
}

std::vector<sat::Clause> ConeDependenceChecker::export_clauses(
    const std::vector<std::uint32_t>& leaf_to_canon, std::size_t max_size,
    std::uint32_t max_lbd) const {
  assert(leaf_to_canon.size() == cone_.leaves.size());
  const auto num_leaf_vars =
      static_cast<std::uint32_t>(3 * cone_.leaves.size());
  std::vector<sat::Clause> out =
      solver_.export_learnts(max_size, max_lbd);
  for (sat::Clause& cl : out) {
    for (Lit& l : cl) {
      auto v = static_cast<std::uint32_t>(sat::var(l));
      if (v < num_leaf_vars) {
        std::uint32_t canon_v = 3 * leaf_to_canon[v / 3] + v % 3;
        l = mk_lit(static_cast<sat::Var>(canon_v), sat::sign(l));
      }
    }
  }
  return out;
}

std::size_t ConeDependenceChecker::import_clauses(
    const std::vector<sat::Clause>& clauses,
    const std::vector<std::uint32_t>& leaf_to_canon) {
  assert(leaf_to_canon.size() == cone_.leaves.size());
  const std::size_t num_leaves = cone_.leaves.size();
  std::vector<std::uint32_t> canon_to_own(num_leaves);
  for (std::size_t i = 0; i < num_leaves; ++i)
    canon_to_own[leaf_to_canon[i]] = static_cast<std::uint32_t>(i);
  const auto num_leaf_vars = static_cast<std::uint32_t>(3 * num_leaves);
  std::size_t installed = 0;
  sat::Clause translated;
  for (const sat::Clause& cl : clauses) {
    translated = cl;
    for (Lit& l : translated) {
      auto v = static_cast<std::uint32_t>(sat::var(l));
      if (v < num_leaf_vars) {
        std::uint32_t own_v = 3 * canon_to_own[v / 3] + v % 3;
        l = mk_lit(static_cast<sat::Var>(own_v), sat::sign(l));
      }
    }
    if (solver_.import_clause(translated)) ++installed;
  }
  return installed;
}

}  // namespace rsnsec::netlist
