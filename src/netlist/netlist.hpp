#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rsnsec::netlist {

/// Identifier of a node (gate, input, constant or flip-flop) in a Netlist.
using NodeId = std::uint32_t;
constexpr NodeId no_node = 0xffffffffu;

/// Identifier of a module (instrument/core) of the circuit; modules carry
/// the trust annotation of the security specification.
using ModuleId = std::int32_t;
constexpr ModuleId no_module = -1;

/// Gate/node types supported by the netlist model.
enum class GateType : std::uint8_t {
  Input,   ///< primary input (free value each cycle)
  Const0,  ///< constant 0
  Const1,  ///< constant 1
  Buf,     ///< identity, 1 fanin
  Not,     ///< inverter, 1 fanin
  And,     ///< n-ary AND
  Nand,    ///< n-ary NAND
  Or,      ///< n-ary OR
  Nor,     ///< n-ary NOR
  Xor,     ///< n-ary XOR
  Xnor,    ///< n-ary XNOR
  Mux,     ///< 2:1 multiplexer, fanins = [sel, in0, in1]
  FF       ///< D flip-flop, fanins = [d] (may be set after creation)
};

/// Returns a short mnemonic for a gate type ("AND", "FF", ...).
const char* gate_type_name(GateType t);

/// One node of the netlist.
struct Node {
  GateType type = GateType::Buf;
  std::vector<NodeId> fanins;
  std::string name;
  ModuleId module = no_module;
};

/// Combinational input cone of a signal: all gates between the root signal
/// and the nearest sequential/primary leaves, in topological (leaves-first)
/// order. If the root is itself a leaf node (flip-flop output, input or
/// constant), the cone is degenerate: no gates, leaves == {root}.
struct Cone {
  NodeId root = no_node;
  std::vector<NodeId> gates;   ///< combinational gates, topologically sorted
  std::vector<NodeId> leaves;  ///< flip-flops, inputs and constants feeding it
};

/// Gate-level sequential circuit: the "underlying circuit logic" of the
/// paper. Nodes are gates, primary inputs and D flip-flops; every node
/// optionally belongs to a module (instrument). Combinational loops are
/// rejected by validate().
class Netlist {
 public:
  /// Registers a module and returns its id.
  ModuleId add_module(std::string name);

  /// Number of registered modules.
  std::size_t num_modules() const { return module_names_.size(); }

  /// Name of module `m`.
  const std::string& module_name(ModuleId m) const {
    return module_names_[static_cast<std::size_t>(m)];
  }

  /// Adds a primary input.
  NodeId add_input(std::string name, ModuleId module = no_module);

  /// Adds a constant node.
  NodeId add_const(bool value);

  /// Adds a combinational gate with the given fanins.
  NodeId add_gate(GateType type, std::vector<NodeId> fanins,
                  std::string name = {}, ModuleId module = no_module);

  /// Adds a D flip-flop; its data input may be left unset and assigned
  /// later with set_ff_input (useful when building cyclic sequential
  /// structures).
  NodeId add_ff(std::string name, ModuleId module = no_module,
                NodeId d = no_node);

  /// Sets (or replaces) the data input of flip-flop `ff`.
  void set_ff_input(NodeId ff, NodeId d);

  /// Total number of nodes.
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Node accessor.
  const Node& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }

  /// True if `id` is a flip-flop.
  bool is_ff(NodeId id) const { return node(id).type == GateType::FF; }

  /// All flip-flop ids, in creation order.
  const std::vector<NodeId>& ffs() const { return ffs_; }

  /// All primary input ids, in creation order.
  const std::vector<NodeId>& inputs() const { return inputs_; }

  /// Extracts the combinational cone of the signal *at* node `net` (the
  /// value observable on its output). If `net` is a flip-flop, input or
  /// constant, the cone is degenerate (leaves == {net}). Used for capture
  /// sources: capturing a flip-flop's output captures its current state.
  Cone extract_signal_cone(NodeId net) const;

  /// Extracts the next-state cone of flip-flop `ff` (the cone of its data
  /// input signal). An unconnected flip-flop yields an empty cone.
  Cone extract_next_state_cone(NodeId ff) const;

  /// Checks structural sanity: every fanin id valid, every FF has a data
  /// input, no combinational cycles. Returns true when valid; otherwise
  /// fills `error` with a diagnostic.
  bool validate(std::string* error = nullptr) const;

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> ffs_;
  std::vector<NodeId> inputs_;
  std::vector<std::string> module_names_;
};

/// Evaluates a single gate function over 64-bit parallel bit patterns.
/// `fanin_values` are the packed values of the gate's fanins in order.
std::uint64_t eval_gate(GateType type, const std::uint64_t* fanin_values,
                        std::size_t n);

}  // namespace rsnsec::netlist
