#include "netlist/netlist.hpp"

#include <cassert>
#include <stdexcept>

namespace rsnsec::netlist {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Mux: return "MUX";
    case GateType::FF: return "FF";
  }
  return "?";
}

ModuleId Netlist::add_module(std::string name) {
  module_names_.push_back(std::move(name));
  return static_cast<ModuleId>(module_names_.size() - 1);
}

NodeId Netlist::add_input(std::string name, ModuleId module) {
  auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({GateType::Input, {}, std::move(name), module});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_const(bool value) {
  auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(
      {value ? GateType::Const1 : GateType::Const0, {}, {}, no_module});
  return id;
}

NodeId Netlist::add_gate(GateType type, std::vector<NodeId> fanins,
                         std::string name, ModuleId module) {
  assert(type != GateType::Input && type != GateType::FF);
  if (type == GateType::Mux && fanins.size() != 3)
    throw std::invalid_argument("MUX requires exactly 3 fanins");
  if ((type == GateType::Buf || type == GateType::Not) && fanins.size() != 1)
    throw std::invalid_argument("BUF/NOT require exactly 1 fanin");
  auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({type, std::move(fanins), std::move(name), module});
  return id;
}

NodeId Netlist::add_ff(std::string name, ModuleId module, NodeId d) {
  auto id = static_cast<NodeId>(nodes_.size());
  std::vector<NodeId> fanins;
  if (d != no_node) fanins.push_back(d);
  nodes_.push_back({GateType::FF, std::move(fanins), std::move(name), module});
  ffs_.push_back(id);
  return id;
}

void Netlist::set_ff_input(NodeId ff, NodeId d) {
  Node& n = nodes_[static_cast<std::size_t>(ff)];
  assert(n.type == GateType::FF);
  n.fanins.assign(1, d);
}

Cone Netlist::extract_next_state_cone(NodeId ff) const {
  const Node& n = node(ff);
  assert(n.type == GateType::FF);
  if (n.fanins.empty()) return {};  // unconnected FF: empty cone
  return extract_signal_cone(n.fanins[0]);
}

Cone Netlist::extract_signal_cone(NodeId net) const {
  Cone cone;
  cone.root = net;
  NodeId start = net;

  // Iterative post-order DFS producing a topological (leaves-first) order.
  enum class Mark : std::uint8_t { Unseen, OnStack, Done };
  std::vector<Mark> marks(nodes_.size(), Mark::Unseen);
  std::vector<std::pair<NodeId, std::size_t>> stack;  // node, next-fanin idx

  auto is_leaf = [this](NodeId id) {
    GateType t = node(id).type;
    return t == GateType::FF || t == GateType::Input ||
           t == GateType::Const0 || t == GateType::Const1;
  };

  if (is_leaf(start)) {
    cone.leaves.push_back(start);
    return cone;
  }
  stack.emplace_back(start, 0);
  marks[start] = Mark::OnStack;
  while (!stack.empty()) {
    auto& [id, next] = stack.back();
    const Node& n = node(id);
    if (next < n.fanins.size()) {
      NodeId f = n.fanins[next++];
      if (marks[f] != Mark::Unseen) continue;
      if (is_leaf(f)) {
        marks[f] = Mark::Done;
        cone.leaves.push_back(f);
      } else {
        marks[f] = Mark::OnStack;
        stack.emplace_back(f, 0);
      }
    } else {
      marks[id] = Mark::Done;
      cone.gates.push_back(id);
      stack.pop_back();
    }
  }
  return cone;
}

bool Netlist::validate(std::string* error) const {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (NodeId f : n.fanins) {
      if (f >= nodes_.size())
        return fail("node " + std::to_string(i) + " has invalid fanin");
    }
    if (n.type == GateType::FF && n.fanins.empty())
      return fail("flip-flop " + std::to_string(i) + " ('" + n.name +
                  "') has no data input");
  }
  // Combinational cycle check: DFS over combinational edges only (FF
  // fanins break the cycle because an FF output is a sequential element).
  enum class Mark : std::uint8_t { Unseen, OnStack, Done };
  std::vector<Mark> marks(nodes_.size(), Mark::Unseen);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (NodeId r = 0; r < nodes_.size(); ++r) {
    if (marks[r] != Mark::Unseen) continue;
    if (node(r).type == GateType::FF || node(r).type == GateType::Input)
      continue;
    stack.emplace_back(r, 0);
    marks[r] = Mark::OnStack;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const Node& n = node(id);
      if (next < n.fanins.size()) {
        NodeId f = n.fanins[next++];
        GateType t = node(f).type;
        if (t == GateType::FF || t == GateType::Input ||
            t == GateType::Const0 || t == GateType::Const1)
          continue;
        if (marks[f] == Mark::OnStack)
          return fail("combinational cycle through node " +
                      std::to_string(f));
        if (marks[f] == Mark::Unseen) {
          marks[f] = Mark::OnStack;
          stack.emplace_back(f, 0);
        }
      } else {
        marks[id] = Mark::Done;
        stack.pop_back();
      }
    }
  }
  return true;
}

std::uint64_t eval_gate(GateType type, const std::uint64_t* v,
                        std::size_t n) {
  switch (type) {
    case GateType::Const0: return 0;
    case GateType::Const1: return ~0ULL;
    case GateType::Buf: return v[0];
    case GateType::Not: return ~v[0];
    case GateType::And: {
      std::uint64_t r = ~0ULL;
      for (std::size_t i = 0; i < n; ++i) r &= v[i];
      return r;
    }
    case GateType::Nand: {
      std::uint64_t r = ~0ULL;
      for (std::size_t i = 0; i < n; ++i) r &= v[i];
      return ~r;
    }
    case GateType::Or: {
      std::uint64_t r = 0;
      for (std::size_t i = 0; i < n; ++i) r |= v[i];
      return r;
    }
    case GateType::Nor: {
      std::uint64_t r = 0;
      for (std::size_t i = 0; i < n; ++i) r |= v[i];
      return ~r;
    }
    case GateType::Xor: {
      std::uint64_t r = 0;
      for (std::size_t i = 0; i < n; ++i) r ^= v[i];
      return r;
    }
    case GateType::Xnor: {
      std::uint64_t r = 0;
      for (std::size_t i = 0; i < n; ++i) r ^= v[i];
      return ~r;
    }
    case GateType::Mux:
      return (v[0] & v[2]) | (~v[0] & v[1]);
    case GateType::Input:
    case GateType::FF:
      break;  // sequential/primary nodes have no combinational function
  }
  assert(false && "eval_gate on non-combinational node");
  return 0;
}

}  // namespace rsnsec::netlist
