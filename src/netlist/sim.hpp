#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"
#include "util/word256.hpp"

namespace rsnsec::netlist {

/// 64-bit parallel-pattern simulator for a Netlist.
///
/// Each node carries a 64-bit word; bit k of every word belongs to the
/// same simulated pattern k, so one pass evaluates 64 input patterns at
/// once. Used for functional verification in tests and as the random
/// prefilter of the SAT-based dependency check (a simulated propagation
/// witness proves functional dependence without a SAT call).
class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Sets the packed value of a primary input or flip-flop state.
  void set_value(NodeId id, std::uint64_t v) {
    values_[static_cast<std::size_t>(id)] = v;
  }

  /// Packed value of any node (valid after eval_comb for gates).
  std::uint64_t value(NodeId id) const {
    return values_[static_cast<std::size_t>(id)];
  }

  /// Randomizes all primary inputs and flip-flop states.
  void randomize_state(Rng& rng);

  /// Evaluates all combinational gates in topological order.
  void eval_comb();

  /// Advances one clock cycle: evaluates combinational logic, then loads
  /// every flip-flop with the value of its data input.
  void step();

 private:
  const Netlist& nl_;
  std::vector<std::uint64_t> values_;
  std::vector<NodeId> topo_;  // combinational gates in topological order

  void build_topo();
};

/// Evaluates the combinational function of `cone` given packed values for
/// its leaves (parallel to cone.leaves). Returns the packed root value.
/// Gate values are computed in a scratch map sized to the netlist.
std::uint64_t eval_cone(const Netlist& nl, const Cone& cone,
                        const std::vector<std::uint64_t>& leaf_values,
                        std::vector<std::uint64_t>& scratch);

/// Portable 256-bit pattern block, shared with the tiled dependency
/// matrix: see util/word256.hpp. Aliased here because the simulator (and
/// every cone-classification caller) predates the move to util.
using rsnsec::Word256;

/// 256-pattern overload of eval_cone: identical semantics per lane. The
/// lane order is part of the determinism contract — callers that fill
/// leaf values from an RNG must draw lane 0 first, then 1, 2, 3, per
/// leaf, so verdicts are independent of evaluation schedule.
Word256 eval_cone(const Netlist& nl, const Cone& cone,
                  const std::vector<Word256>& leaf_values,
                  std::vector<Word256>& scratch);

}  // namespace rsnsec::netlist
