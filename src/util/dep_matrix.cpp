#include "util/dep_matrix.hpp"

#include <bit>
#include <cassert>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec {

namespace {

/// Rows below this dimension are not worth a parallel dispatch per
/// elimination step / round: the synchronization would dominate.
constexpr std::size_t kMinParallelRows = 192;

bool use_pool(const ThreadPool* pool, std::size_t n) {
  return pool != nullptr && pool->num_threads() > 1 && n >= kMinParallelRows;
}

}  // namespace

DepMatrix::DepMatrix(std::size_t n)
    : n_(n),
      words_per_row_((n + 63) / 64),
      s_(n * words_per_row_, 0),
      p_(n * words_per_row_, 0) {}

DepKind DepMatrix::get(std::size_t i, std::size_t j) const {
  assert(i < n_ && j < n_);
  if (p_[word(i, j)] & bit(j)) return DepKind::Path;
  if (s_[word(i, j)] & bit(j)) return DepKind::Structural;
  return DepKind::None;
}

void DepMatrix::upgrade(std::size_t i, std::size_t j, DepKind k) {
  assert(i < n_ && j < n_);
  if (k == DepKind::None) return;
  s_[word(i, j)] |= bit(j);
  if (k == DepKind::Path) p_[word(i, j)] |= bit(j);
}

void DepMatrix::set(std::size_t i, std::size_t j, DepKind k) {
  assert(i < n_ && j < n_);
  s_[word(i, j)] &= ~bit(j);
  p_[word(i, j)] &= ~bit(j);
  upgrade(i, j, k);
}

void DepMatrix::clear_node(std::size_t i) {
  assert(i < n_);
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    s_[i * words_per_row_ + w] = 0;
    p_[i * words_per_row_ + w] = 0;
  }
  for (std::size_t r = 0; r < n_; ++r) {
    s_[word(r, i)] &= ~bit(i);
    p_[word(r, i)] &= ~bit(i);
  }
}

std::size_t DepMatrix::count_nonzero() const {
  std::size_t c = 0;
  for (auto w : s_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

std::size_t DepMatrix::count_path() const {
  std::size_t c = 0;
  for (auto w : p_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

void DepMatrix::closure_plane(std::vector<std::uint64_t>& plane,
                              const std::vector<bool>* active,
                              ThreadPool* pool) {
  // Warshall's algorithm with bit-parallel row unions: for each allowed
  // intermediate node k, every row that reaches k absorbs k's row. The
  // rows of one elimination step are independent (row i only reads the
  // via row k — which i == k skipping keeps stable — and writes itself),
  // so they can be processed as parallel blocks without changing any bit
  // of the result.
  const bool parallel = use_pool(pool, n_);
  for (std::size_t k = 0; k < n_; ++k) {
    if (active && !(*active)[k]) continue;
    const std::uint64_t* krow = &plane[k * words_per_row_];
    auto absorb = [&](std::size_t i) {
      if (i == k) return;
      std::uint64_t* irow = &plane[i * words_per_row_];
      if (!(irow[k >> 6] & bit(k))) return;
      for (std::size_t w = 0; w < words_per_row_; ++w) irow[w] |= krow[w];
    };
    if (parallel) {
      pool->parallel_for(0, n_, absorb, /*grain=*/64);
    } else {
      for (std::size_t i = 0; i < n_; ++i) absorb(i);
    }
  }
}

bool DepMatrix::bounded_closure(std::size_t cycles, ThreadPool* pool) {
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span span(trace, "closure.bounded");
  // Round k extends chains by one hop of the original 1-cycle relation:
  // new(i,j) |= max over v of compose(cur(i,v), one(v,j)). Keeping the
  // original relation fixed per round gives exactly the "dependencies
  // within <= k cycles" semantics of [18]'s iterative computation.
  const std::vector<std::uint64_t> one_s = s_, one_p = p_;
  const bool parallel = use_pool(pool, n_);
  bool changed_last = false;
  for (std::size_t round = 1; round < cycles; ++round) {
    // Snapshot: new entries of this round must not serve as vias, so the
    // round extends chains by exactly one cycle. Rows read only the
    // snapshots and write themselves, so they are independent within a
    // round and parallelize without changing any bit.
    const std::vector<std::uint64_t> cur_s = s_, cur_p = p_;
    auto extend_row = [&](std::size_t i) -> bool {
      bool changed = false;
      std::uint64_t* row_s = &s_[i * words_per_row_];
      std::uint64_t* row_p = &p_[i * words_per_row_];
      const std::uint64_t* ci_s = &cur_s[i * words_per_row_];
      const std::uint64_t* ci_p = &cur_p[i * words_per_row_];
      for (std::size_t v = 0; v < n_; ++v) {
        bool via_s = (ci_s[v >> 6] >> (v & 63)) & 1u;
        if (!via_s) continue;
        bool via_p = (ci_p[v >> 6] >> (v & 63)) & 1u;
        const std::uint64_t* vp = &one_p[v * words_per_row_];
        const std::uint64_t* vs = &one_s[v * words_per_row_];
        for (std::size_t w = 0; w < words_per_row_; ++w) {
          // Path chain needs path on both hops; any other combination
          // yields (at most) a structural chain.
          std::uint64_t add_p = via_p ? vp[w] : 0;
          std::uint64_t add_s = vs[w];
          changed |= (add_p & ~row_p[w]) != 0;
          changed |= (add_s & ~row_s[w]) != 0;
          row_p[w] |= add_p;
          row_s[w] |= add_s;
        }
      }
      return changed;
    };
    bool changed = false;
    if (parallel) {
      changed = pool->parallel_reduce(
          0, n_, false, extend_row, [](bool a, bool b) { return a || b; },
          /*grain=*/32);
    } else {
      for (std::size_t i = 0; i < n_; ++i) changed |= extend_row(i);
    }
    changed_last = changed;
    if (trace != nullptr) trace->counter("closure.rounds").add(1);
    if (!changed) break;
  }
  return changed_last;
}

void DepMatrix::transitive_closure(const std::vector<bool>* active,
                                   ThreadPool* pool) {
  obs::Span span(obs::TraceSession::active(), "closure.transitive");
  // Path-dependence closes over functional (path) edges only; structural
  // dependence closes over all edges. Closing the planes independently
  // implements exactly the compose_dep semantics.
  closure_plane(p_, active, pool);
  closure_plane(s_, active, pool);
  // Re-establish the P-implies-S invariant (closure of P may add pairs the
  // S plane already had anyway, but be defensive).
  for (std::size_t w = 0; w < s_.size(); ++w) s_[w] |= p_[w];
}

void DepMatrix::eliminate(std::size_t v) {
  assert(v < n_);
  const std::uint64_t* vrow_s = &s_[v * words_per_row_];
  const std::uint64_t* vrow_p = &p_[v * words_per_row_];
  const std::size_t vw = v >> 6;
  const std::uint64_t vb = bit(v);
  // Scan column v for predecessors p of v; for each, OR v's outgoing row
  // into p's row word-parallel. compose_dep(in, out): a Path in-edge keeps
  // out kinds as-is; a Structural in-edge demotes every composition to
  // Structural (so only the S plane is extended). Row v stays stable
  // during the loop (p == v is skipped), so no snapshot is needed.
  for (std::size_t p = 0; p < n_; ++p) {
    if (p == v) continue;
    if (!(s_[p * words_per_row_ + vw] & vb)) continue;
    const bool in_path = (p_[p * words_per_row_ + vw] & vb) != 0;
    std::uint64_t* prow_s = &s_[p * words_per_row_];
    std::uint64_t* prow_p = &p_[p * words_per_row_];
    // Bridging never introduces a (p, p) self-dependency: a chain p->v->p
    // is a cycle through the eliminated node, not a dependency of p on
    // itself at the bridged granularity. The word-OR would set it when v
    // has an edge back to p, so preserve the old diagonal bit. (The ORed
    // (p, v) bit — when v has a self-loop — is wiped by clear_node below.)
    const std::size_t pw = p >> 6;
    const std::uint64_t pb = bit(p);
    const std::uint64_t old_diag_s = prow_s[pw] & pb;
    const std::uint64_t old_diag_p = prow_p[pw] & pb;
    if (in_path) {
      for (std::size_t w = 0; w < words_per_row_; ++w) {
        prow_s[w] |= vrow_s[w];
        prow_p[w] |= vrow_p[w];
      }
    } else {
      for (std::size_t w = 0; w < words_per_row_; ++w) prow_s[w] |= vrow_s[w];
    }
    prow_s[pw] = (prow_s[pw] & ~pb) | old_diag_s;
    prow_p[pw] = (prow_p[pw] & ~pb) | old_diag_p;
  }
  clear_node(v);
}

bool DepMatrix::from_planes(std::size_t n, std::vector<std::uint64_t> s,
                            std::vector<std::uint64_t> p, DepMatrix* out) {
  const std::size_t wpr = (n + 63) / 64;
  if (s.size() != n * wpr || p.size() != n * wpr) return false;
  // Tail bits beyond column n-1 must be clear: count_nonzero() and the
  // word-parallel kernels assume it.
  if (n % 64 != 0 && wpr > 0) {
    const std::uint64_t tail_mask = ~((1ULL << (n % 64)) - 1);
    for (std::size_t r = 0; r < n; ++r) {
      if ((s[r * wpr + wpr - 1] | p[r * wpr + wpr - 1]) & tail_mask)
        return false;
    }
  }
  for (std::size_t w = 0; w < p.size(); ++w) {
    if (p[w] & ~s[w]) return false;  // P implies S
  }
  out->n_ = n;
  out->words_per_row_ = wpr;
  out->s_ = std::move(s);
  out->p_ = std::move(p);
  return true;
}

std::vector<std::size_t> DepMatrix::successors(std::size_t i) const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t bits = s_[i * words_per_row_ + w];
    while (bits) {
      unsigned tz = static_cast<unsigned>(std::countr_zero(bits));
      out.push_back(w * 64 + tz);
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<std::size_t> DepMatrix::predecessors(std::size_t i) const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < n_; ++r) {
    if (s_[word(r, i)] & bit(i)) out.push_back(r);
  }
  return out;
}

}  // namespace rsnsec
