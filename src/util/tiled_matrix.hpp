#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/dep_matrix.hpp"

namespace rsnsec {

class ThreadPool;

/// Out-of-core backing for TiledDepMatrix tiles. Content-addressed: the
/// backend derives a handle from the tile bytes (store() of equal bytes
/// may return equal handles, deduplicating identical tiles), and a handle
/// once returned must stay fetchable for the lifetime of the backend —
/// handles are immutable, so evicting a clean tile needs no second
/// store(). The production implementation wraps the ArtifactStore
/// (store/tile_spill.hpp); tests use InMemorySpillBackend.
class TileSpillBackend {
 public:
  virtual ~TileSpillBackend() = default;

  /// Persists `bytes` and returns its handle.
  virtual std::string store(std::string_view bytes) = 0;

  /// Fetches the bytes of `handle` into `out`; false if unknown/corrupt.
  virtual bool fetch(const std::string& handle, std::string* out) = 0;
};

/// Trivial in-process TileSpillBackend: a content-keyed map. Gives tests
/// the full spill/fault-in code path without a disk store.
class InMemorySpillBackend : public TileSpillBackend {
 public:
  std::string store(std::string_view bytes) override;
  bool fetch(const std::string& handle, std::string* out) override;

  std::size_t stored_objects() const { return objects_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> objects_;  // handle, bytes
};

/// Sparse n-by-n DepKind matrix stored as 64x64-bit tiles.
///
/// Semantically identical to DepMatrix (two bit planes S and P, P implies
/// S, entry (i, j) = dependency of column j on row i), but all-zero tiles
/// are not materialized, so memory scales with the number of denoted
/// 64x64 blocks instead of n^2 — the difference between ~2.5 GB and a few
/// hundred MB for a 100k-FF design whose dependency structure is module-
/// local. Tiles of one row block are kept sorted by column block.
///
/// Every kernel (transitive_closure, bounded_closure, eliminate) computes
/// bit for bit what the corresponding DepMatrix kernel computes: the
/// closures are unique fixpoints of the relation and elimination is
/// order-independent, so the tiled results are interchangeable with the
/// dense oracle (pinned by tests/util/tiled_matrix_test.cpp and the
/// dep-level oracle sweeps).
///
/// Out-of-core spill: with set_spill(backend, budget) attached, tiles
/// beyond the resident-byte budget are evicted least-recently-stamped to
/// the backend (serialized once — handles are content-addressed and
/// immutable — then freed) and faulted back in on access. Eviction runs
/// only at checkpoints between tile operations, never while a kernel
/// holds raw tile pointers; the budget is therefore advisory — a kernel's
/// working set may exceed it transiently. Kernels run sequentially while
/// a backend is attached (fault-in mutates shared state), so `pool`
/// arguments are ignored in spill mode.
class TiledDepMatrix {
 public:
  /// One 64x64-bit tile: 64 row words per plane, bit c of s[r] =
  /// "structural or stronger" for local entry (r, c). 1 KiB per tile.
  struct Tile {
    std::uint64_t s[64];
    std::uint64_t p[64];
  };

  TiledDepMatrix() = default;
  explicit TiledDepMatrix(std::size_t n);

  TiledDepMatrix(const TiledDepMatrix& o);
  TiledDepMatrix& operator=(const TiledDepMatrix& o);
  TiledDepMatrix(TiledDepMatrix&&) noexcept = default;
  TiledDepMatrix& operator=(TiledDepMatrix&&) noexcept = default;

  /// Attaches an eviction backend; `budget_bytes` caps resident tile
  /// bytes (advisory, see class comment). The backend is not owned and
  /// must outlive the matrix. nullptr detaches (faulting everything in).
  void set_spill(TileSpillBackend* backend, std::uint64_t budget_bytes);

  std::size_t size() const { return n_; }
  std::size_t num_blocks() const { return nb_; }

  DepKind get(std::size_t i, std::size_t j) const;
  void upgrade(std::size_t i, std::size_t j, DepKind k);
  void set(std::size_t i, std::size_t j, DepKind k);
  void clear_node(std::size_t i);

  std::size_t count_nonzero() const;
  std::size_t count_path() const;

  /// Marks endpoints[i] = true for every i that is the source or target
  /// of at least one non-None entry. `endpoints` must be sized n.
  void mark_endpoints(std::vector<bool>& endpoints) const;

  /// Resident (non-spilled) tiles currently materialized.
  std::size_t tiles_resident() const;
  /// Non-zero tiles, resident or spilled (spilled tiles are never zero —
  /// zero tiles are pruned, not stored).
  std::size_t tiles_nonzero() const;
  /// Cumulative tiles evicted to the spill backend over the lifetime.
  std::uint64_t tiles_spilled() const { return tiles_spilled_; }
  /// Resident bytes of tile payloads plus slot bookkeeping. Content-
  /// derived (sizes, not capacities), so computed and store-restored
  /// matrices with the same tiles report the same figure.
  std::uint64_t memory_bytes() const;

  /// Tiled transitive closure under compose_dep/max_dep; bit-identical to
  /// DepMatrix::transitive_closure for the same relation and `active`
  /// mask. Blocked Floyd-Warshall: per 64-wide via block, the diagonal
  /// tile is closed locally, then the row panel, column panel and
  /// interior updates absorb it — each skipping absent tiles, which is
  /// where the block-sparse win over the dense kernel comes from.
  void transitive_closure(const std::vector<bool>* active = nullptr,
                          ThreadPool* pool = nullptr);

  /// Tiled bounded closure; bit-identical to DepMatrix::bounded_closure.
  bool bounded_closure(std::size_t cycles, ThreadPool* pool = nullptr);

  /// Tiled bridging of node v; bit-identical to DepMatrix::eliminate.
  void eliminate(std::size_t v);

  /// Column indices j with get(i, j) != None, ascending.
  std::vector<std::size_t> successors(std::size_t i) const;

  /// Column indices j with get(i, j) == Path, ascending.
  std::vector<std::size_t> path_successors(std::size_t i) const;

  /// Calls fn(i, j, kind) for every non-None entry, ascending (i, j).
  void for_each_entry(
      const std::function<void(std::size_t, std::size_t, DepKind)>& fn) const;

  /// Dense interchange (tests, small-scale oracles, serialization of the
  /// capture side). to_dense materializes all spilled tiles' contents.
  DepMatrix to_dense() const;
  static TiledDepMatrix from_dense(const DepMatrix& m);

  /// Serialization interface: visits tiles in (row block, column block)
  /// order, faulting spilled tiles in.
  void for_each_tile(const std::function<void(std::size_t rb, std::size_t cb,
                                              const Tile&)>& fn) const;

  /// Inserts a tile during deserialization, validating range, strictly
  /// ascending (rb, cb) insertion order per row block, non-zero payload,
  /// clear tail bits on edge blocks and P-implies-S. Returns false on any
  /// violation (the codec treats that as a corrupt blob).
  bool insert_tile(std::size_t rb, std::size_t cb, const Tile& t);

  /// Resident view of tile (rb, cb), faulting a spilled tile in; nullptr
  /// if the tile is absent (all-zero). The pointer is invalidated by any
  /// mutation of the matrix. Used by the region-partitioned bridging to
  /// lift a region's diagonal block into a dense local matrix.
  const Tile* tile_at(std::size_t rb, std::size_t cb) const;

  /// Replaces tile (rb, cb) with `t` wholesale (erasing it if `t` is all
  /// zero). Unlike insert_tile this is an unordered overwrite for trusted
  /// in-process callers — the write-back half of tile_at.
  void assign_tile(std::size_t rb, std::size_t cb, const Tile& t);

  /// Content equality (same dimension, same DepKind at every entry).
  friend bool operator==(const TiledDepMatrix& a, const TiledDepMatrix& b);

 private:
  struct Slot {
    std::uint32_t cb = 0;
    // mutable: const accessors fault spilled tiles back in.
    mutable std::unique_ptr<Tile> tile;
    mutable std::string handle;  ///< spill handle once evicted (sticky)
    mutable std::uint64_t stamp = 0;  ///< LRU clock for eviction
    mutable bool dirty = true;  ///< resident tile differs from handle
  };
  struct RowBlock {
    std::vector<Slot> slots;  // sorted by cb
  };

  std::size_t n_ = 0;
  std::size_t nb_ = 0;  // number of 64-wide blocks: (n + 63) / 64
  std::vector<RowBlock> rows_;
  TileSpillBackend* backend_ = nullptr;
  std::uint64_t budget_bytes_ = 0;
  mutable std::uint64_t clock_ = 0;
  mutable std::uint64_t tiles_spilled_ = 0;
  /// Resident tile count, maintained only while a backend is attached
  /// (kernels run sequentially then); without a backend it is unused so
  /// the parallel kernels never touch shared state.
  mutable std::size_t resident_ = 0;

  /// Tail mask of the last block: bits for columns/rows >= n are invalid.
  std::uint64_t edge_mask(std::size_t block) const;

  const Slot* find_slot(std::size_t rb, std::size_t cb) const;
  /// Resident tile of (rb, cb), faulting in; nullptr if absent (and
  /// `create` is false). With `create`, an all-zero tile is materialized.
  Tile* acquire(std::size_t rb, std::size_t cb, bool create) const;
  void fault_in(const Slot& s) const;
  void prune_if_zero(std::size_t rb, std::size_t cb);
  /// Evicts least-recently-stamped tiles down to the budget. Only called
  /// at safe points (no raw tile pointers held by the caller).
  void checkpoint() const;

  void closure_plane(bool path_plane, const std::vector<std::uint64_t>& amask,
                     ThreadPool* pool);
  bool compose_round(const TiledDepMatrix& cur, const TiledDepMatrix& one,
                     ThreadPool* pool);
};

}  // namespace rsnsec
