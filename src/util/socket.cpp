#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rsnsec {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path))
    throw SocketError("unix socket path too long: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  Socket s(fd);
  sockaddr_un addr = unix_addr(path);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("connect('" + path + "')");
  return s;
}

Socket Socket::connect_tcp(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  Socket s(fd);
  sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

void Socket::write_all(std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string Socket::read_some(std::size_t max) {
  std::string buf(max, '\0');
  for (;;) {
    ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    buf.resize(static_cast<std::size_t>(n));
    return buf;
  }
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

Listener Listener::listen_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  Listener l;
  l.fd_ = fd;
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE; the advertised path belongs to the new daemon.
  ::unlink(path.c_str());
  sockaddr_un addr = unix_addr(path);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind('" + path + "')");
  l.path_ = path;
  if (::listen(fd, 64) != 0) throw_errno("listen('" + path + "')");
  return l;
}

Listener Listener::listen_tcp(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  Listener l;
  l.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  l.port_ = ntohs(addr.sin_port);
  if (::listen(fd, 64) != 0)
    throw_errno("listen(127.0.0.1:" + std::to_string(l.port_) + ")");
  return l;
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return std::nullopt;  // signal: let caller re-check
    throw_errno("poll");
  }
  if (rc == 0) return std::nullopt;
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept");
  }
  return Socket(client);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

std::optional<LineReader::Line> LineReader::next() {
  for (;;) {
    // Drain complete frames already buffered.
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      Line line;
      line.text = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (dropping_ > 0 || line.text.size() > max_line_) {
        // Either this newline terminates a line whose prefix was already
        // discarded, or the whole oversize line landed in one read chunk
        // (a single recv can buffer line + terminator together, so the
        // cap must also be enforced on complete frames).
        line.text.clear();
        line.oversize = true;
        dropping_ = 0;
      }
      if (!line.text.empty() && line.text.back() == '\r')
        line.text.pop_back();
      return line;
    }
    if (buffer_.size() > max_line_ && dropping_ == 0) {
      // Oversize in progress: stop accumulating, remember we owe the
      // caller one SRV002 once the terminator arrives.
      dropping_ = buffer_.size();
      buffer_.clear();
    } else if (dropping_ > 0) {
      dropping_ += buffer_.size();
      buffer_.clear();
    }
    if (eof_) {
      if (buffer_.empty() && dropping_ == 0) return std::nullopt;
      // Peer died mid-frame: surface the fragment (the protocol layer
      // rejects it as malformed), then report EOF.
      Line line;
      line.text = std::move(buffer_);
      line.oversize = dropping_ > 0;
      buffer_.clear();
      dropping_ = 0;
      return line;
    }
    std::string chunk = socket_.read_some();
    if (chunk.empty())
      eof_ = true;
    else
      buffer_ += chunk;
  }
}

}  // namespace rsnsec
