#include "util/rng.hpp"

namespace rsnsec {

void Rng::reseed(std::uint64_t seed) {
  // PCG32 initialization as in the reference implementation, with a fixed
  // odd stream constant mixed with the seed so different seeds also get
  // different streams.
  state_ = 0;
  inc_ = (seed << 1u) | 1u;
  (void)next_u32();
  state_ += 0x853c49e6748fea9bULL + seed;
  (void)next_u32();
}

std::uint32_t Rng::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t Rng::below(std::uint32_t bound) {
  // Lemire-style unbiased bounded generation via rejection.
  std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::below64(std::uint64_t bound) {
  if (bound <= 0xffffffffULL)
    return below(static_cast<std::uint32_t>(bound));
  std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint32_t Rng::range(std::uint32_t lo, std::uint32_t hi) {
  return lo + below(hi - lo + 1);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() {
  return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

}  // namespace rsnsec
