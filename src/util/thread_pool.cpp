#include "util/thread_pool.hpp"

#include <cstdlib>
#include <optional>

namespace rsnsec {

std::size_t ThreadPool::resolve_num_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RSNSEC_JOBS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(num_threads == 0 ? resolve_num_threads() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t t = 1; t < num_threads_; ++t)
    workers_.emplace_back([this, t] {
      obs::set_current_thread_name("pool-worker-" + std::to_string(t));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Workers drain the queue before exiting, so every submitted task has
  // run by now.
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode: run immediately on the caller.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t ThreadPool::effective_grain(std::size_t range,
                                        std::size_t grain) const {
  if (grain > 0) return grain;
  // Automatic: about 8 chunks per thread, so cost skew between chunks
  // still balances while per-chunk claiming overhead stays negligible.
  std::size_t target_chunks = num_threads_ * 8;
  std::size_t g = (range + target_chunks - 1) / target_chunks;
  return g > 0 ? g : 1;
}

void ThreadPool::run_batch(const std::shared_ptr<Batch>& batch) {
  // Attribute spans opened by chunk bodies to the loop's enclosing span
  // (no-op when tracing is off: two thread_local assignments).
  obs::ScopedTaskParent task_parent(batch->trace_parent);
  for (;;) {
    std::size_t chunk = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= batch->num_chunks) return;
    if (!batch->cancelled.load(std::memory_order_relaxed)) {
      std::size_t cb = batch->begin + chunk * batch->grain;
      std::size_t ce = cb + batch->grain < batch->end ? cb + batch->grain
                                                      : batch->end;
      try {
        batch->chunk_fn(cb, ce, chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch->mutex);
        if (!batch->error) batch->error = std::current_exception();
        batch->cancelled.store(true, std::memory_order_relaxed);
      }
    }
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(batch->mutex);
      batch->done.notify_all();
    }
  }
}

void ThreadPool::run_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    std::function<void(std::size_t, std::size_t, std::size_t)> chunk_fn) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  const std::size_t g = effective_grain(range, grain);
  const std::size_t num_chunks = (range + g - 1) / g;

  obs::TraceSession* trace = obs::TraceSession::active();
  std::optional<obs::Span> loop_span;
  if (trace != nullptr) {
    loop_span.emplace(trace, "pool.loop");
    trace->counter("pool.loops").add(1);
    trace->counter("pool.chunks").add(num_chunks);
  }

  if (workers_.empty() || num_chunks == 1) {
    // Inline: sequential ascending, exceptions propagate naturally.
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      std::size_t cb = begin + chunk * g;
      std::size_t ce = cb + g < end ? cb + g : end;
      chunk_fn(cb, ce, chunk);
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->chunk_fn = std::move(chunk_fn);
  batch->trace_parent = obs::current_context();
  batch->begin = begin;
  batch->end = end;
  batch->grain = g;
  batch->num_chunks = num_chunks;
  batch->remaining.store(num_chunks, std::memory_order_relaxed);

  // One runner per worker (capped by the chunk count); the caller is the
  // final runner, which guarantees progress even when every worker is
  // occupied by an enclosing loop (nested parallel_for).
  std::size_t helpers = workers_.size() < num_chunks - 1 ? workers_.size()
                                                         : num_chunks - 1;
  for (std::size_t t = 0; t < helpers; ++t)
    submit([batch] { run_batch(batch); });
  run_batch(batch);

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&] {
    return batch->remaining.load(std::memory_order_acquire) == 0;
  });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace rsnsec
