#include "util/tiled_matrix.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/word256.hpp"

namespace rsnsec {

namespace {

/// Blocked kernels dispatch one task per 64-row block; below this many
/// blocks the dispatch overhead dominates any win.
constexpr std::size_t kMinParallelBlocks = 4;

constexpr std::size_t kTileBytes = sizeof(TiledDepMatrix::Tile);
constexpr std::size_t kTileWords = 128;  // 64 S rows + 64 P rows

/// OR `words` 64-bit words of src into dst, four lanes at a time. memcpy
/// in and out of Word256 keeps it strict-aliasing clean; the copies
/// compile away and the lane loop auto-vectorizes.
void or_words(std::uint64_t* dst, const std::uint64_t* src,
              std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    Word256 a;
    Word256 b;
    std::memcpy(&a, dst + i, sizeof a);
    std::memcpy(&b, src + i, sizeof b);
    a |= b;
    std::memcpy(dst + i, &a, sizeof a);
  }
  for (; i < words; ++i) dst[i] |= src[i];
}

bool any_words(const std::uint64_t* w, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    Word256 a;
    std::memcpy(&a, w + i, sizeof a);
    if (a.any()) return true;
  }
  for (; i < words; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

bool tile_is_zero(const TiledDepMatrix::Tile& t) {
  return !any_words(t.s, 64) && !any_words(t.p, 64);
}

std::size_t tile_popcount(const std::uint64_t* rows) {
  std::size_t c = 0;
  for (std::size_t r = 0; r < 64; ++r) {
    c += static_cast<std::size_t>(std::popcount(rows[r]));
  }
  return c;
}

/// Portable little-endian tile serialization: 64 S words then 64 P words.
std::string serialize_tile(const TiledDepMatrix::Tile& t) {
  std::string out(kTileWords * 8, '\0');
  const std::uint64_t* words = t.s;  // s and p are contiguous in the POD
  for (std::size_t w = 0; w < kTileWords; ++w) {
    const std::uint64_t v = words[w];
    for (std::size_t b = 0; b < 8; ++b) {
      out[w * 8 + b] = static_cast<char>((v >> (8 * b)) & 0xff);
    }
  }
  return out;
}

bool deserialize_tile(const std::string& bytes, TiledDepMatrix::Tile* t) {
  if (bytes.size() != kTileWords * 8) return false;
  std::uint64_t* words = t->s;
  for (std::size_t w = 0; w < kTileWords; ++w) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[w * 8 + b]))
           << (8 * b);
    }
    words[w] = v;
  }
  return true;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(v >> (4 * i)) & 0xf];
  }
  return out;
}

bool use_pool(const ThreadPool* pool, std::size_t blocks) {
  return pool != nullptr && pool->num_threads() > 1 &&
         blocks >= kMinParallelBlocks;
}

}  // namespace

static_assert(offsetof(TiledDepMatrix::Tile, p) == 64 * sizeof(std::uint64_t),
              "tile planes must be contiguous for serialization");

// ---------------------------------------------------------------------------
// InMemorySpillBackend

std::string InMemorySpillBackend::store(std::string_view bytes) {
  std::string handle = hex64(fnv1a64(bytes));
  for (;;) {
    auto it = std::find_if(
        objects_.begin(), objects_.end(),
        [&](const auto& o) { return o.first == handle; });
    if (it == objects_.end()) {
      objects_.emplace_back(handle, std::string(bytes));
      return handle;
    }
    if (it->second == bytes) return handle;  // content-addressed dedup
    handle += '+';  // hash collision: probe to the next free handle
  }
}

bool InMemorySpillBackend::fetch(const std::string& handle,
                                 std::string* out) {
  for (const auto& o : objects_) {
    if (o.first == handle) {
      *out = o.second;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// TiledDepMatrix: construction, spill plumbing, element access

TiledDepMatrix::TiledDepMatrix(std::size_t n)
    : n_(n), nb_((n + 63) / 64), rows_(nb_) {}

TiledDepMatrix::TiledDepMatrix(const TiledDepMatrix& o)
    : n_(o.n_), nb_(o.nb_), rows_(o.nb_) {
  // The copy is fully resident and detached from any spill backend:
  // snapshots must stay readable even if the source keeps evicting.
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    rows_[rb].slots.reserve(o.rows_[rb].slots.size());
    for (const Slot& s : o.rows_[rb].slots) {
      Tile* src = o.acquire(rb, s.cb, /*create=*/false);
      assert(src != nullptr);
      Slot copy;
      copy.cb = s.cb;
      copy.tile = std::make_unique<Tile>(*src);
      rows_[rb].slots.push_back(std::move(copy));
    }
  }
}

TiledDepMatrix& TiledDepMatrix::operator=(const TiledDepMatrix& o) {
  if (this != &o) {
    TiledDepMatrix tmp(o);
    *this = std::move(tmp);
  }
  return *this;
}

void TiledDepMatrix::set_spill(TileSpillBackend* backend,
                               std::uint64_t budget_bytes) {
  if (backend == nullptr && backend_ != nullptr) {
    // Detach: everything must be resident before the backend goes away.
    for (std::size_t rb = 0; rb < nb_; ++rb) {
      for (Slot& s : rows_[rb].slots) {
        if (!s.tile) fault_in(s);
        s.handle.clear();
        s.dirty = true;
      }
    }
  }
  backend_ = backend;
  budget_bytes_ = budget_bytes;
  resident_ = 0;
  if (backend_ != nullptr) {
    for (const RowBlock& row : rows_) {
      for (const Slot& s : row.slots) {
        if (s.tile) ++resident_;
      }
    }
    checkpoint();
  }
}

std::uint64_t TiledDepMatrix::edge_mask(std::size_t block) const {
  if (block + 1 == nb_ && n_ % 64 != 0) return (1ULL << (n_ % 64)) - 1;
  return ~0ULL;
}

const TiledDepMatrix::Slot* TiledDepMatrix::find_slot(std::size_t rb,
                                                      std::size_t cb) const {
  const auto& slots = rows_[rb].slots;
  auto it = std::lower_bound(
      slots.begin(), slots.end(), cb,
      [](const Slot& s, std::size_t c) { return s.cb < c; });
  if (it == slots.end() || it->cb != cb) return nullptr;
  return &*it;
}

void TiledDepMatrix::fault_in(const Slot& s) const {
  assert(backend_ != nullptr && !s.tile && !s.handle.empty());
  std::string bytes;
  if (!backend_->fetch(s.handle, &bytes)) {
    throw std::runtime_error("tiled matrix: spilled tile lost by backend");
  }
  auto tile = std::make_unique<Tile>();
  if (!deserialize_tile(bytes, tile.get())) {
    throw std::runtime_error("tiled matrix: corrupt spilled tile");
  }
  s.tile = std::move(tile);
  s.dirty = false;
  ++resident_;
}

TiledDepMatrix::Tile* TiledDepMatrix::acquire(std::size_t rb, std::size_t cb,
                                              bool create) const {
  auto& slots = const_cast<RowBlock&>(rows_[rb]).slots;
  auto it = std::lower_bound(
      slots.begin(), slots.end(), cb,
      [](const Slot& s, std::size_t c) { return s.cb < c; });
  if (it != slots.end() && it->cb == cb) {
    if (!it->tile) fault_in(*it);
    if (backend_ != nullptr) {
      it->stamp = ++clock_;
      it->dirty = true;
    }
    return it->tile.get();
  }
  if (!create) return nullptr;
  Slot s;
  s.cb = static_cast<std::uint32_t>(cb);
  s.tile = std::make_unique<Tile>();
  std::memset(s.tile.get(), 0, kTileBytes);
  if (backend_ != nullptr) {
    s.stamp = ++clock_;
    ++resident_;
  }
  return slots.insert(it, std::move(s))->tile.get();
}

void TiledDepMatrix::prune_if_zero(std::size_t rb, std::size_t cb) {
  auto& slots = rows_[rb].slots;
  auto it = std::lower_bound(
      slots.begin(), slots.end(), cb,
      [](const Slot& s, std::size_t c) { return s.cb < c; });
  if (it == slots.end() || it->cb != cb) return;
  if (!it->tile || !tile_is_zero(*it->tile)) return;
  if (backend_ != nullptr) --resident_;
  slots.erase(it);
}

void TiledDepMatrix::checkpoint() const {
  if (backend_ == nullptr) return;
  if (resident_ * kTileBytes <= budget_bytes_) return;
  // Least-recently-stamped first. The scan is linear in the slot count;
  // checkpoints only run between tile operations, never per bit.
  std::vector<std::pair<std::uint64_t, Slot*>> resident;
  resident.reserve(resident_);
  for (const RowBlock& row : rows_) {
    for (const Slot& s : row.slots) {
      if (s.tile) resident.emplace_back(s.stamp, const_cast<Slot*>(&s));
    }
  }
  std::sort(resident.begin(), resident.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [stamp, slot] : resident) {
    if (resident_ * kTileBytes <= budget_bytes_) break;
    (void)stamp;
    if (slot->dirty || slot->handle.empty()) {
      slot->handle = backend_->store(serialize_tile(*slot->tile));
      slot->dirty = false;
    }
    slot->tile.reset();
    --resident_;
    ++tiles_spilled_;
  }
}

DepKind TiledDepMatrix::get(std::size_t i, std::size_t j) const {
  assert(i < n_ && j < n_);
  const Tile* t = acquire(i >> 6, j >> 6, /*create=*/false);
  if (t == nullptr) return DepKind::None;
  const std::uint64_t b = 1ULL << (j & 63);
  if (t->p[i & 63] & b) return DepKind::Path;
  if (t->s[i & 63] & b) return DepKind::Structural;
  return DepKind::None;
}

void TiledDepMatrix::upgrade(std::size_t i, std::size_t j, DepKind k) {
  assert(i < n_ && j < n_);
  if (k == DepKind::None) return;
  Tile* t = acquire(i >> 6, j >> 6, /*create=*/true);
  const std::uint64_t b = 1ULL << (j & 63);
  t->s[i & 63] |= b;
  if (k == DepKind::Path) t->p[i & 63] |= b;
  checkpoint();
}

void TiledDepMatrix::set(std::size_t i, std::size_t j, DepKind k) {
  assert(i < n_ && j < n_);
  Tile* t = acquire(i >> 6, j >> 6, /*create=*/k != DepKind::None);
  if (t == nullptr) return;
  const std::uint64_t b = 1ULL << (j & 63);
  t->s[i & 63] &= ~b;
  t->p[i & 63] &= ~b;
  if (k != DepKind::None) t->s[i & 63] |= b;
  if (k == DepKind::Path) t->p[i & 63] |= b;
  prune_if_zero(i >> 6, j >> 6);
  checkpoint();
}

void TiledDepMatrix::clear_node(std::size_t i) {
  assert(i < n_);
  const std::size_t ib = i >> 6;
  const std::size_t ir = i & 63;
  const std::uint64_t ibit = 1ULL << ir;
  // Row i: zero the local row of every tile in block row ib.
  for (Slot& s : rows_[ib].slots) {
    Tile* t = acquire(ib, s.cb, false);
    t->s[ir] = 0;
    t->p[ir] = 0;
  }
  // Column i: clear the local bit of every tile in block column ib.
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    Tile* t = acquire(rb, ib, /*create=*/false);
    if (t == nullptr) continue;
    for (std::size_t r = 0; r < 64; ++r) {
      t->s[r] &= ~ibit;
      t->p[r] &= ~ibit;
    }
  }
  // Prune tiles the clears emptied (collect first: erasing invalidates).
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    auto& slots = rows_[rb].slots;
    slots.erase(std::remove_if(slots.begin(), slots.end(),
                               [&](const Slot& s) {
                                 if (!s.tile || !tile_is_zero(*s.tile))
                                   return false;
                                 if (backend_ != nullptr) --resident_;
                                 return true;
                               }),
                slots.end());
  }
  checkpoint();
}

std::size_t TiledDepMatrix::count_nonzero() const {
  std::size_t c = 0;
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    for (const Slot& s : rows_[rb].slots) {
      const Tile* t = acquire(rb, s.cb, false);
      c += tile_popcount(t->s);
    }
  }
  return c;
}

std::size_t TiledDepMatrix::count_path() const {
  std::size_t c = 0;
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    for (const Slot& s : rows_[rb].slots) {
      const Tile* t = acquire(rb, s.cb, false);
      c += tile_popcount(t->p);
    }
  }
  return c;
}

void TiledDepMatrix::mark_endpoints(std::vector<bool>& endpoints) const {
  assert(endpoints.size() == n_);
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    for (const Slot& s : rows_[rb].slots) {
      const Tile* t = acquire(rb, s.cb, false);
      std::uint64_t cols = 0;
      for (std::size_t r = 0; r < 64; ++r) {
        if (t->s[r] == 0) continue;
        endpoints[rb * 64 + r] = true;
        cols |= t->s[r];
      }
      while (cols) {
        const unsigned c = static_cast<unsigned>(std::countr_zero(cols));
        cols &= cols - 1;
        endpoints[s.cb * 64 + c] = true;
      }
    }
  }
}

std::size_t TiledDepMatrix::tiles_resident() const {
  std::size_t c = 0;
  for (const RowBlock& row : rows_) {
    for (const Slot& s : row.slots) {
      if (s.tile) ++c;
    }
  }
  return c;
}

std::size_t TiledDepMatrix::tiles_nonzero() const {
  std::size_t c = 0;
  for (const RowBlock& row : rows_) c += row.slots.size();
  return c;
}

std::uint64_t TiledDepMatrix::memory_bytes() const {
  // Content-derived (sizes, not vector capacities): a matrix restored
  // from the artifact store must report the same footprint as the run
  // that computed it, or warm analysis reports stop being byte-identical
  // to cold ones. Under a spill budget the figure still tracks the
  // actual resident tile set.
  std::uint64_t bytes = rows_.size() * sizeof(RowBlock);
  for (const RowBlock& row : rows_) {
    bytes += row.slots.size() * sizeof(Slot);
    for (const Slot& s : row.slots) {
      if (s.tile) bytes += kTileBytes;
      bytes += s.handle.size();
    }
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Kernels

void TiledDepMatrix::closure_plane(bool path_plane,
                                   const std::vector<std::uint64_t>& amask,
                                   ThreadPool* pool) {
  // Blocked Floyd-Warshall over one bit plane. For each 64-wide via block
  // K (restricted to active vias am): close the diagonal tile, push it
  // through K's row panel (D* ⊗ T[K][C]) and, per other row block R,
  // through the column panel (T[R][K] ⊗ D*) and the interior product
  // (T[R][K] ⊗ T[K][C]). Absent tiles contribute nothing and are skipped,
  // which is the entire block-sparse win. The result is the unique
  // closure over active intermediates, i.e. bit-identical to the dense
  // kernel. In-place panel updates are sound because D is closed first
  // (any chain through an already-updated row is subsumed by a direct
  // via, the standard blocked-FW argument).
  const bool parallel = use_pool(pool, nb_);
  auto rows_of = [path_plane](Tile* t) -> std::uint64_t* {
    return path_plane ? t->p : t->s;
  };
  for (std::size_t K = 0; K < nb_; ++K) {
    const std::uint64_t am = amask[K];
    if (am == 0) continue;
    Tile* dt = acquire(K, K, /*create=*/false);
    std::uint64_t* D = dt != nullptr ? rows_of(dt) : nullptr;
    if (D != nullptr) {
      // Close the diagonal tile over active vias. krow is copied, so the
      // via row stays stable while its own step runs.
      for (std::uint64_t vias = am; vias != 0; vias &= vias - 1) {
        const unsigned kk = static_cast<unsigned>(std::countr_zero(vias));
        const std::uint64_t krow = D[kk];
        if (krow == 0) continue;
        const std::uint64_t kb = 1ULL << kk;
        for (std::size_t i = 0; i < 64; ++i) {
          if (D[i] & kb) D[i] |= krow;
        }
      }
      // Row panel: every tile (K, C != K) absorbs D's reachability.
      auto& kslots = rows_[K].slots;
      auto panel = [&](std::size_t si) {
        Slot& s = kslots[si];
        if (s.cb == K) return;
        // acquire: faults a spilled tile in and marks it dirty before the
        // in-place update (no-op without a backend, and then thread-safe).
        std::uint64_t* T = rows_of(acquire(K, s.cb, false));
        for (std::uint64_t vias = am; vias != 0; vias &= vias - 1) {
          const unsigned kk = static_cast<unsigned>(std::countr_zero(vias));
          const std::uint64_t krow = T[kk];
          if (krow == 0) continue;
          const std::uint64_t kb = 1ULL << kk;
          for (std::size_t i = 0; i < 64; ++i) {
            if (D[i] & kb) T[i] |= krow;
          }
        }
      };
      if (parallel) {
        pool->parallel_for(0, kslots.size(), panel, /*grain=*/1);
      } else {
        for (std::size_t si = 0; si < kslots.size(); ++si) panel(si);
      }
    }
    // Column panel + interior, independent per row block R: each R only
    // mutates rows_[R] (interior creates tiles there) and reads the
    // stable row block K.
    auto row_block = [&](std::size_t R) {
      if (R == K) return;
      Tile* at = acquire(R, K, /*create=*/false);
      if (at == nullptr) return;
      std::uint64_t* A = rows_of(at);
      if (D != nullptr) {
        for (std::size_t r = 0; r < 64; ++r) {
          std::uint64_t vias = A[r] & am;
          std::uint64_t add = 0;
          while (vias != 0) {
            add |= D[std::countr_zero(vias)];
            vias &= vias - 1;
          }
          A[r] |= add;
        }
      }
      // Interior needs A after the column-panel update; copy it out —
      // creating tiles in rows_[R] below may reallocate the slot vector
      // that holds `at`.
      std::uint64_t arow[64];
      std::memcpy(arow, A, sizeof arow);
      for (const Slot& bslot : rows_[K].slots) {
        if (bslot.cb == K) continue;
        const std::uint64_t* B = rows_of(acquire(K, bslot.cb, false));
        Tile* dest = nullptr;
        std::uint64_t* dw = nullptr;
        for (std::size_t r = 0; r < 64; ++r) {
          std::uint64_t vias = arow[r] & am;
          if (vias == 0) continue;
          std::uint64_t add = 0;
          while (vias != 0) {
            add |= B[std::countr_zero(vias)];
            vias &= vias - 1;
          }
          if (add == 0) continue;
          if (dest == nullptr) {
            dest = acquire(R, bslot.cb, /*create=*/true);
            dw = rows_of(dest);
          }
          dw[r] |= add;
        }
      }
    };
    if (parallel) {
      pool->parallel_for(0, nb_, row_block, /*grain=*/1);
    } else {
      for (std::size_t R = 0; R < nb_; ++R) row_block(R);
    }
    checkpoint();
  }
}

void TiledDepMatrix::transitive_closure(const std::vector<bool>* active,
                                        ThreadPool* pool) {
  obs::Span span(obs::TraceSession::active(), "closure.transitive");
  ThreadPool* ep = backend_ != nullptr ? nullptr : pool;
  std::vector<std::uint64_t> amask(nb_, 0);
  for (std::size_t K = 0; K < nb_; ++K) {
    std::uint64_t m = edge_mask(K);
    if (active != nullptr) {
      std::uint64_t sel = 0;
      const std::size_t base = K * 64;
      for (std::size_t b = 0; b < 64 && base + b < n_; ++b) {
        if ((*active)[base + b]) sel |= 1ULL << b;
      }
      m &= sel;
    }
    amask[K] = m;
  }
  // Mirror the dense kernel: close P over path edges, S over all edges,
  // then re-establish P implies S per tile. Tiles created while closing
  // P carry an empty S plane until the fixup — same transient state the
  // dense planes go through.
  closure_plane(/*path_plane=*/true, amask, ep);
  closure_plane(/*path_plane=*/false, amask, ep);
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    for (Slot& s : rows_[rb].slots) {
      Tile* t = acquire(rb, s.cb, false);
      or_words(t->s, t->p, 64);
    }
  }
  checkpoint();
}

bool TiledDepMatrix::compose_round(const TiledDepMatrix& cur,
                                   const TiledDepMatrix& one,
                                   ThreadPool* pool) {
  // One bounded-closure round: row i absorbs one.row(v) for every via v
  // with cur(i, v) set (P plane only through P vias). Tile-at-a-time:
  // cur tile (rb, vb) composes with one tiles (vb, cb) into this (rb, cb).
  const bool parallel = use_pool(pool, nb_) && backend_ == nullptr;
  auto extend_block = [&](std::size_t rb) -> bool {
    bool changed = false;
    for (const Slot& cslot : cur.rows_[rb].slots) {
      const Tile* ct = cslot.tile.get();
      const std::size_t vb = cslot.cb;
      for (const Slot& oslot : one.rows_[vb].slots) {
        const Tile* ot = oslot.tile.get();
        Tile* dest = nullptr;
        for (std::size_t r = 0; r < 64; ++r) {
          std::uint64_t svias = ct->s[r];
          if (svias == 0) continue;
          std::uint64_t pvias = ct->p[r];
          std::uint64_t add_s = 0;
          std::uint64_t add_p = 0;
          while (svias != 0) {
            add_s |= ot->s[std::countr_zero(svias)];
            svias &= svias - 1;
          }
          while (pvias != 0) {
            add_p |= ot->p[std::countr_zero(pvias)];
            pvias &= pvias - 1;
          }
          if (add_s == 0 && add_p == 0) continue;
          if (dest == nullptr) dest = acquire(rb, oslot.cb, /*create=*/true);
          changed |= (add_s & ~dest->s[r]) != 0;
          changed |= (add_p & ~dest->p[r]) != 0;
          dest->s[r] |= add_s;
          dest->p[r] |= add_p;
        }
      }
    }
    checkpoint();
    return changed;
  };
  if (parallel) {
    return pool->parallel_reduce(
        std::size_t{0}, nb_, false, extend_block,
        [](bool a, bool b) { return a || b; }, /*grain=*/1);
  }
  bool changed = false;
  for (std::size_t rb = 0; rb < nb_; ++rb) changed |= extend_block(rb);
  return changed;
}

bool TiledDepMatrix::bounded_closure(std::size_t cycles, ThreadPool* pool) {
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span span(trace, "closure.bounded");
  ThreadPool* ep = backend_ != nullptr ? nullptr : pool;
  // Snapshots are fully-resident deep copies; with a spill backend the
  // bounded closure therefore holds up to two extra resident copies —
  // acceptable because the bounded mode is a repro/analysis knob, not the
  // scale path (which runs the full transitive closure).
  const TiledDepMatrix one(*this);
  bool changed_last = false;
  for (std::size_t round = 1; round < cycles; ++round) {
    const TiledDepMatrix cur(*this);
    const bool changed = compose_round(cur, one, ep);
    changed_last = changed;
    if (trace != nullptr) trace->counter("closure.rounds").add(1);
    if (!changed) break;
  }
  return changed_last;
}

void TiledDepMatrix::eliminate(std::size_t v) {
  assert(v < n_);
  const std::size_t vb = v >> 6;
  const std::size_t vr = v & 63;
  const std::uint64_t vbit = 1ULL << vr;
  // Snapshot v's outgoing row: (column block, S word, P word) triples.
  // The OR loop below creates tiles, which can invalidate any raw pointer
  // into the slot vectors — the snapshot keeps the source stable, exactly
  // like the dense kernel's "row v stays stable" precondition.
  struct VOut {
    std::uint32_t cb;
    std::uint64_t s;
    std::uint64_t p;
  };
  std::vector<VOut> vout;
  for (const Slot& s : rows_[vb].slots) {
    const Tile* t = s.tile ? s.tile.get() : acquire(vb, s.cb, false);
    if (t->s[vr] == 0) continue;
    vout.push_back(VOut{s.cb, t->s[vr], t->p[vr]});
  }
  if (!vout.empty()) {
    for (std::size_t pb = 0; pb < nb_; ++pb) {
      const Tile* col = acquire(pb, vb, /*create=*/false);
      if (col == nullptr) continue;
      // Column-v masks, snapshotted before any tile creation in block
      // row pb can move `col`.
      std::uint64_t col_s = 0;
      std::uint64_t col_p = 0;
      for (std::size_t r = 0; r < 64; ++r) {
        col_s |= ((col->s[r] >> vr) & 1ULL) << r;
        col_p |= ((col->p[r] >> vr) & 1ULL) << r;
      }
      if (pb == vb) col_s &= ~vbit, col_p &= ~vbit;  // skip p == v
      while (col_s != 0) {
        const unsigned r = static_cast<unsigned>(std::countr_zero(col_s));
        col_s &= col_s - 1;
        const bool in_path = ((col_p >> r) & 1ULL) != 0;
        const std::size_t p = pb * 64 + r;
        for (const VOut& out : vout) {
          Tile* dest = acquire(pb, out.cb, /*create=*/true);
          // Same diagonal rule as the dense kernel: bridging p->v->p is a
          // cycle through v, not a self-dependency of p.
          const bool diag = out.cb == pb;
          const std::uint64_t pbit = 1ULL << (p & 63);
          const std::uint64_t old_s = diag ? (dest->s[r] & pbit) : 0;
          const std::uint64_t old_p = diag ? (dest->p[r] & pbit) : 0;
          dest->s[r] |= out.s;
          if (in_path) dest->p[r] |= out.p;
          if (diag) {
            dest->s[r] = (dest->s[r] & ~pbit) | old_s;
            dest->p[r] = (dest->p[r] & ~pbit) | old_p;
          }
        }
      }
      checkpoint();
    }
  }
  clear_node(v);
}

// ---------------------------------------------------------------------------
// Queries, interchange, serialization

std::vector<std::size_t> TiledDepMatrix::successors(std::size_t i) const {
  assert(i < n_);
  std::vector<std::size_t> out;
  const std::size_t rb = i >> 6;
  const std::size_t r = i & 63;
  for (const Slot& s : rows_[rb].slots) {
    const Tile* t = acquire(rb, s.cb, false);
    std::uint64_t bits = t->s[r];
    while (bits != 0) {
      out.push_back(s.cb * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<std::size_t> TiledDepMatrix::path_successors(
    std::size_t i) const {
  assert(i < n_);
  std::vector<std::size_t> out;
  const std::size_t rb = i >> 6;
  const std::size_t r = i & 63;
  for (const Slot& s : rows_[rb].slots) {
    const Tile* t = acquire(rb, s.cb, false);
    std::uint64_t bits = t->p[r];
    while (bits != 0) {
      out.push_back(s.cb * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
  return out;
}

void TiledDepMatrix::for_each_entry(
    const std::function<void(std::size_t, std::size_t, DepKind)>& fn) const {
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    for (const Slot& s : rows_[rb].slots) (void)acquire(rb, s.cb, false);
    for (std::size_t r = 0; r < 64; ++r) {
      const std::size_t i = rb * 64 + r;
      if (i >= n_) break;
      for (const Slot& s : rows_[rb].slots) {
        const Tile* t = s.tile.get();
        std::uint64_t bits = t->s[r];
        while (bits != 0) {
          const unsigned c = static_cast<unsigned>(std::countr_zero(bits));
          bits &= bits - 1;
          const std::uint64_t b = 1ULL << c;
          fn(i, s.cb * 64 + c,
             (t->p[r] & b) != 0 ? DepKind::Path : DepKind::Structural);
        }
      }
    }
  }
}

DepMatrix TiledDepMatrix::to_dense() const {
  const std::size_t wpr = (n_ + 63) / 64;
  std::vector<std::uint64_t> s(n_ * wpr, 0);
  std::vector<std::uint64_t> p(n_ * wpr, 0);
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    for (const Slot& slot : rows_[rb].slots) {
      const Tile* t = acquire(rb, slot.cb, false);
      const std::size_t rmax = std::min<std::size_t>(64, n_ - rb * 64);
      for (std::size_t r = 0; r < rmax; ++r) {
        s[(rb * 64 + r) * wpr + slot.cb] |= t->s[r];
        p[(rb * 64 + r) * wpr + slot.cb] |= t->p[r];
      }
    }
  }
  DepMatrix out;
  const bool ok = DepMatrix::from_planes(n_, std::move(s), std::move(p), &out);
  assert(ok);
  (void)ok;
  return out;
}

TiledDepMatrix TiledDepMatrix::from_dense(const DepMatrix& m) {
  TiledDepMatrix out(m.size());
  const std::size_t wpr = m.words_per_row();
  const auto& s = m.plane_s();
  const auto& p = m.plane_p();
  for (std::size_t rb = 0; rb < out.nb_; ++rb) {
    const std::size_t rmax = std::min<std::size_t>(64, m.size() - rb * 64);
    for (std::size_t cb = 0; cb < wpr; ++cb) {
      Tile tile;
      std::memset(&tile, 0, sizeof tile);
      bool nonzero = false;
      for (std::size_t r = 0; r < rmax; ++r) {
        const std::size_t w = (rb * 64 + r) * wpr + cb;
        tile.s[r] = s[w];
        tile.p[r] = p[w];
        nonzero |= (s[w] | p[w]) != 0;
      }
      if (!nonzero) continue;
      Slot slot;
      slot.cb = static_cast<std::uint32_t>(cb);
      slot.tile = std::make_unique<Tile>(tile);
      out.rows_[rb].slots.push_back(std::move(slot));
    }
  }
  return out;
}

void TiledDepMatrix::for_each_tile(
    const std::function<void(std::size_t, std::size_t, const Tile&)>& fn)
    const {
  for (std::size_t rb = 0; rb < nb_; ++rb) {
    for (const Slot& s : rows_[rb].slots) {
      const Tile* t = acquire(rb, s.cb, false);
      if (tile_is_zero(*t)) continue;
      fn(rb, s.cb, *t);
    }
  }
}

bool TiledDepMatrix::insert_tile(std::size_t rb, std::size_t cb,
                                 const Tile& t) {
  if (rb >= nb_ || cb >= nb_) return false;
  auto& slots = rows_[rb].slots;
  if (!slots.empty() && slots.back().cb >= cb) return false;
  if (tile_is_zero(t)) return false;
  // Invariants the kernels rely on: no bits beyond row/column n-1, and
  // P implies S — a corrupt blob must not poison count_nonzero or the
  // word-parallel closures with stray tail bits.
  const std::uint64_t cmask = edge_mask(cb);
  const std::size_t rmax =
      rb + 1 == nb_ && n_ % 64 != 0 ? n_ % 64 : std::size_t{64};
  for (std::size_t r = 0; r < 64; ++r) {
    if (r >= rmax && (t.s[r] | t.p[r]) != 0) return false;
    if ((t.s[r] | t.p[r]) & ~cmask) return false;
    if (t.p[r] & ~t.s[r]) return false;
  }
  Slot slot;
  slot.cb = static_cast<std::uint32_t>(cb);
  slot.tile = std::make_unique<Tile>(t);
  if (backend_ != nullptr) {
    slot.stamp = ++clock_;
    ++resident_;
  }
  slots.push_back(std::move(slot));
  checkpoint();
  return true;
}

const TiledDepMatrix::Tile* TiledDepMatrix::tile_at(std::size_t rb,
                                                    std::size_t cb) const {
  return acquire(rb, cb, false);
}

void TiledDepMatrix::assign_tile(std::size_t rb, std::size_t cb,
                                 const Tile& t) {
  if (tile_is_zero(t)) {
    const Slot* s = find_slot(rb, cb);
    if (s == nullptr) return;
    // Reuse the mutator path that already knows how to drop a slot (and
    // its resident accounting) safely.
    Tile* resident = acquire(rb, cb, false);
    if (resident != nullptr) *resident = t;
    prune_if_zero(rb, cb);
    checkpoint();
    return;
  }
  Tile* dest = acquire(rb, cb, true);
  *dest = t;
  checkpoint();
}

bool operator==(const TiledDepMatrix& a, const TiledDepMatrix& b) {
  if (a.n_ != b.n_) return false;
  for (std::size_t rb = 0; rb < a.nb_; ++rb) {
    const auto& as = a.rows_[rb].slots;
    const auto& bs = b.rows_[rb].slots;
    std::size_t ia = 0;
    std::size_t ib = 0;
    // Merge-walk the sorted slot lists; a tile missing on one side must
    // be all-zero on the other (defensive — mutators prune zero tiles).
    while (ia < as.size() || ib < bs.size()) {
      const std::uint32_t ca =
          ia < as.size() ? as[ia].cb : std::numeric_limits<std::uint32_t>::max();
      const std::uint32_t cb =
          ib < bs.size() ? bs[ib].cb : std::numeric_limits<std::uint32_t>::max();
      if (ca < cb) {
        if (!tile_is_zero(*a.acquire(rb, ca, false))) return false;
        ++ia;
      } else if (cb < ca) {
        if (!tile_is_zero(*b.acquire(rb, cb, false))) return false;
        ++ib;
      } else {
        const TiledDepMatrix::Tile* ta = a.acquire(rb, ca, false);
        const TiledDepMatrix::Tile* tb = b.acquire(rb, cb, false);
        if (std::memcmp(ta, tb, sizeof(TiledDepMatrix::Tile)) != 0)
          return false;
        ++ia;
        ++ib;
      }
    }
  }
  return true;
}

}  // namespace rsnsec
