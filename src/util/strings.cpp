#include "util/strings.hpp"

#include <cctype>

namespace rsnsec {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) next = s.size();
    std::string_view piece = trim(s.substr(pos, next - pos));
    if (!piece.empty()) out.emplace_back(piece);
    pos = next + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string with_thousands(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(' ');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace rsnsec
