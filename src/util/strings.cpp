#include "util/strings.hpp"

#include <cctype>
#include <charconv>

namespace rsnsec {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) next = s.size();
    std::string_view piece = trim(s.substr(pos, next - pos));
    if (!piece.empty()) out.emplace_back(piece);
    pos = next + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
    std::size_t start = pos;
    while (pos < s.size() &&
           !std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
    if (pos > start) out.emplace_back(s.substr(start, pos - start));
  }
  return out;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string with_thousands(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(' ');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace rsnsec
