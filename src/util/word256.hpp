#pragma once

#include <cstddef>
#include <cstdint>

namespace rsnsec {

/// Portable 256-bit pattern block: four independent 64-bit lanes, so one
/// bitwise operation covers 256 parallel bits. Plain aggregate of
/// uint64_t — lane-wise evaluation is a straight-line loop the compiler
/// auto-vectorizes to whatever SIMD width the target has, without any
/// intrinsics or platform dependence. Shared between the 256-pattern cone
/// simulator (netlist/sim.hpp) and the tiled dependency-matrix kernels
/// (util/tiled_matrix.hpp), which process 64x64-bit tiles four row words
/// at a time.
struct Word256 {
  std::uint64_t lane[4];

  static Word256 broadcast(bool bit) {
    std::uint64_t w = bit ? ~0ULL : 0ULL;
    return Word256{{w, w, w, w}};
  }
  static Word256 zero() { return Word256{{0, 0, 0, 0}}; }

  /// Bit `i` (0..255); lane order is little-endian: bit i lives in
  /// lane[i / 64] at position i % 64.
  bool bit(std::size_t i) const {
    return ((lane[i / 64] >> (i % 64)) & 1ULL) != 0;
  }
  void flip_bit(std::size_t i) { lane[i / 64] ^= 1ULL << (i % 64); }

  Word256 operator^(const Word256& o) const {
    return Word256{{lane[0] ^ o.lane[0], lane[1] ^ o.lane[1],
                    lane[2] ^ o.lane[2], lane[3] ^ o.lane[3]}};
  }
  Word256 operator|(const Word256& o) const {
    return Word256{{lane[0] | o.lane[0], lane[1] | o.lane[1],
                    lane[2] | o.lane[2], lane[3] | o.lane[3]}};
  }
  Word256& operator|=(const Word256& o) {
    lane[0] |= o.lane[0];
    lane[1] |= o.lane[1];
    lane[2] |= o.lane[2];
    lane[3] |= o.lane[3];
    return *this;
  }
  bool any() const {
    return (lane[0] | lane[1] | lane[2] | lane[3]) != 0;
  }
};

}  // namespace rsnsec
