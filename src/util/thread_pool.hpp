#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace.hpp"

namespace rsnsec {

/// Fixed-size worker pool with chunked data-parallel loops.
///
/// The pool is the concurrency substrate of the dependency engine
/// (Sec. III-A fan-out over capture cones, row blocks of the multi-cycle
/// closure) and of the benchmark sweeps. Design points:
///
///  - A pool of `num_threads` has `num_threads - 1` background workers;
///    the caller of parallel_for/parallel_reduce participates as the
///    last thread. A 1-thread pool spawns nothing and runs every loop
///    inline, so sequential and parallel execution share one code path.
///  - parallel_for splits [begin, end) into chunks claimed from an
///    atomic counter (work stealing by contended increment), which load-
///    balances cost-skewed iterations such as SAT-heavy cones.
///  - Because the caller participates, a loop body may itself call
///    parallel_for on the same pool (nested parallelism) without
///    deadlock: if all workers are busy, the nested caller simply runs
///    its own chunks inline.
///  - parallel_reduce folds per-chunk partial results left-to-right in
///    chunk order after the loop completes, so any associative combine
///    (even a non-commutative one) yields a result independent of thread
///    count and scheduling.
///  - The first exception thrown by a loop body cancels the remaining
///    chunks and is rethrown in the caller; the pool stays usable.
class ThreadPool {
 public:
  /// Resolves a requested parallelism degree: `requested` if > 0, else
  /// the RSNSEC_JOBS environment variable if set to a positive integer,
  /// else std::thread::hardware_concurrency() (at least 1).
  static std::size_t resolve_num_threads(std::size_t requested = 0);

  /// Creates a pool of `num_threads` (0 = resolve_num_threads()).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism degree (>= 1). 1 means all loops run inline.
  std::size_t num_threads() const { return num_threads_; }

  /// Enqueues a fire-and-forget task. Safe to call from worker threads
  /// (nested submission); tasks run in FIFO order per worker pickup.
  /// Pending tasks are drained before the destructor returns.
  void submit(std::function<void()> task);

  /// Applies fn(i) to every i in [begin, end). `grain` is the chunk size
  /// (0 = automatic: about 8 chunks per thread). Iteration order within
  /// a chunk is ascending; chunks may run concurrently, so fn must only
  /// touch state owned by iteration i (or otherwise thread-safe).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                    std::size_t grain = 0) {
    run_chunked(begin, end, grain,
                [&fn](std::size_t cb, std::size_t ce, std::size_t) {
                  for (std::size_t i = cb; i < ce; ++i) fn(i);
                });
  }

  /// Chunk-granular variant of parallel_for: chunk_fn(chunk_begin,
  /// chunk_end, chunk_index) is called once per chunk of [begin, end),
  /// chunk_index running over [0, num_chunks). Use when the loop body
  /// wants per-chunk scratch state (allocate once per chunk, reuse across
  /// the chunk's iterations) instead of per-iteration state — e.g. the
  /// violation-index candidate evaluation reuses one trial overlay per
  /// chunk. Chunks may run concurrently and are claimed dynamically, so
  /// chunk_index is NOT a thread id: a thread may run many chunks, and
  /// which thread runs which chunk is scheduling-dependent.
  template <typename ChunkFn>
  void parallel_chunks(std::size_t begin, std::size_t end, ChunkFn&& chunk_fn,
                       std::size_t grain = 0) {
    run_chunked(begin, end, grain, std::forward<ChunkFn>(chunk_fn));
  }

  /// Folds fn(i) over [begin, end): partials are combined ascending
  /// within each chunk and chunks are combined left-to-right, so the
  /// result is deterministic for any thread count as long as `combine`
  /// is associative.
  template <typename T, typename Fn, typename Combine>
  T parallel_reduce(std::size_t begin, std::size_t end, T identity, Fn&& fn,
                    Combine&& combine, std::size_t grain = 0) {
    if (begin >= end) return identity;
    const std::size_t g = effective_grain(end - begin, grain);
    const std::size_t num_chunks = (end - begin + g - 1) / g;
    // deque, not vector: vector<bool>'s proxy references would break the
    // generic fold below.
    std::deque<T> partials(num_chunks, identity);
    run_chunked(begin, end, grain,
                [&](std::size_t cb, std::size_t ce, std::size_t chunk) {
                  T acc = identity;
                  for (std::size_t i = cb; i < ce; ++i)
                    acc = combine(std::move(acc), fn(i));
                  partials[chunk] = std::move(acc);
                });
    T result = identity;
    for (T& p : partials) result = combine(std::move(result), std::move(p));
    return result;
  }

 private:
  /// Shared state of one parallel loop; kept alive by shared_ptr so a
  /// stale runner task dequeued after the loop finished finds an
  /// exhausted chunk counter and returns immediately.
  struct Batch {
    std::function<void(std::size_t, std::size_t, std::size_t)> chunk_fn;
    /// Span context open at the fan-out site; re-installed as the
    /// ambient parent on whichever thread runs a chunk, so spans opened
    /// inside the loop body attribute to the enclosing span even when
    /// they execute on a pool worker.
    obs::SpanHandle trace_parent;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t num_chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;  // guarded by mutex
  };

  std::size_t effective_grain(std::size_t range, std::size_t grain) const;
  void run_chunked(
      std::size_t begin, std::size_t end, std::size_t grain,
      std::function<void(std::size_t, std::size_t, std::size_t)> chunk_fn);
  static void run_batch(const std::shared_ptr<Batch>& batch);
  void worker_loop();

  std::size_t num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  bool stop_ = false;
};

}  // namespace rsnsec
