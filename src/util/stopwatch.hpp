#pragma once

#include <chrono>

namespace rsnsec {

/// Wall-clock stopwatch used for the per-phase runtime columns of Table I.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rsnsec
