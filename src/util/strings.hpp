#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rsnsec {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits `s` on `sep`, trimming each piece; empty pieces are dropped.
std::vector<std::string> split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Formats `v` with thousands separators ("28 704" style, as in Table I).
std::string with_thousands(long long v);

}  // namespace rsnsec
