#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rsnsec {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits `s` on `sep`, trimming each piece; empty pieces are dropped.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace (spaces, tabs, ...). Leading,
/// trailing and consecutive whitespace never yield empty tokens, so
/// keyword parsers (spec files, CLI sub-syntax) see the same token list
/// however the input was indented.
std::vector<std::string> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Formats `v` with thousands separators ("28 704" style, as in Table I).
std::string with_thousands(long long v);

/// Strict non-negative integer parse: the whole of `s` must be decimal
/// digits and the value must fit a uint64. Returns nullopt on empty
/// input, sign characters, trailing garbage or overflow — the guarded
/// replacement for raw std::stoul at every user-input call site.
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Strict double parse: the whole of `s` must be a valid decimal number.
std::optional<double> parse_double(std::string_view s);

/// Escapes `s` for use inside a JSON string literal: quote, backslash,
/// and every control character below 0x20 (named escapes for \n \t \r
/// \b \f, \u00XX otherwise). This is the one escaper shared by the
/// report writer, the lint JSON renderer and the trace sinks — inline so
/// the dependency-free obs library can use it without linking util.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
          out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace rsnsec
