#pragma once

// Thin RAII layer over POSIX stream sockets for the serve subsystem:
// unix-domain and loopback-TCP listeners, connected streams with
// full-write/poll-read helpers, and a buffered line reader with an
// oversize cap. Errors surface as SocketError (a runtime_error carrying
// errno text), never as raw return codes the caller might ignore. Linux
// only, like the rest of the toolchain this repo targets.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rsnsec {

struct SocketError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A connected stream socket (move-only owner of the fd).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Connects to a unix-domain socket path / loopback TCP port.
  static Socket connect_unix(const std::string& path);
  static Socket connect_tcp(std::uint16_t port);

  /// Writes all of `data` (retrying short writes). SIGPIPE is avoided
  /// via MSG_NOSIGNAL — a closed peer raises SocketError instead of
  /// killing the process, which a daemon must never allow.
  void write_all(std::string_view data);

  /// Reads up to `max` bytes; returns the bytes read ("" = orderly
  /// peer shutdown). Blocks.
  std::string read_some(std::size_t max = 65536);

  /// Half-closes the write side (client "no more requests" signal) or
  /// both sides (server kick during shutdown; wakes a blocked reader).
  void shutdown_write();
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening socket (unix path or loopback TCP).
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds + listens on a fresh unix-domain socket at `path` (an
  /// existing socket file there is unlinked first — the daemon owns its
  /// advertised path). The file is unlinked again on destruction.
  static Listener listen_unix(const std::string& path);

  /// Binds + listens on 127.0.0.1:`port` (0 = kernel-assigned; read the
  /// outcome back via port()). Loopback only: the daemon speaks an
  /// unauthenticated protocol, so it must not bind a routable address.
  static Listener listen_tcp(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  const std::string& path() const { return path_; }

  /// Waits up to `timeout_ms` for a connection; nullopt on timeout (the
  /// accept loop uses this to poll its stop flag between waits).
  std::optional<Socket> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string path_;  // unix only; unlinked on close
};

/// Buffered \n-delimited frame reader over a Socket. Lines longer than
/// `max_line` are consumed to their terminator but reported as oversize
/// (the protocol layer answers SRV002 and keeps the connection usable).
class LineReader {
 public:
  LineReader(Socket& socket, std::size_t max_line)
      : socket_(socket), max_line_(max_line) {}

  struct Line {
    std::string text;
    bool oversize = false;
  };

  /// Next frame, nullopt on EOF. A final unterminated fragment (peer
  /// died mid-frame) is returned as a frame; the following call reports
  /// EOF.
  std::optional<Line> next();

 private:
  Socket& socket_;
  std::size_t max_line_;
  std::string buffer_;
  std::size_t dropping_ = 0;  ///< bytes of an oversize line being skipped
  bool eof_ = false;
};

}  // namespace rsnsec
