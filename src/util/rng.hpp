#pragma once

#include <cstdint>
#include <vector>

namespace rsnsec {

/// Deterministic PCG32 pseudo-random number generator.
///
/// All randomized parts of the library (circuit generation, security-spec
/// generation, SAT decision phases, simulation patterns) draw from this
/// generator so that every experiment is reproducible from a single seed.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed; distinct seeds give
  /// independent streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initializes the state from `seed`.
  void reseed(std::uint64_t seed);

  /// Returns the next 32 uniform random bits.
  std::uint32_t next_u32();

  /// Returns the next 64 uniform random bits.
  std::uint64_t next_u64();

  /// Returns a uniform integer in [0, bound) using rejection sampling;
  /// `bound` must be > 0.
  std::uint32_t below(std::uint32_t bound);

  /// 64-bit-bound variant of below(). For bounds that fit 32 bits it
  /// delegates to below() — consuming the identical stream positions — so
  /// call sites upgraded from below() keep reproducing historical
  /// artifacts bit for bit; only genuinely larger bounds take the 64-bit
  /// rejection path.
  std::uint64_t below64(std::uint64_t bound);

  /// Returns a uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Returns a uniform double in [0, 1).
  double uniform();

  /// Fisher-Yates shuffles `v` in place. 64-bit-safe: below64() delegates
  /// to below() for small sizes, so existing streams are unchanged.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      auto j = static_cast<std::size_t>(below64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element of any random-access container with
  /// size()/operator[] (vectors, benchgen source views); must be
  /// non-empty. operator[] must return a reference, not a temporary.
  template <typename C>
  decltype(auto) pick(const C& v) {
    return v[static_cast<std::size_t>(below64(v.size()))];
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace rsnsec
