#pragma once

#include <cstdint>
#include <vector>

namespace rsnsec {

/// Deterministic PCG32 pseudo-random number generator.
///
/// All randomized parts of the library (circuit generation, security-spec
/// generation, SAT decision phases, simulation patterns) draw from this
/// generator so that every experiment is reproducible from a single seed.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed; distinct seeds give
  /// independent streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initializes the state from `seed`.
  void reseed(std::uint64_t seed);

  /// Returns the next 32 uniform random bits.
  std::uint32_t next_u32();

  /// Returns the next 64 uniform random bits.
  std::uint64_t next_u64();

  /// Returns a uniform integer in [0, bound) using rejection sampling;
  /// `bound` must be > 0.
  std::uint32_t below(std::uint32_t bound);

  /// Returns a uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Returns a uniform double in [0, 1).
  double uniform();

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element of `v`; `v` must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(static_cast<std::uint32_t>(v.size()))];
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace rsnsec
