#pragma once

// Bounded multi-producer / multi-consumer FIFO. The serve subsystem's
// building block for explicit backpressure: producers use try_push and
// turn a Full result into a protocol-level `busy` reply instead of
// blocking a socket reader thread, consumers block in pop until work or
// close. Header-only template, no spinning — one mutex + two condvars.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rsnsec {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue; false when the queue is full or closed (the
  /// caller distinguishes via closed() if it cares).
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking enqueue; false only when the queue was closed.
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [this] {
        return closed_ || items_.size() < capacity_;
      });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking dequeue; nullopt once the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes and wakes every waiter; items already queued
  /// still drain through pop.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rsnsec
