#include "util/minijson.hpp"

#include <cctype>

namespace rsnsec {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonParseResult run() {
    JsonParseResult r;
    skip_ws();
    JsonValue v;
    if (!value(v, 0)) {
      r.error_pos = pos_;
      r.error = error_.empty() ? "malformed JSON value" : error_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      r.error_pos = pos_;
      r.error = "trailing bytes after JSON value";
      return r;
    }
    r.value = std::move(v);
    return r;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }
  bool fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, std::size_t depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return object(out, depth);
      case '[':
        return array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::String;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return literal("null");
      default:
        out.kind = JsonValue::Kind::Number;
        return number(out.number);
    }
  }

  bool object(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::Object;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return fail("expected object key string");
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::Array;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  bool string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (!eof()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              if (eof() ||
                  !std::isxdigit(static_cast<unsigned char>(peek())))
                return fail("malformed \\u escape");
              char h = text_[pos_++];
              cp = cp * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0'
                                : (h | 0x20) - 'a' + 10);
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return fail("invalid escape character");
        }
        continue;
      }
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number(double& out) {
    std::size_t start = pos_;
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("malformed number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("malformed number fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("malformed number exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    // The token shape is validated above, so from_chars/strtod can only
    // disagree on range; out-of-range doubles are the caller's data.
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                      nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace rsnsec
