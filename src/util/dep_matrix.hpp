#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsnsec {

class ThreadPool;

/// Kind of data-flow dependency between two flip-flops (Sec. III-A of the
/// paper, notation of [18]).
///
/// The lattice is ordered None < Structural < Path:
///  - `None`: no connection at all.
///  - `Structural`: a wire/gate path exists but data provably cannot
///    propagate along every such path chain ("only structural").
///  - `Path`: data can propagate ("path-dependent"; 1-cycle functional
///    dependencies are path dependencies over a path of length 1).
enum class DepKind : std::uint8_t { None = 0, Structural = 1, Path = 2 };

/// Returns the stronger of two dependency kinds.
constexpr DepKind max_dep(DepKind a, DepKind b) { return a > b ? a : b; }

/// Composition of two chained dependencies: a chain is path-dependent only
/// if every hop is path-dependent; a chain with any only-structural hop is
/// only structural; a chain through a missing hop does not exist.
constexpr DepKind compose_dep(DepKind a, DepKind b) {
  if (a == DepKind::None || b == DepKind::None) return DepKind::None;
  if (a == DepKind::Path && b == DepKind::Path) return DepKind::Path;
  return DepKind::Structural;
}

/// Dense n-by-n matrix of DepKind values stored as two bit planes.
///
/// Plane S holds "structural or stronger", plane P holds "path"; the class
/// maintains the invariant P implies S. Entry (i, j) means "j depends on i
/// with kind get(i, j)" — i.e. data flows from row index i to column
/// index j. Bit-parallel row operations make the iterative multi-cycle
/// closure (cubic in the number of flip-flops, Sec. III-A) fast in practice.
class DepMatrix {
 public:
  DepMatrix() = default;

  /// Creates an n-by-n all-None matrix.
  explicit DepMatrix(std::size_t n);

  /// Number of tracked flip-flops (matrix dimension).
  std::size_t size() const { return n_; }

  /// Returns the dependency of column j on row i.
  DepKind get(std::size_t i, std::size_t j) const;

  /// Monotonically upgrades entry (i, j) to at least `k`; never downgrades.
  void upgrade(std::size_t i, std::size_t j, DepKind k);

  /// Forces entry (i, j) to exactly `k` (used by bridging when removing a
  /// flip-flop's own row/column).
  void set(std::size_t i, std::size_t j, DepKind k);

  /// Clears row i and column i to None (a bridged-out flip-flop keeps its
  /// index but no longer participates in the relation).
  void clear_node(std::size_t i);

  /// Number of non-None entries.
  std::size_t count_nonzero() const;

  /// Number of Path entries.
  std::size_t count_path() const;

  /// In-place transitive closure under compose_dep/max_dep. This is the
  /// multi-cycle dependency computation of Sec. III-A: path-dependence is
  /// the closure of functional edges; structural dependence is the closure
  /// of all edges. `active` (optional) restricts the intermediate ("via")
  /// nodes to those marked true — used to exclude bridged-out internal
  /// flip-flops from the cubic computation. `pool` (optional) processes
  /// the row block of each elimination step in parallel: within one step
  /// every row only reads the (stable) via row and ORs into itself, so
  /// the result is bit-identical for any thread count.
  void transitive_closure(const std::vector<bool>* active = nullptr,
                          ThreadPool* pool = nullptr);

  /// Dependencies over at most `cycles` clock cycles: the union of chain
  /// compositions of length 1..cycles of the current (1-cycle) relation.
  /// [18] computes multi-cycle dependencies iteratively per cycle; with
  /// cycles >= n the result equals transitive_closure(). Returns true if
  /// the final round still added dependencies (i.e. the relation had not
  /// converged before `cycles`). `pool` (optional) processes the rows of
  /// each round in parallel; rounds read only that round's snapshot, so
  /// the result is bit-identical for any thread count.
  bool bounded_closure(std::size_t cycles, ThreadPool* pool = nullptr);

  /// Bridges node `v` out of the relation (Fig. 3 of the paper): every
  /// incoming dependency (v on p) is composed with every outgoing one
  /// (s on v) into (s on p) under compose_dep, then row/column v are
  /// cleared. Equivalent to the naive
  ///   for p in predecessors(v): for s in successors(v):
  ///     upgrade(p, s, compose_dep(get(p, v), get(v, s)))
  ///   clear_node(v)
  /// but word-parallel over v's row bit-planes and allocation-free — the
  /// naive loop allocated two index vectors per eliminated flip-flop,
  /// which dominated the bridging phase on large circuits.
  void eliminate(std::size_t v);

  /// Returns the column indices j with get(i, j) != None.
  std::vector<std::size_t> successors(std::size_t i) const;

  /// Returns the row indices h with get(h, i) != None.
  std::vector<std::size_t> predecessors(std::size_t i) const;

  /// True if the two matrices have identical contents.
  friend bool operator==(const DepMatrix& a, const DepMatrix& b) {
    return a.n_ == b.n_ && a.s_ == b.s_ && a.p_ == b.p_;
  }

  /// 64-bit words per bit-plane row: (size() + 63) / 64.
  std::size_t words_per_row() const { return words_per_row_; }

  /// Bytes held by the two bit planes (the dense footprint that the
  /// tiled representation is measured against). Content-derived (sizes,
  /// not capacities) so a matrix restored from the artifact store reports
  /// the same figure as the run that computed it.
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(s_.size() + p_.size()) *
           sizeof(std::uint64_t);
  }

  /// Raw bit planes (row-major, words_per_row() words per row). S holds
  /// "structural or stronger", P holds "path". Exposed for serialization.
  const std::vector<std::uint64_t>& plane_s() const { return s_; }
  const std::vector<std::uint64_t>& plane_p() const { return p_; }

  /// Rebuilds a matrix from raw planes (the inverse of plane_s/plane_p),
  /// validating shape and invariants: both planes sized n*((n+63)/64),
  /// no bit set beyond column n-1, and P implies S. Returns false (and
  /// leaves `out` untouched) if the planes are inconsistent — required so
  /// that a corrupted serialized matrix cannot poison count_nonzero() or
  /// the closure kernels with stray tail bits.
  static bool from_planes(std::size_t n, std::vector<std::uint64_t> s,
                          std::vector<std::uint64_t> p, DepMatrix* out);

 private:
  std::size_t n_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> s_;  // structural-or-path plane
  std::vector<std::uint64_t> p_;  // path plane

  std::size_t word(std::size_t i, std::size_t j) const {
    return i * words_per_row_ + (j >> 6);
  }
  static std::uint64_t bit(std::size_t j) { return 1ULL << (j & 63); }

  void closure_plane(std::vector<std::uint64_t>& plane,
                     const std::vector<bool>* active, ThreadPool* pool);
};

}  // namespace rsnsec
