#pragma once

// Minimal strict JSON parser (RFC 8259) for the serve protocol layer.
//
// The repo has carried a validate-only recursive-descent walker in
// tests/support/minijson.hpp since PR 3; the daemon needs to *read*
// request fields, so this is the same grammar promoted into a tiny DOM.
// Deliberately small: no comments, no trailing commas, no \uXXXX
// transcoding beyond the BMP escape itself (the four hex digits are
// decoded as a code point and re-encoded as UTF-8), numbers as double.
// Inputs are hostile by assumption (anything a socket peer sends), so
// every parse failure is a clean error with a byte offset, never an
// exception from std::sto* or undefined behavior on truncated input.

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rsnsec {

/// One parsed JSON value. Objects keep their key order (vector of
/// pairs) so tests can assert on emitted layouts; lookup is linear,
/// which is fine for protocol-sized objects (a handful of keys).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }

  /// Convenience accessors for protocol fields: value if present and of
  /// the right type, nullopt otherwise (the caller turns that into a
  /// structured SRV004 reply instead of guessing).
  std::optional<std::string> string_field(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr || !v->is_string()) return std::nullopt;
    return v->string;
  }
  std::optional<double> number_field(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr || !v->is_number()) return std::nullopt;
    return v->number;
  }
  std::optional<bool> bool_field(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr || !v->is_bool()) return std::nullopt;
    return v->boolean;
  }
};

/// Result of parse_json: either a value or an error position + message.
struct JsonParseResult {
  std::optional<JsonValue> value;
  std::size_t error_pos = 0;
  std::string error;

  bool ok() const { return value.has_value(); }
};

/// Parses exactly one JSON value (surrounding whitespace allowed; any
/// trailing bytes are an error). Depth-limited so a hostile
/// deeply-nested frame cannot overflow the stack.
JsonParseResult parse_json(std::string_view text,
                           std::size_t max_depth = 64);

}  // namespace rsnsec
