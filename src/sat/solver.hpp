#pragma once

#include <cstdint>
#include <vector>

#include "sat/literal.hpp"

namespace rsnsec::sat {

/// Outcome of a solve() call.
enum class Result : std::uint8_t { Sat, Unsat, Unknown };

/// Aggregate solver statistics, exposed for the micro-benchmarks.
struct SolverStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
};

/// Conflict-driven clause-learning (CDCL) SAT solver.
///
/// Implements the standard architecture: two-watched-literal propagation,
/// first-UIP conflict analysis with clause minimization, VSIDS-style
/// activity-ordered decisions, phase saving, Luby-sequence restarts and
/// activity-based learned-clause database reduction. Supports solving under
/// assumptions, which the dependency engine (src/dep) uses to reuse one CNF
/// encoding of a flip-flop's input cone across all candidate source
/// flip-flops (Sec. III-A; method of [18]).
///
/// Thread compatibility: a Solver is share-nothing — all state (arena,
/// trail, heap, statistics) lives in instance members and nothing is
/// global or static-mutable, so distinct instances may run concurrently
/// on distinct threads. The parallel dependency engine relies on this by
/// giving every in-flight cone classification its own solver. A single
/// instance is not internally synchronized.
class Solver {
 public:
  Solver();

  /// Creates a fresh unassigned variable and returns its index.
  Var new_var();

  /// Number of variables created so far.
  std::size_t num_vars() const { return assigns_.size(); }

  /// Adds a clause. Returns false if the formula became trivially
  /// unsatisfiable (empty clause or conflicting units at level 0).
  bool add_clause(Clause lits);

  /// Convenience overloads for short clauses.
  bool add_clause(Lit a) { return add_clause(Clause{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(Clause{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(Clause{a, b, c}); }

  /// Solves the formula under the given assumptions.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model value of variable `v`; valid only after solve() returned Sat.
  bool model_value(Var v) const { return model_[static_cast<std::size_t>(v)]; }

  /// Model value of a literal; valid only after solve() returned Sat.
  bool model_value(Lit l) const { return model_value(var(l)) != sign(l); }

  /// Limits the number of conflicts per solve() call (0 = unlimited);
  /// exceeding the limit makes solve() return Unknown.
  void set_conflict_limit(std::uint64_t limit) { conflict_limit_ = limit; }

  /// Cumulative statistics across all solve() calls.
  const SolverStats& stats() const { return stats_; }

 private:
  using CRef = std::uint32_t;
  static constexpr CRef cref_undef = 0xffffffffu;

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  struct VarData {
    CRef reason = cref_undef;
    std::int32_t level = 0;
  };

  // Clause arena: header word (size << 2 | learnt << 1 | deleted), float
  // activity word for learnt clauses, then literals.
  std::vector<std::uint32_t> arena_;
  std::vector<CRef> learnts_;

  std::vector<LBool> assigns_;
  std::vector<bool> phase_;
  std::vector<VarData> var_data_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal code
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;          // binary max-heap on activity
  std::vector<std::int32_t> heap_pos_;  // -1 when not in heap

  double cla_inc_ = 1.0;
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;

  std::vector<bool> model_;
  bool ok_ = true;
  std::uint64_t conflict_limit_ = 0;
  SolverStats stats_;

  // --- clause arena helpers ---
  CRef alloc_clause(const Clause& lits, bool learnt);
  std::uint32_t clause_size(CRef c) const { return arena_[c] >> 2; }
  bool clause_learnt(CRef c) const { return (arena_[c] & 2) != 0; }
  bool clause_deleted(CRef c) const { return (arena_[c] & 1) != 0; }
  void mark_deleted(CRef c) { arena_[c] |= 1; }
  Lit* clause_lits(CRef c) {
    return reinterpret_cast<Lit*>(&arena_[c + (clause_learnt(c) ? 2 : 1)]);
  }
  const Lit* clause_lits(CRef c) const {
    return reinterpret_cast<const Lit*>(
        &arena_[c + (clause_learnt(c) ? 2 : 1)]);
  }
  float& clause_activity(CRef c) {
    return *reinterpret_cast<float*>(&arena_[c + 1]);
  }

  // --- core CDCL ---
  LBool value(Lit l) const {
    return lit_value(assigns_[static_cast<std::size_t>(var(l))], l);
  }
  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  std::int32_t level(Var v) const {
    return var_data_[static_cast<std::size_t>(v)].level;
  }
  std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }

  void attach_clause(CRef c);
  void enqueue(Lit l, CRef reason);
  CRef propagate();
  void new_decision_level() { trail_lim_.push_back(trail_.size()); }
  void cancel_until(std::int32_t lvl);
  void analyze(CRef confl, Clause& out_learnt, std::int32_t& out_btlevel);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  Lit pick_branch_lit();
  Result solve_impl(const std::vector<Lit>& assumptions);
  Result search(std::uint64_t conflicts_budget,
                const std::vector<Lit>& assumptions);
  void reduce_db();

  // --- VSIDS heap ---
  void var_bump(Var v);
  void var_decay() { var_inc_ *= (1.0 / 0.95); }
  void cla_bump(CRef c);
  void cla_decay() { cla_inc_ *= (1.0 / 0.999); }
  void heap_insert(Var v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  void rescale_var_activity();
};

/// Luby restart sequence value for index i (1, 1, 2, 1, 1, 2, 4, ...).
std::uint64_t luby(std::uint64_t i);

}  // namespace rsnsec::sat
