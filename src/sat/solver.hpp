#pragma once

#include <cstdint>
#include <vector>

#include "sat/literal.hpp"

namespace rsnsec::sat {

/// Outcome of a solve() call.
enum class Result : std::uint8_t { Sat, Unsat, Unknown };

/// Aggregate solver statistics, exposed for the micro-benchmarks and
/// aggregated into dep::DepStats / the --json report.
struct SolverStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  /// Glue clauses (LBD <= 2) learned; these are exempt from database
  /// reduction.
  std::uint64_t lbd_protected = 0;
  /// Literals removed from learnt clauses by on-the-fly strengthening
  /// (binary self-subsuming resolution) and by inprocessing
  /// self-subsumption.
  std::uint64_t strengthened_lits = 0;
  /// Completed inprocess() rounds.
  std::uint64_t inprocessing_rounds = 0;
  /// Root-level units learned by failed-literal probing.
  std::uint64_t failed_literals = 0;
  /// Clauses removed by inprocessing backward subsumption.
  std::uint64_t subsumed_clauses = 0;
};

/// Conflict-driven clause-learning (CDCL) SAT solver.
///
/// Implements the standard architecture: two-watched-literal propagation,
/// first-UIP conflict analysis with recursive clause minimization and
/// on-the-fly strengthening through binary clauses, VSIDS-style
/// activity-ordered decisions, phase saving, Luby-sequence restarts and
/// LBD/activity hybrid learned-clause database reduction with glue-clause
/// protection (LBD <= 2). Supports solving under assumptions, which the
/// dependency engine (src/dep) uses to reuse one CNF encoding of a
/// flip-flop's input cone across all candidate source flip-flops
/// (Sec. III-A; method of [18]).
///
/// Incremental use. Consecutive solve() calls whose assumption vectors
/// share a common prefix reuse the corresponding trail prefix: the solver
/// only backtracks to the first differing assumption instead of to the
/// root, skipping the re-propagation of everything implied by the shared
/// prefix. When a solve returns Unsat because an assumption failed,
/// conflict_core() exposes the subset of assumptions the proof used, so a
/// caller can discharge other queries whose assumption sets contain that
/// core without further solves. Between solves, inprocess() runs bounded,
/// equivalence-preserving formula simplification (satisfied-clause and
/// false-literal removal, failed-literal probing, backward subsumption and
/// self-subsumption), and learned clauses can be exported to / imported
/// from solvers holding an identical CNF modulo variable renaming (the
/// dep engine's isomorphic-cone clause sharing).
///
/// Thread compatibility: a Solver is share-nothing — all state (arena,
/// trail, heap, statistics) lives in instance members and nothing is
/// global or static-mutable, so distinct instances may run concurrently
/// on distinct threads. The parallel dependency engine relies on this by
/// giving every in-flight cone classification its own solver. A single
/// instance is not internally synchronized.
class Solver {
 public:
  Solver();

  /// Creates a fresh unassigned variable and returns its index.
  Var new_var();

  /// Number of variables created so far.
  std::size_t num_vars() const { return assigns_.size(); }

  /// Adds a clause. Returns false if the formula became trivially
  /// unsatisfiable (empty clause or conflicting units at level 0).
  bool add_clause(Clause lits);

  /// Convenience overloads for short clauses.
  bool add_clause(Lit a) { return add_clause(Clause{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(Clause{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(Clause{a, b, c}); }

  /// Solves the formula under the given assumptions.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model value of variable `v`; valid only after solve() returned Sat.
  bool model_value(Var v) const { return model_[static_cast<std::size_t>(v)]; }

  /// Model value of a literal; valid only after solve() returned Sat.
  bool model_value(Lit l) const { return model_value(var(l)) != sign(l); }

  /// Limits the number of conflicts of each individual solve() call
  /// (0 = unlimited); exceeding the limit makes that solve() return
  /// Unknown. The budget is per solve — a reused solver gets the full
  /// budget for every call, regardless of how many conflicts earlier
  /// calls consumed.
  void set_conflict_limit(std::uint64_t limit) { conflict_limit_ = limit; }

  /// Assumption core of the last solve() that returned Unsat: a subset of
  /// the passed assumptions whose conjunction is already unsatisfiable
  /// with the formula. Empty when the formula is unsatisfiable regardless
  /// of assumptions. Any assumption superset of the core is Unsat too.
  const std::vector<Lit>& conflict_core() const { return core_; }

  /// Bounded, equivalence-preserving inprocessing between solves:
  /// removes satisfied clauses and false literals at the root level, runs
  /// failed-literal probing (learning root-level units), and a budgeted
  /// backward subsumption / self-subsumption pass over the original
  /// clauses. Never changes satisfiability or models of the formula.
  void inprocess();

  /// Copies of the live learnt clauses with size <= `max_size` and
  /// LBD <= `max_lbd`, plus all root-level implied units. Every returned
  /// clause is implied by the original formula, so it can be imported
  /// into any solver holding the same formula (modulo renaming).
  std::vector<Clause> export_learnts(std::size_t max_size,
                                     std::uint32_t max_lbd) const;

  /// Installs a clause known to be implied by the formula (e.g. exported
  /// from a solver of an isomorphic CNF) as a learnt clause. Returns
  /// false if the formula became unsatisfiable at the root level.
  bool import_clause(Clause lits);

  /// Overrides the learnt-database size that triggers reduce_db()
  /// (0 = automatic: 4000 + 8 * num_vars). Exposed for tests that force
  /// heavy database reduction on small formulas.
  void set_max_learnts(std::size_t n) { max_learnts_ = n; }

  /// Cumulative statistics across all solve() calls.
  const SolverStats& stats() const { return stats_; }

 private:
  using CRef = std::uint32_t;
  static constexpr CRef cref_undef = 0xffffffffu;

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  struct VarData {
    CRef reason = cref_undef;
    std::int32_t level = 0;
  };

  // Clause arena: header word (size << 2 | learnt << 1 | deleted); learnt
  // clauses carry a float activity word and an LBD word; then literals.
  std::vector<std::uint32_t> arena_;
  std::vector<CRef> learnts_;
  std::vector<CRef> clauses_;  // original (problem) clauses

  std::vector<LBool> assigns_;
  std::vector<bool> phase_;
  std::vector<VarData> var_data_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal code
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;          // binary max-heap on activity
  std::vector<std::int32_t> heap_pos_;  // -1 when not in heap

  double cla_inc_ = 1.0;
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Var> analyze_toclear_;   // every seen_ mark of one analyze()
  std::vector<Var> redundant_marked_;  // marks of one lit_redundant() call
  std::vector<std::uint64_t> lbd_stamp_;  // per decision level
  std::uint64_t lbd_counter_ = 0;
  std::vector<std::uint64_t> bin_stamp_;  // per var, binary strengthening
  std::vector<std::int32_t> bin_lit_;     // literal code behind bin_stamp_
  std::uint64_t bin_counter_ = 0;

  std::vector<bool> model_;
  std::vector<Lit> core_;
  std::vector<Lit> prev_assumptions_;  // trail-prefix reuse across solves
  bool ok_ = true;
  std::uint64_t conflict_limit_ = 0;
  std::uint64_t solve_start_conflicts_ = 0;
  std::size_t max_learnts_ = 0;  // 0 = automatic
  SolverStats stats_;

  // --- clause arena helpers ---
  CRef alloc_clause(const Clause& lits, bool learnt, std::uint32_t lbd);
  std::uint32_t clause_size(CRef c) const { return arena_[c] >> 2; }
  void set_clause_size(CRef c, std::uint32_t n) {
    arena_[c] = (n << 2) | (arena_[c] & 3u);
  }
  bool clause_learnt(CRef c) const { return (arena_[c] & 2) != 0; }
  bool clause_deleted(CRef c) const { return (arena_[c] & 1) != 0; }
  void mark_deleted(CRef c) { arena_[c] |= 1; }
  Lit* clause_lits(CRef c) {
    return reinterpret_cast<Lit*>(&arena_[c + (clause_learnt(c) ? 3 : 1)]);
  }
  const Lit* clause_lits(CRef c) const {
    return reinterpret_cast<const Lit*>(
        &arena_[c + (clause_learnt(c) ? 3 : 1)]);
  }
  float& clause_activity(CRef c) {
    return *reinterpret_cast<float*>(&arena_[c + 1]);
  }
  float clause_activity(CRef c) const {
    union {
      std::uint32_t u;
      float f;
    } cast{arena_[c + 1]};
    return cast.f;
  }
  std::uint32_t clause_lbd(CRef c) const { return arena_[c + 2]; }
  void set_clause_lbd(CRef c, std::uint32_t lbd) { arena_[c + 2] = lbd; }

  // --- core CDCL ---
  LBool value(Lit l) const {
    return lit_value(assigns_[static_cast<std::size_t>(var(l))], l);
  }
  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  std::int32_t level(Var v) const {
    return var_data_[static_cast<std::size_t>(v)].level;
  }
  std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }

  void attach_clause(CRef c);
  void detach_clause(CRef c);
  void remove_clause(CRef c);
  void enqueue(Lit l, CRef reason);
  CRef propagate();
  void new_decision_level() { trail_lim_.push_back(trail_.size()); }
  void cancel_until(std::int32_t lvl);
  void backtrack_to_root();
  void analyze(CRef confl, Clause& out_learnt, std::int32_t& out_btlevel,
               std::uint32_t& out_lbd);
  void analyze_final(Lit p);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void strengthen_with_binaries(Clause& out_learnt);
  std::uint32_t compute_lbd(const Clause& lits);
  Lit pick_branch_lit();
  Result solve_impl(const std::vector<Lit>& assumptions);
  Result search(std::uint64_t conflicts_budget,
                const std::vector<Lit>& assumptions);
  void reduce_db();

  // --- inprocessing ---
  bool simplify_clause_db(std::vector<CRef>& db);
  bool strengthen_clause(CRef c, Lit l);
  void probe_failed_literals();
  void subsumption_pass();

  // --- VSIDS heap ---
  void var_bump(Var v);
  void var_decay() { var_inc_ *= (1.0 / 0.95); }
  void cla_bump(CRef c);
  void cla_decay() { cla_inc_ *= (1.0 / 0.999); }
  void heap_insert(Var v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  void rescale_var_activity();
};

/// Luby restart sequence value for index i (1, 1, 2, 1, 1, 2, 4, ...).
std::uint64_t luby(std::uint64_t i);

}  // namespace rsnsec::sat
