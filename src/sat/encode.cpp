#include "sat/encode.hpp"

namespace rsnsec::sat {

void encode_and(Solver& s, Lit out, std::span<const Lit> ins) {
  Clause big;
  big.reserve(ins.size() + 1);
  for (Lit in : ins) {
    s.add_clause(~out, in);  // out -> in
    big.push_back(~in);
  }
  big.push_back(out);  // all ins -> out
  s.add_clause(std::move(big));
}

void encode_or(Solver& s, Lit out, std::span<const Lit> ins) {
  Clause big;
  big.reserve(ins.size() + 1);
  for (Lit in : ins) {
    s.add_clause(out, ~in);  // in -> out
    big.push_back(in);
  }
  big.push_back(~out);  // out -> some in
  s.add_clause(std::move(big));
}

namespace {
void encode_xor2(Solver& s, Lit out, Lit a, Lit b) {
  s.add_clause(~out, a, b);
  s.add_clause(~out, ~a, ~b);
  s.add_clause(out, ~a, b);
  s.add_clause(out, a, ~b);
}
}  // namespace

void encode_xor(Solver& s, Lit out, std::span<const Lit> ins) {
  if (ins.empty()) {
    s.add_clause(~out);
    return;
  }
  if (ins.size() == 1) {
    encode_eq(s, out, ins[0]);
    return;
  }
  Lit acc = ins[0];
  for (std::size_t i = 1; i + 1 < ins.size(); ++i) {
    Lit t = mk_lit(s.new_var());
    encode_xor2(s, t, acc, ins[i]);
    acc = t;
  }
  encode_xor2(s, out, acc, ins.back());
}

void encode_mux(Solver& s, Lit out, Lit sel, Lit lo, Lit hi) {
  s.add_clause(~sel, ~hi, out);
  s.add_clause(~sel, hi, ~out);
  s.add_clause(sel, ~lo, out);
  s.add_clause(sel, lo, ~out);
  // Redundant but propagation-strengthening clauses.
  s.add_clause(~lo, ~hi, out);
  s.add_clause(lo, hi, ~out);
}

void encode_eq(Solver& s, Lit out, Lit in) {
  s.add_clause(~out, in);
  s.add_clause(out, ~in);
}

void encode_eq2(Solver& s, Lit out, Lit a, Lit b) {
  encode_xor2(s, ~out, a, b);
}

}  // namespace rsnsec::sat
