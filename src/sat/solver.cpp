#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.hpp"

namespace rsnsec::sat {

namespace {

// Inprocessing budgets. Each inprocess() round is bounded so a round costs
// a fixed amount of work regardless of formula size; callers control the
// total effort through how often they call it.
constexpr std::size_t kProbeMaxLits = 4096;
constexpr std::uint64_t kProbePropBudget = 300000;
constexpr std::uint32_t kSubsumeMaxSize = 16;
constexpr std::int64_t kSubsumeTickBudget = 200000;

}  // namespace

std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence that contains index i, then index into it.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return 1ULL << seq;
}

Solver::Solver() { lbd_stamp_.push_back(0); }

Var Solver::new_var() {
  auto v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  phase_.push_back(false);
  var_data_.push_back({});
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(false);
  lbd_stamp_.push_back(0);
  bin_stamp_.push_back(0);
  bin_lit_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  model_.push_back(false);
  heap_insert(v);
  return v;
}

Solver::CRef Solver::alloc_clause(const Clause& lits, bool learnt,
                                  std::uint32_t lbd) {
  auto c = static_cast<CRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                   (learnt ? 2u : 0u));
  if (learnt) {
    arena_.push_back(0);  // activity slot
    arena_.push_back(lbd);
  }
  for (Lit l : lits) arena_.push_back(static_cast<std::uint32_t>(l.x));
  if (learnt) {
    clause_activity(c) = 0.0f;
    learnts_.push_back(c);
    ++stats_.learned_clauses;
  } else {
    clauses_.push_back(c);
  }
  return c;
}

void Solver::attach_clause(CRef c) {
  Lit* lits = clause_lits(c);
  assert(clause_size(c) >= 2);
  watches_[static_cast<std::size_t>((~lits[0]).x)].push_back(
      {c, lits[1]});
  watches_[static_cast<std::size_t>((~lits[1]).x)].push_back(
      {c, lits[0]});
}

void Solver::detach_clause(CRef c) {
  for (int w = 0; w < 2; ++w) {
    Lit watched = clause_lits(c)[w];
    auto& ws = watches_[static_cast<std::size_t>((~watched).x)];
    for (std::size_t k = 0; k < ws.size(); ++k) {
      if (ws[k].cref == c) {
        ws[k] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::remove_clause(CRef c) {
  detach_clause(c);
  mark_deleted(c);
}

bool Solver::add_clause(Clause lits) {
  backtrack_to_root();
  if (!ok_) return false;

  // Normalize: sort, drop duplicates and level-0-false literals, detect
  // tautologies and level-0-true literals.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.x < b.x; });
  Clause out;
  Lit prev = lit_undef;
  for (Lit l : lits) {
    if (value(l) == LBool::True || (prev != lit_undef && l == ~prev))
      return true;  // satisfied or tautological
    if (value(l) == LBool::False || l == prev) continue;
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], cref_undef);
    ok_ = (propagate() == cref_undef);
    return ok_;
  }
  attach_clause(alloc_clause(out, /*learnt=*/false, /*lbd=*/0));
  return true;
}

void Solver::enqueue(Lit l, CRef reason) {
  auto v = static_cast<std::size_t>(var(l));
  assert(assigns_[v] == LBool::Undef);
  assigns_[v] = lbool_of(!sign(l));
  var_data_[v] = {reason, decision_level()};
  trail_.push_back(l);
}

Solver::CRef Solver::propagate() {
  CRef confl = cref_undef;
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<std::size_t>(p.x)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      Watcher w = ws[i];
      // Fast path: the blocker literal is already true.
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      CRef c = w.cref;
      Lit* lits = clause_lits(c);
      std::uint32_t size = clause_size(c);
      Lit false_lit = ~p;
      // Ensure the false watched literal is at position 1.
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_lit);

      if (value(lits[0]) == LBool::True) {
        ws[keep++] = {c, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(lits[k]) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>((~lits[1]).x)].push_back(
              {c, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // Clause is unit or conflicting.
      ws[keep++] = {c, lits[0]};
      if (value(lits[0]) == LBool::False) {
        confl = c;
        qhead_ = trail_.size();
        // Copy remaining watchers.
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        break;
      }
      enqueue(lits[0], c);
    }
    ws.resize(keep);
    if (confl != cref_undef) break;
  }
  return confl;
}

void Solver::cancel_until(std::int32_t lvl) {
  if (decision_level() <= lvl) return;
  std::size_t bound = trail_lim_[static_cast<std::size_t>(lvl)];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    auto v = static_cast<std::size_t>(var(trail_[i]));
    phase_[v] = (assigns_[v] == LBool::True);
    assigns_[v] = LBool::Undef;
    if (heap_pos_[v] < 0) heap_insert(static_cast<Var>(v));
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(lvl));
  qhead_ = trail_.size();
}

void Solver::backtrack_to_root() {
  cancel_until(0);
  prev_assumptions_.clear();
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  // A literal is redundant in the learnt clause if it is implied by other
  // clause literals (standard recursive minimization with an explicit
  // stack; `seen_` marks clause literals and proven-redundant ones). On
  // success the marks stay set — they memoize the proof for the remaining
  // candidates — and analyze() clears them through analyze_toclear_; on
  // failure only this call's own marks are rolled back.
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  std::size_t top = 0;
  redundant_marked_.clear();
  while (top < analyze_stack_.size()) {
    Lit q = analyze_stack_[top++];
    CRef reason = var_data_[static_cast<std::size_t>(var(q))].reason;
    if (reason == cref_undef) {
      for (Var v : redundant_marked_)
        seen_[static_cast<std::size_t>(v)] = false;
      return false;
    }
    const Lit* lits = clause_lits(reason);
    std::uint32_t size = clause_size(reason);
    for (std::uint32_t k = 0; k < size; ++k) {
      Lit r = lits[k];
      if (r == q || r == ~q) continue;
      Var v = var(r);
      if (seen_[static_cast<std::size_t>(v)] || level(v) == 0) continue;
      std::uint32_t lv_abs = 1u << (level(v) & 31);
      if ((lv_abs & abstract_levels) == 0) {
        for (Var u : redundant_marked_)
          seen_[static_cast<std::size_t>(u)] = false;
        return false;
      }
      seen_[static_cast<std::size_t>(v)] = true;
      redundant_marked_.push_back(v);
      analyze_stack_.push_back(r);
    }
  }
  for (Var v : redundant_marked_) analyze_toclear_.push_back(v);
  return true;
}

void Solver::strengthen_with_binaries(Clause& out_learnt) {
  // On-the-fly strengthening (binary self-subsuming resolution): for the
  // asserting literal l0, a binary clause (l0 v q) lets us drop ~q from
  // the learnt clause — the resolvent on ~q is the strengthened clause
  // itself. Binaries containing l0 as a watched literal live in the watch
  // list of ~l0.
  if (out_learnt.size() < 3 || out_learnt.size() > 30) return;
  ++bin_counter_;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    auto v = static_cast<std::size_t>(var(out_learnt[i]));
    bin_stamp_[v] = bin_counter_;
    bin_lit_[v] = out_learnt[i].x;
  }
  const Lit l0 = out_learnt[0];
  bool any = false;
  const auto& ws = watches_[static_cast<std::size_t>((~l0).x)];
  for (const Watcher& w : ws) {
    if (clause_size(w.cref) != 2) continue;
    const Lit q = w.blocker;
    auto v = static_cast<std::size_t>(var(q));
    if (bin_stamp_[v] == bin_counter_ && bin_lit_[v] == (~q).x) {
      bin_lit_[v] = lit_undef.x;  // mark ~q for removal
      any = true;
    }
  }
  if (!any) return;
  std::size_t keep = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    auto v = static_cast<std::size_t>(var(out_learnt[i]));
    if (bin_stamp_[v] == bin_counter_ && bin_lit_[v] == lit_undef.x) {
      ++stats_.strengthened_lits;
      continue;
    }
    out_learnt[keep++] = out_learnt[i];
  }
  out_learnt.resize(keep);
}

std::uint32_t Solver::compute_lbd(const Clause& lits) {
  // Literal block distance: number of distinct decision levels in the
  // clause (Glucose). Low LBD predicts a clause that keeps propagating.
  ++lbd_counter_;
  std::uint32_t lbd = 0;
  for (Lit l : lits) {
    auto lv = static_cast<std::size_t>(level(var(l)));
    if (lv == 0) continue;
    if (lbd_stamp_[lv] != lbd_counter_) {
      lbd_stamp_[lv] = lbd_counter_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::analyze(CRef confl, Clause& out_learnt,
                     std::int32_t& out_btlevel, std::uint32_t& out_lbd) {
  // First-UIP conflict analysis.
  out_learnt.clear();
  out_learnt.push_back(lit_undef);  // placeholder for the asserting literal
  std::int32_t path_count = 0;
  Lit p = lit_undef;
  std::size_t index = trail_.size();
  assert(analyze_toclear_.empty());

  do {
    assert(confl != cref_undef);
    if (clause_learnt(confl)) cla_bump(confl);
    const Lit* lits = clause_lits(confl);
    std::uint32_t size = clause_size(confl);
    for (std::uint32_t k = (p == lit_undef ? 0u : 1u); k < size; ++k) {
      // For reason clauses, lits[0] is the implied literal (== p).
      Lit q = lits[k];
      if (p != lit_undef && q == p) continue;
      Var v = var(q);
      if (seen_[static_cast<std::size_t>(v)] || level(v) == 0) continue;
      seen_[static_cast<std::size_t>(v)] = true;
      analyze_toclear_.push_back(v);
      var_bump(v);
      if (level(v) >= decision_level()) {
        ++path_count;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Select the next literal on the trail to resolve on.
    while (!seen_[static_cast<std::size_t>(var(trail_[index - 1]))]) --index;
    p = trail_[--index];
    confl = var_data_[static_cast<std::size_t>(var(p))].reason;
    seen_[static_cast<std::size_t>(var(p))] = false;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Minimize: remove redundant literals.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i)
    abstract_levels |= 1u << (level(var(out_learnt[i])) & 31);
  std::size_t keep = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    Lit l = out_learnt[i];
    if (var_data_[static_cast<std::size_t>(var(l))].reason == cref_undef ||
        !lit_redundant(l, abstract_levels)) {
      out_learnt[keep++] = l;
    }
  }
  out_learnt.resize(keep);

  strengthen_with_binaries(out_learnt);
  out_lbd = compute_lbd(out_learnt);

  // Compute the backtrack level and put a literal of that level at index 1.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level(var(out_learnt[i])) > level(var(out_learnt[max_i])))
        max_i = i;
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(var(out_learnt[1]));
  }

  // Clear every mark this analysis planted (clause literals, resolved-away
  // literals, and successful redundancy proofs). Leaking any of them would
  // silently drop literals from later learnt clauses — an unsound,
  // over-strong clause database.
  for (Var v : analyze_toclear_) seen_[static_cast<std::size_t>(v)] = false;
  analyze_toclear_.clear();
}

void Solver::analyze_final(Lit p) {
  // Assumption-failure analysis: `p` is an assumption found false during
  // assumption re-establishment. Walks the implication trail backwards and
  // collects the assumptions (the only decisions on the trail at this
  // point) that support the failure. The returned core is a subset of the
  // passed assumptions that is unsatisfiable with the formula on its own.
  core_.clear();
  core_.push_back(p);
  if (decision_level() == 0 || level(var(p)) == 0) return;
  seen_[static_cast<std::size_t>(var(p))] = true;
  for (std::size_t i = trail_.size(); i-- > trail_lim_[0];) {
    auto x = static_cast<std::size_t>(var(trail_[i]));
    if (!seen_[x]) continue;
    seen_[x] = false;
    CRef reason = var_data_[x].reason;
    if (reason == cref_undef) {
      core_.push_back(trail_[i]);
    } else {
      const Lit* lits = clause_lits(reason);
      std::uint32_t size = clause_size(reason);
      for (std::uint32_t k = 1; k < size; ++k) {
        Var v = var(lits[k]);
        if (level(v) > 0) seen_[static_cast<std::size_t>(v)] = true;
      }
    }
  }
  seen_[static_cast<std::size_t>(var(p))] = false;
}

void Solver::var_bump(Var v) {
  auto i = static_cast<std::size_t>(v);
  activity_[i] += var_inc_;
  if (activity_[i] > 1e100) rescale_var_activity();
  if (heap_pos_[i] >= 0) heap_sift_up(static_cast<std::size_t>(heap_pos_[i]));
}

void Solver::rescale_var_activity() {
  for (double& a : activity_) a *= 1e-100;
  var_inc_ *= 1e-100;
}

void Solver::cla_bump(CRef c) {
  float& act = clause_activity(c);
  act += static_cast<float>(cla_inc_);
  if (act > 1e20f) {
    for (CRef lc : learnts_) clause_activity(lc) *= 1e-20f;
    cla_inc_ *= 1e-20;
  }
}

void Solver::heap_insert(Var v) {
  heap_pos_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  Var v = heap_[i];
  double act = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >= act) break;
    heap_[i] = heap_[parent];
    heap_pos_[static_cast<std::size_t>(heap_[i])] =
        static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  Var v = heap_[i];
  double act = activity_[static_cast<std::size_t>(v)];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[static_cast<std::size_t>(heap_[child + 1])] >
            activity_[static_cast<std::size_t>(heap_[child])])
      ++child;
    if (activity_[static_cast<std::size_t>(heap_[child])] <= act) break;
    heap_[i] = heap_[child];
    heap_pos_[static_cast<std::size_t>(heap_[i])] =
        static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

Var Solver::heap_pop() {
  Var v = heap_[0];
  heap_pos_[static_cast<std::size_t>(v)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_sift_down(0);
  }
  return v;
}

Lit Solver::pick_branch_lit() {
  while (!heap_empty()) {
    Var v = heap_pop();
    if (value(v) == LBool::Undef) {
      return mk_lit(v, !phase_[static_cast<std::size_t>(v)]);
    }
  }
  return lit_undef;
}

void Solver::reduce_db() {
  // LBD/activity hybrid reduction: remove the worst half of the learnt
  // clauses — highest LBD first, ties broken by lowest activity — keeping
  // glue clauses (LBD <= 2), binaries and clauses that are currently a
  // propagation reason.
  std::sort(learnts_.begin(), learnts_.end(), [this](CRef a, CRef b) {
    std::uint32_t la = clause_lbd(a);
    std::uint32_t lb = clause_lbd(b);
    if (la != lb) return la > lb;
    return clause_activity(a) < clause_activity(b);
  });
  std::size_t removed = 0;
  std::size_t half = learnts_.size() / 2;
  std::vector<CRef> kept;
  kept.reserve(learnts_.size());
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    CRef c = learnts_[i];
    Lit first = clause_lits(c)[0];
    bool locked =
        value(first) == LBool::True &&
        var_data_[static_cast<std::size_t>(var(first))].reason == c;
    if (removed < half && !locked && clause_size(c) > 2 &&
        clause_lbd(c) > 2) {
      remove_clause(c);
      ++removed;
    } else {
      kept.push_back(c);
    }
  }
  learnts_ = std::move(kept);
}

Result Solver::search(std::uint64_t conflicts_budget,
                      const std::vector<Lit>& assumptions) {
  std::uint64_t conflicts_here = 0;
  Clause learnt;
  for (;;) {
    CRef confl = propagate();
    if (confl != cref_undef) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (decision_level() == 0) {
        ok_ = false;
        return Result::Unsat;
      }
      std::int32_t bt = 0;
      std::uint32_t lbd = 0;
      analyze(confl, learnt, bt, lbd);
      cancel_until(bt);
      if (learnt.size() == 1) {
        enqueue(learnt[0], cref_undef);
      } else {
        CRef c = alloc_clause(learnt, /*learnt=*/true, lbd);
        attach_clause(c);
        cla_bump(c);
        enqueue(learnt[0], c);
        if (lbd <= 2) ++stats_.lbd_protected;
      }
      var_decay();
      cla_decay();
      if (conflict_limit_ != 0 &&
          stats_.conflicts - solve_start_conflicts_ >= conflict_limit_)
        return Result::Unknown;
      if (conflicts_here >= conflicts_budget) {
        cancel_until(0);
        return Result::Unknown;  // restart
      }
      std::size_t limit =
          max_learnts_ != 0 ? max_learnts_ : 4000 + 8 * num_vars();
      if (learnts_.size() > limit) reduce_db();
    } else {
      // Re-establish assumptions, then decide.
      Lit next = lit_undef;
      while (static_cast<std::size_t>(decision_level()) <
             assumptions.size()) {
        Lit a = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::True) {
          new_decision_level();  // already implied; dummy level
        } else if (value(a) == LBool::False) {
          analyze_final(a);
          return Result::Unsat;  // conflicts with the formula
        } else {
          next = a;
          break;
        }
      }
      if (next == lit_undef) {
        next = pick_branch_lit();
        if (next == lit_undef) {
          // All variables assigned: model found.
          for (std::size_t v = 0; v < assigns_.size(); ++v)
            model_[v] = (assigns_[v] == LBool::True);
          return Result::Sat;
        }
        ++stats_.decisions;
      }
      new_decision_level();
      enqueue(next, cref_undef);
    }
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  obs::TraceSession* trace = obs::TraceSession::active();
  if (trace == nullptr) return solve_impl(assumptions);
  const std::uint64_t conflicts_before = stats_.conflicts;
  const std::uint64_t propagations_before = stats_.propagations;
  Result result = solve_impl(assumptions);
  trace->counter("sat.solve_calls").add(1);
  trace->counter(result == Result::Sat      ? "sat.results_sat"
                 : result == Result::Unsat  ? "sat.results_unsat"
                                            : "sat.results_unknown")
      .add(1);
  trace->counter("sat.conflicts").add(stats_.conflicts - conflicts_before);
  trace->counter("sat.propagations")
      .add(stats_.propagations - propagations_before);
  trace->histogram("sat.conflicts_per_call")
      .record(stats_.conflicts - conflicts_before);
  return result;
}

Result Solver::solve_impl(const std::vector<Lit>& assumptions) {
  core_.clear();
  if (!ok_) return Result::Unsat;  // empty core: unsat without assumptions
  solve_start_conflicts_ = stats_.conflicts;

  // Incremental trail reuse: decision level i+1 holds assumption i (as a
  // dummy level when it was already implied), so the longest prefix the
  // new assumption vector shares with the previous one is a trail prefix
  // whose propagation can be kept verbatim. Only backtrack to the first
  // differing assumption instead of to the root.
  std::size_t established = std::min(
      static_cast<std::size_t>(decision_level()), prev_assumptions_.size());
  std::size_t keep = 0;
  while (keep < established && keep < assumptions.size() &&
         prev_assumptions_[keep] == assumptions[keep])
    ++keep;
  cancel_until(static_cast<std::int32_t>(keep));
  prev_assumptions_ = assumptions;

  std::uint64_t restart = 0;
  for (;;) {
    Result r = search(luby(restart) * 100, assumptions);
    if (r == Result::Sat) return r;  // trail kept for the next solve
    if (r == Result::Unsat) {
      if (!ok_) core_.clear();
      return r;  // assumption-failure trail kept for the next solve
    }
    if (conflict_limit_ != 0 &&
        stats_.conflicts - solve_start_conflicts_ >= conflict_limit_) {
      // The budget can run out with an un-propagated asserting literal on
      // the trail; a clean root state is the only safe thing to hand to
      // the next solve.
      backtrack_to_root();
      return Result::Unknown;
    }
    ++restart;
    ++stats_.restarts;
  }
}

// --- inprocessing -----------------------------------------------------

bool Solver::simplify_clause_db(std::vector<CRef>& db) {
  std::vector<CRef> kept;
  kept.reserve(db.size());
  for (CRef c : db) {
    if (clause_deleted(c)) continue;
    Lit* lits = clause_lits(c);
    std::uint32_t n = clause_size(c);
    bool satisfied = false;
    std::uint32_t nfalse = 0;
    for (std::uint32_t i = 0; i < n && !satisfied; ++i) {
      LBool v = value(lits[i]);
      if (v == LBool::True) satisfied = true;
      if (v == LBool::False) ++nfalse;
    }
    if (satisfied) {
      remove_clause(c);
      continue;
    }
    if (nfalse == 0) {
      kept.push_back(c);
      continue;
    }
    // Strip root-level-false literals.
    detach_clause(c);
    std::uint32_t m = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (value(lits[i]) != LBool::False) lits[m++] = lits[i];
    }
    set_clause_size(c, m);
    if (m == 0) {
      mark_deleted(c);
      ok_ = false;
      return false;
    }
    if (m == 1) {
      mark_deleted(c);
      enqueue(lits[0], cref_undef);
      if (propagate() != cref_undef) {
        ok_ = false;
        return false;
      }
      continue;
    }
    attach_clause(c);
    kept.push_back(c);
  }
  db = std::move(kept);
  return true;
}

bool Solver::strengthen_clause(CRef c, Lit l) {
  // Removes `l` from clause `c` at the root level (self-subsuming
  // resolution proved the rest of the clause implied without it), fixing
  // up watches and absorbing the clause when it degenerates.
  ++stats_.strengthened_lits;
  detach_clause(c);
  Lit* lits = clause_lits(c);
  std::uint32_t n = clause_size(c);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (lits[i] == l) {
      lits[i] = lits[n - 1];
      break;
    }
  }
  set_clause_size(c, --n);
  bool satisfied = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (value(lits[i]) == LBool::True) satisfied = true;
  }
  if (satisfied) {
    mark_deleted(c);
    return true;
  }
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (value(lits[i]) != LBool::False) lits[m++] = lits[i];
  }
  set_clause_size(c, m);
  if (m == 0) {
    mark_deleted(c);
    ok_ = false;
    return false;
  }
  if (m == 1) {
    mark_deleted(c);
    enqueue(lits[0], cref_undef);
    if (propagate() != cref_undef) {
      ok_ = false;
      return false;
    }
    return true;
  }
  attach_clause(c);
  return true;
}

void Solver::probe_failed_literals() {
  // Failed-literal probing: assume a literal, propagate; a conflict means
  // its negation is a root-level unit. Bounded by a probe count and a
  // propagation budget so a round's cost is independent of formula size.
  const std::uint64_t prop_budget = stats_.propagations + kProbePropBudget;
  std::size_t probes = 0;
  for (std::size_t v = 0;
       v < num_vars() && probes < kProbeMaxLits &&
       stats_.propagations < prop_budget && ok_;
       ++v) {
    if (value(static_cast<Var>(v)) != LBool::Undef) continue;
    for (int s = 0; s < 2; ++s) {
      Lit l = mk_lit(static_cast<Var>(v), s == 1);
      if (value(l) != LBool::Undef) break;  // assigned by a failed probe
      ++probes;
      new_decision_level();
      enqueue(l, cref_undef);
      CRef confl = propagate();
      cancel_until(0);
      if (confl != cref_undef) {
        ++stats_.failed_literals;
        enqueue(~l, cref_undef);
        if (propagate() != cref_undef) {
          ok_ = false;
          return;
        }
      }
    }
  }
}

void Solver::subsumption_pass() {
  // Budgeted backward subsumption and self-subsumption over the original
  // clauses: if lits(c) ⊆ lits(d), d is redundant; if the inclusion holds
  // with exactly one literal flipped, the flipped literal can be removed
  // from d (self-subsuming resolution).
  std::vector<CRef> cs;
  cs.reserve(clauses_.size());
  for (CRef c : clauses_) {
    if (!clause_deleted(c) && clause_size(c) <= kSubsumeMaxSize)
      cs.push_back(c);
  }
  std::vector<std::vector<std::uint32_t>> occ(num_vars());
  for (std::uint32_t i = 0; i < cs.size(); ++i) {
    const Lit* lits = clause_lits(cs[i]);
    std::uint32_t n = clause_size(cs[i]);
    for (std::uint32_t k = 0; k < n; ++k)
      occ[static_cast<std::size_t>(var(lits[k]))].push_back(i);
  }
  std::int64_t budget = kSubsumeTickBudget;
  for (CRef c : cs) {
    if (budget <= 0 || !ok_) return;
    if (clause_deleted(c)) continue;
    const Lit* clits = clause_lits(c);
    std::uint32_t cn = clause_size(c);
    // Scan the occurrence list of the least-occurring variable of c.
    std::size_t best_var = static_cast<std::size_t>(var(clits[0]));
    for (std::uint32_t k = 1; k < cn; ++k) {
      auto v = static_cast<std::size_t>(var(clits[k]));
      if (occ[v].size() < occ[best_var].size()) best_var = v;
    }
    for (std::uint32_t di : occ[best_var]) {
      CRef d = cs[di];
      if (d == c || clause_deleted(d) || clause_size(d) < cn) continue;
      budget -= static_cast<std::int64_t>(cn + clause_size(d));
      if (budget <= 0) return;
      // Inclusion check with at most one flipped literal.
      const Lit* dlits = clause_lits(d);
      std::uint32_t dn = clause_size(d);
      Lit flip = lit_undef;
      bool fail = false;
      for (std::uint32_t k = 0; k < cn && !fail; ++k) {
        Lit lc = clits[k];
        bool found = false;
        for (std::uint32_t j = 0; j < dn; ++j) {
          if (dlits[j] == lc) {
            found = true;
            break;
          }
          if (dlits[j] == ~lc) {
            if (flip != lit_undef) {
              fail = true;
            } else {
              flip = ~lc;
              found = true;
            }
            break;
          }
        }
        if (!found) fail = true;
      }
      if (fail) continue;
      if (flip == lit_undef) {
        remove_clause(d);
        ++stats_.subsumed_clauses;
      } else {
        if (!strengthen_clause(d, flip)) return;
        // c may itself have been absorbed by unit propagation.
        if (clause_deleted(c)) break;
      }
    }
  }
}

void Solver::inprocess() {
  if (!ok_) return;
  backtrack_to_root();
  if (propagate() != cref_undef) {
    ok_ = false;
    return;
  }
  ++stats_.inprocessing_rounds;
  if (!simplify_clause_db(clauses_)) return;
  if (!simplify_clause_db(learnts_)) return;
  probe_failed_literals();
  if (!ok_) return;
  subsumption_pass();
}

// --- clause sharing ---------------------------------------------------

std::vector<Clause> Solver::export_learnts(std::size_t max_size,
                                           std::uint32_t max_lbd) const {
  std::vector<Clause> out;
  // Root-level implied units first: they are the strongest shareable
  // facts and always satisfy any size/LBD filter.
  std::size_t root_end = trail_lim_.empty() ? trail_.size() : trail_lim_[0];
  for (std::size_t i = 0; i < root_end; ++i)
    out.push_back(Clause{trail_[i]});
  for (CRef c : learnts_) {
    if (clause_deleted(c)) continue;
    if (clause_size(c) > max_size || clause_lbd(c) > max_lbd) continue;
    const Lit* lits = clause_lits(c);
    out.emplace_back(lits, lits + clause_size(c));
  }
  return out;
}

bool Solver::import_clause(Clause lits) {
  if (!ok_) return false;
  backtrack_to_root();
  // Normalize exactly like add_clause; dropping root-false literals keeps
  // the clause implied because the root assignment itself is implied.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.x < b.x; });
  Clause out;
  Lit prev = lit_undef;
  for (Lit l : lits) {
    if (value(l) == LBool::True || (prev != lit_undef && l == ~prev))
      return true;
    if (value(l) == LBool::False || l == prev) continue;
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], cref_undef);
    ok_ = (propagate() == cref_undef);
    return ok_;
  }
  CRef c = alloc_clause(out, /*learnt=*/true,
                        static_cast<std::uint32_t>(out.size()));
  attach_clause(c);
  return true;
}

}  // namespace rsnsec::sat
