#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.hpp"

namespace rsnsec::sat {

std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence that contains index i, then index into it.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return 1ULL << seq;
}

Solver::Solver() = default;

Var Solver::new_var() {
  auto v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  phase_.push_back(false);
  var_data_.push_back({});
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  model_.push_back(false);
  heap_insert(v);
  return v;
}

Solver::CRef Solver::alloc_clause(const Clause& lits, bool learnt) {
  auto c = static_cast<CRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                   (learnt ? 2u : 0u));
  if (learnt) arena_.push_back(0);  // activity slot
  for (Lit l : lits) arena_.push_back(static_cast<std::uint32_t>(l.x));
  if (learnt) {
    clause_activity(c) = 0.0f;
    learnts_.push_back(c);
    ++stats_.learned_clauses;
  }
  return c;
}

void Solver::attach_clause(CRef c) {
  Lit* lits = clause_lits(c);
  assert(clause_size(c) >= 2);
  watches_[static_cast<std::size_t>((~lits[0]).x)].push_back(
      {c, lits[1]});
  watches_[static_cast<std::size_t>((~lits[1]).x)].push_back(
      {c, lits[0]});
}

bool Solver::add_clause(Clause lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;

  // Normalize: sort, drop duplicates and level-0-false literals, detect
  // tautologies and level-0-true literals.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.x < b.x; });
  Clause out;
  Lit prev = lit_undef;
  for (Lit l : lits) {
    if (value(l) == LBool::True || (prev != lit_undef && l == ~prev))
      return true;  // satisfied or tautological
    if (value(l) == LBool::False || l == prev) continue;
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], cref_undef);
    ok_ = (propagate() == cref_undef);
    return ok_;
  }
  attach_clause(alloc_clause(out, /*learnt=*/false));
  return true;
}

void Solver::enqueue(Lit l, CRef reason) {
  auto v = static_cast<std::size_t>(var(l));
  assert(assigns_[v] == LBool::Undef);
  assigns_[v] = lbool_of(!sign(l));
  var_data_[v] = {reason, decision_level()};
  trail_.push_back(l);
}

Solver::CRef Solver::propagate() {
  CRef confl = cref_undef;
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<std::size_t>(p.x)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      Watcher w = ws[i];
      // Fast path: the blocker literal is already true.
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      CRef c = w.cref;
      Lit* lits = clause_lits(c);
      std::uint32_t size = clause_size(c);
      Lit false_lit = ~p;
      // Ensure the false watched literal is at position 1.
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_lit);

      if (value(lits[0]) == LBool::True) {
        ws[keep++] = {c, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(lits[k]) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>((~lits[1]).x)].push_back(
              {c, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // Clause is unit or conflicting.
      ws[keep++] = {c, lits[0]};
      if (value(lits[0]) == LBool::False) {
        confl = c;
        qhead_ = trail_.size();
        // Copy remaining watchers.
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        break;
      }
      enqueue(lits[0], c);
    }
    ws.resize(keep);
    if (confl != cref_undef) break;
  }
  return confl;
}

void Solver::cancel_until(std::int32_t lvl) {
  if (decision_level() <= lvl) return;
  std::size_t bound = trail_lim_[static_cast<std::size_t>(lvl)];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    auto v = static_cast<std::size_t>(var(trail_[i]));
    phase_[v] = (assigns_[v] == LBool::True);
    assigns_[v] = LBool::Undef;
    if (heap_pos_[v] < 0) heap_insert(static_cast<Var>(v));
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(lvl));
  qhead_ = trail_.size();
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  // A literal is redundant in the learnt clause if it is implied by other
  // clause literals (standard recursive minimization with an explicit
  // stack; `seen_` marks clause literals and proven-redundant ones).
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  std::size_t top = 0;
  std::vector<Var> to_unmark;
  while (top < analyze_stack_.size()) {
    Lit q = analyze_stack_[top++];
    CRef reason = var_data_[static_cast<std::size_t>(var(q))].reason;
    if (reason == cref_undef) {
      for (Var v : to_unmark) seen_[static_cast<std::size_t>(v)] = false;
      return false;
    }
    const Lit* lits = clause_lits(reason);
    std::uint32_t size = clause_size(reason);
    for (std::uint32_t k = 0; k < size; ++k) {
      Lit r = lits[k];
      if (r == q || r == ~q) continue;
      Var v = var(r);
      if (seen_[static_cast<std::size_t>(v)] || level(v) == 0) continue;
      std::uint32_t lv_abs = 1u << (level(v) & 31);
      if ((lv_abs & abstract_levels) == 0) {
        for (Var u : to_unmark) seen_[static_cast<std::size_t>(u)] = false;
        return false;
      }
      seen_[static_cast<std::size_t>(v)] = true;
      to_unmark.push_back(v);
      analyze_stack_.push_back(r);
    }
  }
  return true;
}

void Solver::analyze(CRef confl, Clause& out_learnt,
                     std::int32_t& out_btlevel) {
  // First-UIP conflict analysis.
  out_learnt.clear();
  out_learnt.push_back(lit_undef);  // placeholder for the asserting literal
  std::int32_t path_count = 0;
  Lit p = lit_undef;
  std::size_t index = trail_.size();

  do {
    assert(confl != cref_undef);
    if (clause_learnt(confl)) cla_bump(confl);
    const Lit* lits = clause_lits(confl);
    std::uint32_t size = clause_size(confl);
    for (std::uint32_t k = (p == lit_undef ? 0u : 1u); k < size; ++k) {
      // For reason clauses, lits[0] is the implied literal (== p).
      Lit q = lits[k];
      if (p != lit_undef && q == p) continue;
      Var v = var(q);
      if (seen_[static_cast<std::size_t>(v)] || level(v) == 0) continue;
      seen_[static_cast<std::size_t>(v)] = true;
      var_bump(v);
      if (level(v) >= decision_level()) {
        ++path_count;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Select the next literal on the trail to resolve on.
    while (!seen_[static_cast<std::size_t>(var(trail_[index - 1]))]) --index;
    p = trail_[--index];
    confl = var_data_[static_cast<std::size_t>(var(p))].reason;
    seen_[static_cast<std::size_t>(var(p))] = false;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Minimize: remove redundant literals.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i)
    abstract_levels |= 1u << (level(var(out_learnt[i])) & 31);
  std::size_t keep = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    Lit l = out_learnt[i];
    if (var_data_[static_cast<std::size_t>(var(l))].reason == cref_undef ||
        !lit_redundant(l, abstract_levels)) {
      out_learnt[keep++] = l;
    }
  }
  out_learnt.resize(keep);

  // Compute the backtrack level and put a literal of that level at index 1.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level(var(out_learnt[i])) > level(var(out_learnt[max_i])))
        max_i = i;
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(var(out_learnt[1]));
  }

  for (Lit l : out_learnt) seen_[static_cast<std::size_t>(var(l))] = false;
}

void Solver::var_bump(Var v) {
  auto i = static_cast<std::size_t>(v);
  activity_[i] += var_inc_;
  if (activity_[i] > 1e100) rescale_var_activity();
  if (heap_pos_[i] >= 0) heap_sift_up(static_cast<std::size_t>(heap_pos_[i]));
}

void Solver::rescale_var_activity() {
  for (double& a : activity_) a *= 1e-100;
  var_inc_ *= 1e-100;
}

void Solver::cla_bump(CRef c) {
  float& act = clause_activity(c);
  act += static_cast<float>(cla_inc_);
  if (act > 1e20f) {
    for (CRef lc : learnts_) clause_activity(lc) *= 1e-20f;
    cla_inc_ *= 1e-20;
  }
}

void Solver::heap_insert(Var v) {
  heap_pos_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  Var v = heap_[i];
  double act = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >= act) break;
    heap_[i] = heap_[parent];
    heap_pos_[static_cast<std::size_t>(heap_[i])] =
        static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  Var v = heap_[i];
  double act = activity_[static_cast<std::size_t>(v)];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[static_cast<std::size_t>(heap_[child + 1])] >
            activity_[static_cast<std::size_t>(heap_[child])])
      ++child;
    if (activity_[static_cast<std::size_t>(heap_[child])] <= act) break;
    heap_[i] = heap_[child];
    heap_pos_[static_cast<std::size_t>(heap_[i])] =
        static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

Var Solver::heap_pop() {
  Var v = heap_[0];
  heap_pos_[static_cast<std::size_t>(v)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_sift_down(0);
  }
  return v;
}

Lit Solver::pick_branch_lit() {
  while (!heap_empty()) {
    Var v = heap_pop();
    if (value(v) == LBool::Undef) {
      return mk_lit(v, !phase_[static_cast<std::size_t>(v)]);
    }
  }
  return lit_undef;
}

void Solver::reduce_db() {
  // Remove the least active half of the learnt clauses, keeping clauses
  // that are currently a propagation reason.
  std::sort(learnts_.begin(), learnts_.end(), [this](CRef a, CRef b) {
    return clause_activity(a) < clause_activity(b);
  });
  std::size_t removed = 0;
  std::size_t half = learnts_.size() / 2;
  std::vector<CRef> kept;
  kept.reserve(learnts_.size());
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    CRef c = learnts_[i];
    Lit first = clause_lits(c)[0];
    bool locked =
        value(first) == LBool::True &&
        var_data_[static_cast<std::size_t>(var(first))].reason == c;
    if (removed < half && !locked && clause_size(c) > 2) {
      // Detach from both watch lists, then mark deleted.
      for (int w = 0; w < 2; ++w) {
        Lit watched = clause_lits(c)[w];
        auto& ws = watches_[static_cast<std::size_t>((~watched).x)];
        for (std::size_t k = 0; k < ws.size(); ++k) {
          if (ws[k].cref == c) {
            ws[k] = ws.back();
            ws.pop_back();
            break;
          }
        }
      }
      mark_deleted(c);
      ++removed;
    } else {
      kept.push_back(c);
    }
  }
  learnts_ = std::move(kept);
}

Result Solver::search(std::uint64_t conflicts_budget,
                      const std::vector<Lit>& assumptions) {
  std::uint64_t conflicts_here = 0;
  Clause learnt;
  for (;;) {
    CRef confl = propagate();
    if (confl != cref_undef) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (decision_level() == 0) {
        ok_ = false;
        return Result::Unsat;
      }
      std::int32_t bt = 0;
      analyze(confl, learnt, bt);
      cancel_until(bt);
      if (learnt.size() == 1) {
        enqueue(learnt[0], cref_undef);
      } else {
        CRef c = alloc_clause(learnt, /*learnt=*/true);
        attach_clause(c);
        cla_bump(c);
        enqueue(learnt[0], c);
      }
      var_decay();
      cla_decay();
      if (conflict_limit_ != 0 && stats_.conflicts >= conflict_limit_)
        return Result::Unknown;
      if (conflicts_here >= conflicts_budget) {
        cancel_until(0);
        return Result::Unknown;  // restart
      }
      if (learnts_.size() > 4000 + 8 * num_vars()) reduce_db();
    } else {
      // Re-establish assumptions, then decide.
      Lit next = lit_undef;
      while (static_cast<std::size_t>(decision_level()) <
             assumptions.size()) {
        Lit a = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::True) {
          new_decision_level();  // already implied; dummy level
        } else if (value(a) == LBool::False) {
          return Result::Unsat;  // conflicts with the formula
        } else {
          next = a;
          break;
        }
      }
      if (next == lit_undef) {
        next = pick_branch_lit();
        if (next == lit_undef) {
          // All variables assigned: model found.
          for (std::size_t v = 0; v < assigns_.size(); ++v)
            model_[v] = (assigns_[v] == LBool::True);
          return Result::Sat;
        }
        ++stats_.decisions;
      }
      new_decision_level();
      enqueue(next, cref_undef);
    }
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  obs::TraceSession* trace = obs::TraceSession::active();
  if (trace == nullptr) return solve_impl(assumptions);
  const std::uint64_t conflicts_before = stats_.conflicts;
  const std::uint64_t propagations_before = stats_.propagations;
  Result result = solve_impl(assumptions);
  trace->counter("sat.solve_calls").add(1);
  trace->counter(result == Result::Sat      ? "sat.results_sat"
                 : result == Result::Unsat  ? "sat.results_unsat"
                                            : "sat.results_unknown")
      .add(1);
  trace->counter("sat.conflicts").add(stats_.conflicts - conflicts_before);
  trace->counter("sat.propagations")
      .add(stats_.propagations - propagations_before);
  trace->histogram("sat.conflicts_per_call")
      .record(stats_.conflicts - conflicts_before);
  return result;
}

Result Solver::solve_impl(const std::vector<Lit>& assumptions) {
  if (!ok_) return Result::Unsat;
  cancel_until(0);
  std::uint64_t restart = 0;
  for (;;) {
    Result r = search(luby(restart) * 100, assumptions);
    if (r != Result::Unknown) {
      cancel_until(0);
      return r;
    }
    if (conflict_limit_ != 0 && stats_.conflicts >= conflict_limit_) {
      cancel_until(0);
      return Result::Unknown;
    }
    ++restart;
    ++stats_.restarts;
  }
}

}  // namespace rsnsec::sat
