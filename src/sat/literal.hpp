#pragma once

#include <cstdint>
#include <vector>

namespace rsnsec::sat {

/// Boolean variable index (0-based).
using Var = std::int32_t;

/// A literal: a variable or its negation, encoded as 2*var + sign.
/// sign == 1 means the negated literal.
struct Lit {
  std::int32_t x = -2;

  constexpr bool operator==(const Lit&) const = default;
};

/// Builds a literal for variable `v`, negated when `neg` is true.
constexpr Lit mk_lit(Var v, bool neg = false) {
  return Lit{v + v + static_cast<std::int32_t>(neg)};
}

/// Negation of a literal.
constexpr Lit operator~(Lit l) { return Lit{l.x ^ 1}; }

/// Variable of a literal.
constexpr Var var(Lit l) { return l.x >> 1; }

/// True if the literal is the negated form of its variable.
constexpr bool sign(Lit l) { return (l.x & 1) != 0; }

/// Sentinel "no literal" value.
constexpr Lit lit_undef{-2};

/// Ternary truth value used for assignments.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

constexpr LBool lbool_of(bool b) { return b ? LBool::True : LBool::False; }

/// Truth value of literal `l` given the value of its variable.
constexpr LBool lit_value(LBool var_value, Lit l) {
  if (var_value == LBool::Undef) return LBool::Undef;
  bool v = (var_value == LBool::True);
  return lbool_of(v != sign(l));
}

/// A clause is a disjunction of literals.
using Clause = std::vector<Lit>;

}  // namespace rsnsec::sat
