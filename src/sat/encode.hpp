#pragma once

#include <span>

#include "sat/literal.hpp"
#include "sat/solver.hpp"

namespace rsnsec::sat {

/// Tseitin encodings of common gate functions. Each function adds clauses
/// asserting `out` equals the gate function of the inputs. All helpers are
/// safe for 0-input gates where noted.

/// out <-> AND(ins); with empty `ins`, out is forced true.
void encode_and(Solver& s, Lit out, std::span<const Lit> ins);

/// out <-> OR(ins); with empty `ins`, out is forced false.
void encode_or(Solver& s, Lit out, std::span<const Lit> ins);

/// out <-> XOR(ins); with empty `ins`, out is forced false.
/// Chains pairwise XORs through fresh variables for arity > 2.
void encode_xor(Solver& s, Lit out, std::span<const Lit> ins);

/// out <-> (sel ? hi : lo).
void encode_mux(Solver& s, Lit out, Lit sel, Lit lo, Lit hi);

/// out <-> in.
void encode_eq(Solver& s, Lit out, Lit in);

/// out <-> (a == b), i.e. out is an XNOR of a and b.
void encode_eq2(Solver& s, Lit out, Lit a, Lit b);

}  // namespace rsnsec::sat
