#include "serve/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace rsnsec::serve {

FairScheduler::FairScheduler(SchedulerOptions options)
    : options_(options) {
  options_.workers = std::max<std::size_t>(1, options_.workers);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

FairScheduler::~FairScheduler() { drain_and_stop(); }

FairScheduler::Admit FairScheduler::submit(const std::string& tenant,
                                           Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stop_) return Admit::Stopping;
    if (total_queued_ >= options_.queue_capacity) return Admit::Busy;
    auto [it, inserted] = tenant_index_.try_emplace(tenant, queues_.size());
    if (inserted) queues_.push_back(TenantQueue{tenant, {}});
    queues_[it->second].items.push_back(
        Pending{std::move(job), Clock::now()});
    ++total_queued_;
  }
  work_cv_.notify_one();
  return Admit::Accepted;
}

void FairScheduler::worker_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return total_queued_ > 0 || stop_; });
      if (total_queued_ == 0) return;  // stop_ set and queues drained
      // Round-robin: advance the cursor to the next tenant with work.
      // Queues never shrink, so tenant indices stay stable.
      std::size_t n = queues_.size();
      for (std::size_t step = 0; step < n; ++step) {
        std::size_t q = (cursor_ + step) % n;
        if (!queues_[q].items.empty()) {
          pending = std::move(queues_[q].items.front());
          queues_[q].items.pop_front();
          cursor_ = (q + 1) % n;
          break;
        }
      }
      --total_queued_;
      ++in_flight_;
    }
    double waited = std::chrono::duration<double>(Clock::now() -
                                                  pending.enqueued)
                        .count();
    pending.fn(waited);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (total_queued_ == 0 && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void FairScheduler::drain_and_stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    idle_cv_.wait(lock,
                  [this] { return total_queued_ == 0 && in_flight_ == 0; });
    if (stop_) return;  // another caller already joined the workers
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::size_t FairScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

std::uint64_t FairScheduler::retry_after_ms() const {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    depth = total_queued_ + in_flight_;
  }
  std::uint64_t estimate = 25 * (1 + depth / options_.workers);
  return std::min<std::uint64_t>(estimate, 1000);
}

}  // namespace rsnsec::serve
