#pragma once

// Connection layer of the serve daemon: a listener (unix path or
// loopback TCP), one reader thread per connection, and the wiring from
// parsed frames to the fair-share scheduler / the AnalysisService.
//
// Threading model: the thread calling serve() owns the accept loop
// (polling its stop flag between 200 ms accept waits). Each connection
// gets a reader thread; replies are written by whichever thread finishes
// the work — the connection's write mutex serializes frames, and pending
// jobs hold the connection alive via shared_ptr, so an abrupt disconnect
// never leaves a scheduler job with a dangling socket (the reply write
// just fails and is dropped).
//
// Graceful shutdown (SIGINT/SIGTERM via request_stop(), or a `shutdown`
// request): stop accepting, mark draining (new frames get SRV006),
// drain the scheduler — every admitted request still gets its reply —
// then kick and join the readers.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "util/socket.hpp"

namespace rsnsec::serve {

struct ServerOptions {
  /// Exactly one of socket_path / port must be set (the CLI enforces
  /// mutual exclusion before constructing the server).
  std::string socket_path;  ///< unix-domain listener path ("" = TCP)
  int port = -1;            ///< loopback TCP port (0 = kernel-assigned)

  std::size_t workers = 2;          ///< concurrent request executors
  std::size_t queue_capacity = 64;  ///< admission bound (then SRV005)
  std::size_t max_request_bytes = 8u << 20;  ///< per-line cap (SRV002)
};

class Server {
 public:
  Server(AnalysisService& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener. Separated from serve() so callers (tests, the
  /// bench client) can read the resolved port before connecting.
  void bind();

  /// Resolved TCP port after bind() (0 for unix listeners).
  std::uint16_t port() const { return listener_.port(); }

  /// Accept loop; returns after a graceful shutdown completes. Call
  /// bind() first (serve() binds on its own if not).
  void serve();

  /// Initiates graceful shutdown from any thread (signal poll, the
  /// `shutdown` request, tests). Idempotent, returns immediately.
  void request_stop();

  /// Requests served over the lifetime (drained on shutdown).
  std::uint64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  void reader_loop(std::shared_ptr<Conn> conn);
  void handle_line(const std::shared_ptr<Conn>& conn,
                   const std::string& text);

  AnalysisService& service_;
  ServerOptions options_;
  FairScheduler scheduler_;
  Listener listener_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> requests_handled_{0};

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> reader_threads_;
};

/// Installs SIGINT/SIGTERM handlers that flip a process-wide flag, and
/// the poll the accept loop uses to notice it. The CLI installs these;
/// tests drive request_stop() directly instead.
void install_signal_handlers();
bool signal_stop_requested();

}  // namespace rsnsec::serve
