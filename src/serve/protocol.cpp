#include "serve/protocol.hpp"

#include <cmath>

#include "util/minijson.hpp"
#include "util/strings.hpp"

namespace rsnsec::serve {

const char* serve_code_name(ServeCode code) {
  switch (code) {
    case ServeCode::Ok: return "OK";
    case ServeCode::MalformedFrame: return "SRV001";
    case ServeCode::Oversize: return "SRV002";
    case ServeCode::UnknownCommand: return "SRV003";
    case ServeCode::BadField: return "SRV004";
    case ServeCode::Busy: return "SRV005";
    case ServeCode::ShuttingDown: return "SRV006";
    case ServeCode::Internal: return "SRV007";
  }
  return "SRV???";
}

const char* command_name(Command c) {
  switch (c) {
    case Command::Ping: return "ping";
    case Command::Analyze: return "analyze";
    case Command::Secure: return "secure";
    case Command::Certify: return "certify";
    case Command::Attack: return "attack";
    case Command::StoreStats: return "store-stats";
    case Command::Stats: return "stats";
    case Command::Shutdown: return "shutdown";
  }
  return "?";
}

namespace {

ParseOutcome fail(ServeCode code, std::string message) {
  ParseOutcome o;
  o.code = code;
  o.message = std::move(message);
  return o;
}

std::optional<Command> lookup_command(std::string_view name) {
  if (name == "ping") return Command::Ping;
  if (name == "analyze") return Command::Analyze;
  if (name == "secure") return Command::Secure;
  if (name == "certify") return Command::Certify;
  if (name == "attack") return Command::Attack;
  if (name == "store-stats") return Command::StoreStats;
  if (name == "stats") return Command::Stats;
  if (name == "shutdown") return Command::Shutdown;
  return std::nullopt;
}

/// Required string payload field; empty-string payloads are as useless
/// as absent ones, so both are rejected.
bool take_payload(const JsonValue& obj, std::string_view key,
                  std::string& out, std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string() || v->string.empty()) {
    error = "field '" + std::string(key) +
            "' must be a non-empty string payload";
    return false;
  }
  out = v->string;
  return true;
}

}  // namespace

ParseOutcome parse_request(std::string_view line) {
  JsonParseResult parsed = parse_json(line);
  if (!parsed.ok())
    return fail(ServeCode::MalformedFrame,
                "malformed frame at byte " +
                    std::to_string(parsed.error_pos) + ": " + parsed.error);
  const JsonValue& root = *parsed.value;
  if (!root.is_object())
    return fail(ServeCode::MalformedFrame,
                "request frame must be a JSON object");

  const JsonValue* cmd = root.find("command");
  if (cmd == nullptr || !cmd->is_string())
    return fail(ServeCode::BadField,
                "field 'command' must be a string");
  std::optional<Command> command = lookup_command(cmd->string);
  if (!command)
    return fail(ServeCode::UnknownCommand,
                "unknown command '" + cmd->string +
                    "' (try: ping, analyze, secure, certify, attack, "
                    "store-stats, stats, shutdown)");

  Request req;
  req.command = *command;

  if (const JsonValue* id = root.find("id")) {
    if (id->is_string()) {
      req.id = id->string;
    } else if (id->is_number()) {
      // Integral ids round-trip exactly; anything fancier the client
      // should send as a string.
      req.id = std::to_string(static_cast<long long>(id->number));
    } else if (!id->is_null()) {
      return fail(ServeCode::BadField,
                  "field 'id' must be a string or number");
    }
  }
  if (const JsonValue* tenant = root.find("tenant")) {
    if (!tenant->is_string() || tenant->string.empty())
      return fail(ServeCode::BadField,
                  "field 'tenant' must be a non-empty string");
    req.tenant = tenant->string;
  }

  std::string error;
  switch (req.command) {
    case Command::Analyze:
    case Command::Secure:
    case Command::Certify:
      if (!take_payload(root, "rsn", req.rsn, error) ||
          !take_payload(root, "verilog", req.verilog, error) ||
          !take_payload(root, "spec", req.spec, error))
        return fail(ServeCode::BadField, error);
      break;
    case Command::Attack: {
      const JsonValue* b = root.find("benchmark");
      if (b == nullptr || !b->is_string() || b->string.empty())
        return fail(ServeCode::BadField,
                    "field 'benchmark' must be a non-empty string");
      req.benchmark = b->string;
      if (const JsonValue* seed = root.find("seed")) {
        if (!seed->is_number() || seed->number < 0 ||
            seed->number != std::floor(seed->number))
          return fail(ServeCode::BadField,
                      "field 'seed' must be a non-negative integer");
        req.seed = static_cast<std::uint64_t>(seed->number);
      }
      break;
    }
    case Command::Ping:
    case Command::StoreStats:
    case Command::Stats:
    case Command::Shutdown:
      break;
  }

  if (const JsonValue* options = root.find("options")) {
    if (!options->is_object())
      return fail(ServeCode::BadField, "field 'options' must be an object");
    auto bool_option = [&](std::string_view key, bool& out) {
      const JsonValue* v = options->find(key);
      if (v == nullptr) return true;
      if (!v->is_bool()) {
        error = "option '" + std::string(key) + "' must be a boolean";
        return false;
      }
      out = v->boolean;
      return true;
    };
    if (!bool_option("structural", req.structural) ||
        !bool_option("no_ternary", req.no_ternary) ||
        !bool_option("verify", req.verify))
      return fail(ServeCode::BadField, error);
  }

  ParseOutcome o;
  o.request = std::move(req);
  return o;
}

namespace {

void append_id(std::string& out, const std::string& id) {
  if (id.empty()) {
    out += "\"id\": null";
  } else {
    out += "\"id\": \"";
    out += json_escape(id);
    out += '"';
  }
}

}  // namespace

std::string ok_reply(const std::string& id, std::string_view result_json,
                     std::string_view server_json) {
  std::string out = "{";
  append_id(out, id);
  out += ", \"ok\": true, \"result\": ";
  out += result_json;
  if (!server_json.empty()) {
    out += ", \"server\": ";
    out += server_json;
  }
  out += "}\n";
  return out;
}

std::string error_reply(const std::string& id, ServeCode code,
                        const std::string& message,
                        std::uint64_t retry_after_ms) {
  std::string out = "{";
  append_id(out, id);
  out += ", \"ok\": false, \"error\": {\"code\": \"";
  out += serve_code_name(code);
  out += "\", \"message\": \"";
  out += json_escape(message);
  out += '"';
  if (retry_after_ms > 0) {
    out += ", \"retry_after_ms\": ";
    out += std::to_string(retry_after_ms);
  }
  out += "}}\n";
  return out;
}

}  // namespace rsnsec::serve
