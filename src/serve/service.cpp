#include "serve/service.hpp"

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "attack/engine.hpp"
#include "benchgen/families.hpp"
#include "benchgen/redteam.hpp"
#include "core/report.hpp"
#include "core/tool.hpp"
#include "dep/analyzer.hpp"
#include "flow/certify.hpp"
#include "netlist/verilog.hpp"
#include "obs/trace.hpp"
#include "rsn/io.hpp"
#include "security/hybrid.hpp"
#include "security/pure.hpp"
#include "security/spec_io.hpp"
#include "store/artifact_store.hpp"
#include "store/dep_cache.hpp"
#include "util/strings.hpp"

namespace rsnsec::serve {

namespace {

/// Log2-bucketed histogram over microseconds (bucket 0 holds value 0,
/// bucket b >= 1 holds [2^(b-1), 2^b)), same layout as obs::Histogram
/// but plain data under the service's stats mutex — tenant stats are
/// per-service, not ambient.
struct LocalHist {
  static constexpr std::size_t kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void record(std::uint64_t v) {
    std::size_t b = 0;
    while ((std::uint64_t{1} << b) <= v && b + 1 < kBuckets) ++b;
    ++buckets[b];
    ++count;
    sum += v;
    if (v > max) max = v;
  }

  /// Upper bound of the bucket holding quantile q (2^b microseconds) —
  /// a factor-of-two estimate, which is all a retry/back-off consumer
  /// needs.
  std::uint64_t quantile(double q) const {
    if (count == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * count);
    if (rank >= count) rank = count - 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank) return b == 0 ? 0 : (std::uint64_t{1} << b);
    }
    return max;
  }

  void write_json(std::ostream& os) const {
    os << "{\"count\": " << count << ", \"mean_us\": "
       << (count ? static_cast<double>(sum) / count : 0.0)
       << ", \"max_us\": " << max << ", \"p50_us\": " << quantile(0.5)
       << ", \"p99_us\": " << quantile(0.99) << "}";
  }
};

struct TenantStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t busy = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  LocalHist latency_us;
  LocalHist queue_wait_us;
};

struct Workload {
  rsn::RsnDocument doc;
  netlist::Netlist circuit;
  security::SecuritySpec spec{1, 1};
};

/// Parses the inline payloads. Throws std::runtime_error with the
/// parser's line-numbered message (surfaced to the client as SRV004).
Workload parse_workload(const Request& req) {
  Workload w;
  {
    std::istringstream is(req.rsn);
    w.doc = rsn::read_rsn(is);
  }
  {
    std::istringstream is(req.verilog);
    netlist::verilog::ParsedCircuit parsed = netlist::verilog::parse(is);
    rsn::apply_attachments(w.doc, parsed.nets);
    w.circuit = std::move(parsed.netlist);
  }
  {
    std::istringstream is(req.spec);
    w.spec = security::read_spec(is, w.doc.module_names);
  }
  return w;
}

std::uint64_t to_us(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(seconds * 1e6);
}

ExecResult run_analyze(const Request& req, Workload& w, ThreadPool& pool,
                       store::ArtifactStore* store) {
  dep::DepOptions dopt;
  if (req.structural) dopt.mode = dep::DepMode::StructuralOnly;
  dopt.ternary_prefilter = !req.no_ternary;
  dopt.pool = &pool;
  dep::DependencyAnalyzer deps(w.circuit, w.doc.network, dopt);
  ExecResult r;
  r.cache_hit = store::run_with_store(store, deps);

  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::HybridAnalyzer hybrid(w.circuit, w.doc.network, deps, w.spec,
                                  tokens);
  security::PureScanAnalyzer pure(w.spec, tokens);
  security::StaticReport st = hybrid.check_static();

  AnalyzeReport rep;
  rep.insecure_logic = st.insecure_logic;
  rep.intra_segment = st.intra_segment;
  rep.pure_violating_pairs = pure.count_violating_pairs(w.doc.network);
  rep.hybrid_violating_pairs = hybrid.count_violating_pairs(w.doc.network);
  rep.violating_registers = hybrid.count_violating_registers(w.doc.network);
  rep.dep_mode = deps.options().mode;
  rep.dep_ternary_prefilter = deps.options().ternary_prefilter;
  rep.dep_partition = deps.options().partition;
  rep.dep_tiled = deps.tiled();
  rep.dep_stats = deps.stats();

  std::ostringstream os;
  write_analyze_json(os, rep);
  r.result_json = os.str();
  return r;
}

ExecResult run_secure(const Request& req, Workload& w, ThreadPool& pool,
                      store::ArtifactStore* store) {
  PipelineOptions popt;
  if (req.structural) popt.dep.mode = dep::DepMode::StructuralOnly;
  popt.dep.ternary_prefilter = !req.no_ternary;
  popt.dep.pool = &pool;
  popt.resolve.pool = &pool;
  popt.store = store;
  if (req.verify) {
    popt.verify_invariants = true;
    popt.verify_certify = true;
    popt.verify_attack = true;
  }
  SecureFlowTool tool(w.circuit, w.doc.network, w.spec, popt);
  PipelineResult result = tool.run();

  // Deterministic subset of the report (the full write_json carries
  // phase timings); the secured network rides along as .rsn text so the
  // client needs no server-side filesystem.
  std::ostringstream os;
  os << "{\"secured\": " << (result.secured ? "true" : "false")
     << ", \"insecure_logic\": "
     << (result.static_report.insecure_logic ? "true" : "false")
     << ", \"intra_segment\": "
     << (result.static_report.intra_segment ? "true" : "false")
     << ", \"initial_violating_registers\": "
     << result.initial_violating_registers << ", \"changes\": {\"pure\": "
     << result.pure.applied_changes
     << ", \"hybrid\": " << result.hybrid.applied_changes
     << ", \"total\": " << result.total_changes() << ", \"log\": [";
  for (std::size_t i = 0; i < result.changes.size(); ++i) {
    if (i) os << ", ";
    os << "{\"note\": \"" << json_escape(result.changes[i].note)
       << "\", \"rewire_operations\": "
       << result.changes[i].rewire_operations << "}";
  }
  os << "]}, \"rsn\": ";
  if (result.secured) {
    std::ostringstream net;
    rsn::write_rsn(net, w.doc.network, w.doc.module_names, &w.circuit);
    os << '"' << json_escape(net.str()) << '"';
  } else {
    os << "null";
  }
  os << "}";

  ExecResult r;
  r.cache_hit = result.dep_stats.sat_calls == 0 && store != nullptr;
  r.result_json = os.str();
  return r;
}

ExecResult run_certify(const Request& req, Workload& w) {
  flow::CertifyOptions opt;
  opt.ternary_refine = !req.no_ternary;
  flow::CertifyResult result =
      flow::certify(w.circuit, w.doc.network, w.spec, opt);
  std::ostringstream os;
  os << "{\"certified\": " << (result.certified() ? "true" : "false")
     << ", \"violating_pairs\": " << result.stats.violating_pairs
     << ", \"nodes\": " << result.stats.nodes
     << ", \"edges\": " << result.stats.edges
     << ", \"ternary_discharged\": " << result.stats.ternary_discharged
     << ", \"diagnostics\": " << result.diagnostics.size() << "}";
  ExecResult r;
  r.result_json = os.str();
  return r;
}

ExecResult run_attack(const Request& req) {
  // Validate the family name before generating anything; an unknown
  // name is the client's mistake (SRV004), with the catalog listed.
  try {
    benchgen::bastion_profile(req.benchmark);
  } catch (const std::exception&) {
    std::string known;
    for (const benchgen::BenchmarkProfile& p : benchgen::bastion_profiles())
      known += (known.empty() ? "" : ", ") + p.name;
    ExecResult r;
    r.code = ServeCode::BadField;
    r.message = "unknown benchmark '" + req.benchmark + "' (try: " + known +
                ")";
    return r;
  }

  benchgen::RedTeamOptions ropt;
  benchgen::RedTeamWorkload w =
      benchgen::make_redteam_workload(req.benchmark, req.seed, ropt);
  attack::AttackOptions aopt;
  aopt.seed = req.seed;
  // Single-threaded, no cross-check: the reply is a deterministic
  // function of (benchmark, seed), replayable for regression diffs.
  aopt.num_threads = 1;
  aopt.cross_check = false;
  attack::AttackReport rep =
      attack::run_attacks(w.circuit, w.doc.network, w.scenarios, aopt);

  std::ostringstream os;
  os << "{\"benchmark\": \"" << json_escape(req.benchmark)
     << "\", \"seed\": " << req.seed << ", \"scenarios\": [";
  for (std::size_t i = 0; i < rep.scenarios.size(); ++i) {
    const attack::ScenarioResult& sc = rep.scenarios[i];
    if (i) os << ", ";
    os << "{\"scenario\": \"" << json_escape(sc.scenario)
       << "\", \"outcomes\": [";
    for (std::size_t j = 0; j < sc.outcomes.size(); ++j) {
      const attack::AttackOutcome& oc = sc.outcomes[j];
      if (j) os << ", ";
      os << "{\"method\": \"" << json_escape(oc.method)
         << "\", \"verdict\": \"" << attack::verdict_name(oc.verdict)
         << "\", \"recovered\": " << (oc.recovered() ? "true" : "false")
         << ", \"leaks\": "
         << (oc.differential.leaks ? "true" : "false")
         << ", \"sat_calls\": " << oc.sat_calls << "}";
    }
    os << "]}";
  }
  os << "], \"recovered\": " << (rep.any_recovered() ? "true" : "false")
     << "}";
  ExecResult r;
  r.result_json = os.str();
  return r;
}

}  // namespace

struct AnalysisService::Stats {
  mutable std::mutex mutex;
  std::map<std::string, TenantStats> tenants;
};

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(ThreadPool::resolve_num_threads(options_.analysis_threads)),
      stats_(std::make_unique<Stats>()) {
  if (!options_.store_dir.empty())
    store_ = std::make_unique<store::ArtifactStore>(options_.store_dir);
  if (obs::TraceSession::active() == nullptr) {
    owned_trace_ = std::make_unique<obs::TraceSession>();
    obs::TraceSession::set_active(owned_trace_.get());
  }
}

AnalysisService::~AnalysisService() {
  if (owned_trace_ != nullptr) obs::TraceSession::set_active(nullptr);
}

ExecResult AnalysisService::execute(const Request& req) {
  obs::TraceSession* trace = obs::TraceSession::active();
  obs::Span span(trace,
                 std::string("serve.") + command_name(req.command));
  Workload w;
  bool needs_workload = req.command == Command::Analyze ||
                        req.command == Command::Secure ||
                        req.command == Command::Certify;
  if (needs_workload) {
    try {
      w = parse_workload(req);
    } catch (const std::exception& e) {
      ExecResult r;
      r.code = ServeCode::BadField;
      r.message = std::string("payload: ") + e.what();
      return r;
    }
  }
  try {
    switch (req.command) {
      case Command::Analyze:
        return run_analyze(req, w, pool_, store_.get());
      case Command::Secure:
        return run_secure(req, w, pool_, store_.get());
      case Command::Certify:
        return run_certify(req, w);
      case Command::Attack:
        return run_attack(req);
      default: {
        ExecResult r;
        r.code = ServeCode::Internal;
        r.message = std::string("command '") + command_name(req.command) +
                    "' is not schedulable";
        return r;
      }
    }
  } catch (const std::exception& e) {
    ExecResult r;
    r.code = ServeCode::Internal;
    r.message = e.what();
    return r;
  }
}

std::string AnalysisService::store_stats_json() const {
  std::ostringstream os;
  if (store_ == nullptr) {
    os << "{\"enabled\": false}";
    return os.str();
  }
  store::DiskStats disk = store_->disk_stats();
  store::StoreCounters c = store_->counters();
  os << "{\"enabled\": true, \"objects\": " << disk.objects
     << ", \"bytes\": " << disk.bytes
     << ", \"quarantined\": " << disk.quarantined << ", \"hits\": " << c.hits
     << ", \"misses\": " << c.misses << "}";
  return os.str();
}

std::string AnalysisService::stats_json() const {
  std::ostringstream os;
  os << "{\"tenants\": {";
  {
    std::lock_guard<std::mutex> lock(stats_->mutex);
    bool first = true;
    for (const auto& [name, t] : stats_->tenants) {
      if (!first) os << ", ";
      first = false;
      os << '"' << json_escape(name) << "\": {\"requests\": " << t.requests
         << ", \"ok\": " << t.ok << ", \"errors\": " << t.errors
         << ", \"busy\": " << t.busy << ", \"cache_hits\": " << t.cache_hits
         << ", \"cache_misses\": " << t.cache_misses << ", \"latency_us\": ";
      t.latency_us.write_json(os);
      os << ", \"queue_wait_us\": ";
      t.queue_wait_us.write_json(os);
      os << "}";
    }
  }
  os << "}, \"queue_depth\": "
     << (queue_probe_ ? queue_probe_() : 0)
     << ", \"analysis_threads\": " << pool_.num_threads() << "}";
  return os.str();
}

void AnalysisService::record_queue_wait(const std::string& tenant,
                                        double seconds) {
  std::lock_guard<std::mutex> lock(stats_->mutex);
  stats_->tenants[tenant].queue_wait_us.record(to_us(seconds));
}

void AnalysisService::record_result(const std::string& tenant,
                                    const ExecResult& result,
                                    double latency_seconds) {
  std::lock_guard<std::mutex> lock(stats_->mutex);
  TenantStats& t = stats_->tenants[tenant];
  ++t.requests;
  if (result.ok()) {
    ++t.ok;
    if (result.cache_hit)
      ++t.cache_hits;
    else
      ++t.cache_misses;
  } else {
    ++t.errors;
  }
  t.latency_us.record(to_us(latency_seconds));
}

void AnalysisService::record_busy(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(stats_->mutex);
  TenantStats& t = stats_->tenants[tenant];
  ++t.requests;
  ++t.busy;
}

void AnalysisService::set_queue_probe(std::function<std::size_t()> probe) {
  queue_probe_ = std::move(probe);
}

}  // namespace rsnsec::serve
