#pragma once

// Fair-share admission + execution for the serve daemon.
//
// Requests enter per-tenant FIFO queues under one global capacity bound;
// `workers` executor threads pull the next job round-robin across
// tenants with pending work. The fairness property: a tenant's k-th
// queued request waits behind at most one request from every *other*
// active tenant per round, never behind another tenant's whole backlog —
// a tenant flooding the daemon only slows itself down. When the global
// bound is hit, submit() returns Busy immediately and the connection
// layer answers with an SRV005 `busy` reply carrying retry_after_ms
// (explicit backpressure instead of unbounded buffering or blocked
// socket readers).
//
// Executor threads run the *request* level of parallelism; the analysis
// inside each request fans out onto the service's shared ThreadPool
// (DepOptions::pool / ResolveOptions::pool), so total analysis threads
// stay bounded no matter how many tenants connect.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace rsnsec::serve {

struct SchedulerOptions {
  /// Concurrent request executors (>= 1).
  std::size_t workers = 2;
  /// Global bound on queued (not yet running) requests across all
  /// tenants; submissions beyond it get Busy.
  std::size_t queue_capacity = 64;
};

class FairScheduler {
 public:
  enum class Admit {
    Accepted,  ///< queued; the job will run
    Busy,      ///< queue full — reply SRV005 with retry_after_ms()
    Stopping,  ///< drain in progress — reply SRV006
  };

  /// A job receives the time it spent queued (seconds), for the
  /// per-tenant queue-wait histograms.
  using Job = std::function<void(double queue_wait_seconds)>;

  explicit FairScheduler(SchedulerOptions options);
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  Admit submit(const std::string& tenant, Job job);

  /// Graceful shutdown: reject new submissions, run everything already
  /// queued, wait for in-flight jobs, join the executors. Idempotent.
  void drain_and_stop();

  std::size_t queue_depth() const;
  std::size_t capacity() const { return options_.queue_capacity; }
  std::size_t workers() const { return options_.workers; }

  /// Suggested client back-off for a Busy reply: grows with the queue
  /// backlog per executor, capped at one second.
  std::uint64_t retry_after_ms() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Job fn;
    Clock::time_point enqueued;
  };
  struct TenantQueue {
    std::string name;
    std::deque<Pending> items;
  };

  void worker_loop();

  SchedulerOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for jobs / stop
  std::condition_variable idle_cv_;   // drain waits for empty + idle
  std::vector<TenantQueue> queues_;   // grows per tenant, never shrinks
  std::unordered_map<std::string, std::size_t> tenant_index_;
  std::size_t cursor_ = 0;            // round-robin position
  std::size_t total_queued_ = 0;
  std::size_t in_flight_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rsnsec::serve
