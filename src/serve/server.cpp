#include "serve/server.hpp"

#include <csignal>
#include <chrono>
#include <utility>

#include "obs/trace.hpp"

namespace rsnsec::serve {

namespace {
volatile std::sig_atomic_t g_signal_stop = 0;
void on_signal(int) { g_signal_stop = 1; }
}  // namespace

void install_signal_handlers() {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

bool signal_stop_requested() { return g_signal_stop != 0; }

/// One accepted connection. Jobs in the scheduler keep it alive through
/// shared_ptr; the write mutex serializes reply frames from concurrent
/// executors with the reader's inline error replies.
struct Server::Conn {
  explicit Conn(Socket s) : sock(std::move(s)) {}

  /// Best-effort reply: a peer that disconnected mid-request simply
  /// loses the reply — the daemon must not die on EPIPE, and there is
  /// nobody left to report the error to.
  void send(const std::string& frame) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!alive) return;
    try {
      sock.write_all(frame);
    } catch (const SocketError&) {
      alive = false;
    }
  }

  /// Unblocks a reader stuck in read_some() during shutdown. Takes the
  /// write mutex so the fd state never races a concurrent send/close.
  void kick() {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (sock.valid()) sock.shutdown_both();
  }

  Socket sock;
  std::mutex write_mutex;
  bool alive = true;
};

Server::Server(AnalysisService& service, ServerOptions options)
    : service_(service),
      options_(options),
      scheduler_(SchedulerOptions{options.workers, options.queue_capacity}) {
  service_.set_queue_probe([this] { return scheduler_.queue_depth(); });
}

Server::~Server() {
  request_stop();
  scheduler_.drain_and_stop();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const std::shared_ptr<Conn>& c : conns_) c->kick();
  }
  for (std::thread& t : reader_threads_)
    if (t.joinable()) t.join();
  service_.set_queue_probe({});
}

void Server::bind() {
  if (listener_.valid()) return;
  if (!options_.socket_path.empty())
    listener_ = Listener::listen_unix(options_.socket_path);
  else
    listener_ = Listener::listen_tcp(
        static_cast<std::uint16_t>(options_.port < 0 ? 0 : options_.port));
}

void Server::serve() {
  bind();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (signal_stop_requested()) {
      request_stop();
      break;
    }
    std::optional<Socket> accepted = listener_.accept(200);
    if (!accepted) continue;
    auto conn = std::make_shared<Conn>(std::move(*accepted));
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    reader_threads_.emplace_back(
        [this, conn]() mutable { reader_loop(std::move(conn)); });
  }

  // Graceful drain: no new connections or admissions, but every request
  // already admitted runs to completion and gets its reply before the
  // readers are kicked.
  listener_.close();
  draining_.store(true, std::memory_order_release);
  scheduler_.drain_and_stop();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const std::shared_ptr<Conn>& c : conns_) c->kick();
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers)
    if (t.joinable()) t.join();
  obs::bump("serve.shutdowns");
}

void Server::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  obs::set_current_thread_name("serve-reader");
  LineReader reader(conn->sock, options_.max_request_bytes);
  try {
    while (std::optional<LineReader::Line> line = reader.next()) {
      if (line->oversize) {
        conn->send(error_reply(
            "", ServeCode::Oversize,
            "request exceeds " + std::to_string(options_.max_request_bytes) +
                " bytes"));
        continue;
      }
      if (line->text.empty()) continue;  // blank keep-alive line
      handle_line(conn, line->text);
    }
  } catch (const SocketError&) {
    // Abrupt disconnect mid-read; nothing to reply to.
  }
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  conn->alive = false;
  conn->sock.close();
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& text) {
  ParseOutcome outcome = parse_request(text);
  if (!outcome.ok()) {
    conn->send(error_reply("", outcome.code, outcome.message));
    return;
  }
  Request req = std::move(*outcome.request);
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  obs::bump("serve.requests");

  if (draining_.load(std::memory_order_acquire) &&
      req.command != Command::Ping && req.command != Command::Stats) {
    conn->send(error_reply(req.id, ServeCode::ShuttingDown,
                           "server is draining"));
    return;
  }

  // Cheap introspection runs inline on the reader thread; only analysis
  // work goes through admission control.
  switch (req.command) {
    case Command::Ping:
      conn->send(ok_reply(req.id, "\"pong\""));
      return;
    case Command::Stats:
      conn->send(ok_reply(req.id, service_.stats_json()));
      return;
    case Command::StoreStats:
      conn->send(ok_reply(req.id, service_.store_stats_json()));
      return;
    case Command::Shutdown:
      conn->send(ok_reply(req.id, "\"draining\""));
      request_stop();
      return;
    default:
      break;
  }

  auto job = [this, conn, req](double queue_wait_seconds) {
    service_.record_queue_wait(req.tenant, queue_wait_seconds);
    auto t0 = std::chrono::steady_clock::now();
    ExecResult result = service_.execute(req);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    service_.record_result(req.tenant, result, seconds);
    if (result.ok()) {
      // Wall clock and cache provenance live in the separate "server"
      // object: the "result" value stays a deterministic function of the
      // request, byte-identical to a one-shot CLI run.
      std::string server_json =
          "{\"cache_hit\": " +
          std::string(result.cache_hit ? "true" : "false") +
          ", \"seconds\": " + std::to_string(seconds) +
          ", \"queue_wait_seconds\": " +
          std::to_string(queue_wait_seconds) + "}";
      conn->send(ok_reply(req.id, result.result_json, server_json));
    } else {
      conn->send(error_reply(req.id, result.code, result.message));
    }
  };

  switch (scheduler_.submit(req.tenant, std::move(job))) {
    case FairScheduler::Admit::Accepted:
      break;
    case FairScheduler::Admit::Busy:
      service_.record_busy(req.tenant);
      obs::bump("serve.busy_rejections");
      conn->send(error_reply(req.id, ServeCode::Busy,
                             "admission queue full (capacity " +
                                 std::to_string(scheduler_.capacity()) + ")",
                             scheduler_.retry_after_ms()));
      break;
    case FairScheduler::Admit::Stopping:
      conn->send(error_reply(req.id, ServeCode::ShuttingDown,
                             "server is draining"));
      break;
  }
}

}  // namespace rsnsec::serve
