#pragma once

// Wire protocol of `rsnsec serve`: line-delimited JSON over a stream
// socket. One request per \n-terminated line, one JSON reply line per
// request (replies carry the request id, so pipelined requests on one
// connection may be answered out of order as the scheduler finishes
// them). Malformed input never crashes the daemon — every failure mode
// maps to a stable SRV code:
//
//   SRV001  malformed frame (not valid JSON / not an object)
//   SRV002  oversize request (line longer than --max-request-bytes)
//   SRV003  unknown command
//   SRV004  bad or missing field / unparsable payload
//   SRV005  server busy (admission queue full) — carries retry_after_ms
//   SRV006  shutting down (drain in progress, no new work accepted)
//   SRV007  internal error while executing the request
//
// Payloads (network, circuit, specification) travel inline as strings
// in the repo's own text formats (.rsn / structural Verilog / .spec),
// so the daemon never touches the client's filesystem.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rsnsec::serve {

enum class ServeCode : std::uint8_t {
  Ok = 0,
  MalformedFrame = 1,  // SRV001
  Oversize = 2,        // SRV002
  UnknownCommand = 3,  // SRV003
  BadField = 4,        // SRV004
  Busy = 5,            // SRV005
  ShuttingDown = 6,    // SRV006
  Internal = 7,        // SRV007
};

/// Stable wire spelling ("SRV001"...); "OK" for ServeCode::Ok.
const char* serve_code_name(ServeCode code);

/// Commands the daemon executes.
enum class Command : std::uint8_t {
  Ping,
  Analyze,
  Secure,
  Certify,
  Attack,
  StoreStats,
  Stats,
  Shutdown,
};

const char* command_name(Command c);

/// One parsed request.
struct Request {
  Command command = Command::Ping;
  /// Echoed verbatim in the reply ("" = client sent none; echoed as
  /// null). Correlation is the client's job — the server never
  /// interprets ids.
  std::string id;
  /// Fair-share scheduling key; requests without a tenant share the
  /// "default" bucket.
  std::string tenant = "default";

  /// Inline design payloads (analyze / secure / certify).
  std::string rsn;
  std::string verilog;
  std::string spec;

  /// Attack request parameters.
  std::string benchmark;
  std::uint64_t seed = 1;

  /// Analysis options (subset of the CLI's flags).
  bool structural = false;
  bool no_ternary = false;
  bool verify = false;
};

/// Outcome of parsing one frame: a request, or an SRV error to reply
/// with. `code == Ok` iff `request` is set.
struct ParseOutcome {
  std::optional<Request> request;
  ServeCode code = ServeCode::Ok;
  std::string message;

  bool ok() const { return request.has_value(); }
};

/// Parses one frame (the line text, without the terminator). Never
/// throws: hostile bytes come back as MalformedFrame / UnknownCommand /
/// BadField outcomes.
ParseOutcome parse_request(std::string_view line);

/// Reply rendering. Every reply is exactly one line ending in '\n'.
/// `result_json` / `server_json` must be well-formed JSON values (the
/// callers emit them with the same escaped writers the reports use).
std::string ok_reply(const std::string& id, std::string_view result_json,
                     std::string_view server_json = {});
std::string error_reply(const std::string& id, ServeCode code,
                        const std::string& message,
                        std::uint64_t retry_after_ms = 0);

}  // namespace rsnsec::serve
