#pragma once

// Execution + shared-state layer of the serve daemon. One AnalysisService
// owns everything every tenant shares:
//
//   - one ThreadPool — each request's dependency analysis and resolution
//     fan out onto it (DepOptions::pool / ResolveOptions::pool), so total
//     analysis threads stay bounded regardless of tenant count;
//   - one ArtifactStore (optional) — repeated designs warm-start across
//     tenants: the second analyze of a design makes zero SAT calls no
//     matter who sent the first;
//   - one obs::TraceSession — installed process-wide if the caller did
//     not already install one (--trace/--metrics), so per-request spans
//     and counters accumulate either way;
//   - per-tenant counters (requests, errors, busy rejections, cache
//     hits) and log2 latency/queue-wait histograms, reported by the
//     `stats` request.
//
// execute() is fully re-entrant: any number of scheduler workers may run
// requests concurrently. All per-request state (parsed workload,
// analyzer, result text) is local; results are bit-identical to one-shot
// CLI runs because the emitters are shared and carry no timings (wall
// clock lives only in the separate "server" reply object and the stats).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/protocol.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::obs {
class TraceSession;
}
namespace rsnsec::store {
class ArtifactStore;
}

namespace rsnsec::serve {

struct ServiceOptions {
  /// Artifact-store directory shared by all tenants ("" = no store;
  /// every request recomputes).
  std::string store_dir;
  /// Threads of the shared analysis pool (0 = auto: RSNSEC_JOBS, else
  /// hardware concurrency).
  std::size_t analysis_threads = 0;
};

/// Outcome of executing one heavy request.
struct ExecResult {
  ServeCode code = ServeCode::Ok;
  std::string message;          ///< error detail when code != Ok
  std::string result_json;      ///< single-line JSON value when code == Ok
  bool cache_hit = false;       ///< dependency analysis served from store

  bool ok() const { return code == ServeCode::Ok; }
};

class AnalysisService {
 public:
  explicit AnalysisService(ServiceOptions options);
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Runs one analyze / secure / certify / attack request. Never throws:
  /// unparsable payloads come back as BadField (SRV004), execution
  /// failures as Internal (SRV007).
  ExecResult execute(const Request& request);

  /// Result bodies of the cheap introspection commands (handled inline
  /// on the connection thread, bypassing the scheduler).
  std::string store_stats_json() const;
  std::string stats_json() const;

  /// Per-tenant accounting, called by the connection/scheduler layer.
  void record_queue_wait(const std::string& tenant, double seconds);
  void record_result(const std::string& tenant, const ExecResult& result,
                     double latency_seconds);
  void record_busy(const std::string& tenant);

  /// Lets stats_json() report the live admission-queue depth without a
  /// dependency cycle onto the scheduler.
  void set_queue_probe(std::function<std::size_t()> probe);

  ThreadPool& pool() { return pool_; }
  store::ArtifactStore* store() { return store_.get(); }

 private:
  struct Stats;

  ServiceOptions options_;
  ThreadPool pool_;
  std::unique_ptr<store::ArtifactStore> store_;
  /// Session this service installed (null when the caller already had
  /// one active — e.g. the CLI's --trace/--metrics scope).
  std::unique_ptr<obs::TraceSession> owned_trace_;
  std::unique_ptr<Stats> stats_;
  std::function<std::size_t()> queue_probe_;
};

}  // namespace rsnsec::serve
