// Design-choice ablation (not from the paper): how the repair-candidate
// selection strategy of the resolution loop affects repair quality and
// runtime. [17] evaluates multiple candidates per violation and applies
// the cheapest; BestGlobal reproduces that, FirstImproving/PreferScanIn
// trade trial-propagation cost against the number of applied changes.

#include <iomanip>
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace rsnsec;
  bench::SweepOptions opt = bench::sweep_options_from_env();
  const std::vector<std::string> names = {
      "BasicSCB", "Mingle", "TreeFlatEx", "q12710", "MBIST_2_5_5",
      "MBIST_5_5_5"};
  struct Policy {
    const char* name;
    security::ResolutionPolicy policy;
  };
  const Policy policies[] = {
      {"BestGlobal", security::ResolutionPolicy::BestGlobal},
      {"FirstImproving", security::ResolutionPolicy::FirstImproving},
      {"PreferScanIn", security::ResolutionPolicy::PreferScanIn},
  };

  std::cout << "=== Ablation: resolution candidate-selection policy ===\n\n";
  std::cout << std::left << std::setw(16) << "Benchmark";
  for (const Policy& p : policies)
    std::cout << std::right << std::setw(11) << p.name << std::setw(9)
              << "t[s]";
  std::cout << "\n";

  std::vector<double> total_changes(std::size(policies), 0.0);
  std::vector<double> total_time(std::size(policies), 0.0);
  for (const std::string& name : names) {
    std::vector<double> changes(std::size(policies), 0.0);
    std::vector<double> time(std::size(policies), 0.0);
    std::vector<int> runs(std::size(policies), 0);
    for (int ci = 0; ci < opt.circuits_per_benchmark; ++ci) {
      bench::Instance inst = bench::make_instance(name, opt, ci);
      for (int si = 0; si < opt.specs_per_circuit; ++si) {
        Rng spec_rng(opt.base_seed * 104729 +
                     static_cast<std::uint64_t>(ci) * 1000 +
                     static_cast<std::uint64_t>(si));
        security::SecuritySpec spec = benchgen::random_spec(
            inst.doc.module_names.size(), opt.spec, spec_rng);
        for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
          rsn::Rsn network = inst.doc.network;
          PipelineOptions po;
          po.resolution = policies[pi].policy;
          SecureFlowTool tool(inst.circuit, network, spec, po);
          PipelineResult r = tool.run();
          if (!r.secured || r.initial_violating_registers == 0) continue;
          changes[pi] += r.total_changes();
          time[pi] += r.t_pure + r.t_hybrid;
          ++runs[pi];
        }
      }
    }
    std::cout << std::left << std::setw(16) << name << std::fixed;
    for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
      double avg = runs[pi] ? changes[pi] / runs[pi] : 0.0;
      double t = runs[pi] ? time[pi] / runs[pi] : 0.0;
      std::cout << std::right << std::setprecision(1) << std::setw(11)
                << avg << std::setprecision(4) << std::setw(9) << t;
      total_changes[pi] += changes[pi];
      total_time[pi] += time[pi];
    }
    std::cout << "\n";
  }

  std::cout << "\nTotals (changes / resolve-time):\n";
  for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
    std::cout << "  " << std::left << std::setw(16) << policies[pi].name
              << std::fixed << std::setprecision(0) << total_changes[pi]
              << " changes, " << std::setprecision(3) << total_time[pi]
              << " s\n";
  }
  std::cout << "\nExpected: BestGlobal applies the fewest changes; the\n"
               "greedy policies run faster per violation but may cut more.\n";
  return 0;
}
