// Baseline comparison (Sec. I of the paper): access *filters* ([13],
// [14]) forbid insecure scan configurations instead of transforming the
// network. Two costs of that approach, quantified here on the same
// workloads as the Table I harness:
//
//  1. Lost access: registers inseparable from a violating partner must
//     be made permanently inaccessible — "forcing a filter to make every
//     such pair inaccessible for debug and diagnosis. In contrast the
//     proposed method guarantees to include all scan flip-flops in the
//     final secure reconfigurable scan network."
//  2. Hybrid blindness: pure-path filters cannot see violations through
//     the circuit logic at all; networks they fully "protect" still leak
//     over hybrid paths.

#include <iomanip>
#include <iostream>

#include "bench/common.hpp"
#include "rsn/access.hpp"
#include "security/filter.hpp"
#include "security/hybrid.hpp"

int main() {
  using namespace rsnsec;
  bench::SweepOptions opt = bench::sweep_options_from_env();
  const std::vector<std::string> names = {
      "BasicSCB", "Mingle",      "TreeFlat",    "TreeBalanced",
      "q12710",   "MBIST_1_5_5", "MBIST_2_5_5", "MBIST_5_5_5"};

  std::cout << "=== Baseline: access filter vs. RSN transformation ===\n\n";
  std::cout << std::left << std::setw(16) << "Benchmark" << std::right
            << std::setw(7) << "#Reg" << std::setw(14) << "filter_lock"
            << std::setw(14) << "lock[%]" << std::setw(14) << "hyb_missed"
            << std::setw(12) << "our_chg" << std::setw(13) << "our_access"
            << "\n";

  double total_regs = 0, total_locked = 0;
  int runs_total = 0, runs_hybrid_missed = 0;
  for (const std::string& name : names) {
    double locked = 0, regs = 0, our_changes = 0;
    int runs = 0, hybrid_missed = 0;
    bool all_accessible = true;
    for (int ci = 0; ci < opt.circuits_per_benchmark; ++ci) {
      bench::Instance inst = bench::make_instance(name, opt, ci);
      for (int si = 0; si < opt.specs_per_circuit; ++si) {
        Rng spec_rng(opt.base_seed * 104729 +
                     static_cast<std::uint64_t>(ci) * 1000 +
                     static_cast<std::uint64_t>(si));
        security::SecuritySpec spec = benchgen::random_spec(
            inst.doc.module_names.size(), opt.spec, spec_rng);

        rsn::Rsn network = inst.doc.network;
        SecureFlowTool tool(inst.circuit, network, spec, {});
        PipelineResult result = tool.run();
        if (!result.static_report.clean() ||
            result.initial_violating_registers == 0)
          continue;

        // Filter baseline on the ORIGINAL network.
        security::TokenTable tokens(spec, spec.num_modules());
        security::AccessFilterBaseline filter(inst.doc.network, spec,
                                              tokens);
        security::FilterReport fr = filter.analyze();
        locked += static_cast<double>(fr.inaccessible.size());
        regs += static_cast<double>(inst.doc.network.registers().size());

        // Hybrid blindness: does the original network have hybrid
        // violations (which a pure filter does not model)?
        dep::DependencyAnalyzer deps(inst.circuit, inst.doc.network, {});
        deps.run();
        security::HybridAnalyzer hybrid(inst.circuit, inst.doc.network,
                                        deps, spec, tokens);
        security::PureScanAnalyzer pure(spec, tokens);
        std::size_t hybrid_pairs =
            hybrid.count_violating_pairs(inst.doc.network);
        std::size_t pure_pairs =
            pure.count_violating_pairs(inst.doc.network);
        if (hybrid_pairs > pure_pairs) ++hybrid_missed;

        // Our transformation: all registers stay accessible.
        our_changes += result.total_changes();
        rsn::AccessPlanner planner(network);
        all_accessible &= planner.all_registers_accessible();
        ++runs;
      }
    }
    if (runs == 0) continue;
    std::cout << std::left << std::setw(16) << name << std::right
              << std::setw(7) << static_cast<long>(regs / runs)
              << std::fixed << std::setprecision(1) << std::setw(14)
              << locked / runs << std::setw(14)
              << (regs > 0 ? 100.0 * locked / regs : 0.0) << std::setw(14)
              << hybrid_missed << std::setw(12) << our_changes / runs
              << std::setw(13) << (all_accessible ? "100%" : "LOST!")
              << "\n";
    total_regs += regs;
    total_locked += locked;
    runs_total += runs;
    runs_hybrid_missed += hybrid_missed;
  }

  std::cout << "\nFilter baseline locks out " << std::fixed
            << std::setprecision(1)
            << (total_regs > 0 ? 100.0 * total_locked / total_regs : 0.0)
            << "% of registers on average; the transformation keeps 100% "
               "accessible.\n";
  std::cout << "Runs where a pure-path filter misses hybrid-only "
               "violations entirely: "
            << runs_hybrid_missed << " of " << runs_total << "\n";
  return 0;
}
