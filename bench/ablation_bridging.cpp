// Sec. III-A.2 ablation: bridging dependencies over internal flip-flops.
// The paper reports that bridging reduces the number of denoted
// flip-flops by 41.72% and the number of denoted dependencies by 65.37%
// on average, and that the (cubic) multi-cycle closure becomes feasible
// only on the reduced relation.

#include <iomanip>
#include <iostream>

#include "bench/common.hpp"
#include "dep/analyzer.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace rsnsec;
  bench::SweepOptions opt = bench::sweep_options_from_env();
  const std::vector<std::string> names = {
      "BasicSCB", "Mingle",      "TreeFlat",    "TreeBalanced",
      "q12710",   "MBIST_1_5_5", "MBIST_2_5_5", "MBIST_5_5_5"};

  std::cout << "=== Sec. III-A.2 ablation: bridging internal flip-flops "
               "===\n\n";
  std::cout << std::left << std::setw(16) << "Benchmark" << std::right
            << std::setw(9) << "#FF" << std::setw(11) << "#internal"
            << std::setw(13) << "FF_red[%]" << std::setw(13) << "dep_red[%]"
            << std::setw(14) << "t_bridge[s]" << std::setw(14)
            << "t_plain[s]" << "\n";

  double ff_red_sum = 0.0, dep_red_sum = 0.0;
  int count = 0;
  for (const std::string& name : names) {
    for (int ci = 0; ci < opt.circuits_per_benchmark; ++ci) {
      bench::Instance inst = bench::make_instance(name, opt, ci);

      Stopwatch sw;
      dep::DependencyAnalyzer bridged(inst.circuit, inst.doc.network, {});
      bridged.run();
      double t_bridged = sw.seconds();

      dep::DepOptions plain_opt;
      plain_opt.bridge_internal = false;
      sw.restart();
      dep::DependencyAnalyzer plain(inst.circuit, inst.doc.network,
                                    plain_opt);
      plain.run();
      double t_plain = sw.seconds();

      const dep::DepStats& s = bridged.stats();
      // Signed differences: bridging a high-fanin node could in principle
      // add more composed pairs than it removes.
      double ff_red =
          s.denoted_ffs_before > 0
              ? 100.0 *
                    (static_cast<double>(s.denoted_ffs_before) -
                     static_cast<double>(s.denoted_ffs_after)) /
                    static_cast<double>(s.denoted_ffs_before)
              : 0.0;
      double dep_red =
          s.deps_before_bridging > 0
              ? 100.0 *
                    (static_cast<double>(s.deps_before_bridging) -
                     static_cast<double>(s.deps_after_bridging)) /
                    static_cast<double>(s.deps_before_bridging)
              : 0.0;
      ff_red_sum += ff_red;
      dep_red_sum += dep_red;
      ++count;
      if (ci == 0) {
        std::cout << std::left << std::setw(16) << name << std::right
                  << std::setw(9) << s.circuit_ffs << std::setw(11)
                  << s.internal_ffs << std::fixed << std::setprecision(2)
                  << std::setw(13) << ff_red << std::setw(13) << dep_red
                  << std::setprecision(3) << std::setw(14) << t_bridged
                  << std::setw(14) << t_plain << "\n";
      }
    }
  }
  std::cout << "\nAverage reduction in denoted flip-flops: " << std::fixed
            << std::setprecision(2) << ff_red_sum / count
            << "%   (paper: 41.72%)\n";
  std::cout << "Average reduction in denoted dependencies: "
            << dep_red_sum / count << "%   (paper: 65.37%)\n";
  return 0;
}
