// Reproduces the BASTION block of Table I: per-benchmark structural
// counts, registers with security violations, applied changes (pure /
// hybrid / total) and per-phase runtimes, averaged over random circuits
// and random security specifications (Sec. IV).
//
// Networks are scaled down by default so the harness runs in minutes;
// set RSNSEC_TARGET_FFS / RSNSEC_CIRCUITS / RSNSEC_SPECS to enlarge.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace rsnsec;
  bench::TraceFromEnv trace;  // RSNSEC_TRACE=/path.json, RSNSEC_METRICS=1
  bench::SweepOptions opt = bench::sweep_options_from_env();

  std::cout << "=== Table I reproduction: BASTION benchmarks ===\n";
  std::cout << "sweep: " << opt.circuits_per_benchmark << " circuits x "
            << opt.specs_per_circuit << " specs, networks scaled to <= "
            << opt.target_ffs << " scan FFs\n\n";

  std::vector<std::string> names;
  for (const benchgen::BenchmarkProfile& p : benchgen::bastion_profiles())
    names.push_back(p.name);

  std::vector<BenchRow> rows;
  print_table_header(std::cout);
  for (const std::string& name : names) {
    BenchRow row = bench::run_benchmark(name, opt);
    print_table_row(std::cout, row);
    rows.push_back(row);
  }
  print_table_summary(std::cout, rows);
  bench::print_paper_reference(std::cout, names);

  std::cout << "\nShape checks (expected from the paper):\n"
            << "  - pure changes < total changes on every benchmark with "
               "violations\n"
            << "  - dependency calculation dominates total runtime for "
               "FF-heavy networks\n"
            << "  - FlexScan: cheap dependencies, expensive "
               "detection/correction (serial muxes)\n";
  return 0;
}
