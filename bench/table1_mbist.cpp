// Reproduces the Industrial block of Table I: the nine scalable MBIST
// networks MBIST_n_m_o (n cores x m controllers x o memories, Sec. IV-A),
// with the same columns as the BASTION block.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace rsnsec;
  bench::TraceFromEnv trace;  // RSNSEC_TRACE=/path.json, RSNSEC_METRICS=1
  bench::SweepOptions opt = bench::sweep_options_from_env();

  std::cout << "=== Table I reproduction: industrial MBIST benchmarks ===\n";
  std::cout << "sweep: " << opt.circuits_per_benchmark << " circuits x "
            << opt.specs_per_circuit << " specs, networks scaled to <= "
            << opt.target_ffs << " scan FFs\n\n";

  std::vector<std::string> names;
  for (const auto& cfg : benchgen::mbist_configs()) {
    names.push_back("MBIST_" + std::to_string(cfg[0]) + "_" +
                    std::to_string(cfg[1]) + "_" + std::to_string(cfg[2]));
  }

  std::vector<BenchRow> rows;
  print_table_header(std::cout);
  for (const std::string& name : names) {
    BenchRow row = bench::run_benchmark(name, opt);
    print_table_row(std::cout, row);
    rows.push_back(row);
  }
  print_table_summary(std::cout, rows);
  bench::print_paper_reference(std::cout, names);

  std::cout << "\nShape checks (expected from the paper):\n"
            << "  - hybrid changes dominate pure changes on MBIST-style "
               "networks\n"
            << "  - runtime grows with n*m*o; the largest configuration "
               "dominates\n";
  return 0;
}
