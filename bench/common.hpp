#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "benchgen/circuit.hpp"
#include "benchgen/families.hpp"
#include "benchgen/specgen.hpp"
#include "core/report.hpp"
#include "core/tool.hpp"
#include "store/artifact_store.hpp"

namespace rsnsec::bench {

/// Sweep parameters of the Table I reproduction. The paper uses 10 random
/// circuits x 16 random specifications per benchmark on server hardware;
/// the defaults here are scaled down so the whole harness runs in minutes
/// (override via environment: RSNSEC_CIRCUITS, RSNSEC_SPECS,
/// RSNSEC_TARGET_FFS).
struct SweepOptions {
  int circuits_per_benchmark = 3;   ///< paper: 10
  int specs_per_circuit = 6;        ///< paper: 16
  /// Networks are scaled so their scan-FF count is at most this value.
  std::size_t target_ffs = 400;
  /// ... and their register count is at most this value. Registers and
  /// FFs scale independently: FF-heavy benchmarks (q12710, a586710, ...)
  /// keep their register structure while register widths shrink.
  std::size_t target_regs = 48;
  std::uint64_t base_seed = 1;
  /// Concurrent (circuit, spec) runs per benchmark (0 = auto from
  /// RSNSEC_JOBS / hardware concurrency). Runs are independent — each
  /// works on its own network copy — and the averages are accumulated in
  /// (circuit, spec) order, so the reported row is identical for any
  /// value.
  std::size_t jobs = 0;
  benchgen::SpecOptions spec;
  PipelineOptions pipeline;
};

/// Reads sweep options from the environment (falling back to defaults).
/// When RSNSEC_STORE names a directory, pipeline.store is pointed at a
/// process-lifetime ArtifactStore rooted there (see store_from_env), so
/// a warm sweep serves every dependency analysis from the cache.
SweepOptions sweep_options_from_env();

/// Process-lifetime artifact store rooted at $RSNSEC_STORE, opened on
/// first call; nullptr when the variable is unset or the directory
/// cannot be created (a broken store must not fail a benchmark run —
/// the sweep falls back to recomputing).
store::ArtifactStore* store_from_env();

/// A generated (network, circuit) instance ready for specification runs.
struct Instance {
  rsn::RsnDocument doc;
  netlist::Netlist circuit;
};

/// Generates instance `circuit_idx` of the named benchmark ("BasicSCB"
/// ... "FlexScan" or "MBIST_n_m_o").
Instance make_instance(const std::string& name, const SweepOptions& opt,
                       int circuit_idx);

/// Published Table I reference values for side-by-side printing.
struct PaperRow {
  const char* name;
  double viol_regs, pure, hybrid, total;  ///< columns 5-8
  double t_dep, t_pure, t_hybrid, t_total;
};

/// Reference row for `name`, if the paper reports one.
std::optional<PaperRow> paper_row(const std::string& name);

/// Runs the full sweep for one benchmark and returns the averaged row.
/// Specs whose runs find no violation, or whose circuit logic is
/// statically insecure, are skipped and counted (the paper averages
/// "over all security specifications, where a security violation
/// occurred, but the circuit logic itself is not insecure").
BenchRow run_benchmark(const std::string& name, const SweepOptions& opt);

/// Prints the paper's reference block under a reproduced table.
void print_paper_reference(std::ostream& os,
                           const std::vector<std::string>& names);

/// Env-driven tracing for the benchmark harnesses: when RSNSEC_TRACE
/// names a file, installs a process-wide obs::TraceSession for the
/// lifetime of this object and writes the chrome://tracing JSON there on
/// destruction; when RSNSEC_METRICS is set (any non-empty value), prints
/// the counter/span summary to stderr as well. A no-op when neither
/// variable is set.
class TraceFromEnv {
 public:
  TraceFromEnv();
  ~TraceFromEnv();

  TraceFromEnv(const TraceFromEnv&) = delete;
  TraceFromEnv& operator=(const TraceFromEnv&) = delete;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace rsnsec::bench
