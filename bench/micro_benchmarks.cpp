// Engineering micro-benchmarks (not from the paper): throughput of the
// substrates that dominate the Table I runtimes — the SAT solver, the
// cone dependence check, the multi-cycle closure and the security
// propagations.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <sstream>
#include <thread>

#include "benchgen/circuit.hpp"
#include "benchgen/families.hpp"
#include "benchgen/running_example.hpp"
#include "benchgen/specgen.hpp"
#include "dep/analyzer.hpp"
#include "flow/certify.hpp"
#include "netlist/cone_check.hpp"
#include "rsn/access.hpp"
#include "rsn/csu_sim.hpp"
#include "rsn/icl.hpp"
#include "sat/solver.hpp"
#include "security/filter.hpp"
#include "security/hybrid.hpp"
#include "security/pure.hpp"
#include "store/artifact_store.hpp"
#include "store/dep_cache.hpp"
#include "util/dep_matrix.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rsnsec;

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> x(
        static_cast<std::size_t>(holes + 1),
        std::vector<sat::Var>(static_cast<std::size_t>(holes)));
    for (auto& row : x)
      for (sat::Var& v : row) v = s.new_var();
    for (int p = 0; p <= holes; ++p) {
      sat::Clause c;
      for (int h = 0; h < holes; ++h) c.push_back(sat::mk_lit(x[p][h]));
      s.add_clause(std::move(c));
    }
    for (int h = 0; h < holes; ++h)
      for (int p1 = 0; p1 <= holes; ++p1)
        for (int p2 = p1 + 1; p2 <= holes; ++p2)
          s.add_clause(~sat::mk_lit(x[p1][h]), ~sat::mk_lit(x[p2][h]));
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(7)->Arg(8);

void BM_SatIncremental(benchmark::State& state) {
  // The dep-engine query pattern: one wide cone CNF, every flip-flop leaf
  // probed under assumptions. Arg toggles the incremental machinery
  // (verdict cache, trail-prefix reuse, Unsat-core reuse, model rotation)
  // so the committed JSON keeps both sides of the comparison.
  const bool incremental = state.range(0) != 0;
  constexpr std::size_t kWidth = 96;
  netlist::Netlist nl;
  std::vector<netlist::NodeId> ffs;
  for (std::size_t i = 0; i < kWidth; ++i) {
    netlist::NodeId f = nl.add_ff("f" + std::to_string(i));
    nl.set_ff_input(f, f);
    ffs.push_back(f);
  }
  netlist::NodeId acc = ffs[0];
  for (std::size_t i = 1; i < kWidth; ++i) {
    acc = nl.add_gate(i % 2 ? netlist::GateType::Xor
                            : netlist::GateType::And,
                      {acc, ffs[i]});
  }
  netlist::NodeId t = nl.add_ff("t");
  nl.set_ff_input(t, acc);
  netlist::Cone cone = nl.extract_next_state_cone(t);
  netlist::ConeCheckOptions opts;
  opts.incremental = incremental;
  std::uint64_t solves = 0;
  for (auto _ : state) {
    netlist::ConeDependenceChecker chk(nl, cone, opts);
    for (std::size_t i = 0; i < cone.leaves.size(); ++i)
      benchmark::DoNotOptimize(chk.query(i));
    solves = chk.solver_solves();
  }
  state.counters["solver_solves"] = static_cast<double>(solves);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWidth));
}
BENCHMARK(BM_SatIncremental)->Arg(0)->Arg(1);

void BM_ConeDependenceCheck(benchmark::State& state) {
  // A wide AND-XOR cone; every leaf requires a SAT query when the random
  // prefilter is bypassed.
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  netlist::Netlist nl;
  std::vector<netlist::NodeId> ffs;
  for (std::size_t i = 0; i < width; ++i) {
    netlist::NodeId f = nl.add_ff("f" + std::to_string(i));
    nl.set_ff_input(f, f);
    ffs.push_back(f);
  }
  netlist::NodeId acc = ffs[0];
  for (std::size_t i = 1; i < width; ++i) {
    acc = nl.add_gate(i % 2 ? netlist::GateType::Xor
                            : netlist::GateType::And,
                      {acc, ffs[i]});
  }
  netlist::NodeId t = nl.add_ff("t");
  nl.set_ff_input(t, acc);
  netlist::Cone cone = nl.extract_next_state_cone(t);
  for (auto _ : state) {
    netlist::ConeDependenceChecker chk(nl, cone);
    for (std::size_t i = 0; i < cone.leaves.size(); ++i)
      benchmark::DoNotOptimize(chk.depends_on(i));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}
BENCHMARK(BM_ConeDependenceCheck)->Arg(8)->Arg(32)->Arg(128);

void BM_DepMatrixClosure(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  DepMatrix base(n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    std::size_t a = rng.below(static_cast<std::uint32_t>(n));
    std::size_t b = rng.below(static_cast<std::uint32_t>(n));
    base.upgrade(a, b,
                 rng.chance(0.7) ? DepKind::Path : DepKind::Structural);
  }
  for (auto _ : state) {
    DepMatrix m = base;
    m.transitive_closure();
    benchmark::DoNotOptimize(m.count_nonzero());
  }
}
BENCHMARK(BM_DepMatrixClosure)->Arg(128)->Arg(512)->Arg(2048);

struct Workload {
  rsn::RsnDocument doc;
  netlist::Netlist circuit;
  security::SecuritySpec spec{1, 2};

  explicit Workload(double target_ffs = 300) {
    Rng rng(3);
    const benchgen::BenchmarkProfile& p =
        benchgen::bastion_profile("Mingle");
    double scale = target_ffs / static_cast<double>(p.scan_ffs);
    doc = benchgen::generate_bastion(p, scale, rng);
    circuit = benchgen::attach_random_circuit(doc, {}, rng);
    benchgen::SpecOptions sopt;
    sopt.restrict_prob = 0.4;
    spec = benchgen::random_spec(doc.module_names.size(), sopt, rng);
  }
};

void BM_OneCycleDependencyAnalysis(benchmark::State& state) {
  Workload w(static_cast<double>(state.range(0)));
  dep::DepOptions opt;
  opt.num_threads = 1;
  for (auto _ : state) {
    dep::DependencyAnalyzer a(w.circuit, w.doc.network, opt);
    a.run();
    benchmark::DoNotOptimize(a.stats().closure_deps);
  }
}
BENCHMARK(BM_OneCycleDependencyAnalysis)->Arg(100)->Arg(300);

// jobs=1 vs jobs=hardware for BENCH_dep.json: the full Sec. III-A
// dependency analysis (cone fan-out + bridging + closure) at a Table I
// network size. Results are bit-identical across the arg values; only
// the wall clock may differ.
void JobsArgs(benchmark::internal::Benchmark* b) {
  b->ArgName("jobs")->Arg(1);
  unsigned hw = std::thread::hardware_concurrency();
  // Always register a >1 case so the pool machinery stays measured even
  // on single-core CI runners.
  b->Arg(hw > 1 ? static_cast<int>(hw) : 2);
}

void BM_DependencyAnalysisJobs(benchmark::State& state) {
  Workload w(400);
  dep::DepOptions opt;
  opt.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dep::DependencyAnalyzer a(w.circuit, w.doc.network, opt);
    a.run();
    benchmark::DoNotOptimize(a.stats().closure_deps);
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DependencyAnalysisJobs)->Apply(JobsArgs);

void BM_DepMatrixClosureJobs(benchmark::State& state) {
  const std::size_t n = 1024;
  Rng rng(7);
  DepMatrix base(n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    std::size_t a = rng.below(static_cast<std::uint32_t>(n));
    std::size_t b = rng.below(static_cast<std::uint32_t>(n));
    base.upgrade(a, b,
                 rng.chance(0.7) ? DepKind::Path : DepKind::Structural);
  }
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    DepMatrix m = base;
    m.transitive_closure(nullptr, &pool);
    benchmark::DoNotOptimize(m.count_nonzero());
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DepMatrixClosureJobs)->Apply(JobsArgs);

void BM_PurePropagation(benchmark::State& state) {
  Workload w;
  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::PureScanAnalyzer pure(w.spec, tokens);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pure.count_violating_pairs(w.doc.network));
  }
}
BENCHMARK(BM_PurePropagation);

void BM_HybridPropagation(benchmark::State& state) {
  Workload w;
  dep::DependencyAnalyzer deps(w.circuit, w.doc.network, {});
  deps.run();
  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::HybridAnalyzer hybrid(w.circuit, w.doc.network, deps, w.spec,
                                  tokens);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hybrid.count_violating_pairs(w.doc.network));
  }
}
BENCHMARK(BM_HybridPropagation);

void BM_CsuShiftCycle(benchmark::State& state) {
  benchgen::RunningExample ex = benchgen::make_running_example();
  rsn::CsuSimulator sim(ex.doc.network, ex.circuit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.shift(0x5555));
  }
}
BENCHMARK(BM_CsuShiftCycle);

void BM_RsnCopyForTrial(benchmark::State& state) {
  Workload w;
  for (auto _ : state) {
    rsn::Rsn copy = w.doc.network;
    benchmark::DoNotOptimize(copy.num_elements());
  }
}
BENCHMARK(BM_RsnCopyForTrial);

void BM_AccessPlanning(benchmark::State& state) {
  Workload w;
  rsn::AccessPlanner planner(w.doc.network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.all_registers_accessible());
  }
}
BENCHMARK(BM_AccessPlanning);

void BM_FilterBaseline(benchmark::State& state) {
  Workload w;
  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::AccessFilterBaseline filter(w.doc.network, w.spec, tokens);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.analyze().inaccessible.size());
  }
}
BENCHMARK(BM_FilterBaseline);

void BM_IclLoad(benchmark::State& state) {
  // Build a representative ICL text once, then measure parse+elaborate.
  std::ostringstream icl;
  icl << "Module Leaf { ScanInPort SI; ScanOutPort SO { Source R; }\n"
         "  ScanRegister R[31:0] { ScanInSource SI; } }\n"
         "Module Top { ScanInPort SI; ScanOutPort SO { Source last; }\n";
  std::string prev = "SI";
  for (int i = 0; i < 64; ++i) {
    icl << "  Instance seg" << i << " Of Leaf { InputPort SI = " << prev
        << "; }\n";
    prev = "seg" + std::to_string(i);
  }
  icl << "  ScanRegister last { ScanInSource " << prev << "; } }\n";
  const std::string text = icl.str();
  for (auto _ : state) {
    std::istringstream is(text);
    rsn::RsnDocument doc = rsn::icl::load_icl(is);
    benchmark::DoNotOptimize(doc.network.num_scan_ffs());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IclLoad);

// ---------------------------------------------------------------------------
// Detect-and-resolve: incremental delta engine vs from-scratch oracle
// (the BENCH_resolve.json suite). arg0 selects the engine (0 = oracle,
// 1 = incremental). Both engines produce bit-identical change logs and
// final networks; only the wall clock differs. The workloads are tuned
// so the resolution loop actually runs (a restrictive spec over a dense
// cross-functional circuit); a run that applies no change is reported as
// an error rather than a vacuous timing.

struct ResolveWorkload {
  rsn::RsnDocument doc;
  netlist::Netlist circuit;
  security::SecuritySpec spec{1, 2};

  ResolveWorkload(const char* profile, double target_ffs, std::uint32_t seed,
                  double cross_functional, double sensitive_modules,
                  double restrict_prob, double low_trust_prob,
                  bool with_circuit) {
    Rng rng(seed);
    const benchgen::BenchmarkProfile& p = benchgen::bastion_profile(profile);
    doc = benchgen::generate_bastion(
        p, target_ffs / static_cast<double>(p.scan_ffs), rng);
    if (with_circuit) {
      benchgen::CircuitOptions copt;
      copt.target_cross_functional = cross_functional;
      circuit = benchgen::attach_random_circuit(doc, copt, rng);
    }
    benchgen::SpecOptions sopt;
    sopt.expected_sensitive_modules = sensitive_modules;
    sopt.restrict_prob = restrict_prob;
    sopt.low_trust_prob = low_trust_prob;
    spec = benchgen::random_spec(doc.module_names.size(), sopt, rng);
  }
};

void EngineArgs(benchmark::internal::Benchmark* b) {
  b->ArgName("incremental")->Arg(0)->Arg(1);
}

void BM_PureResolve(benchmark::State& state) {
  // Pure-path resolution (element-granular propagation) under a
  // restrictive spec; the circuit is irrelevant to the pure analyzer.
  ResolveWorkload w("Mingle", static_cast<double>(state.range(1)), 3, 0.0,
                    8.0, 0.9, 0.7, /*with_circuit=*/false);
  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::PureScanAnalyzer pure(w.spec, tokens);
  security::ResolveOptions ropt;
  ropt.incremental = state.range(0) != 0;
  std::size_t changes = 0;
  for (auto _ : state) {
    rsn::Rsn net = w.doc.network;
    security::PureStats stats = pure.detect_and_resolve(
        net, nullptr, security::ResolutionPolicy::BestGlobal, {}, ropt);
    changes = stats.applied_changes;
    benchmark::DoNotOptimize(net.num_elements());
  }
  if (changes == 0) {
    state.SkipWithError("workload resolved no violations");
    return;
  }
  state.counters["changes"] = static_cast<double>(changes);
}
BENCHMARK(BM_PureResolve)
    ->ArgNames({"incremental", "ffs"})
    ->Args({0, 900})
    ->Args({1, 900})
    ->Args({0, 2000})
    ->Args({1, 2000});

void BM_HybridResolve(benchmark::State& state) {
  // The flagship hybrid workload: a balanced-tree RSN at 3000 scan FFs
  // with a dense cross-functional circuit and a spec restrictive enough
  // for ~10 applied changes, resolved from the raw generated network.
  // The dependency analysis and token table are built once outside the
  // timed region (the pipeline shares them across stages anyway); the
  // timed region is exactly one detect_and_resolve, which on the
  // incremental path includes its index rebuild.
  ResolveWorkload w("TreeBalanced", 3000, 5, 2.0, 6.0, 0.8, 0.5,
                    /*with_circuit=*/true);
  dep::DependencyAnalyzer deps(w.circuit, w.doc.network, {});
  deps.run();
  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::HybridAnalyzer hybrid(w.circuit, w.doc.network, deps, w.spec,
                                  tokens);
  security::ResolveOptions ropt;
  ropt.incremental = state.range(0) != 0;
  ropt.num_threads = 1;
  std::size_t changes = 0;
  for (auto _ : state) {
    rsn::Rsn net = w.doc.network;
    security::HybridStats stats = hybrid.detect_and_resolve(
        net, nullptr, security::ResolutionPolicy::BestGlobal, {}, ropt);
    changes = stats.applied_changes;
    benchmark::DoNotOptimize(net.num_elements());
  }
  if (changes == 0) {
    state.SkipWithError("workload resolved no violations");
    return;
  }
  state.counters["changes"] = static_cast<double>(changes);
}
BENCHMARK(BM_HybridResolve)->Apply(EngineArgs)->Unit(benchmark::kMillisecond);

// Cone-isomorphism memoization of the dependency analysis on a workload
// with heavily repeated structure (MBIST memory interfaces). arg:
// 0 = cache off, 1 = on. Results are bit-identical either way.
void BM_DependencyAnalysisConeCache(benchmark::State& state) {
  Rng rng(11);
  rsn::RsnDocument doc = benchgen::generate_mbist(2, 3, 4, 1.0);
  netlist::Netlist nl = benchgen::attach_random_circuit(doc, {}, rng);
  dep::DepOptions opt;
  opt.num_threads = 1;
  opt.cone_cache = state.range(0) != 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    dep::DependencyAnalyzer a(nl, doc.network, opt);
    a.run();
    hits = a.stats().cone_cache_hits;
    benchmark::DoNotOptimize(a.stats().closure_deps);
  }
  state.counters["cone_cache_hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_DependencyAnalysisConeCache)
    ->ArgName("cache")
    ->Arg(0)
    ->Arg(1);

// Pair-ternary SAT triage of the dependency analysis on the standard
// Mingle workload. arg: 0 = prefilter off (every undecided leaf goes to
// SAT), 1 = on (provably-dead leaves are discharged without a solver
// call). Matrices are bit-identical either way; the counters record the
// avoided SAT work.
void BM_DependencyAnalysisTernary(benchmark::State& state) {
  Workload w(400);
  dep::DepOptions opt;
  opt.num_threads = 1;
  opt.ternary_prefilter = state.range(0) != 0;
  std::uint64_t ternary = 0, sat = 0;
  for (auto _ : state) {
    dep::DependencyAnalyzer a(w.circuit, w.doc.network, opt);
    a.run();
    ternary = a.stats().ternary_resolved;
    sat = a.stats().sat_calls;
    benchmark::DoNotOptimize(a.stats().closure_deps);
  }
  state.counters["ternary_resolved"] = static_cast<double>(ternary);
  state.counters["sat_calls"] = static_cast<double>(sat);
}
BENCHMARK(BM_DependencyAnalysisTernary)
    ->ArgName("ternary")
    ->Arg(0)
    ->Arg(1);

// ---------------------------------------------------------------------------
// Flow certifier (the BENCH_certify.json suite): one full SAT-free
// re-verification — taint graph construction (including the per-edge
// ternary proofs when enabled) plus the three tier fixpoints and the
// finding classification. arg: 0 = ternary refinement off, 1 = on.

void BM_Certify(benchmark::State& state) {
  Workload w(400);
  // The shared workload's sparse spec happens to certify clean on this
  // seed; an unsecured network with real leaks is the representative
  // input (the classification walk over violating pairs is the output-
  // dependent part of the pass), so use a denser spec for this suite.
  Rng rng(7);
  benchgen::SpecOptions sopt;
  sopt.expected_sensitive_modules = 8.0;
  sopt.low_trust_prob = 0.35;
  w.spec = benchgen::random_spec(w.doc.module_names.size(), sopt, rng);
  flow::CertifyOptions opt;
  opt.ternary_refine = state.range(0) != 0;
  std::size_t pairs = 0, discharged = 0;
  for (auto _ : state) {
    flow::CertifyResult r =
        flow::certify(w.circuit, w.doc.network, w.spec, opt);
    pairs = r.stats.violating_pairs;
    discharged = r.stats.ternary_discharged;
    benchmark::DoNotOptimize(r.diagnostics.size());
  }
  state.counters["violating_pairs"] = static_cast<double>(pairs);
  state.counters["ternary_discharged"] = static_cast<double>(discharged);
}
BENCHMARK(BM_Certify)->ArgName("ternary")->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Artifact store (the BENCH_store.json suite): the serialization + disk
// round trip of one analysis snapshot, and the end-to-end dependency
// phase cold (store emptied every iteration: full analysis + publication)
// vs warm (replayed from the store, zero analysis work).

void BM_StoreRoundTrip(benchmark::State& state) {
  Workload w;
  dep::DependencyAnalyzer a(w.circuit, w.doc.network, {});
  a.run();
  store::ByteWriter enc;
  store::encode_dep_snapshot(enc, a.snapshot());
  const std::string payload = enc.bytes();
  const std::string key =
      store::dep_cache_key(w.circuit, w.doc.network, a.options());

  std::filesystem::path root =
      std::filesystem::temp_directory_path() / "rsnsec_bench_store_rt";
  std::filesystem::remove_all(root);
  store::StoreOptions sopt;
  sopt.memory_tier = false;  // measure the disk tier, not the LRU map
  store::ArtifactStore st(root, sopt);
  for (auto _ : state) {
    st.put(key, payload);
    std::optional<std::string> blob = st.load(key);
    store::ByteReader r(*blob);
    dep::DependencyAnalyzer::AnalysisSnapshot snap =
        store::decode_dep_snapshot(r);
    benchmark::DoNotOptimize(snap.stats.closure_deps);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  state.counters["blob_bytes"] = static_cast<double>(payload.size());
  std::filesystem::remove_all(root);
}
BENCHMARK(BM_StoreRoundTrip);

void BM_DependencyAnalysisStore(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  Workload w(400);
  std::filesystem::path root =
      std::filesystem::temp_directory_path() / "rsnsec_bench_store_dep";
  std::filesystem::remove_all(root);
  store::ArtifactStore st(root);
  if (warm) {
    // Publish once; every timed iteration is then a pure store hit.
    dep::DependencyAnalyzer seed_run(w.circuit, w.doc.network, {});
    store::run_with_store(&st, seed_run);
  }
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      st.gc(0);  // empty disk AND memory tier: genuinely cold
      state.ResumeTiming();
    }
    dep::DependencyAnalyzer a(w.circuit, w.doc.network, {});
    store::run_with_store(&st, a);
    benchmark::DoNotOptimize(a.stats().closure_deps);
  }
  store::StoreCounters c = st.counters();
  state.counters["store_hits"] = static_cast<double>(c.hits);
  state.counters["store_misses"] = static_cast<double>(c.misses);
  std::filesystem::remove_all(root);
}
BENCHMARK(BM_DependencyAnalysisStore)
    ->ArgName("warm")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
