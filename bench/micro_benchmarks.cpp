// Engineering micro-benchmarks (not from the paper): throughput of the
// substrates that dominate the Table I runtimes — the SAT solver, the
// cone dependence check, the multi-cycle closure and the security
// propagations.

#include <benchmark/benchmark.h>

#include <sstream>
#include <thread>

#include "benchgen/circuit.hpp"
#include "benchgen/families.hpp"
#include "benchgen/running_example.hpp"
#include "benchgen/specgen.hpp"
#include "dep/analyzer.hpp"
#include "netlist/cone_check.hpp"
#include "rsn/access.hpp"
#include "rsn/csu_sim.hpp"
#include "rsn/icl.hpp"
#include "sat/solver.hpp"
#include "security/filter.hpp"
#include "security/hybrid.hpp"
#include "security/pure.hpp"
#include "util/dep_matrix.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rsnsec;

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> x(
        static_cast<std::size_t>(holes + 1),
        std::vector<sat::Var>(static_cast<std::size_t>(holes)));
    for (auto& row : x)
      for (sat::Var& v : row) v = s.new_var();
    for (int p = 0; p <= holes; ++p) {
      sat::Clause c;
      for (int h = 0; h < holes; ++h) c.push_back(sat::mk_lit(x[p][h]));
      s.add_clause(std::move(c));
    }
    for (int h = 0; h < holes; ++h)
      for (int p1 = 0; p1 <= holes; ++p1)
        for (int p2 = p1 + 1; p2 <= holes; ++p2)
          s.add_clause(~sat::mk_lit(x[p1][h]), ~sat::mk_lit(x[p2][h]));
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(7)->Arg(8);

void BM_ConeDependenceCheck(benchmark::State& state) {
  // A wide AND-XOR cone; every leaf requires a SAT query when the random
  // prefilter is bypassed.
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  netlist::Netlist nl;
  std::vector<netlist::NodeId> ffs;
  for (std::size_t i = 0; i < width; ++i) {
    netlist::NodeId f = nl.add_ff("f" + std::to_string(i));
    nl.set_ff_input(f, f);
    ffs.push_back(f);
  }
  netlist::NodeId acc = ffs[0];
  for (std::size_t i = 1; i < width; ++i) {
    acc = nl.add_gate(i % 2 ? netlist::GateType::Xor
                            : netlist::GateType::And,
                      {acc, ffs[i]});
  }
  netlist::NodeId t = nl.add_ff("t");
  nl.set_ff_input(t, acc);
  netlist::Cone cone = nl.extract_next_state_cone(t);
  for (auto _ : state) {
    netlist::ConeDependenceChecker chk(nl, cone);
    for (std::size_t i = 0; i < cone.leaves.size(); ++i)
      benchmark::DoNotOptimize(chk.depends_on(i));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}
BENCHMARK(BM_ConeDependenceCheck)->Arg(8)->Arg(32)->Arg(128);

void BM_DepMatrixClosure(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  DepMatrix base(n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    std::size_t a = rng.below(static_cast<std::uint32_t>(n));
    std::size_t b = rng.below(static_cast<std::uint32_t>(n));
    base.upgrade(a, b,
                 rng.chance(0.7) ? DepKind::Path : DepKind::Structural);
  }
  for (auto _ : state) {
    DepMatrix m = base;
    m.transitive_closure();
    benchmark::DoNotOptimize(m.count_nonzero());
  }
}
BENCHMARK(BM_DepMatrixClosure)->Arg(128)->Arg(512)->Arg(2048);

struct Workload {
  rsn::RsnDocument doc;
  netlist::Netlist circuit;
  security::SecuritySpec spec{1, 2};

  explicit Workload(double target_ffs = 300) {
    Rng rng(3);
    const benchgen::BenchmarkProfile& p =
        benchgen::bastion_profile("Mingle");
    double scale = target_ffs / static_cast<double>(p.scan_ffs);
    doc = benchgen::generate_bastion(p, scale, rng);
    circuit = benchgen::attach_random_circuit(doc, {}, rng);
    benchgen::SpecOptions sopt;
    sopt.restrict_prob = 0.4;
    spec = benchgen::random_spec(doc.module_names.size(), sopt, rng);
  }
};

void BM_OneCycleDependencyAnalysis(benchmark::State& state) {
  Workload w(static_cast<double>(state.range(0)));
  dep::DepOptions opt;
  opt.num_threads = 1;
  for (auto _ : state) {
    dep::DependencyAnalyzer a(w.circuit, w.doc.network, opt);
    a.run();
    benchmark::DoNotOptimize(a.stats().closure_deps);
  }
}
BENCHMARK(BM_OneCycleDependencyAnalysis)->Arg(100)->Arg(300);

// jobs=1 vs jobs=hardware for BENCH_dep.json: the full Sec. III-A
// dependency analysis (cone fan-out + bridging + closure) at a Table I
// network size. Results are bit-identical across the arg values; only
// the wall clock may differ.
void JobsArgs(benchmark::internal::Benchmark* b) {
  b->ArgName("jobs")->Arg(1);
  unsigned hw = std::thread::hardware_concurrency();
  // Always register a >1 case so the pool machinery stays measured even
  // on single-core CI runners.
  b->Arg(hw > 1 ? static_cast<int>(hw) : 2);
}

void BM_DependencyAnalysisJobs(benchmark::State& state) {
  Workload w(400);
  dep::DepOptions opt;
  opt.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dep::DependencyAnalyzer a(w.circuit, w.doc.network, opt);
    a.run();
    benchmark::DoNotOptimize(a.stats().closure_deps);
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DependencyAnalysisJobs)->Apply(JobsArgs);

void BM_DepMatrixClosureJobs(benchmark::State& state) {
  const std::size_t n = 1024;
  Rng rng(7);
  DepMatrix base(n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    std::size_t a = rng.below(static_cast<std::uint32_t>(n));
    std::size_t b = rng.below(static_cast<std::uint32_t>(n));
    base.upgrade(a, b,
                 rng.chance(0.7) ? DepKind::Path : DepKind::Structural);
  }
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    DepMatrix m = base;
    m.transitive_closure(nullptr, &pool);
    benchmark::DoNotOptimize(m.count_nonzero());
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DepMatrixClosureJobs)->Apply(JobsArgs);

void BM_PurePropagation(benchmark::State& state) {
  Workload w;
  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::PureScanAnalyzer pure(w.spec, tokens);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pure.count_violating_pairs(w.doc.network));
  }
}
BENCHMARK(BM_PurePropagation);

void BM_HybridPropagation(benchmark::State& state) {
  Workload w;
  dep::DependencyAnalyzer deps(w.circuit, w.doc.network, {});
  deps.run();
  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::HybridAnalyzer hybrid(w.circuit, w.doc.network, deps, w.spec,
                                  tokens);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hybrid.count_violating_pairs(w.doc.network));
  }
}
BENCHMARK(BM_HybridPropagation);

void BM_CsuShiftCycle(benchmark::State& state) {
  benchgen::RunningExample ex = benchgen::make_running_example();
  rsn::CsuSimulator sim(ex.doc.network, ex.circuit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.shift(0x5555));
  }
}
BENCHMARK(BM_CsuShiftCycle);

void BM_RsnCopyForTrial(benchmark::State& state) {
  Workload w;
  for (auto _ : state) {
    rsn::Rsn copy = w.doc.network;
    benchmark::DoNotOptimize(copy.num_elements());
  }
}
BENCHMARK(BM_RsnCopyForTrial);

void BM_AccessPlanning(benchmark::State& state) {
  Workload w;
  rsn::AccessPlanner planner(w.doc.network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.all_registers_accessible());
  }
}
BENCHMARK(BM_AccessPlanning);

void BM_FilterBaseline(benchmark::State& state) {
  Workload w;
  security::TokenTable tokens(w.spec, w.spec.num_modules());
  security::AccessFilterBaseline filter(w.doc.network, w.spec, tokens);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.analyze().inaccessible.size());
  }
}
BENCHMARK(BM_FilterBaseline);

void BM_IclLoad(benchmark::State& state) {
  // Build a representative ICL text once, then measure parse+elaborate.
  std::ostringstream icl;
  icl << "Module Leaf { ScanInPort SI; ScanOutPort SO { Source R; }\n"
         "  ScanRegister R[31:0] { ScanInSource SI; } }\n"
         "Module Top { ScanInPort SI; ScanOutPort SO { Source last; }\n";
  std::string prev = "SI";
  for (int i = 0; i < 64; ++i) {
    icl << "  Instance seg" << i << " Of Leaf { InputPort SI = " << prev
        << "; }\n";
    prev = "seg" + std::to_string(i);
  }
  icl << "  ScanRegister last { ScanInSource " << prev << "; } }\n";
  const std::string text = icl.str();
  for (auto _ : state) {
    std::istringstream is(text);
    rsn::RsnDocument doc = rsn::icl::load_icl(is);
    benchmark::DoNotOptimize(doc.network.num_scan_ffs());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IclLoad);

}  // namespace

BENCHMARK_MAIN();
