// Sec. IV-C ablation: approximating path-dependency with structural
// dependency. The over-approximation removes all SAT calls but treats
// every structural connection as a data path, causing (a) additional
// (false-positive-driven) changes to the scan infrastructure — the paper
// reports +61% on average — and (b) benchmarks falsely classified as
// having insecure circuit logic — the paper reports 6.21%.

#include <iomanip>
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace rsnsec;
  bench::SweepOptions opt = bench::sweep_options_from_env();
  // The ablation sweeps a benchmark subset to keep the runtime modest.
  const std::vector<std::string> names = {
      "BasicSCB", "Mingle",      "TreeFlat",    "TreeBalanced",
      "q12710",   "MBIST_1_5_5", "MBIST_2_5_5", "MBIST_5_5_5"};

  std::cout << "=== Sec. IV-C ablation: structural over-approximation ===\n";
  std::cout << "sweep: " << opt.circuits_per_benchmark << " circuits x "
            << opt.specs_per_circuit << " specs per benchmark\n\n";
  std::cout << std::left << std::setw(16) << "Benchmark" << std::right
            << std::setw(12) << "exact_chg" << std::setw(12) << "struct_chg"
            << std::setw(12) << "extra[%]" << std::setw(16)
            << "false_insec[%]" << std::setw(12) << "exact_t[s]"
            << std::setw(12) << "struct_t[s]" << "\n";

  double total_exact = 0.0, total_struct = 0.0;
  int total_runs = 0, total_false_insecure = 0;

  for (const std::string& name : names) {
    double exact_changes = 0.0, struct_changes = 0.0;
    double exact_time = 0.0, struct_time = 0.0;
    int runs = 0, false_insecure = 0, attempts = 0;
    for (int ci = 0; ci < opt.circuits_per_benchmark; ++ci) {
      bench::Instance inst = bench::make_instance(name, opt, ci);
      for (int si = 0; si < opt.specs_per_circuit; ++si) {
        Rng spec_rng(opt.base_seed * 104729 +
                     static_cast<std::uint64_t>(ci) * 1000 +
                     static_cast<std::uint64_t>(si));
        security::SecuritySpec spec = benchgen::random_spec(
            inst.doc.module_names.size(), opt.spec, spec_rng);

        rsn::Rsn net_exact = inst.doc.network;
        SecureFlowTool exact(inst.circuit, net_exact, spec, {});
        PipelineResult re = exact.run();
        if (!re.static_report.clean()) continue;  // genuinely insecure
        ++attempts;
        if (re.initial_violating_registers == 0) continue;

        rsn::Rsn net_struct = inst.doc.network;
        PipelineOptions po;
        po.dep.mode = dep::DepMode::StructuralOnly;
        SecureFlowTool over(inst.circuit, net_struct, spec, po);
        PipelineResult ro = over.run();
        if (!ro.static_report.clean()) {
          // Exact analysis proved the logic secure; the approximation
          // disagrees: a false insecure-logic classification.
          ++false_insecure;
          continue;
        }
        exact_changes += re.total_changes();
        struct_changes += ro.total_changes();
        exact_time += re.t_total;
        struct_time += ro.t_total;
        ++runs;
      }
    }
    double extra = exact_changes > 0
                       ? 100.0 * (struct_changes - exact_changes) /
                             exact_changes
                       : 0.0;
    double false_pct =
        attempts > 0 ? 100.0 * false_insecure / attempts : 0.0;
    std::cout << std::left << std::setw(16) << name << std::right
              << std::fixed << std::setprecision(1) << std::setw(12)
              << exact_changes << std::setw(12) << struct_changes
              << std::setw(12) << extra << std::setw(16) << false_pct
              << std::setprecision(3) << std::setw(12) << exact_time
              << std::setw(12) << struct_time << "\n";
    total_exact += exact_changes;
    total_struct += struct_changes;
    total_runs += attempts;
    total_false_insecure += false_insecure;
  }

  std::cout << "\nOverall additional changes with structural "
               "over-approximation: "
            << std::fixed << std::setprecision(1)
            << (total_exact > 0
                    ? 100.0 * (total_struct - total_exact) / total_exact
                    : 0.0)
            << "%   (paper: +61% on average)\n";
  std::cout << "Falsely classified as insecure circuit logic: "
            << std::setprecision(2)
            << (total_runs > 0 ? 100.0 * total_false_insecure / total_runs
                               : 0.0)
            << "% of runs   (paper: 6.21% of investigated benchmarks)\n";
  return 0;
}
