#include "bench/common.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rsnsec::bench {

namespace {

std::uint64_t env_or(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// Parses "MBIST_n_m_o" into its dimensions; returns false otherwise.
bool parse_mbist(const std::string& name, std::size_t dims[3]) {
  if (name.rfind("MBIST_", 0) != 0) return false;
  std::size_t pos = 6;
  for (int i = 0; i < 3; ++i) {
    std::size_t next = name.find('_', pos);
    std::string piece = name.substr(pos, next == std::string::npos
                                             ? std::string::npos
                                             : next - pos);
    dims[i] = std::strtoull(piece.c_str(), nullptr, 10);
    if (dims[i] == 0) return false;
    pos = next + 1;
  }
  return true;
}

}  // namespace

SweepOptions sweep_options_from_env() {
  SweepOptions opt;
  opt.circuits_per_benchmark =
      static_cast<int>(env_or("RSNSEC_CIRCUITS", 3));
  opt.specs_per_circuit = static_cast<int>(env_or("RSNSEC_SPECS", 6));
  opt.target_ffs = env_or("RSNSEC_TARGET_FFS", 400);
  opt.target_regs = env_or("RSNSEC_TARGET_REGS", 48);
  opt.base_seed = env_or("RSNSEC_SEED", 1);
  opt.jobs = env_or("RSNSEC_JOBS", 0);
  // Sparse specifications: a couple of protected instruments and few
  // low-trust ones, matching the violating-register densities of Table I.
  opt.spec.expected_sensitive_modules = 2.5;
  opt.spec.low_trust_prob = 0.1;
  opt.pipeline.store = store_from_env();
  return opt;
}

store::ArtifactStore* store_from_env() {
  struct Holder {
    std::unique_ptr<store::ArtifactStore> store;
    Holder() {
      const char* dir = std::getenv("RSNSEC_STORE");
      if (dir == nullptr || *dir == '\0') return;
      try {
        store = std::make_unique<store::ArtifactStore>(dir);
      } catch (const std::exception& e) {
        std::cerr << "bench: ignoring RSNSEC_STORE: " << e.what() << "\n";
      }
    }
  };
  static Holder holder;
  return holder.store.get();
}

Instance make_instance(const std::string& name, const SweepOptions& opt,
                       int circuit_idx) {
  Instance inst;
  // Per-benchmark seed (FNV-1a over the name) so same-sized profiles
  // still get distinct instances.
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  Rng rng(opt.base_seed * 7919 + h + static_cast<std::uint64_t>(circuit_idx));
  std::size_t dims[3];
  if (parse_mbist(name, dims)) {
    // Full register count without building the network:
    // regs = 2 + n*(11 + m*(5 + 3o)).
    double full_regs = 2.0 + static_cast<double>(dims[0]) *
                                 (11.0 + static_cast<double>(dims[1]) *
                                             (5.0 + 3.0 * dims[2]));
    double scale = std::min(
        1.0, 2.0 * static_cast<double>(opt.target_regs) / full_regs);
    inst.doc = benchgen::generate_mbist(dims[0], dims[1], dims[2], scale);
  } else {
    // Scale registers and FFs independently so FF-heavy benchmarks keep
    // their register structure.
    benchgen::BenchmarkProfile p = benchgen::bastion_profile(name);
    std::size_t orig_regs = p.registers;
    if (p.topology == benchgen::Topology::SerialMux) {
      // FlexScan's identity is "many 1-FF registers": the FF budget is
      // the register budget.
      p.registers = std::min(p.registers,
                             std::max(opt.target_regs, opt.target_ffs));
      p.scan_ffs = p.registers;
    } else {
      p.registers = std::min(p.registers, opt.target_regs);
      p.scan_ffs = std::min(p.scan_ffs, std::max(p.registers,
                                                 opt.target_ffs));
    }
    p.muxes = std::max<std::size_t>(
        1, p.muxes * p.registers / std::max<std::size_t>(1, orig_regs));
    inst.doc = benchgen::generate_bastion(p, 1.0, rng);
  }
  // Cross-module circuit connectivity grows with the module count so
  // hybrid-path substrate exists at every network size.
  benchgen::CircuitOptions copt;
  double modules = static_cast<double>(inst.doc.module_names.size());
  copt.target_cross_functional = std::clamp(1.0 * modules, 4.0, 128.0);
  copt.target_cross_structural = std::clamp(0.6 * modules, 5.0, 80.0);
  inst.circuit = benchgen::attach_random_circuit(inst.doc, copt, rng);
  return inst;
}

BenchRow run_benchmark(const std::string& name, const SweepOptions& opt) {
  RowAccumulator acc(name);
  ThreadPool pool(ThreadPool::resolve_num_threads(opt.jobs));

  // The sweep parallelizes at the (circuit, spec) granularity: the
  // outermost independent unit, mirroring how the paper's 10 x 16 grid
  // is embarrassingly parallel. When the sweep itself is concurrent, the
  // per-run dependency analysis defaults to 1 thread so the machine is
  // not oversubscribed quadratically (an explicit pipeline.dep
  // num_threads is honored).
  PipelineOptions popt = opt.pipeline;
  if (pool.num_threads() > 1 && popt.dep.num_threads == 0)
    popt.dep.num_threads = 1;

  const std::size_t circuits =
      static_cast<std::size_t>(opt.circuits_per_benchmark);
  const std::size_t specs = static_cast<std::size_t>(opt.specs_per_circuit);

  // Instances are deterministic functions of (name, opt, ci) and shared
  // read-only by that circuit's spec runs.
  std::vector<Instance> instances(circuits);
  pool.parallel_for(
      0, circuits,
      [&](std::size_t ci) {
        instances[ci] = make_instance(name, opt, static_cast<int>(ci));
      },
      /*grain=*/1);
  if (!instances.empty()) {
    acc.set_structure(instances[0].doc.network.registers().size(),
                      instances[0].doc.network.num_scan_ffs(),
                      instances[0].doc.network.muxes().size());
  }

  enum class Outcome : std::uint8_t { Ok, Insecure, NoViolation };
  std::vector<Outcome> outcomes(circuits * specs, Outcome::Ok);
  std::vector<PipelineResult> results(circuits * specs);
  pool.parallel_for(
      0, circuits * specs,
      [&](std::size_t t) {
        const std::size_t ci = t / specs;
        const std::size_t si = t % specs;
        const Instance& inst = instances[ci];
        Rng spec_rng(opt.base_seed * 104729 +
                     static_cast<std::uint64_t>(ci) * 1000 +
                     static_cast<std::uint64_t>(si));
        security::SecuritySpec spec = benchgen::random_spec(
            inst.doc.module_names.size(), opt.spec, spec_rng);
        // Each spec run transforms a fresh copy of the network.
        rsn::Rsn network = inst.doc.network;
        SecureFlowTool tool(inst.circuit, network, spec, popt);
        PipelineResult result = tool.run();
        if (!result.static_report.clean())
          outcomes[t] = Outcome::Insecure;
        else if (result.initial_violating_registers == 0)
          outcomes[t] = Outcome::NoViolation;
        else
          results[t] = std::move(result);
      },
      /*grain=*/1);

  // Deterministic reduction: accumulate in (circuit, spec) order
  // regardless of which thread finished first.
  for (std::size_t t = 0; t < outcomes.size(); ++t) {
    switch (outcomes[t]) {
      case Outcome::Insecure:
        acc.add_skipped_insecure();
        break;
      case Outcome::NoViolation:
        acc.add_skipped_no_violation();
        break;
      case Outcome::Ok:
        acc.add(results[t]);
        break;
    }
  }
  return acc.finish();
}

std::optional<PaperRow> paper_row(const std::string& name) {
  // Table I of the paper (averages over 10 circuits x 16 specs on an
  // Intel Xeon 3.3 GHz).
  static const PaperRow rows[] = {
      {"BasicSCB", 1.56, 1.4, 0.6, 2.0, 0.13, 0.00, 0.00, 0.13},
      {"Mingle", 2.21, 1.8, 0.8, 2.5, 0.18, 0.00, 0.00, 0.19},
      {"TreeFlat", 3.65, 3.0, 1.7, 4.7, 0.05, 0.01, 0.01, 0.06},
      {"TreeFlatEx", 8.45, 5.8, 6.3, 12.1, 26.48, 0.07, 0.09, 26.65},
      {"TreeBalanced", 7.22, 4.7, 4.3, 9.0, 43.12, 0.04, 0.05, 43.21},
      {"TreeUnbalanced", 6.27, 3.9, 3.7, 7.6, 16686.78, 0.02, 0.08,
       16686.87},
      {"q12710", 5.20, 3.8, 3.3, 7.1, 5703.16, 0.02, 0.04, 5703.22},
      {"t512505", 12.44, 9.2, 15.7, 24.9, 28702.78, 0.32, 1.14, 28704.23},
      {"p22810", 21.75, 17.2, 24.6, 41.9, 1082.98, 1.02, 1.91, 1085.91},
      {"a586710", 5.89, 4.3, 4.2, 8.4, 14724.12, 0.01, 0.08, 14724.21},
      {"p34392", 11.26, 8.2, 13.3, 21.4, 1072.99, 0.07, 0.21, 1073.27},
      {"p93791", 40.51, 35.4, 44.1, 79.5, 14592.50, 1.83, 5.32, 14599.64},
      {"FlexScan", 207.22, 203.7, 247.7, 451.4, 32.73, 827.54, 1012.72,
       1872.99},
      {"MBIST_1_5_5", 6.64, 2.3, 10.8, 13.2, 0.21, 0.01, 0.03, 0.25},
      {"MBIST_1_5_20", 9.00, 3.3, 36.2, 39.5, 1.13, 0.04, 0.38, 1.55},
      {"MBIST_1_20_20", 7.60, 2.4, 38.2, 40.6, 13.90, 0.15, 1.25, 15.29},
      {"MBIST_2_5_5", 6.18, 3.6, 8.1, 11.7, 0.46, 0.04, 0.08, 0.58},
      {"MBIST_2_5_20", 8.88, 4.7, 38.9, 43.6, 3.28, 0.17, 1.05, 4.50},
      {"MBIST_2_20_20", 2.45, 1.6, 1.0, 2.6, 67.86, 0.44, 0.52, 68.82},
      {"MBIST_5_5_5", 9.64, 6.6, 15.1, 21.7, 1.51, 0.15, 0.35, 2.02},
      {"MBIST_5_20_20", 4.56, 2.8, 10.1, 12.9, 465.85, 2.70, 6.40, 474.95},
      {"MBIST_20_20_20", 19.62, 15.1, 89.8, 104.8, 9359.48, 0.87, 73.19,
       9433.54},
  };
  for (const PaperRow& r : rows) {
    if (name == r.name) return r;
  }
  return std::nullopt;
}

struct TraceFromEnv::Impl {
  obs::TraceSession session;
  std::string trace_path;
  bool metrics = false;
};

TraceFromEnv::TraceFromEnv() {
  const char* trace = std::getenv("RSNSEC_TRACE");
  const char* metrics = std::getenv("RSNSEC_METRICS");
  bool want_trace = trace != nullptr && *trace != '\0';
  bool want_metrics = metrics != nullptr && *metrics != '\0';
  if (!want_trace && !want_metrics) return;
  impl_ = new Impl;
  if (want_trace) impl_->trace_path = trace;
  impl_->metrics = want_metrics;
  obs::TraceSession::set_active(&impl_->session);
}

TraceFromEnv::~TraceFromEnv() {
  if (impl_ == nullptr) return;
  obs::TraceSession::set_active(nullptr);
  if (!impl_->trace_path.empty()) {
    std::ofstream f(impl_->trace_path);
    if (f) {
      impl_->session.write_chrome_trace(f);
    } else {
      std::cerr << "bench: cannot write RSNSEC_TRACE file '"
                << impl_->trace_path << "'\n";
    }
  }
  if (impl_->metrics) impl_->session.write_summary_text(std::cerr);
  delete impl_;
}

void print_paper_reference(std::ostream& os,
                           const std::vector<std::string>& names) {
  os << "\nPaper reference (Table I averages; 10 circuits x 16 specs, "
        "full-size networks, Intel Xeon 3.3 GHz):\n";
  os << std::left << std::setw(16) << "Benchmark" << std::right
     << std::setw(10) << "#RegViol" << std::setw(8) << "pure" << std::setw(8)
     << "hybrid" << std::setw(8) << "total" << std::setw(12) << "t_dep[s]"
     << std::setw(12) << "t_tot[s]" << "\n";
  for (const std::string& n : names) {
    if (auto r = paper_row(n)) {
      os << std::left << std::setw(16) << r->name << std::right
         << std::fixed << std::setprecision(2) << std::setw(10)
         << r->viol_regs << std::setprecision(1) << std::setw(8) << r->pure
         << std::setw(8) << r->hybrid << std::setw(8) << r->total
         << std::setprecision(2) << std::setw(12) << r->t_dep
         << std::setw(12) << r->t_total << "\n";
    }
  }
}

}  // namespace rsnsec::bench
