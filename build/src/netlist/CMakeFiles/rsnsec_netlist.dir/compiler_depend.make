# Empty compiler generated dependencies file for rsnsec_netlist.
# This may be replaced when dependencies are built.
