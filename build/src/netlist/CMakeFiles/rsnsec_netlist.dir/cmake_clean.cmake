file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_netlist.dir/cone_check.cpp.o"
  "CMakeFiles/rsnsec_netlist.dir/cone_check.cpp.o.d"
  "CMakeFiles/rsnsec_netlist.dir/netlist.cpp.o"
  "CMakeFiles/rsnsec_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/rsnsec_netlist.dir/sim.cpp.o"
  "CMakeFiles/rsnsec_netlist.dir/sim.cpp.o.d"
  "CMakeFiles/rsnsec_netlist.dir/verilog.cpp.o"
  "CMakeFiles/rsnsec_netlist.dir/verilog.cpp.o.d"
  "librsnsec_netlist.a"
  "librsnsec_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
