file(REMOVE_RECURSE
  "librsnsec_netlist.a"
)
