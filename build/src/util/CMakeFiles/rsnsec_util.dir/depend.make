# Empty dependencies file for rsnsec_util.
# This may be replaced when dependencies are built.
