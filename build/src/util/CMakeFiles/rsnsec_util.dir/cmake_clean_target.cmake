file(REMOVE_RECURSE
  "librsnsec_util.a"
)
