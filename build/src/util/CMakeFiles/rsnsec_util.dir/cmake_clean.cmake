file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_util.dir/dep_matrix.cpp.o"
  "CMakeFiles/rsnsec_util.dir/dep_matrix.cpp.o.d"
  "CMakeFiles/rsnsec_util.dir/rng.cpp.o"
  "CMakeFiles/rsnsec_util.dir/rng.cpp.o.d"
  "CMakeFiles/rsnsec_util.dir/strings.cpp.o"
  "CMakeFiles/rsnsec_util.dir/strings.cpp.o.d"
  "librsnsec_util.a"
  "librsnsec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
