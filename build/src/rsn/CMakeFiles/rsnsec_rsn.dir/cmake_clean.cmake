file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_rsn.dir/access.cpp.o"
  "CMakeFiles/rsnsec_rsn.dir/access.cpp.o.d"
  "CMakeFiles/rsnsec_rsn.dir/csu_sim.cpp.o"
  "CMakeFiles/rsnsec_rsn.dir/csu_sim.cpp.o.d"
  "CMakeFiles/rsnsec_rsn.dir/icl.cpp.o"
  "CMakeFiles/rsnsec_rsn.dir/icl.cpp.o.d"
  "CMakeFiles/rsnsec_rsn.dir/io.cpp.o"
  "CMakeFiles/rsnsec_rsn.dir/io.cpp.o.d"
  "CMakeFiles/rsnsec_rsn.dir/rsn.cpp.o"
  "CMakeFiles/rsnsec_rsn.dir/rsn.cpp.o.d"
  "librsnsec_rsn.a"
  "librsnsec_rsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_rsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
