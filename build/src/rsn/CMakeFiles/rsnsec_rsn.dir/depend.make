# Empty dependencies file for rsnsec_rsn.
# This may be replaced when dependencies are built.
