file(REMOVE_RECURSE
  "librsnsec_rsn.a"
)
