
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsn/access.cpp" "src/rsn/CMakeFiles/rsnsec_rsn.dir/access.cpp.o" "gcc" "src/rsn/CMakeFiles/rsnsec_rsn.dir/access.cpp.o.d"
  "/root/repo/src/rsn/csu_sim.cpp" "src/rsn/CMakeFiles/rsnsec_rsn.dir/csu_sim.cpp.o" "gcc" "src/rsn/CMakeFiles/rsnsec_rsn.dir/csu_sim.cpp.o.d"
  "/root/repo/src/rsn/icl.cpp" "src/rsn/CMakeFiles/rsnsec_rsn.dir/icl.cpp.o" "gcc" "src/rsn/CMakeFiles/rsnsec_rsn.dir/icl.cpp.o.d"
  "/root/repo/src/rsn/io.cpp" "src/rsn/CMakeFiles/rsnsec_rsn.dir/io.cpp.o" "gcc" "src/rsn/CMakeFiles/rsnsec_rsn.dir/io.cpp.o.d"
  "/root/repo/src/rsn/rsn.cpp" "src/rsn/CMakeFiles/rsnsec_rsn.dir/rsn.cpp.o" "gcc" "src/rsn/CMakeFiles/rsnsec_rsn.dir/rsn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rsnsec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rsnsec_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/rsnsec_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
