file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_benchgen.dir/circuit.cpp.o"
  "CMakeFiles/rsnsec_benchgen.dir/circuit.cpp.o.d"
  "CMakeFiles/rsnsec_benchgen.dir/families.cpp.o"
  "CMakeFiles/rsnsec_benchgen.dir/families.cpp.o.d"
  "CMakeFiles/rsnsec_benchgen.dir/running_example.cpp.o"
  "CMakeFiles/rsnsec_benchgen.dir/running_example.cpp.o.d"
  "CMakeFiles/rsnsec_benchgen.dir/specgen.cpp.o"
  "CMakeFiles/rsnsec_benchgen.dir/specgen.cpp.o.d"
  "librsnsec_benchgen.a"
  "librsnsec_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
