# Empty compiler generated dependencies file for rsnsec_benchgen.
# This may be replaced when dependencies are built.
