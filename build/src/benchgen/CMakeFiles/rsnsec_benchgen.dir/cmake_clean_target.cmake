file(REMOVE_RECURSE
  "librsnsec_benchgen.a"
)
