file(REMOVE_RECURSE
  "librsnsec_security.a"
)
