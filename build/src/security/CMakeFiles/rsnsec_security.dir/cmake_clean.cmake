file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_security.dir/filter.cpp.o"
  "CMakeFiles/rsnsec_security.dir/filter.cpp.o.d"
  "CMakeFiles/rsnsec_security.dir/hybrid.cpp.o"
  "CMakeFiles/rsnsec_security.dir/hybrid.cpp.o.d"
  "CMakeFiles/rsnsec_security.dir/pure.cpp.o"
  "CMakeFiles/rsnsec_security.dir/pure.cpp.o.d"
  "CMakeFiles/rsnsec_security.dir/rewire.cpp.o"
  "CMakeFiles/rsnsec_security.dir/rewire.cpp.o.d"
  "CMakeFiles/rsnsec_security.dir/spec.cpp.o"
  "CMakeFiles/rsnsec_security.dir/spec.cpp.o.d"
  "CMakeFiles/rsnsec_security.dir/spec_io.cpp.o"
  "CMakeFiles/rsnsec_security.dir/spec_io.cpp.o.d"
  "librsnsec_security.a"
  "librsnsec_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
