# Empty dependencies file for rsnsec_security.
# This may be replaced when dependencies are built.
