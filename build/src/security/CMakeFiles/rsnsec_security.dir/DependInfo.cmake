
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/filter.cpp" "src/security/CMakeFiles/rsnsec_security.dir/filter.cpp.o" "gcc" "src/security/CMakeFiles/rsnsec_security.dir/filter.cpp.o.d"
  "/root/repo/src/security/hybrid.cpp" "src/security/CMakeFiles/rsnsec_security.dir/hybrid.cpp.o" "gcc" "src/security/CMakeFiles/rsnsec_security.dir/hybrid.cpp.o.d"
  "/root/repo/src/security/pure.cpp" "src/security/CMakeFiles/rsnsec_security.dir/pure.cpp.o" "gcc" "src/security/CMakeFiles/rsnsec_security.dir/pure.cpp.o.d"
  "/root/repo/src/security/rewire.cpp" "src/security/CMakeFiles/rsnsec_security.dir/rewire.cpp.o" "gcc" "src/security/CMakeFiles/rsnsec_security.dir/rewire.cpp.o.d"
  "/root/repo/src/security/spec.cpp" "src/security/CMakeFiles/rsnsec_security.dir/spec.cpp.o" "gcc" "src/security/CMakeFiles/rsnsec_security.dir/spec.cpp.o.d"
  "/root/repo/src/security/spec_io.cpp" "src/security/CMakeFiles/rsnsec_security.dir/spec_io.cpp.o" "gcc" "src/security/CMakeFiles/rsnsec_security.dir/spec_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rsn/CMakeFiles/rsnsec_rsn.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/rsnsec_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rsnsec_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/rsnsec_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsnsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
