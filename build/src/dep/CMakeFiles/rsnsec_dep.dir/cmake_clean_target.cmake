file(REMOVE_RECURSE
  "librsnsec_dep.a"
)
