# Empty compiler generated dependencies file for rsnsec_dep.
# This may be replaced when dependencies are built.
