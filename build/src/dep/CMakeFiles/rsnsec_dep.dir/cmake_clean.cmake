file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_dep.dir/analyzer.cpp.o"
  "CMakeFiles/rsnsec_dep.dir/analyzer.cpp.o.d"
  "librsnsec_dep.a"
  "librsnsec_dep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
