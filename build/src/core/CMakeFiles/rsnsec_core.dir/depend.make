# Empty dependencies file for rsnsec_core.
# This may be replaced when dependencies are built.
