file(REMOVE_RECURSE
  "librsnsec_core.a"
)
