file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_core.dir/report.cpp.o"
  "CMakeFiles/rsnsec_core.dir/report.cpp.o.d"
  "CMakeFiles/rsnsec_core.dir/tool.cpp.o"
  "CMakeFiles/rsnsec_core.dir/tool.cpp.o.d"
  "librsnsec_core.a"
  "librsnsec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
