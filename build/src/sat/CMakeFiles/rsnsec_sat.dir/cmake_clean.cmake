file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_sat.dir/encode.cpp.o"
  "CMakeFiles/rsnsec_sat.dir/encode.cpp.o.d"
  "CMakeFiles/rsnsec_sat.dir/solver.cpp.o"
  "CMakeFiles/rsnsec_sat.dir/solver.cpp.o.d"
  "librsnsec_sat.a"
  "librsnsec_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
