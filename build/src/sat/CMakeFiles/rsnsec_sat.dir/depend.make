# Empty dependencies file for rsnsec_sat.
# This may be replaced when dependencies are built.
