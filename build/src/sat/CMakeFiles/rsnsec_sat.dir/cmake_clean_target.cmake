file(REMOVE_RECURSE
  "librsnsec_sat.a"
)
