file(REMOVE_RECURSE
  "../bench/ablation_bridging"
  "../bench/ablation_bridging.pdb"
  "CMakeFiles/ablation_bridging.dir/ablation_bridging.cpp.o"
  "CMakeFiles/ablation_bridging.dir/ablation_bridging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bridging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
