# Empty dependencies file for table1_mbist.
# This may be replaced when dependencies are built.
