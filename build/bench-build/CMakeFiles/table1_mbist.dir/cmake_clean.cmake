file(REMOVE_RECURSE
  "../bench/table1_mbist"
  "../bench/table1_mbist.pdb"
  "CMakeFiles/table1_mbist.dir/table1_mbist.cpp.o"
  "CMakeFiles/table1_mbist.dir/table1_mbist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mbist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
