# Empty compiler generated dependencies file for rsnsec_bench_common.
# This may be replaced when dependencies are built.
