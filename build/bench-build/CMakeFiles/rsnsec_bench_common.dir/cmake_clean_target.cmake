file(REMOVE_RECURSE
  "librsnsec_bench_common.a"
)
