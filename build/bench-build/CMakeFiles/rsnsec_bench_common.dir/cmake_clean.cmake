file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_bench_common.dir/common.cpp.o"
  "CMakeFiles/rsnsec_bench_common.dir/common.cpp.o.d"
  "librsnsec_bench_common.a"
  "librsnsec_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
