# Empty dependencies file for table1_bastion.
# This may be replaced when dependencies are built.
