file(REMOVE_RECURSE
  "../bench/table1_bastion"
  "../bench/table1_bastion.pdb"
  "CMakeFiles/table1_bastion.dir/table1_bastion.cpp.o"
  "CMakeFiles/table1_bastion.dir/table1_bastion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bastion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
