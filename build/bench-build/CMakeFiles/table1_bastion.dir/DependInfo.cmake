
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_bastion.cpp" "bench-build/CMakeFiles/table1_bastion.dir/table1_bastion.cpp.o" "gcc" "bench-build/CMakeFiles/table1_bastion.dir/table1_bastion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/rsnsec_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rsnsec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/rsnsec_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/rsnsec_security.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/rsnsec_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/rsn/CMakeFiles/rsnsec_rsn.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rsnsec_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/rsnsec_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsnsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
