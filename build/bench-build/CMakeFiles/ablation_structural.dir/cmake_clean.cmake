file(REMOVE_RECURSE
  "../bench/ablation_structural"
  "../bench/ablation_structural.pdb"
  "CMakeFiles/ablation_structural.dir/ablation_structural.cpp.o"
  "CMakeFiles/ablation_structural.dir/ablation_structural.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
