# Empty dependencies file for ablation_structural.
# This may be replaced when dependencies are built.
