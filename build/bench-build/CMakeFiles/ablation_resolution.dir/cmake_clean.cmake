file(REMOVE_RECURSE
  "../bench/ablation_resolution"
  "../bench/ablation_resolution.pdb"
  "CMakeFiles/ablation_resolution.dir/ablation_resolution.cpp.o"
  "CMakeFiles/ablation_resolution.dir/ablation_resolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
