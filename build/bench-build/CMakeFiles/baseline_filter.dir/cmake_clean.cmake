file(REMOVE_RECURSE
  "../bench/baseline_filter"
  "../bench/baseline_filter.pdb"
  "CMakeFiles/baseline_filter.dir/baseline_filter.cpp.o"
  "CMakeFiles/baseline_filter.dir/baseline_filter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
