# Empty compiler generated dependencies file for soc_crypto.
# This may be replaced when dependencies are built.
