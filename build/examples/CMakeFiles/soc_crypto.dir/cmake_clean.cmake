file(REMOVE_RECURSE
  "CMakeFiles/soc_crypto.dir/soc_crypto.cpp.o"
  "CMakeFiles/soc_crypto.dir/soc_crypto.cpp.o.d"
  "soc_crypto"
  "soc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
