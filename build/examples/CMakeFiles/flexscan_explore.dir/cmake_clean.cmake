file(REMOVE_RECURSE
  "CMakeFiles/flexscan_explore.dir/flexscan_explore.cpp.o"
  "CMakeFiles/flexscan_explore.dir/flexscan_explore.cpp.o.d"
  "flexscan_explore"
  "flexscan_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexscan_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
