# Empty dependencies file for flexscan_explore.
# This may be replaced when dependencies are built.
