file(REMOVE_RECURSE
  "CMakeFiles/icl_flow.dir/icl_flow.cpp.o"
  "CMakeFiles/icl_flow.dir/icl_flow.cpp.o.d"
  "icl_flow"
  "icl_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icl_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
