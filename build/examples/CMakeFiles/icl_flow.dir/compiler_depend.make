# Empty compiler generated dependencies file for icl_flow.
# This may be replaced when dependencies are built.
