file(REMOVE_RECURSE
  "CMakeFiles/mbist_audit.dir/mbist_audit.cpp.o"
  "CMakeFiles/mbist_audit.dir/mbist_audit.cpp.o.d"
  "mbist_audit"
  "mbist_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbist_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
