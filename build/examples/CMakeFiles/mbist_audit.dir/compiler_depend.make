# Empty compiler generated dependencies file for mbist_audit.
# This may be replaced when dependencies are built.
