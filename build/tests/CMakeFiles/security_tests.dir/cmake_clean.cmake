file(REMOVE_RECURSE
  "CMakeFiles/security_tests.dir/security/adversarial_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/adversarial_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/endtoend_diff_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/endtoend_diff_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/filter_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/filter_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/hybrid_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/hybrid_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/pure_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/pure_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/rewire_fuzz_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/rewire_fuzz_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/rewire_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/rewire_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/running_example_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/running_example_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/spec_io_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/spec_io_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/spec_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/spec_test.cpp.o.d"
  "CMakeFiles/security_tests.dir/security/static_oracle_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/static_oracle_test.cpp.o.d"
  "security_tests"
  "security_tests.pdb"
  "security_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
