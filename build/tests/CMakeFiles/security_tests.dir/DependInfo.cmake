
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/security/adversarial_test.cpp" "tests/CMakeFiles/security_tests.dir/security/adversarial_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/adversarial_test.cpp.o.d"
  "/root/repo/tests/security/endtoend_diff_test.cpp" "tests/CMakeFiles/security_tests.dir/security/endtoend_diff_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/endtoend_diff_test.cpp.o.d"
  "/root/repo/tests/security/filter_test.cpp" "tests/CMakeFiles/security_tests.dir/security/filter_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/filter_test.cpp.o.d"
  "/root/repo/tests/security/hybrid_test.cpp" "tests/CMakeFiles/security_tests.dir/security/hybrid_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/hybrid_test.cpp.o.d"
  "/root/repo/tests/security/pure_test.cpp" "tests/CMakeFiles/security_tests.dir/security/pure_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/pure_test.cpp.o.d"
  "/root/repo/tests/security/rewire_fuzz_test.cpp" "tests/CMakeFiles/security_tests.dir/security/rewire_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/rewire_fuzz_test.cpp.o.d"
  "/root/repo/tests/security/rewire_test.cpp" "tests/CMakeFiles/security_tests.dir/security/rewire_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/rewire_test.cpp.o.d"
  "/root/repo/tests/security/running_example_test.cpp" "tests/CMakeFiles/security_tests.dir/security/running_example_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/running_example_test.cpp.o.d"
  "/root/repo/tests/security/spec_io_test.cpp" "tests/CMakeFiles/security_tests.dir/security/spec_io_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/spec_io_test.cpp.o.d"
  "/root/repo/tests/security/spec_test.cpp" "tests/CMakeFiles/security_tests.dir/security/spec_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/spec_test.cpp.o.d"
  "/root/repo/tests/security/static_oracle_test.cpp" "tests/CMakeFiles/security_tests.dir/security/static_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/security_tests.dir/security/static_oracle_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rsnsec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/rsnsec_security.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/rsnsec_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/rsnsec_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/rsn/CMakeFiles/rsnsec_rsn.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rsnsec_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/rsnsec_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsnsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
