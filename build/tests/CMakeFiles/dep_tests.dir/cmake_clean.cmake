file(REMOVE_RECURSE
  "CMakeFiles/dep_tests.dir/dep/analyzer_test.cpp.o"
  "CMakeFiles/dep_tests.dir/dep/analyzer_test.cpp.o.d"
  "CMakeFiles/dep_tests.dir/dep/bridging_test.cpp.o"
  "CMakeFiles/dep_tests.dir/dep/bridging_test.cpp.o.d"
  "dep_tests"
  "dep_tests.pdb"
  "dep_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dep_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
