# Empty compiler generated dependencies file for dep_tests.
# This may be replaced when dependencies are built.
