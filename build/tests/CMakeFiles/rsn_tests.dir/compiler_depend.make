# Empty compiler generated dependencies file for rsn_tests.
# This may be replaced when dependencies are built.
