file(REMOVE_RECURSE
  "CMakeFiles/rsn_tests.dir/rsn/access_test.cpp.o"
  "CMakeFiles/rsn_tests.dir/rsn/access_test.cpp.o.d"
  "CMakeFiles/rsn_tests.dir/rsn/csu_sim_test.cpp.o"
  "CMakeFiles/rsn_tests.dir/rsn/csu_sim_test.cpp.o.d"
  "CMakeFiles/rsn_tests.dir/rsn/icl_test.cpp.o"
  "CMakeFiles/rsn_tests.dir/rsn/icl_test.cpp.o.d"
  "CMakeFiles/rsn_tests.dir/rsn/io_fuzz_test.cpp.o"
  "CMakeFiles/rsn_tests.dir/rsn/io_fuzz_test.cpp.o.d"
  "CMakeFiles/rsn_tests.dir/rsn/io_test.cpp.o"
  "CMakeFiles/rsn_tests.dir/rsn/io_test.cpp.o.d"
  "CMakeFiles/rsn_tests.dir/rsn/rsn_test.cpp.o"
  "CMakeFiles/rsn_tests.dir/rsn/rsn_test.cpp.o.d"
  "rsn_tests"
  "rsn_tests.pdb"
  "rsn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
