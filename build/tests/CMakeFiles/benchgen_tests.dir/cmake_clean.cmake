file(REMOVE_RECURSE
  "CMakeFiles/benchgen_tests.dir/benchgen/circuit_test.cpp.o"
  "CMakeFiles/benchgen_tests.dir/benchgen/circuit_test.cpp.o.d"
  "CMakeFiles/benchgen_tests.dir/benchgen/families_test.cpp.o"
  "CMakeFiles/benchgen_tests.dir/benchgen/families_test.cpp.o.d"
  "CMakeFiles/benchgen_tests.dir/benchgen/specgen_test.cpp.o"
  "CMakeFiles/benchgen_tests.dir/benchgen/specgen_test.cpp.o.d"
  "benchgen_tests"
  "benchgen_tests.pdb"
  "benchgen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchgen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
