# Empty compiler generated dependencies file for benchgen_tests.
# This may be replaced when dependencies are built.
