# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/sat_tests[1]_include.cmake")
include("/root/repo/build/tests/netlist_tests[1]_include.cmake")
include("/root/repo/build/tests/rsn_tests[1]_include.cmake")
include("/root/repo/build/tests/dep_tests[1]_include.cmake")
include("/root/repo/build/tests/security_tests[1]_include.cmake")
include("/root/repo/build/tests/benchgen_tests[1]_include.cmake")
include("/root/repo/build/tests/cli_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
