# Empty compiler generated dependencies file for rsnsec.
# This may be replaced when dependencies are built.
