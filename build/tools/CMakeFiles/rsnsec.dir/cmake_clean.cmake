file(REMOVE_RECURSE
  "CMakeFiles/rsnsec.dir/main.cpp.o"
  "CMakeFiles/rsnsec.dir/main.cpp.o.d"
  "rsnsec"
  "rsnsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
