# Empty dependencies file for rsnsec_cli.
# This may be replaced when dependencies are built.
