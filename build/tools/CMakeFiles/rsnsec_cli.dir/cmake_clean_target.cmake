file(REMOVE_RECURSE
  "librsnsec_cli.a"
)
