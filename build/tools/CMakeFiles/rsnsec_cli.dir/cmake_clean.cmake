file(REMOVE_RECURSE
  "CMakeFiles/rsnsec_cli.dir/cli.cpp.o"
  "CMakeFiles/rsnsec_cli.dir/cli.cpp.o.d"
  "librsnsec_cli.a"
  "librsnsec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsnsec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
