#include "benchgen/families.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rsnsec::benchgen {
namespace {

TEST(Families, ProfilesMatchPaperTable1) {
  const auto& profiles = bastion_profiles();
  ASSERT_EQ(profiles.size(), 13u);
  EXPECT_EQ(bastion_profile("BasicSCB").scan_ffs, 176u);
  EXPECT_EQ(bastion_profile("FlexScan").registers, 8485u);
  EXPECT_EQ(bastion_profile("FlexScan").muxes, 4243u);
  EXPECT_EQ(bastion_profile("p93791").registers, 1185u);
  EXPECT_EQ(bastion_profile("p93791").scan_ffs, 98611u);
  EXPECT_EQ(bastion_profile("TreeUnbalanced").scan_ffs, 41887u);
  EXPECT_THROW(bastion_profile("nope"), std::invalid_argument);
}

TEST(Families, FullScaleSmallBenchmarksMatchCounts) {
  Rng rng(1);
  for (const char* name : {"BasicSCB", "Mingle", "TreeFlat"}) {
    const BenchmarkProfile& p = bastion_profile(name);
    rsn::RsnDocument doc = generate_bastion(p, 1.0, rng);
    EXPECT_EQ(doc.network.registers().size(), p.registers) << name;
    EXPECT_EQ(doc.network.num_scan_ffs(), p.scan_ffs) << name;
    // Mux counts are matched exactly for chains; trees may use slightly
    // fewer when subnets bottom out early.
    EXPECT_LE(doc.network.muxes().size(), p.muxes) << name;
    EXPECT_GE(doc.network.muxes().size(), p.muxes / 2) << name;
    std::string err;
    EXPECT_TRUE(doc.network.validate(&err)) << name << ": " << err;
  }
}

TEST(Families, FullScaleRegisterAndFfCountsMatchForAll) {
  // At scale 1 every family reproduces the published register and
  // scan-FF counts exactly; mux counts are exact for chains/SoC wrappers
  // and within [half, full] for trees (subnets may bottom out early).
  Rng rng(2);
  for (const BenchmarkProfile& p : bastion_profiles()) {
    rsn::RsnDocument doc = generate_bastion(p, 1.0, rng);
    EXPECT_EQ(doc.network.registers().size(), p.registers) << p.name;
    EXPECT_EQ(doc.network.num_scan_ffs(), p.scan_ffs) << p.name;
    EXPECT_LE(doc.network.muxes().size(), p.muxes) << p.name;
    EXPECT_GE(doc.network.muxes().size(), p.muxes / 2) << p.name;
    std::string err;
    EXPECT_TRUE(doc.network.validate(&err)) << p.name << ": " << err;
  }
}

class AllFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(AllFamilies, ScaledGenerationIsValid) {
  Rng rng(7);
  const BenchmarkProfile& p = bastion_profile(GetParam());
  rsn::RsnDocument doc = generate_bastion(p, 0.02, rng);
  std::string err;
  EXPECT_TRUE(doc.network.validate(&err)) << err;
  EXPECT_GE(doc.network.registers().size(), 3u);
  EXPECT_GE(doc.network.num_scan_ffs(), doc.network.registers().size());
  EXPECT_FALSE(doc.module_names.empty());
  // Every register's module index is valid.
  for (rsn::ElemId r : doc.network.registers()) {
    auto m = doc.network.elem(r).module;
    EXPECT_GE(m, 0);
    EXPECT_LT(static_cast<std::size_t>(m), doc.module_names.size());
  }
}

TEST_P(AllFamilies, GenerationIsDeterministic) {
  Rng rng1(99), rng2(99);
  const BenchmarkProfile& p = bastion_profile(GetParam());
  rsn::RsnDocument a = generate_bastion(p, 0.05, rng1);
  rsn::RsnDocument b = generate_bastion(p, 0.05, rng2);
  EXPECT_EQ(a.network.registers().size(), b.network.registers().size());
  EXPECT_EQ(a.network.num_scan_ffs(), b.network.num_scan_ffs());
  EXPECT_EQ(a.network.muxes().size(), b.network.muxes().size());
}

INSTANTIATE_TEST_SUITE_P(
    Bastion, AllFamilies,
    ::testing::Values("BasicSCB", "Mingle", "TreeFlat", "TreeFlatEx",
                      "TreeBalanced", "TreeUnbalanced", "q12710", "t512505",
                      "p22810", "a586710", "p34392", "p93791", "FlexScan"));

TEST(Mbist, FullScaleCountsMatchPaperFormulas) {
  // regs = 2 + n*(11 + m*(5 + 3o)); ffs = 5 + n*(3 + m*(43 + 13o)).
  struct Case {
    std::size_t n, m, o, regs, ffs;
  };
  // Structural counts from Table I.
  const Case cases[] = {
      {1, 5, 5, 113, 548},   {1, 5, 20, 338, 1523},
      {2, 5, 5, 224, 1091},  {5, 5, 5, 557, 2720},
      {1, 20, 20, 1313, 6068},
  };
  for (const Case& c : cases) {
    rsn::RsnDocument doc = generate_mbist(c.n, c.m, c.o, 1.0);
    EXPECT_EQ(doc.network.registers().size(), c.regs)
        << c.n << "_" << c.m << "_" << c.o;
    EXPECT_EQ(doc.network.num_scan_ffs(), c.ffs)
        << c.n << "_" << c.m << "_" << c.o;
    std::string err;
    EXPECT_TRUE(doc.network.validate(&err)) << err;
  }
}

TEST(Mbist, HierarchicalModules) {
  rsn::RsnDocument doc = generate_mbist(2, 3, 2, 1.0);
  // chip + 2 cores + 6 controllers.
  EXPECT_EQ(doc.module_names.size(), 1u + 2u + 6u);
  EXPECT_EQ(doc.network.name(), "MBIST_2_3_2");
  // Published mux totals: n*(2m+5) - 2(n-1).
  EXPECT_EQ(doc.network.muxes().size(), 2u * (2 * 3 + 5) - 2u);
}

TEST(Mbist, MuxCountsMatchPaperFormula) {
  struct Case {
    std::size_t n, m, o, muxes;
  };
  const Case cases[] = {
      {1, 5, 5, 15}, {1, 5, 20, 15}, {1, 20, 20, 45},
      {2, 5, 5, 28}, {2, 20, 20, 88}, {5, 5, 5, 67},
      {5, 20, 20, 217}, {20, 20, 20, 862},
  };
  for (const Case& c : cases) {
    rsn::RsnDocument doc = generate_mbist(c.n, c.m, c.o, 1.0);
    EXPECT_EQ(doc.network.muxes().size(), c.muxes)
        << c.n << "_" << c.m << "_" << c.o;
  }
}

TEST(Mbist, ScalingShrinksDimensions) {
  rsn::RsnDocument big = generate_mbist(5, 5, 5, 1.0);
  rsn::RsnDocument small = generate_mbist(5, 5, 5, 0.05);
  EXPECT_LT(small.network.registers().size(),
            big.network.registers().size());
  std::string err;
  EXPECT_TRUE(small.network.validate(&err)) << err;
}

TEST(Mbist, ConfigListMatchesTable1) {
  EXPECT_EQ(mbist_configs().size(), 9u);
  EXPECT_EQ(mbist_configs().front(), (std::array<std::size_t, 3>{1, 5, 5}));
  EXPECT_EQ(mbist_configs().back(),
            (std::array<std::size_t, 3>{20, 20, 20}));
}

TEST(Mbist, OverflowingDimensionsAreRejected) {
  // A dimension product past the generator's sanity bound must refuse
  // loudly (std::overflow_error, which the CLI maps to exit 2) instead of
  // wrapping and silently generating a tiny wrong-shaped network.
  EXPECT_THROW(generate_mbist(std::size_t{1} << 62, 5, 5, 1.0),
               std::overflow_error);
  EXPECT_THROW(generate_mbist(std::size_t{1} << 31, std::size_t{1} << 31, 5,
                              1.0),
               std::overflow_error);
  EXPECT_THROW(generate_mbist(1u << 20, 1u << 20, 1u << 20, 1.0),
               std::overflow_error);
  // Scale applies before the bound check: a huge scale on small
  // dimensions is just as much of an overflow...
  EXPECT_THROW(generate_mbist(2, 5, 5, 1e30), std::overflow_error);
  // ... and a small scale on huge dimensions brings them back in range.
  rsn::RsnDocument doc = generate_mbist(2000, 5, 5, 1e-3);
  std::string err;
  EXPECT_TRUE(doc.network.validate(&err)) << err;
}

TEST(Bastion, OverflowingScaleIsRejected) {
  Rng rng(1);
  EXPECT_THROW(generate_bastion(bastion_profile("Mingle"), 1e300, rng),
               std::overflow_error);
}

}  // namespace
}  // namespace rsnsec::benchgen
