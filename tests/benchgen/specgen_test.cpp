#include "benchgen/specgen.hpp"

#include <gtest/gtest.h>

namespace rsnsec::benchgen {
namespace {

TEST(SpecGen, AlwaysValidates) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    security::SecuritySpec spec = random_spec(12, {}, rng);
    std::string err;
    EXPECT_TRUE(spec.validate(&err)) << err;
  }
}

TEST(SpecGen, RespectsCategoryCount) {
  Rng rng(2);
  SpecOptions opt;
  opt.categories = 3;
  security::SecuritySpec spec = random_spec(8, opt, rng);
  EXPECT_EQ(spec.num_categories(), 3u);
  for (netlist::ModuleId m = 0; m < 8; ++m)
    EXPECT_LT(spec.policy(m).trust, 3u);
}

TEST(SpecGen, RestrictiveKnobProducesRestrictions) {
  Rng rng(3);
  SpecOptions restrictive;
  restrictive.sensitive_module_prob = 1.0;
  restrictive.expected_sensitive_modules = 100;  // all 20 modules sensitive
  restrictive.restrict_prob = 0.9;
  security::SecuritySpec spec = random_spec(20, restrictive, rng);
  security::TokenTable tokens(spec, 20);
  EXPECT_GT(tokens.num_tokens(), 0u);
}

TEST(SpecGen, PermissiveKnobProducesFewTokens) {
  Rng rng(4);
  SpecOptions permissive;
  permissive.restrict_prob = 0.0;
  security::SecuritySpec spec = random_spec(20, permissive, rng);
  security::TokenTable tokens(spec, 20);
  EXPECT_EQ(tokens.num_tokens(), 0u);
}

TEST(SpecGen, DeterministicForSeed) {
  Rng r1(5), r2(5);
  security::SecuritySpec a = random_spec(10, {}, r1);
  security::SecuritySpec b = random_spec(10, {}, r2);
  for (netlist::ModuleId m = 0; m < 10; ++m) {
    EXPECT_EQ(a.policy(m).trust, b.policy(m).trust);
    EXPECT_EQ(a.policy(m).accepted, b.policy(m).accepted);
  }
}

}  // namespace
}  // namespace rsnsec::benchgen
