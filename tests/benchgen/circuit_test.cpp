#include "benchgen/circuit.hpp"

#include <gtest/gtest.h>

#include "benchgen/families.hpp"
#include "dep/analyzer.hpp"

namespace rsnsec::benchgen {
namespace {

rsn::RsnDocument small_doc() {
  Rng rng(3);
  return generate_bastion(bastion_profile("BasicSCB"), 0.3, rng);
}

TEST(CircuitGen, ProducesValidNetlist) {
  rsn::RsnDocument doc = small_doc();
  Rng rng(11);
  netlist::Netlist nl = attach_random_circuit(doc, {}, rng);
  std::string err;
  EXPECT_TRUE(nl.validate(&err)) << err;
  EXPECT_EQ(nl.num_modules(), doc.module_names.size());
  EXPECT_GT(nl.ffs().size(), 0u);
}

TEST(CircuitGen, AttachesCaptureAndUpdate) {
  rsn::RsnDocument doc = small_doc();
  Rng rng(11);
  attach_random_circuit(doc, {}, rng);
  std::size_t captures = 0, updates = 0;
  for (rsn::ElemId r : doc.network.registers()) {
    for (const rsn::ScanFF& f : doc.network.elem(r).ffs) {
      captures += (f.capture_src != netlist::no_node);
      updates += (f.update_dst != netlist::no_node);
    }
  }
  EXPECT_GT(captures, 0u);
  EXPECT_GT(updates, 0u);
}

TEST(CircuitGen, CaptureAndUpdateStayInOwnModule) {
  // The generator draws capture/update attachments from the register's
  // own module (prevents unresolvable intra-segment flows; DESIGN.md).
  rsn::RsnDocument doc = small_doc();
  Rng rng(13);
  netlist::Netlist nl = attach_random_circuit(doc, {}, rng);
  for (rsn::ElemId r : doc.network.registers()) {
    auto reg_mod = doc.network.elem(r).module;
    for (const rsn::ScanFF& f : doc.network.elem(r).ffs) {
      if (f.update_dst != netlist::no_node)
        EXPECT_EQ(nl.node(f.update_dst).module, reg_mod);
      if (f.capture_src != netlist::no_node)
        EXPECT_EQ(nl.node(f.capture_src).module, reg_mod);
    }
  }
}

TEST(CircuitGen, DeterministicForSameSeed) {
  rsn::RsnDocument d1 = small_doc();
  rsn::RsnDocument d2 = small_doc();
  Rng r1(42), r2(42);
  netlist::Netlist n1 = attach_random_circuit(d1, {}, r1);
  netlist::Netlist n2 = attach_random_circuit(d2, {}, r2);
  EXPECT_EQ(n1.num_nodes(), n2.num_nodes());
  EXPECT_EQ(n1.ffs().size(), n2.ffs().size());
}

TEST(CircuitGen, CreatesInternalFlipFlops) {
  rsn::RsnDocument doc = small_doc();
  Rng rng(17);
  netlist::Netlist nl = attach_random_circuit(doc, {}, rng);
  dep::DependencyAnalyzer deps(nl, doc.network, {});
  deps.run();
  EXPECT_GT(deps.stats().internal_ffs, 0u);
  EXPECT_LT(deps.stats().internal_ffs, deps.stats().circuit_ffs);
}

TEST(CircuitGen, CancellingPatternsYieldStructuralDeps) {
  rsn::RsnDocument doc = small_doc();
  CircuitOptions opt;
  opt.cancelling_prob = 0.5;  // force plenty of reconvergences
  Rng rng(19);
  netlist::Netlist nl = attach_random_circuit(doc, opt, rng);
  dep::DependencyAnalyzer deps(nl, doc.network, {});
  deps.run();
  EXPECT_GT(deps.stats().sat_structural, 0u);
}

TEST(CircuitGen, CrossModulePathsExist) {
  rsn::RsnDocument doc = small_doc();
  CircuitOptions opt;
  opt.target_cross_functional = 20;
  Rng rng(23);
  netlist::Netlist nl = attach_random_circuit(doc, opt, rng);
  bool cross = false;
  for (netlist::NodeId ff : nl.ffs()) {
    netlist::Cone cone = nl.extract_next_state_cone(ff);
    for (netlist::NodeId leaf : cone.leaves) {
      if (nl.is_ff(leaf) && nl.node(leaf).module != nl.node(ff).module)
        cross = true;
    }
  }
  EXPECT_TRUE(cross);
}

}  // namespace
}  // namespace rsnsec::benchgen
