// Out-of-core tier of the tiled matrices: the ArtifactSpillBackend
// round-trips and deduplicates tile blobs through the store, tiled
// analysis snapshots restore bit-identically via run_with_store, and the
// v4 cache key separates matrix representations (their payload formats
// differ).

#include "store/tile_spill.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "benchgen/circuit.hpp"
#include "benchgen/families.hpp"
#include "dep/analyzer.hpp"
#include "store/artifact_store.hpp"
#include "store/codec.hpp"
#include "store/dep_cache.hpp"

namespace rsnsec::store {
namespace {

namespace fs = std::filesystem;

using dep::DependencyAnalyzer;
using dep::DepOptions;

fs::path test_root() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::temp_directory_path() / "rsnsec_tile_spill_tests" /
                 (std::string(info->test_suite_name()) + "." + info->name());
  fs::remove_all(dir);
  return dir;
}

struct Workload {
  rsn::RsnDocument doc;
  netlist::Netlist circuit;

  explicit Workload(const std::string& family, double target_ffs = 100) {
    Rng rng(11);
    const benchgen::BenchmarkProfile& p = benchgen::bastion_profile(family);
    double scale = target_ffs / static_cast<double>(p.scan_ffs);
    if (scale > 1.0) scale = 1.0;
    doc = benchgen::generate_bastion(p, scale, rng);
    circuit = benchgen::attach_random_circuit(doc, {}, rng);
  }
};

TEST(ArtifactSpillBackendTest, RoundTripsAndDeduplicatesTiles) {
  ArtifactStore store(test_root().string());
  ArtifactSpillBackend backend(&store);

  std::string tile_a(sizeof(TiledDepMatrix::Tile), '\x5a');
  std::string tile_b(sizeof(TiledDepMatrix::Tile), '\x33');
  std::string ha = backend.store(tile_a);
  std::string hb = backend.store(tile_b);
  EXPECT_NE(ha, hb);
  // Identical content deduplicates to the identical handle and a single
  // stored object (the all-ones closure block case).
  EXPECT_EQ(backend.store(tile_a), ha);
  EXPECT_EQ(store.disk_stats().objects, 2u);

  std::string out;
  ASSERT_TRUE(backend.fetch(ha, &out));
  EXPECT_EQ(out, tile_a);
  ASSERT_TRUE(backend.fetch(hb, &out));
  EXPECT_EQ(out, tile_b);
  EXPECT_FALSE(backend.fetch(Sha256::hex("no such tile"), &out));
}

TEST(ArtifactSpillBackendTest, SpilledMatrixEncodesAndRestores) {
  ArtifactStore store(test_root().string());
  ArtifactSpillBackend backend(&store);

  const std::size_t n = 400;
  TiledDepMatrix m(n);
  Rng rng(7);
  for (std::size_t e = 0; e < 3 * n; ++e) {
    m.upgrade(rng.below(n), rng.below(n),
              rng.chance(0.5) ? DepKind::Path : DepKind::Structural);
  }
  TiledDepMatrix resident = m;  // detached, fully-resident copy
  // Attaching immediately enforces the budget (one tile), spilling
  // essentially every tile.
  m.set_spill(&backend, sizeof(TiledDepMatrix::Tile));
  EXPECT_GT(m.tiles_spilled(), 0u);

  // The codec walks every tile through acquire(), so spilled tiles are
  // faulted back in transparently and the blob equals the resident one's.
  ByteWriter spilled_bytes;
  encode_tiled_matrix(spilled_bytes, m);
  ByteWriter resident_bytes;
  encode_tiled_matrix(resident_bytes, resident);
  EXPECT_EQ(spilled_bytes.bytes(), resident_bytes.bytes());

  ByteReader r(spilled_bytes.bytes());
  TiledDepMatrix back = decode_tiled_matrix(r);
  r.expect_end();
  EXPECT_TRUE(back.to_dense() == resident.to_dense());
}

TEST(TiledDepCacheTest, TiledSnapshotRestoresBitIdentically) {
  Workload w("Mingle");
  DepOptions opt;
  opt.partition = dep::PartitionMode::Tiled;
  ArtifactStore store(test_root().string());

  DependencyAnalyzer cold(w.circuit, w.doc.network, opt);
  EXPECT_FALSE(run_with_store(&store, cold));

  DependencyAnalyzer warm(w.circuit, w.doc.network, opt);
  EXPECT_TRUE(run_with_store(&store, warm));
  EXPECT_TRUE(warm.tiled());
  EXPECT_EQ(warm.stats().threads_used, 0u);  // served, not computed
  EXPECT_TRUE(warm.one_cycle_tiled().to_dense() ==
              cold.one_cycle_tiled().to_dense());
  EXPECT_TRUE(warm.circuit_closure_tiled().to_dense() ==
              cold.circuit_closure_tiled().to_dense());
  EXPECT_EQ(warm.stats().closure_deps, cold.stats().closure_deps);
  EXPECT_EQ(warm.stats().closure_path_deps, cold.stats().closure_path_deps);
  EXPECT_EQ(warm.stats().sat_calls, cold.stats().sat_calls);
  // regions is recomputed live (pure function of the circuit), and the
  // footprint is refreshed from the restored matrices.
  EXPECT_EQ(warm.stats().regions, cold.stats().regions);
  EXPECT_EQ(warm.stats().tiles_nonzero, cold.stats().tiles_nonzero);
  EXPECT_GT(warm.stats().matrix_bytes, 0u);
  // memory_bytes is content-derived, so the restored footprint must match
  // the computed one exactly — otherwise warm analyze reports diverge
  // from cold ones on tiled workloads.
  EXPECT_EQ(warm.stats().matrix_bytes, cold.stats().matrix_bytes);
}

TEST(TiledDepCacheTest, CacheKeySeparatesRepresentations) {
  Workload w("BasicSCB");
  DepOptions opt;
  opt.partition = dep::PartitionMode::Auto;
  std::string k_auto = dep_cache_key(w.circuit, w.doc.network, opt);
  opt.partition = dep::PartitionMode::Dense;
  std::string k_dense = dep_cache_key(w.circuit, w.doc.network, opt);
  opt.partition = dep::PartitionMode::Tiled;
  std::string k_tiled = dep_cache_key(w.circuit, w.doc.network, opt);
  EXPECT_NE(k_auto, k_dense);
  EXPECT_NE(k_auto, k_tiled);
  EXPECT_NE(k_dense, k_tiled);

  // The spill budget is an execution knob: any budget, same key (the
  // snapshot is always fully resident).
  opt.tile_spill_budget = 1 << 20;
  EXPECT_EQ(dep_cache_key(w.circuit, w.doc.network, opt), k_tiled);
}

TEST(TiledDepCacheTest, TamperedRepresentationFlagIsRejected) {
  Workload w("BasicSCB");
  DepOptions opt;
  opt.partition = dep::PartitionMode::Tiled;
  DependencyAnalyzer a(w.circuit, w.doc.network, opt);
  a.run();

  ByteWriter wtr;
  encode_dep_snapshot(wtr, a.snapshot());
  std::string bytes = wtr.bytes();
  // The representation flag sits right after the internal-FF bit vector:
  // varint(n) (one byte for n < 128) + ceil(n/64) fixed64 words.
  std::size_t n = a.num_circuit_ffs();
  ASSERT_LT(n, 128u);
  std::size_t flag_off = 1 + ((n + 63) / 64) * 8;
  ASSERT_EQ(bytes[flag_off], 1);  // tiled
  bytes[flag_off] = 2;
  ByteReader r(bytes);
  EXPECT_THROW((void)decode_dep_snapshot(r), CodecError);
}

TEST(TiledDepCacheTest, MismatchedRepresentationBlobIsDiscarded) {
  // A tiled analyzer must never restore a dense snapshot (and vice
  // versa); with the v4 key split this can only happen if a blob is
  // planted under the wrong key — which restore() then refuses.
  Workload w("Mingle");
  DepOptions dense_opt;
  dense_opt.partition = dep::PartitionMode::Dense;
  DependencyAnalyzer dense(w.circuit, w.doc.network, dense_opt);
  dense.run();

  DepOptions tiled_opt;
  tiled_opt.partition = dep::PartitionMode::Tiled;
  ArtifactStore store(test_root().string());
  std::string tiled_key = dep_cache_key(w.circuit, w.doc.network, tiled_opt);
  ByteWriter wtr;
  encode_dep_snapshot(wtr, dense.snapshot());
  store.put(tiled_key, wtr.bytes());

  DependencyAnalyzer tiled(w.circuit, w.doc.network, tiled_opt);
  // The planted dense blob is rejected and the analysis recomputed.
  EXPECT_FALSE(run_with_store(&store, tiled));
  EXPECT_TRUE(tiled.tiled());
  EXPECT_TRUE(tiled.circuit_closure_tiled().to_dense() ==
              dense.circuit_closure());
}

}  // namespace
}  // namespace rsnsec::store
