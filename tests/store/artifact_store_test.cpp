// ArtifactStore behavior under normal and hostile conditions: round
// trips, corruption (truncation, bit flips, version skew) as clean
// misses with quarantine, LRU garbage collection, the memory tier, and
// concurrent writers racing on one key.

#include "store/artifact_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "store/codec.hpp"

namespace rsnsec::store {
namespace {

namespace fs = std::filesystem;

/// Fresh, empty store root per test.
fs::path test_root() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::temp_directory_path() / "rsnsec_store_tests" /
                 (std::string(info->test_suite_name()) + "." + info->name());
  fs::remove_all(dir);
  return dir;
}

std::string key_of(std::string_view payload) { return Sha256::hex(payload); }

fs::path object_file(const fs::path& root, const std::string& key) {
  return root / "objects" / key.substr(0, 2) / (key + ".art");
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(StoreKey, ShapeValidation) {
  EXPECT_TRUE(is_store_key(std::string(64, 'a')));
  EXPECT_TRUE(is_store_key(key_of("x")));
  EXPECT_FALSE(is_store_key(std::string(63, 'a')));
  EXPECT_FALSE(is_store_key(std::string(65, 'a')));
  EXPECT_FALSE(is_store_key(std::string(64, 'A')));  // uppercase
  EXPECT_FALSE(is_store_key(std::string(64, 'g')));
  EXPECT_FALSE(is_store_key("../../../../etc/passwd"));
}

TEST(ArtifactStore, PutLoadRoundTrip) {
  fs::path root = test_root();
  ArtifactStore store(root);
  const std::string payload = "the quick brown fox";
  const std::string key = key_of(payload);

  EXPECT_FALSE(store.load(key).has_value());  // absence is a plain miss
  EXPECT_EQ(store.counters().corrupt, 0u);

  store.put(key, payload);
  std::optional<std::string> got = store.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);

  // A second instance over the same root exercises the disk path.
  ArtifactStore reopened(root);
  got = reopened.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);

  DiskStats stats = store.disk_stats();
  EXPECT_EQ(stats.objects, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_GT(stats.bytes, payload.size());  // envelope overhead
}

TEST(ArtifactStore, RejectsMalformedKey) {
  ArtifactStore store(test_root());
  EXPECT_THROW(store.put("not-a-key", "x"), std::runtime_error);
  EXPECT_THROW(store.put(std::string(64, 'G'), "x"), std::runtime_error);
}

TEST(ArtifactStore, TruncatedBlobIsMissAndQuarantined) {
  fs::path root = test_root();
  const std::string payload(100, 'p');
  const std::string key = key_of(payload);
  {
    ArtifactStore writer(root);
    writer.put(key, payload);
  }
  fs::path file = object_file(root, key);
  std::string blob = read_file(file);
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{7},
                           blob.size() / 2, blob.size() - 1}) {
    write_file(file, blob.substr(0, keep));
    StoreOptions opt;
    opt.memory_tier = false;
    ArtifactStore store(root, opt);
    EXPECT_FALSE(store.load(key).has_value()) << "kept " << keep << " bytes";
    EXPECT_EQ(store.counters().corrupt, 1u);
    EXPECT_FALSE(fs::exists(file));  // moved to quarantine
    EXPECT_GE(store.disk_stats().quarantined, 1u);
    // A repeat lookup is a plain miss; nothing left to quarantine.
    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_EQ(store.counters().corrupt, 1u);
    write_file(file, blob);  // restore for the next truncation point
  }
}

TEST(ArtifactStore, EveryBitFlipIsMissOrIntact) {
  fs::path root = test_root();
  const std::string payload = "sensitive analysis result";
  const std::string key = key_of(payload);
  {
    ArtifactStore writer(root);
    writer.put(key, payload);
  }
  fs::path file = object_file(root, key);
  const std::string blob = read_file(file);
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    std::string mutated = blob;
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ 0x40);
    write_file(file, mutated);
    StoreOptions opt;
    opt.memory_tier = false;
    ArtifactStore store(root, opt);
    std::optional<std::string> got = store.load(key);
    // The FNV checksum covers every byte before the trailer and the
    // trailer is the checksum itself, so any single flip must be caught.
    EXPECT_FALSE(got.has_value()) << "flip at byte " << byte;
    EXPECT_EQ(store.counters().corrupt, 1u) << "flip at byte " << byte;
    write_file(file, blob);
  }
}

TEST(ArtifactStore, VersionSkewIsMissAndQuarantined) {
  fs::path root = test_root();
  const std::string payload = "from-the-future";
  const std::string key = key_of(payload);
  {
    ArtifactStore writer(root);
    writer.put(key, payload);
  }
  fs::path file = object_file(root, key);
  std::string blob = read_file(file);
  // Bump the version field (byte 4, little-endian u32) and re-checksum so
  // only the version mismatches — simulating a blob written by a newer
  // format revision.
  blob[4] = static_cast<char>(static_cast<unsigned char>(blob[4]) + 1);
  std::uint64_t sum =
      fnv1a64(std::string_view(blob).substr(0, blob.size() - 8));
  for (int i = 0; i < 8; ++i)
    blob[blob.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  write_file(file, blob);

  StoreOptions opt;
  opt.memory_tier = false;
  ArtifactStore store(root, opt);
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_FALSE(fs::exists(file));
  EXPECT_EQ(store.disk_stats().quarantined, 1u);
}

TEST(ArtifactStore, MemoryTierServesAfterDiskLoss) {
  fs::path root = test_root();
  ArtifactStore store(root);
  const std::string payload = "cached in memory";
  const std::string key = key_of(payload);
  store.put(key, payload);
  fs::remove(object_file(root, key));
  std::optional<std::string> got = store.load(key);
  ASSERT_TRUE(got.has_value());  // served from the memory tier
  EXPECT_EQ(*got, payload);
}

TEST(ArtifactStore, MemoryTierRespectsByteCap) {
  StoreOptions opt;
  opt.memory_max_bytes = 250;  // fits two 100-byte payloads, not three
  ArtifactStore store(test_root(), opt);
  std::vector<std::string> keys;
  for (char c : {'a', 'b', 'c'}) {
    std::string payload(100, c);
    keys.push_back(key_of(payload));
    store.put(keys.back(), payload);
  }
  // Evict-from-memory is observable by deleting the disk copies.
  for (const std::string& k : keys)
    fs::remove(object_file(store.root(), k));
  EXPECT_FALSE(store.load(keys[0]).has_value());  // LRU victim
  EXPECT_TRUE(store.load(keys[1]).has_value());
  EXPECT_TRUE(store.load(keys[2]).has_value());
}

TEST(ArtifactStore, GcEvictsLeastRecentlyUsedFirst) {
  fs::path root = test_root();
  StoreOptions opt;
  opt.memory_tier = false;
  ArtifactStore store(root, opt);
  std::vector<std::string> keys;
  for (char c : {'1', '2', '3'}) {
    std::string payload(100, c);
    keys.push_back(key_of(payload));
    store.put(keys.back(), payload);
  }
  // Pin distinct mtimes so LRU order is deterministic regardless of
  // filesystem timestamp granularity: keys[0] oldest.
  auto now = fs::file_time_type::clock::now();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    fs::last_write_time(object_file(root, keys[i]),
                        now - std::chrono::minutes(10 - static_cast<int>(i)));
  }
  std::uint64_t blob_size = store.disk_stats().bytes / 3;
  std::size_t evicted = store.gc(2 * blob_size);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(store.counters().evictions, 1u);
  EXPECT_FALSE(store.load(keys[0]).has_value());
  EXPECT_TRUE(store.load(keys[1]).has_value());
  EXPECT_TRUE(store.load(keys[2]).has_value());
  EXPECT_EQ(store.disk_stats().objects, 2u);
}

TEST(ArtifactStore, GcTreatsMtimeFailureAsOldestNotImmortal) {
  // Regression: gc() used to ignore the error_code of last_write_time,
  // leaving the object's mtime default-initialized *and* its size out of
  // the running total — which both skewed the cap accounting and could
  // never be pinned down in a test. The contract now: a failed mtime
  // read makes the object an oldest-first eviction candidate (and bumps
  // the mtime_errors counter); it must never silently survive gc.
  fs::path root = test_root();
  const std::string p_bad(100, 'b');
  const std::string p_ok(100, 'k');
  const std::string bad_key = key_of(p_bad);
  StoreOptions opt;
  opt.memory_tier = false;
  opt.mtime_probe = [bad_key](const fs::path& p, std::error_code& ec) {
    if (p.filename().string().find(bad_key) != std::string::npos) {
      ec = std::make_error_code(std::errc::io_error);
      return fs::file_time_type{};
    }
    return fs::last_write_time(p, ec);
  };
  ArtifactStore store(root, opt);
  store.put(key_of(p_ok), p_ok);
  store.put(bad_key, p_bad);
  // Make the healthy object much older on disk: by real mtime it would
  // be the LRU victim, so eviction of the *probed-bad* object proves the
  // error path demotes it below every readable object.
  fs::last_write_time(object_file(root, key_of(p_ok)),
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(24));
  std::uint64_t one_blob = store.disk_stats().bytes / 2;
  EXPECT_EQ(store.gc(one_blob), 1u);
  EXPECT_FALSE(store.load(bad_key).has_value());
  EXPECT_TRUE(store.load(key_of(p_ok)).has_value());
  EXPECT_GE(store.counters().mtime_errors, 1u);
  EXPECT_EQ(store.counters().evictions, 1u);
  EXPECT_EQ(store.disk_stats().objects, 1u);
}

TEST(ArtifactStore, GcToZeroEmptiesDiskAndMemory) {
  ArtifactStore store(test_root());
  const std::string payload = "ephemeral";
  const std::string key = key_of(payload);
  store.put(key, payload);
  ASSERT_TRUE(store.load(key).has_value());
  EXPECT_EQ(store.gc(0), 1u);
  EXPECT_EQ(store.disk_stats().objects, 0u);
  // The memory tier must be dropped too, or a "cold" rerun in this
  // process would silently stay warm.
  EXPECT_FALSE(store.load(key).has_value());
}

TEST(ArtifactStore, MaxBytesTriggersAutoGcOnPut) {
  fs::path root = test_root();
  StoreOptions opt;
  opt.memory_tier = false;
  // One wrapped 100-byte blob is 116 bytes; cap below two of them.
  opt.max_bytes = 200;
  ArtifactStore store(root, opt);
  std::string p1(100, 'x'), p2(100, 'y');
  store.put(key_of(p1), p1);
  // Age the first blob so it is the unambiguous LRU victim.
  fs::last_write_time(
      object_file(root, key_of(p1)),
      fs::file_time_type::clock::now() - std::chrono::minutes(5));
  store.put(key_of(p2), p2);
  EXPECT_EQ(store.disk_stats().objects, 1u);
  EXPECT_TRUE(store.load(key_of(p2)).has_value());
  EXPECT_FALSE(store.load(key_of(p1)).has_value());
}

TEST(ArtifactStore, VerifyReportsAndQuarantinesCorruption) {
  fs::path root = test_root();
  ArtifactStore store(root);
  std::string good = "good payload", bad = "bad payload";
  store.put(key_of(good), good);
  store.put(key_of(bad), bad);
  // Corrupt the second object in place.
  fs::path victim = object_file(root, key_of(bad));
  std::string blob = read_file(victim);
  blob[blob.size() / 2] ^= 0x01;
  write_file(victim, blob);

  VerifyResult result = store.verify();
  EXPECT_EQ(result.valid, 1u);
  EXPECT_EQ(result.corrupt, 1u);
  EXPECT_FALSE(fs::exists(victim));
  EXPECT_EQ(store.disk_stats().quarantined, 1u);
  EXPECT_EQ(store.disk_stats().objects, 1u);
}

TEST(ArtifactStore, DiscardDropsMemoryAndQuarantinesDisk) {
  fs::path root = test_root();
  ArtifactStore store(root);
  const std::string payload = "poisoned";
  const std::string key = key_of(payload);
  store.put(key, payload);
  store.discard(key);
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_EQ(store.disk_stats().objects, 0u);
  EXPECT_EQ(store.disk_stats().quarantined, 1u);
}

TEST(ArtifactStore, HitMissCountersAreManual) {
  ArtifactStore store(test_root());
  store.note_hit();
  store.note_hit();
  store.note_miss();
  StoreCounters c = store.counters();
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.misses, 1u);
}

TEST(ArtifactStore, ConcurrentWritersOfOneKeyStayConsistent) {
  fs::path root = test_root();
  ArtifactStore store(root);
  const std::string payload(1024, 'z');
  const std::string key = key_of(payload);
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        store.put(key, payload);
        std::optional<std::string> got = store.load(key);
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, payload);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Exactly one object, no leftover temp files, and it verifies clean.
  DiskStats stats = store.disk_stats();
  EXPECT_EQ(stats.objects, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
  std::size_t files = 0;
  for (const fs::directory_entry& e :
       fs::recursive_directory_iterator(root / "objects")) {
    if (e.is_regular_file()) ++files;
  }
  EXPECT_EQ(files, 1u);  // temp files were all renamed or removed
  VerifyResult v = store.verify();
  EXPECT_EQ(v.valid, 1u);
  EXPECT_EQ(v.corrupt, 0u);
}

TEST(ArtifactStore, ConcurrentDistinctKeysAllLand) {
  ArtifactStore store(test_root());
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        std::string payload =
            "payload-" + std::to_string(t) + "-" + std::to_string(i);
        store.put(key_of(payload), payload);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(store.disk_stats().objects, 80u);
  VerifyResult v = store.verify();
  EXPECT_EQ(v.valid, 80u);
  EXPECT_EQ(v.corrupt, 0u);
}

}  // namespace
}  // namespace rsnsec::store
