// Codec layer of the artifact store: canonical primitive encodings, the
// checksum/key hashes, and the model-object codecs. The decoders face
// on-disk bytes that may be truncated or hostile, so every malformation
// must surface as CodecError — never as a crash or silent misparse.

#include "store/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace rsnsec::store {
namespace {

// ------------------------------------------------------------ primitives

TEST(VarintCodec, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,     1,          127,        128,
                                  16383, 16384,      0xffffffff, 1ull << 32,
                                  (1ull << 63) - 1,  1ull << 63, ~0ull};
  for (std::uint64_t v : values) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.varint(), v);
    r.expect_end();
  }
}

TEST(VarintCodec, RejectsNonCanonicalEncoding) {
  // 0 padded to two bytes: the writer never emits a zero continuation.
  std::string padded_zero = {'\x80', '\x00'};
  ByteReader r1(padded_zero);
  EXPECT_THROW(r1.varint(), CodecError);
  // 1 padded to two bytes.
  std::string padded_one = {'\x81', '\x00'};
  ByteReader r2(padded_one);
  EXPECT_THROW(r2.varint(), CodecError);
}

TEST(VarintCodec, RejectsOverflowAndOverlength) {
  // Ten continuation bytes: more than 64 bits of payload.
  std::string overlong(10, '\xff');
  ByteReader r1(overlong);
  EXPECT_THROW(r1.varint(), CodecError);
  // Exactly ten bytes but the top byte claims bits 64+.
  std::string overflow(9, '\xff');
  overflow.push_back('\x02');
  ByteReader r2(overflow);
  EXPECT_THROW(r2.varint(), CodecError);
}

TEST(VarintCodec, RejectsTruncation) {
  ByteWriter w;
  w.varint(300);  // two bytes
  std::string cut = w.bytes().substr(0, 1);
  ByteReader r(cut);
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(ZigzagCodec, RoundTripsSignedExtremes) {
  const std::int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (std::int64_t v : values) {
    ByteWriter w;
    w.zigzag(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.zigzag(), v);
  }
  // Small magnitudes stay small on the wire.
  ByteWriter w;
  w.zigzag(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(StringCodec, RoundTripsAndRejectsTruncatedBody) {
  const std::string payload("hello\0world", 11);  // embedded NUL survives
  ByteWriter w;
  w.str(payload);
  ByteReader ok(w.bytes());
  EXPECT_EQ(ok.str(), payload);
  std::string cut = w.bytes().substr(0, w.size() - 1);
  ByteReader bad(cut);
  EXPECT_THROW(bad.str(), CodecError);
}

TEST(SectionCodec, BoundsTheReaderExactly) {
  ByteWriter body;
  body.varint(42);
  ByteWriter outer;
  outer.section(body);
  outer.varint(7);

  ByteReader r(outer.bytes());
  ByteReader sec = r.section();
  EXPECT_EQ(sec.varint(), 42u);
  sec.expect_end();
  EXPECT_EQ(r.varint(), 7u);
  r.expect_end();
}

TEST(SectionCodec, ExpectEndCatchesTrailingBytes) {
  ByteWriter body;
  body.varint(1);
  body.varint(2);
  ByteWriter outer;
  outer.section(body);
  ByteReader r(outer.bytes());
  ByteReader sec = r.section();
  sec.varint();
  EXPECT_THROW(sec.expect_end(), CodecError);
}

// ------------------------------------------------------------- checksums

TEST(Checksums, Fnv1a64KnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Checksums, Sha256KnownVectors) {
  EXPECT_EQ(
      Sha256::hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      Sha256::hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // NIST two-block message.
  EXPECT_EQ(
      Sha256::hex(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Checksums, Sha256IncrementalMatchesOneShot) {
  std::string data(1000, 'x');
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); i += 7)
    h.update(data.substr(i, 7));
  std::array<std::uint8_t, 32> a = h.digest();
  Sha256 h2;
  h2.update(data);
  EXPECT_EQ(a, h2.digest());
}

// ---------------------------------------------------------------- netlist

netlist::Netlist example_netlist() {
  using netlist::GateType;
  netlist::Netlist nl;
  netlist::ModuleId core = nl.add_module("core");
  netlist::ModuleId instr = nl.add_module("instrument");
  netlist::NodeId in0 = nl.add_input("in0", core);
  nl.add_const(false);
  netlist::NodeId one = nl.add_const(true);
  netlist::NodeId g =
      nl.add_gate(GateType::And, {in0, one}, "g_and", instr);
  netlist::NodeId f1 = nl.add_ff("ff1", core);
  netlist::NodeId f2 = nl.add_ff("ff2", instr, g);
  netlist::NodeId inv = nl.add_gate(GateType::Not, {f2});
  // Forward reference: ff1's data input has a higher node id, so the
  // decoder must defer FF inputs until all nodes exist.
  nl.set_ff_input(f1, inv);
  return nl;
}

TEST(NetlistCodec, RoundTripIsCanonical) {
  netlist::Netlist nl = example_netlist();
  ByteWriter w;
  encode_netlist(w, nl);
  ByteReader r(w.bytes());
  netlist::Netlist decoded = decode_netlist(r);
  r.expect_end();

  ASSERT_EQ(decoded.num_nodes(), nl.num_nodes());
  ASSERT_EQ(decoded.num_modules(), nl.num_modules());
  EXPECT_EQ(decoded.module_name(1), "instrument");
  EXPECT_EQ(decoded.ffs(), nl.ffs());
  EXPECT_EQ(decoded.node(4).name, "ff1");
  EXPECT_EQ(decoded.node(4).fanins, nl.node(4).fanins);
  std::string err;
  EXPECT_TRUE(decoded.validate(&err)) << err;

  // Canonicality: the decoded netlist re-encodes to identical bytes, so
  // the encoding is usable as a content-hash input.
  ByteWriter w2;
  encode_netlist(w2, decoded);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(NetlistCodec, EveryTruncationThrowsCodecError) {
  ByteWriter w;
  encode_netlist(w, example_netlist());
  const std::string& full = w.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::string prefix = full.substr(0, cut);  // keep the view's storage alive
    ByteReader r(prefix);
    EXPECT_THROW(
        {
          decode_netlist(r);
          r.expect_end();
        },
        CodecError)
        << "prefix length " << cut;
  }
}

TEST(NetlistCodec, RejectsHostileStructures) {
  {  // Unknown gate type.
    ByteWriter w;
    w.varint(0);  // modules
    w.varint(1);  // nodes
    w.u8(200);
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_netlist(r), CodecError);
  }
  {  // Fanin id out of range.
    ByteWriter w;
    w.varint(0);
    w.varint(1);
    w.u8(static_cast<std::uint8_t>(netlist::GateType::Buf));
    w.zigzag(netlist::no_module);
    w.str("");
    w.varint(1);
    w.varint(5);  // only node 0 exists
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_netlist(r), CodecError);
  }
  {  // Primary input with fanins.
    ByteWriter w;
    w.varint(0);
    w.varint(1);
    w.u8(static_cast<std::uint8_t>(netlist::GateType::Input));
    w.zigzag(netlist::no_module);
    w.str("i");
    w.varint(1);
    w.varint(0);
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_netlist(r), CodecError);
  }
  {  // Constant carrying a name (not representable via the API).
    ByteWriter w;
    w.varint(0);
    w.varint(1);
    w.u8(static_cast<std::uint8_t>(netlist::GateType::Const0));
    w.zigzag(netlist::no_module);
    w.str("named");
    w.varint(0);
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_netlist(r), CodecError);
  }
  {  // Node module out of range.
    ByteWriter w;
    w.varint(1);
    w.str("m");
    w.varint(1);
    w.u8(static_cast<std::uint8_t>(netlist::GateType::Input));
    w.zigzag(3);
    w.str("i");
    w.varint(0);
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_netlist(r), CodecError);
  }
}

// -------------------------------------------------------------------- rsn

rsn::Rsn example_rsn() {
  rsn::Rsn net("example");
  rsn::ElemId r1 = net.add_register("r1", 2, 0);
  rsn::ElemId r2 = net.add_register("r2", 1);
  rsn::ElemId m = net.add_mux("m", 3);
  rsn::ElemId buf = net.add_mux("buf", 2);
  net.remove_mux_input(buf, 1);  // degenerate 1-input mux
  net.connect(net.scan_in(), r1, 0);
  net.connect(r1, m, 0);
  net.connect(net.scan_in(), r2, 0);
  net.connect(r2, m, 1);  // mux port 2 stays dangling
  net.connect(m, buf, 0);
  net.connect(buf, net.scan_out(), 0);
  net.set_mux_select(m, 1);
  net.set_capture(r1, 0, 5);
  net.set_update(r1, 1, 7);
  return net;
}

TEST(RsnCodec, RoundTripIsCanonical) {
  rsn::Rsn net = example_rsn();
  ByteWriter w;
  encode_rsn(w, net);
  ByteReader r(w.bytes());
  rsn::Rsn decoded = decode_rsn(r);
  r.expect_end();

  ASSERT_EQ(decoded.num_elements(), net.num_elements());
  EXPECT_EQ(decoded.name(), "example");
  EXPECT_EQ(decoded.registers(), net.registers());
  EXPECT_EQ(decoded.muxes(), net.muxes());
  rsn::ElemId m = net.muxes()[0];
  EXPECT_EQ(decoded.mux_select(m), 1u);
  EXPECT_EQ(decoded.elem(m).inputs[2], rsn::no_elem);  // dangling port
  EXPECT_EQ(decoded.elem(net.muxes()[1]).inputs.size(), 1u);
  rsn::ElemId r1 = net.registers()[0];
  EXPECT_EQ(decoded.elem(r1).module, 0);
  EXPECT_EQ(decoded.elem(r1).ffs[0].capture_src, 5u);
  EXPECT_EQ(decoded.elem(r1).ffs[1].update_dst, 7u);

  ByteWriter w2;
  encode_rsn(w2, decoded);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(RsnCodec, EveryTruncationThrowsCodecError) {
  ByteWriter w;
  encode_rsn(w, example_rsn());
  const std::string& full = w.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::string prefix = full.substr(0, cut);  // keep the view's storage alive
    ByteReader r(prefix);
    EXPECT_THROW(
        {
          decode_rsn(r);
          r.expect_end();
        },
        CodecError)
        << "prefix length " << cut;
  }
}

TEST(RsnCodec, SingleByteCorruptionNeverCrashes) {
  ByteWriter w;
  encode_rsn(w, example_rsn());
  const std::string full = w.bytes();
  for (std::size_t i = 0; i < full.size(); ++i) {
    for (unsigned char delta : {0x01, 0x80, 0xff}) {
      std::string mutated = full;
      mutated[i] = static_cast<char>(
          static_cast<unsigned char>(mutated[i]) ^ delta);
      ByteReader r(mutated);
      try {
        rsn::Rsn decoded = decode_rsn(r);
        r.expect_end();
        // A surviving mutation must still be a structurally coherent
        // network (it was built through the Rsn API).
        EXPECT_GE(decoded.num_elements(), 2u);
      } catch (const CodecError&) {
        // Expected for most mutations.
      }
    }
  }
}

TEST(RsnCodec, RejectsHostileStructures) {
  {  // No scan ports at all.
    ByteWriter w;
    w.str("x");
    w.varint(1);
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_rsn(r), CodecError);
  }
  {  // Element 0 is not the scan-in port.
    ByteWriter w;
    w.str("x");
    w.varint(2);
    w.u8(static_cast<std::uint8_t>(rsn::ElemKind::Register));
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_rsn(r), CodecError);
  }
}

// ------------------------------------------------------------- dep matrix

TEST(DepMatrixCodec, RoundTripsOddDimensions) {
  for (std::size_t n : {0u, 1u, 63u, 64u, 70u, 130u}) {
    DepMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) {
      m.upgrade(i, (i * 7 + 3) % n, DepKind::Structural);
      if (i % 3 == 0) m.upgrade((i * 5) % n, i, DepKind::Path);
    }
    ByteWriter w;
    encode_dep_matrix(w, m);
    ByteReader r(w.bytes());
    DepMatrix decoded = decode_dep_matrix(r);
    r.expect_end();
    EXPECT_TRUE(decoded == m) << "n=" << n;

    ByteWriter w2;
    encode_dep_matrix(w2, decoded);
    EXPECT_EQ(w.bytes(), w2.bytes());
  }
}

TEST(DepMatrixCodec, RejectsInvalidPlanes) {
  {  // Path bit without the matching structural bit.
    ByteWriter w;
    w.varint(1);
    w.fixed64(0);  // S plane
    w.fixed64(1);  // P plane claims a dependency S does not have
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_dep_matrix(r), CodecError);
  }
  {  // Bit set beyond column n-1.
    ByteWriter w;
    w.varint(1);
    w.fixed64(2);
    w.fixed64(0);
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_dep_matrix(r), CodecError);
  }
  {  // Absurd dimension rejected before any allocation.
    ByteWriter w;
    w.varint((1ull << 24) + 1);
    ByteReader r(w.bytes());
    EXPECT_THROW(decode_dep_matrix(r), CodecError);
  }
}

}  // namespace
}  // namespace rsnsec::store
